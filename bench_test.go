// Benchmarks: one testing.B target per paper table and figure, plus
// micro-benchmarks of the runtime's building blocks.
//
// The cmd/phoenix-bench harness regenerates the paper's tables with
// simulated 7200-RPM disks (model-time milliseconds). The benchmarks
// here run the same workloads on the real file system (disk.HostModel)
// and measure what the Go implementation itself costs per operation;
// the per-call log force and append counts — the quantities the
// paper's optimizations reduce — are reported as custom metrics, so
// the optimization structure is visible in ns-scale results too.
//
//	go test -bench=. -benchmem
package phoenix_test

import (
	"fmt"
	"testing"
	"time"

	phoenix "repro"
	"repro/internal/bookstore"
	"repro/internal/disk"
	"repro/internal/wal"
)

// benchWorld hosts a client and a server process on the host fs.
func benchWorld(b *testing.B, cfg phoenix.Config) (*phoenix.Universe, *phoenix.Process, *phoenix.Process) {
	b.Helper()
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	mc, err := u.AddMachine("evo1")
	if err != nil {
		b.Fatal(err)
	}
	ms, err := u.AddMachine("evo2")
	if err != nil {
		b.Fatal(err)
	}
	pc, err := mc.StartProcess("cli", cfg)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := ms.StartProcess("srv", cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pc.Close(); ps.Close() })
	return u, pc, ps
}

// Counter is the benchmark server component.
type Counter struct{ N int }

// Add mutates state.
func (c *Counter) Add(d int) (int, error) { c.N += d; return c.N, nil }

// Get reads state.
func (c *Counter) Get() (int, error) { return c.N, nil }

// Forwarder is the benchmark client component.
type Forwarder struct {
	Server *phoenix.Ref
}

// Forward relays one call.
func (f *Forwarder) Forward(d int) (int, error) {
	res, err := f.Server.Call("Add", d)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// Probe relays one read.
func (f *Forwarder) Probe() (int, error) {
	res, err := f.Server.Call("Get")
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// Pure is the functional server.
type Pure struct{}

// Double is pure.
func (Pure) Double(x int) (int, error) { return 2 * x, nil }

func reportForces(b *testing.B, procs ...*phoenix.Process) {
	var forces, appends int64
	for _, p := range procs {
		forces += p.LogStats().Forces
		appends += p.LogStats().Appends
	}
	b.ReportMetric(float64(forces)/float64(b.N), "forces/op")
	b.ReportMetric(float64(appends)/float64(b.N), "appends/op")
}

func cfgFor(mode phoenix.LogMode, specialized bool) phoenix.Config {
	return phoenix.Config{
		LogMode:          mode,
		SpecializedTypes: specialized,
		RetryInterval:    time.Millisecond,
		RetryLimit:       100,
	}
}

// benchP2P drives persistent→persistent calls (Table 4's last rows).
func benchP2P(b *testing.B, mode phoenix.LogMode) {
	u, pc, ps := benchWorld(b, cfgFor(mode, mode == phoenix.LogOptimized))
	hs, err := ps.Create("Counter", &Counter{})
	if err != nil {
		b.Fatal(err)
	}
	hc, err := pc.Create("Fwd", &Forwarder{Server: phoenix.NewRef(hs.URI())})
	if err != nil {
		b.Fatal(err)
	}
	ref := u.ExternalRef(hc.URI())
	if _, err := ref.Call("Forward", 1); err != nil {
		b.Fatal(err)
	}
	pc.ResetLogStats()
	ps.ResetLogStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Call("Forward", 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportForces(b, pc, ps)
}

// BenchmarkTable4_PersistentToPersistent_Baseline is Table 4 row
// "Persistent→Persistent (baseline)": every message logged and forced.
func BenchmarkTable4_PersistentToPersistent_Baseline(b *testing.B) {
	benchP2P(b, phoenix.LogBaseline)
}

// BenchmarkTable4_PersistentToPersistent_Optimized is Table 4 row
// "Persistent→Persistent (optimized)": Algorithm 2.
func BenchmarkTable4_PersistentToPersistent_Optimized(b *testing.B) {
	benchP2P(b, phoenix.LogOptimized)
}

// benchE2P drives external→persistent calls (Algorithm 3).
func benchE2P(b *testing.B, mode phoenix.LogMode) {
	u, _, ps := benchWorld(b, cfgFor(mode, mode == phoenix.LogOptimized))
	hs, err := ps.Create("Counter", &Counter{})
	if err != nil {
		b.Fatal(err)
	}
	ref := u.ExternalRef(hs.URI())
	if _, err := ref.Call("Add", 1); err != nil {
		b.Fatal(err)
	}
	ps.ResetLogStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Call("Add", 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportForces(b, ps)
}

// BenchmarkTable4_ExternalToPersistent_Baseline is Table 4 row
// "External→Persistent (baseline)".
func BenchmarkTable4_ExternalToPersistent_Baseline(b *testing.B) {
	benchE2P(b, phoenix.LogBaseline)
}

// BenchmarkTable4_ExternalToPersistent_Optimized is Table 4 row
// "External→Persistent (optimized)": long/short records, same forces.
func BenchmarkTable4_ExternalToPersistent_Optimized(b *testing.B) {
	benchE2P(b, phoenix.LogOptimized)
}

// benchSpecialized drives a persistent client against a specialized
// server (Table 5 rows).
func benchSpecialized(b *testing.B, serverObj any, opts []phoenix.CreateOption, method string, args ...any) {
	u, pc, ps := benchWorld(b, cfgFor(phoenix.LogOptimized, true))
	hs, err := ps.Create("Server", serverObj, opts...)
	if err != nil {
		b.Fatal(err)
	}
	hc, err := pc.Create("Fwd", &Forwarder{Server: phoenix.NewRef(hs.URI())})
	if err != nil {
		b.Fatal(err)
	}
	ref := u.ExternalRef(hc.URI())
	if _, err := ref.Call(method, args...); err != nil {
		b.Fatal(err)
	}
	pc.ResetLogStats()
	ps.ResetLogStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Call(method, args...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportForces(b, pc, ps)
}

// BenchmarkTable5_PersistentToFunctional is Table 5 row
// "Persistent→Functional": Algorithm 4, no logging anywhere for the
// inner call (the envelope still logs at the client).
func BenchmarkTable5_PersistentToFunctional(b *testing.B) {
	// Forwarder.Forward calls Add; give Pure an Add-compatible method
	// by benchmarking through Probe→Get instead.
	benchSpecialized(b, &Counter{}, []phoenix.CreateOption{phoenix.WithType(phoenix.Functional)}, "Probe")
}

// BenchmarkTable5_ReadOnlyMethod is Table 5 row "Persistent→Persistent
// (read-only methods)": Algorithm 5 via the method attribute.
func BenchmarkTable5_ReadOnlyMethod(b *testing.B) {
	benchSpecialized(b, &Counter{}, []phoenix.CreateOption{phoenix.WithReadOnlyMethods("Get")}, "Probe")
}

// BenchmarkTable5_PersistentToReadOnly is Table 5 row
// "Persistent→Read-only".
func BenchmarkTable5_PersistentToReadOnly(b *testing.B) {
	benchSpecialized(b, &Counter{}, []phoenix.CreateOption{phoenix.WithType(phoenix.ReadOnly)}, "Probe")
}

// SubHost hosts a subordinate for the Table 5 subordinate row.
type SubHost struct {
	Total int
	ctx   *phoenix.Ctx
}

// AttachContext receives the context handle.
func (h *SubHost) AttachContext(cx *phoenix.Ctx) { h.ctx = cx }

// BatchSub calls the subordinate n times.
func (h *SubHost) BatchSub(n int) (int, error) {
	sub, _ := h.ctx.Subordinate("vault")
	for i := 0; i < n; i++ {
		res, err := sub.Call("Add", 1)
		if err != nil {
			return 0, err
		}
		h.Total = res[0].(int)
	}
	return h.Total, nil
}

// BenchmarkTable5_PersistentToSubordinate is Table 5 row
// "Persistent→Subordinate": a direct, unintercepted, unlogged call
// (paper: 3.44e-5 ms). One driving call per b.N inner calls.
func BenchmarkTable5_PersistentToSubordinate(b *testing.B) {
	u, _, ps := benchWorld(b, cfgFor(phoenix.LogOptimized, true))
	h, err := ps.Create("SubHost", &SubHost{}, phoenix.WithSubordinate("vault", &Counter{}))
	if err != nil {
		b.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	if _, err := ref.Call("BatchSub", 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := ref.Call("BatchSub", b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure9_UnbufferedWrite is Figure 9 in virtual time: each
// op is one 1 KB unbuffered write on the 7200-RPM model; the custom
// metric is the model-time cost (paper: ~8.5 ms).
func BenchmarkFigure9_UnbufferedWrite(b *testing.B) {
	clk := phoenix.NewVirtualClock()
	d := phoenix.NewSimDisk(phoenix.DefaultDiskParams(), clk)
	d.Write(1024)
	start := clk.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(1024)
	}
	b.StopTimer()
	per := clk.Now().Sub(start) / time.Duration(b.N)
	b.ReportMetric(float64(per)/1e6, "model-ms/op")
}

// BenchmarkTable6_SaveStateOnCall is Table 6's "save state on call":
// the cost of serializing the component and appending a context state
// record per call (no force).
func BenchmarkTable6_SaveStateOnCall(b *testing.B) {
	cfg := cfgFor(phoenix.LogOptimized, true)
	cfg.SaveStateEvery = 1
	u, _, ps := benchWorld(b, cfg)
	hs, err := ps.Create("Counter", &Counter{})
	if err != nil {
		b.Fatal(err)
	}
	ref := u.ExternalRef(hs.URI())
	if _, err := ref.Call("Add", 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Call("Add", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRecovery measures crash recovery for a log of n calls
// (Table 7): each benchmark op is one full process recovery.
func benchRecovery(b *testing.B, n int, fromState bool) {
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cfgFor(phoenix.LogOptimized, true)
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		b.Fatal(err)
	}
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		b.Fatal(err)
	}
	if fromState {
		if err := h.SaveState(); err != nil {
			b.Fatal(err)
		}
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < n; i++ {
		if _, err := ref.Call("Add", 1); err != nil {
			b.Fatal(err)
		}
	}
	p.Crash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p2, err := m.StartProcess("srv", cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := mustCounter(b, p2); got != n {
			b.Fatalf("recovered N = %d, want %d", got, n)
		}
		p2.Crash() // crash again so the next iteration recovers again
		b.StartTimer()
	}
}

func mustCounter(b *testing.B, p *phoenix.Process) int {
	b.Helper()
	h, ok := p.Lookup("Counter")
	if !ok {
		b.Fatal("Counter missing after recovery")
	}
	return h.Object().(*Counter).N
}

// BenchmarkTable7_Recovery regenerates Table 7: recovery time vs
// number of calls replayed, from creation and from a state record.
func BenchmarkTable7_Recovery(b *testing.B) {
	for _, n := range []int{0, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("fromCreation/calls=%d", n), func(b *testing.B) {
			benchRecovery(b, n, false)
		})
		b.Run(fmt.Sprintf("fromState/calls=%d", n), func(b *testing.B) {
			benchRecovery(b, n, true)
		})
	}
}

// BenchmarkTable8_Bookstore regenerates Table 8: one buyer session per
// op at each optimization level, with forces/op reported.
func BenchmarkTable8_Bookstore(b *testing.B) {
	levels := []bookstore.Level{
		bookstore.LevelBaseline,
		bookstore.LevelOptimizedLogging,
		bookstore.LevelSpecialized,
	}
	names := []string{"baseline", "optimized", "specialized"}
	for i, level := range levels {
		b.Run(names[i], func(b *testing.B) {
			u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			d, err := bookstore.Deploy(u, "server", level, []string{"alice"})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			buyer := bookstore.NewBuyer(u, d, "alice", "WA")
			if _, err := buyer.RunSession(); err != nil {
				b.Fatal(err)
			}
			d.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := buyer.RunSession(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(d.Forces())/float64(b.N), "forces/op")
		})
	}
}

// FanClient fans one incoming call out to several servers
// (Section 5.5.2's PriceGrabber pattern).
type FanClient struct {
	Servers []string
	ctx     *phoenix.Ctx
}

// AttachContext receives the context handle.
func (f *FanClient) AttachContext(cx *phoenix.Ctx) { f.ctx = cx }

// Fan queries every server once.
func (f *FanClient) Fan(arg int) (int, error) {
	sum := 0
	for _, s := range f.Servers {
		res, err := f.ctx.NewRef(phoenix.URI(s)).Call("Add", arg)
		if err != nil {
			return 0, err
		}
		sum += res[0].(int)
	}
	return sum, nil
}

// BenchmarkMultiCall regenerates Section 5.5.2: per-execution force
// counts for a 4-way fan-out with the multi-call optimization off/on.
func BenchmarkMultiCall(b *testing.B) {
	for _, multi := range []bool{false, true} {
		name := "off"
		if multi {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cfgFor(phoenix.LogOptimized, true)
			cfg.MultiCall = multi
			u, pc, ps := benchWorld(b, cfg)
			var servers []string
			for s := 0; s < 4; s++ {
				hs, err := ps.Create(fmt.Sprintf("S%d", s), &Counter{})
				if err != nil {
					b.Fatal(err)
				}
				servers = append(servers, string(hs.URI()))
			}
			hf, err := pc.Create("Fan", &FanClient{Servers: servers})
			if err != nil {
				b.Fatal(err)
			}
			ref := u.ExternalRef(hf.URI())
			if _, err := ref.Call("Fan", 1); err != nil {
				b.Fatal(err)
			}
			pc.ResetLogStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ref.Call("Fan", 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportForces(b, pc)
		})
	}
}

// ---- building-block micro-benchmarks ----

// BenchmarkWALAppend measures a buffered log append.
func BenchmarkWALAppend(b *testing.B) {
	l, err := wal.Open(b.TempDir()+"/bench.log", disk.HostModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 186) // the paper's incoming-record size
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(2, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendForce measures append+force on the host fs (the
// real-fsync analogue of the paper's unbuffered write).
func BenchmarkWALAppendForce(b *testing.B) {
	l, err := wal.Open(b.TempDir()+"/bench.log", disk.HostModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 186)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(2, payload); err != nil {
			b.Fatal(err)
		}
		if err := l.Force(); err != nil {
			b.Fatal(err)
		}
	}
}
