# Development entry points. `make ci` is what the GitHub workflow runs.

.PHONY: ci vet build test race stress recovery-stress bench

ci: vet build test race stress recovery-stress

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core/ ./internal/wal/

# Repeated group-commit concurrency stress under the race detector: the
# flusher, its shutdown modes, and the crash-durability property.
stress:
	go test -race -count=2 -run 'GroupCommit' ./internal/wal/ ./internal/core/

# Repeated crash/recover cycles with Pass-2 parallelism under the race
# detector: the demux reader, per-context drains, worker slots, and the
# serial-vs-parallel equivalence suites.
recovery-stress:
	go test -race -count=2 -run 'ParallelRecovery|ScanFrom' ./internal/core/ ./internal/wal/
	go test -race -count=2 -run 'SellerParallelRecovery' ./internal/bookstore/

bench:
	go run ./cmd/phoenix-bench -scale 0.05 -calls 30
