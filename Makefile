# Development entry points. `make ci` is what the GitHub workflow runs.

.PHONY: ci vet lint lockgraph lint-fix-fixtures build test race stress recovery-stress shard-stress lazy-stress adaptive-stress bench bench-smoke

ci: vet lint build test race stress recovery-stress shard-stress lazy-stress adaptive-stress

vet:
	go vet ./...

# The repository's own discipline analyzers (internal/lint): forced
# append sites, wall-clock reads, device I/O under held mutexes,
# exhaustive enum switches, metric-name hygiene, the lock-order graph,
# pooled-buffer lifetimes, goroutine/latch shutdown paths and dropped
# device-I/O errors. -deadallow also fails the run when an allowlist
# entry matches no current diagnostic. The `go list -export` front end
# is cached on a hash of go.mod/go.sum and the tree's sources, so a
# warm run skips the go tool. staticcheck and govulncheck run when
# installed (CI installs them; offline dev machines may not have them).
lint:
	go run ./cmd/phoenix-lint -deadallow ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

# Emit the lock-acquisition graph lockorder observed as Graphviz DOT
# (the DESIGN.md §14 figure).
lockgraph:
	go run ./cmd/phoenix-lint -lockgraph ./...

# Print every diagnostic the analyzers produce for the testdata
# fixtures — use this to refresh `// want` comments after changing an
# analyzer's message format.
lint-fix-fixtures:
	PHOENIX_LINT_PRINT=1 go test ./internal/lint/ -run 'Fixture' -v

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core/ ./internal/wal/

# Repeated group-commit concurrency stress under the race detector: the
# flusher, its shutdown modes, and the crash-durability property.
stress:
	go test -race -count=2 -run 'GroupCommit' ./internal/wal/ ./internal/core/

# Repeated crash/recover cycles with Pass-2 parallelism under the race
# detector: the demux reader, per-context drains, worker slots, and the
# serial-vs-parallel equivalence suites.
recovery-stress:
	go test -race -count=2 -run 'ParallelRecovery|ScanFrom' ./internal/core/ ./internal/wal/
	go test -race -count=2 -run 'SellerParallelRecovery' ./internal/bookstore/

# Sharded-log stress under the race detector: the wal.Set unit suite,
# the shards-1/4/8 serial-vs-parallel recovery equivalence and
# mixed-era upgrade tests, and a concurrent group-commit run against a
# 4-shard log (per-shard flushers appending and syncing in parallel).
shard-stress:
	go test -race -count=2 -run 'OpenSet|SetSync|SetDiscard|WellKnownMarks' ./internal/wal/
	go test -race -count=2 -run 'ShardedRecoveryEquivalence|MixedEraRecovery' ./internal/core/
	go run ./cmd/phoenix-bench -experiment groupcommit -scale 0.02 -calls 20 -concurrency 8 -wal-shards 4

# Lazy-admission stress under the race detector: on-demand replays
# racing the background drainers across the mode × shards ×
# parallelism × crash-point equivalence matrix (including the
# mixed-era upgrade log), plus the crash-mid-drain and first-touch
# suites, and the lazy-vs-eager bench cell on a compressed clock.
lazy-stress:
	go test -race -count=2 -run 'Lazy' ./internal/core/
	go run ./cmd/phoenix-bench -experiment lazyrecovery -scale 0.05 -metrics=false

# Adaptive-discipline stress under the race detector: the controller's
# epoch machine and promotion/demotion paths racing live calls, the
# hysteresis and read-only-guard suites, and the crash-at-promotion-
# boundary recovery equivalence matrix (eager/lazy × shards 1/4), plus
# the convergence bench cell on a compressed clock.
adaptive-stress:
	go test -race -count=2 -run 'Adaptive' ./internal/core/
	go run ./cmd/phoenix-bench -experiment adaptive -scale 0.05 -calls 40 -metrics=false

bench:
	go run ./cmd/phoenix-bench -scale 0.05 -calls 30

# Quick allocation-focused microbenchmarks of the message/WAL hot path
# (encode/decode envelopes, wal append, cursor scans), one iteration
# batch each, plus the AllocsPerRun regression gates and the tracing
# CPU-overhead gate (flight recorder must stay under 5% per call on
# the group-commit workload). This is the perf-regression smoke CI
# runs; BENCH_PR5.json and BENCH_PR6.json hold the trajectory.
bench-smoke:
	go test -run '^$$' -bench 'Encode|Decode|WALAppend|Cursor|Scan' -benchmem -benchtime 100x ./internal/msg/ ./internal/wal/
	go test -run 'TestAllocs' -v ./internal/core/
	go test -run 'TestTraceOverhead$$' -v ./internal/bench/
	go test -run 'TestAdaptiveConvergenceGate$$' -v ./internal/bench/
