# Development entry points. `make ci` is what the GitHub workflow runs.

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core/ ./internal/wal/

bench:
	go run ./cmd/phoenix-bench -scale 0.05 -calls 30
