package phoenix_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end: each is a
// self-verifying program (they log.Fatal on any correctness violation),
// so a zero exit status plus the expected closing line is a real check.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full crash/recovery cycles")
	}
	cases := []struct {
		pkg  string
		want string // substring that must appear in the output
	}{
		{"./examples/quickstart", "exactly-once: no lost or repeated work"},
		{"./examples/bookstore", "forces"},
		{"./examples/faultdemo", "transfers applied exactly once, money conserved"},
		{"./examples/checkpointing", "replays only the log suffix"},
		{"./examples/lazyrecovery", "serves the first call before the backlog finishes replaying"},
		{"./examples/pipeline", "every order recorded exactly once"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.pkg, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("%s output missing %q:\n%s", tc.pkg, tc.want, out)
			}
		})
	}
}
