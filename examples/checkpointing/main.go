// Checkpointing: context state records and process checkpoints cutting
// recovery time (paper Section 4 / Table 7).
//
// A persistent key-value component serves a long workload twice: once
// with no checkpointing (recovery replays every call from the creation
// record) and once saving a context state record every 400 calls with
// periodic process checkpoints (recovery replays only the suffix). The
// program crashes the process after each workload and reports the
// measured recovery times.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	phoenix "repro"
)

// Ledger is the workload component.
type Ledger struct {
	Entries map[string]int
	Ops     int
}

// Post adds an amount to a key.
func (l *Ledger) Post(key string, amount int) (int, error) {
	if l.Entries == nil {
		l.Entries = make(map[string]int)
	}
	l.Entries[key] += amount
	l.Ops++
	return l.Ops, nil
}

func main() {
	const workload = 4000

	for _, ckpt := range []bool{false, true} {
		dir, err := os.MkdirTemp("", "phoenix-ckpt-*")
		if err != nil {
			log.Fatal(err)
		}
		u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
		if err != nil {
			log.Fatal(err)
		}
		m, err := u.AddMachine("evo1")
		if err != nil {
			log.Fatal(err)
		}
		cfg := phoenix.Config{
			LogMode:          phoenix.LogOptimized,
			SpecializedTypes: true,
		}
		if ckpt {
			// The paper's Section 5.4 estimate: save context state
			// every ~400 calls or more.
			cfg.SaveStateEvery = 400
			cfg.CheckpointEvery = 1000
		}
		p, err := m.StartProcess("ledgerd", cfg)
		if err != nil {
			log.Fatal(err)
		}
		h, err := p.Create("Ledger", &Ledger{})
		if err != nil {
			log.Fatal(err)
		}
		ref := u.ExternalRef(h.URI())
		keys := []string{"rent", "food", "books", "disks"}
		for i := 0; i < workload; i++ {
			if _, err := ref.Call("Post", keys[i%len(keys)], 1); err != nil {
				log.Fatal(err)
			}
		}
		p.Crash()

		start := time.Now()
		p2, err := m.StartProcess("ledgerd", cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		h2, ok := p2.Lookup("Ledger")
		if !ok {
			log.Fatal("ledger lost")
		}
		ledger := h2.Object().(*Ledger)
		mode := "no checkpoints (replay all from creation)"
		if ckpt {
			mode = "state record every 400 calls + process checkpoints"
		}
		fmt.Printf("%-52s recovery %8v  ops=%d rent=%d\n",
			mode, elapsed.Round(time.Microsecond), ledger.Ops, ledger.Entries["rent"])
		if ledger.Ops != workload {
			log.Fatalf("recovered ops = %d, want %d", ledger.Ops, workload)
		}
		p2.Close()
		os.RemoveAll(dir)
	}
	fmt.Println("\ncheckpointed recovery replays only the log suffix after the last state record")
}
