// Quickstart: a persistent counter that survives a process crash.
//
// The program hosts one persistent component, drives a few calls into
// it, crashes the process (losing every in-memory structure), restarts
// it, and shows that redo recovery reproduced the state — no recovery
// code in the component.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	phoenix "repro"
)

// Counter is an ordinary struct: exported fields are the recoverable
// state, exported methods are remotely callable.
type Counter struct {
	N int
}

// Add increments the counter.
func (c *Counter) Add(d int) (int, error) { c.N += d; return c.N, nil }

// Get reads it (declared read-only at creation: the runtime then skips
// all logging for Get calls).
func (c *Counter) Get() (int, error) { return c.N, nil }

func main() {
	dir, err := os.MkdirTemp("", "phoenix-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	machine, err := u.AddMachine("laptop")
	if err != nil {
		log.Fatal(err)
	}
	cfg := phoenix.Config{
		LogMode:          phoenix.LogOptimized,
		SpecializedTypes: true,
	}
	proc, err := machine.StartProcess("counterd", cfg)
	if err != nil {
		log.Fatal(err)
	}

	h, err := proc.Create("Counter", &Counter{},
		phoenix.WithReadOnlyMethods("Get"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hosted %s\n", h.URI())

	ref := u.ExternalRef(h.URI())
	for i := 1; i <= 5; i++ {
		res, err := ref.Call("Add", i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Add(%d) -> %v\n", i, res[0])
	}

	fmt.Println("\ncrashing the process: log buffer, tables, objects all gone ...")
	proc.Crash()

	fmt.Println("restarting: the runtime replays the recovery log ...")
	proc2, err := machine.StartProcess("counterd", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %v, forces so far: %d\n",
		proc2.Recovered(), proc2.LogStats().Forces)

	res, err := ref.Call("Get")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Get() after recovery -> %v (want 15)\n", res[0])

	res, err = ref.Call("Add", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Add(100) after recovery -> %v (exactly-once: no lost or repeated work)\n", res[0])
	proc2.Close()
}
