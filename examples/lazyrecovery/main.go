// Lazy on-demand recovery: serve traffic seconds after a crash.
//
// A process hosts many persistent counters with a long replay backlog.
// After a crash it restarts twice: once eagerly (the classic restart —
// no call is served until every context has replayed) and once with
// RecoveryConfig{Mode: RecoveryLazy}, where the process admits traffic
// as soon as Pass 1 has rebuilt the context tables. The first call to
// a hot context pays only that context's backlog; the cold contexts
// drain in the background, and DrainRecovery waits for the drain so
// the final states can be compared. Both restarts must land on
// identical state — lazy changes when replay runs, never what it
// computes.
//
//	go run ./examples/lazyrecovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	phoenix "repro"
)

// Counter is the workload component.
type Counter struct{ N int }

// Add accumulates and returns the running total.
func (c *Counter) Add(v int) (int, error) {
	c.N += v
	return c.N, nil
}

const (
	contexts = 24
	rounds   = 40
)

// runWorkload builds the same multi-context backlog in dir and crashes
// the process, leaving a log for recovery to chew on.
func runWorkload(u *phoenix.Universe, m *phoenix.Machine, cfg phoenix.Config) {
	p, err := m.StartProcess("countd", cfg)
	if err != nil {
		log.Fatal(err)
	}
	refs := make([]*phoenix.Ref, contexts)
	for i := range refs {
		h, err := p.Create(fmt.Sprintf("C%d", i), &Counter{})
		if err != nil {
			log.Fatal(err)
		}
		refs[i] = u.ExternalRef(h.URI())
	}
	for r := 0; r < rounds; r++ {
		for i, ref := range refs {
			if _, err := ref.Call("Add", i+r); err != nil {
				log.Fatal(err)
			}
		}
	}
	p.Crash()
}

func main() {
	for _, mode := range []phoenix.RecoveryMode{phoenix.RecoveryEager, phoenix.RecoveryLazy} {
		dir, err := os.MkdirTemp("", "phoenix-lazy-*")
		if err != nil {
			log.Fatal(err)
		}
		u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
		if err != nil {
			log.Fatal(err)
		}
		m, err := u.AddMachine("evo1")
		if err != nil {
			log.Fatal(err)
		}
		cfg := phoenix.Config{
			LogMode:  phoenix.LogOptimized,
			Recovery: phoenix.RecoveryConfig{Mode: mode, Parallelism: 2},
		}
		runWorkload(u, m, cfg)

		start := time.Now()
		p, err := m.StartProcess("countd", cfg)
		if err != nil {
			log.Fatal(err)
		}
		// First call after restart: under eager mode StartProcess above
		// already paid for the full replay; under lazy mode the process
		// came up after Pass 1 and this call triggers on-demand replay
		// of C0's backlog only.
		h0, ok := p.Lookup("C0")
		if !ok {
			log.Fatal("C0 lost")
		}
		if _, err := u.ExternalRef(h0.URI()).Call("Add", 0); err != nil {
			log.Fatal(err)
		}
		firstCall := time.Since(start)

		// Wait out the background drain (a no-op after eager recovery),
		// then verify every context recovered the full workload.
		if err := p.DrainRecovery(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < contexts; i++ {
			h, ok := p.Lookup(fmt.Sprintf("C%d", i))
			if !ok {
				log.Fatalf("C%d lost", i)
			}
			want := rounds * (2*i + rounds - 1) / 2
			if n := h.Object().(*Counter).N; n != want {
				log.Fatalf("C%d = %d after %v recovery, want %d", i, n, mode, want)
			}
		}

		stats, ok := p.LastRecovery()
		if !ok {
			log.Fatal("no recovery stats")
		}
		fmt.Printf("%-6v first call %8v  ttfc=%v  on-demand=%d background=%d replayed=%d\n",
			mode, firstCall.Round(time.Microsecond),
			time.Duration(stats.TimeToFirstCallNanos).Round(time.Microsecond),
			stats.ContextsOnDemand, stats.ContextsBackground, stats.CallsReplayed)
		p.Close()
		os.RemoveAll(dir)
	}
	fmt.Println("\nlazy admission serves the first call before the backlog finishes replaying")
}
