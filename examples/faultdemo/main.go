// Faultdemo: the Figure 2 failure points, exactly-once observed.
//
// A persistent Driver calls a persistent Transfer component that moves
// money between two persistent Account components. Failure injection
// crashes the Transfer process at each of the paper's Figure 2 failure
// points (before message 3 is sent; after message 3 but before
// message 2; after message 2); the recovery service restarts it; and
// the invariant — every transfer applied exactly once, money conserved
// — holds at every point.
//
//	go run ./examples/faultdemo
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	phoenix "repro"
)

// Account holds a balance.
type Account struct {
	Balance int
}

// Deposit applies a signed delta.
func (a *Account) Deposit(d int) (int, error) { a.Balance += d; return a.Balance, nil }

// Get reads the balance.
func (a *Account) Get() (int, error) { return a.Balance, nil }

// Transfer moves money between two accounts — a multi-step state
// change that a naive system could apply 0, 1 or 2 times across a
// crash.
type Transfer struct {
	From, To *phoenix.Ref
	Done     int
}

// Move debits one account and credits the other.
func (t *Transfer) Move(amount int) (int, error) {
	if _, err := t.From.Call("Deposit", -amount); err != nil {
		return 0, err
	}
	if _, err := t.To.Call("Deposit", amount); err != nil {
		return 0, err
	}
	t.Done++
	return t.Done, nil
}

// Driver is the persistent top tier whose retries carry stable call
// IDs, making duplicate elimination possible end to end.
type Driver struct {
	Transfer *phoenix.Ref
}

// Run performs one transfer.
func (d *Driver) Run(amount int) (int, error) {
	res, err := d.Transfer.Call("Move", amount)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

func main() {
	points := []phoenix.InjectionPoint{
		phoenix.PointServerBeforeLogIncoming,
		phoenix.PointServerAfterLogIncoming,
		phoenix.PointClientBeforeForceSend,
		phoenix.PointClientAfterForceSend,
		phoenix.PointClientAfterReply,
		phoenix.PointServerAfterExecute,
		phoenix.PointServerBeforeSendReply,
	}

	for _, pt := range points {
		if err := run(pt); err != nil {
			log.Fatalf("%s: %v", pt, err)
		}
	}
	fmt.Println("\nall failure points: transfers applied exactly once, money conserved")
}

func run(pt phoenix.InjectionPoint) error {
	dir, err := os.MkdirTemp("", "phoenix-fault-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		return err
	}
	base := phoenix.Config{
		LogMode:          phoenix.LogOptimized,
		SpecializedTypes: true,
		RetryInterval:    2 * time.Millisecond,
		RetryLimit:       2000,
	}
	inj := phoenix.NewInjector().CrashAt(pt, 2) // crash on the 2nd pass
	crashCfg := base
	crashCfg.Injector = inj

	mBank, err := u.AddMachine("bank")
	if err != nil {
		return err
	}
	mApp, err := u.AddMachine("app")
	if err != nil {
		return err
	}
	pBank, err := mBank.StartProcess("accounts", base)
	if err != nil {
		return err
	}
	pApp, err := mApp.StartProcess("transfer", crashCfg)
	if err != nil {
		return err
	}
	mApp.EnableAutoRestart(crashCfg, 3*time.Millisecond)

	hFrom, err := pBank.Create("Checking", &Account{Balance: 1000})
	if err != nil {
		return err
	}
	hTo, err := pBank.Create("Savings", &Account{Balance: 0})
	if err != nil {
		return err
	}
	hT, err := pApp.Create("Transfer", &Transfer{
		From: phoenix.NewRef(hFrom.URI()),
		To:   phoenix.NewRef(hTo.URI()),
	})
	if err != nil {
		return err
	}
	mDrv, err := u.AddMachine("client")
	if err != nil {
		return err
	}
	pDrv, err := mDrv.StartProcess("driver", base)
	if err != nil {
		return err
	}
	hD, err := pDrv.Create("Driver", &Driver{Transfer: phoenix.NewRef(hT.URI())})
	if err != nil {
		return err
	}

	ref := u.ExternalRef(hD.URI())
	const transfers = 4
	for i := 0; i < transfers; i++ {
		if _, err := ref.Call("Run", 100); err != nil {
			return fmt.Errorf("transfer %d: %w", i, err)
		}
	}

	from, err := u.ExternalRef(hFrom.URI()).Call("Get")
	if err != nil {
		return err
	}
	to, err := u.ExternalRef(hTo.URI()).Call("Get")
	if err != nil {
		return err
	}
	fired := inj.Fired(pt)
	fmt.Printf("%-32s crash fired=%d  checking=%4v savings=%4v  (want 600/400)\n",
		pt, fired, from[0], to[0])
	if from[0].(int) != 1000-100*transfers || to[0].(int) != 100*transfers {
		return fmt.Errorf("money not conserved: %v / %v", from[0], to[0])
	}
	if fired != 1 {
		return fmt.Errorf("injection fired %d times, want 1", fired)
	}
	pDrv.Close()
	pBank.Close()
	if p, ok := mApp.Process("transfer"); ok {
		p.Close()
	}
	return nil
}
