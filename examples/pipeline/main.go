// Pipeline: a three-stage order-processing workflow as *stateful*
// components — the programming model the paper's introduction argues
// for, against the stateless "string of beads" model of TP monitors
// and message queues.
//
// Intake (validates and numbers orders) → Pricing (prices them,
// consulting a functional rate card) → Ledger (appends to the books).
// Each stage keeps its running state in ordinary fields; nothing is
// read from or written to a queue. Every stage process is crashed at
// least once mid-stream; the recovery service restarts them, the
// condition-4 retries redrive in-flight calls with stable IDs, and the
// final ledger shows every order exactly once.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	phoenix "repro"
)

// Order is the unit of work.
type Order struct {
	ID     int
	Item   string
	Qty    int
	Total  float64
	Status string
}

func init() { phoenix.RegisterType(Order{}); phoenix.RegisterType([]Order(nil)) }

// Intake validates and numbers incoming orders (stage 1, persistent).
type Intake struct {
	Next    *phoenix.Ref
	Counter int
}

// Submit assigns an order ID and forwards downstream.
func (in *Intake) Submit(item string, qty int) (int, error) {
	if qty <= 0 {
		return 0, fmt.Errorf("intake: bad quantity %d", qty)
	}
	in.Counter++
	o := Order{ID: in.Counter, Item: item, Qty: qty, Status: "accepted"}
	if _, err := in.Next.Call("Price", o); err != nil {
		return 0, err
	}
	return o.ID, nil
}

// RateCard is a functional component: a pure item→price lookup.
type RateCard struct {
	Prices map[string]float64
}

// PriceOf quotes one item.
func (r *RateCard) PriceOf(item string) (float64, error) {
	p, ok := r.Prices[item]
	if !ok {
		return 0, fmt.Errorf("ratecard: unknown item %q", item)
	}
	return p, nil
}

// Pricing prices orders (stage 2, persistent, calls the functional
// rate card — no force needed for those calls).
type Pricing struct {
	Rates  *phoenix.Ref
	Ledger *phoenix.Ref
	Priced int
}

// Price computes the total and forwards to the ledger.
func (p *Pricing) Price(o Order) (float64, error) {
	res, err := p.Rates.Call("PriceOf", o.Item)
	if err != nil {
		return 0, err
	}
	o.Total = res[0].(float64) * float64(o.Qty)
	o.Status = "priced"
	p.Priced++
	if _, err := p.Ledger.Call("Record", o); err != nil {
		return 0, err
	}
	return o.Total, nil
}

// Ledger is the terminal stage (persistent): the books.
type Ledger struct {
	Orders  []Order
	Revenue float64
}

// Record appends one priced order.
func (l *Ledger) Record(o Order) (int, error) {
	l.Orders = append(l.Orders, o)
	l.Revenue += o.Total
	return len(l.Orders), nil
}

// Report summarizes the books (read-only method).
func (l *Ledger) Report() ([]Order, error) {
	out := make([]Order, len(l.Orders))
	copy(out, l.Orders)
	return out, nil
}

func main() {
	dir, err := os.MkdirTemp("", "phoenix-pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	cfg := phoenix.Config{
		LogMode:          phoenix.LogOptimized,
		SpecializedTypes: true,
		RetryInterval:    2 * time.Millisecond,
		RetryLimit:       3000,
		SaveStateEvery:   25,
	}

	// One machine per stage, like a real deployment.
	stages := map[string]*phoenix.Machine{}
	for _, name := range []string{"intake", "pricing", "ledger"} {
		m, err := u.AddMachine(name)
		if err != nil {
			log.Fatal(err)
		}
		m.EnableAutoRestart(cfg, 2*time.Millisecond)
		stages[name] = m
	}
	pLedger, err := stages["ledger"].StartProcess("ledgerd", cfg)
	if err != nil {
		log.Fatal(err)
	}
	pPricing, err := stages["pricing"].StartProcess("pricingd", cfg)
	if err != nil {
		log.Fatal(err)
	}
	pIntake, err := stages["intake"].StartProcess("intaked", cfg)
	if err != nil {
		log.Fatal(err)
	}

	hLedger, err := pLedger.Create("Ledger", &Ledger{}, phoenix.WithReadOnlyMethods("Report"))
	if err != nil {
		log.Fatal(err)
	}
	hRates, err := pPricing.Create("RateCard", &RateCard{Prices: map[string]float64{
		"disk": 129.0, "ram": 59.5, "cpu": 310.0,
	}}, phoenix.WithType(phoenix.Functional))
	if err != nil {
		log.Fatal(err)
	}
	hPricing, err := pPricing.Create("Pricing", &Pricing{
		Rates:  phoenix.NewRef(hRates.URI()),
		Ledger: phoenix.NewRef(hLedger.URI()),
	})
	if err != nil {
		log.Fatal(err)
	}
	hIntake, err := pIntake.Create("Intake", &Intake{Next: phoenix.NewRef(hPricing.URI())})
	if err != nil {
		log.Fatal(err)
	}

	// Drive orders while crashing each stage once mid-stream.
	submit := u.ExternalRef(hIntake.URI())
	items := []struct {
		item string
		qty  int
	}{{"disk", 2}, {"ram", 4}, {"cpu", 1}, {"disk", 1}, {"ram", 8}, {"cpu", 2}}

	crashAt := map[int]*phoenix.Process{1: pLedger, 3: pPricing} // stage crashes mid-stream
	for i, it := range items {
		if p, ok := crashAt[i]; ok {
			fmt.Printf("-- crashing %s before order %d (recovery service restarts it)\n", p.Name(), i+1)
			p.Crash()
		}
		res, err := submit.Call("Submit", it.item, it.qty)
		if err != nil {
			log.Fatalf("submit %d: %v", i, err)
		}
		fmt.Printf("order #%v: %d x %s accepted\n", res[0], it.qty, it.item)
	}

	// Read the final books through the recovered ledger.
	pL, _ := stages["ledger"].Process("ledgerd")
	hL, _ := pL.Lookup("Ledger")
	report := u.ExternalRef(hL.URI())
	res, err := report.Call("Report")
	if err != nil {
		log.Fatal(err)
	}
	orders := res[0].([]Order)
	fmt.Printf("\nledger after crashes (%d orders):\n", len(orders))
	var revenue float64
	for _, o := range orders {
		fmt.Printf("  #%d %-5s x%d  $%8.2f  %s\n", o.ID, o.Item, o.Qty, o.Total, o.Status)
		revenue += o.Total
	}
	fmt.Printf("revenue: $%.2f\n", revenue)
	if len(orders) != len(items) {
		log.Fatalf("exactly-once violated: %d orders, want %d", len(orders), len(items))
	}
	fmt.Println("every order recorded exactly once — no queues, no recovery code in any stage")
}
