// Bookstore: the paper's Section 5.5 application end to end.
//
// Deploys the Figure 10 component graph (two BookStores, a read-only
// PriceGrabber, a functional TaxCalculator, a BookSeller with
// subordinate BasketManagers) at the specialized optimization level,
// runs a buyer session, crashes the seller mid-shopping, and shows the
// basket surviving recovery. It then re-runs the same session at all
// three optimization levels and prints the Table 8 force counts.
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"
	"os"

	phoenix "repro"
	"repro/internal/bookstore"
)

func main() {
	dir, err := os.MkdirTemp("", "phoenix-bookstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	d, err := bookstore.Deploy(u, "server", bookstore.LevelSpecialized, []string{"alice"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", d.GrabberURI, d.SellerURI, d.TaxURI)

	// A shopping session.
	grabber := u.ExternalRef(d.GrabberURI)
	seller := u.ExternalRef(d.SellerURI)

	res, err := grabber.Call("Grab", "recovery")
	if err != nil {
		log.Fatal(err)
	}
	offers := res[0].([]bookstore.Offer)
	fmt.Printf("\nsearch \"recovery\" -> %d offers:\n", len(offers))
	for _, o := range offers {
		fmt.Printf("  %-55s $%6.2f  (%s)\n", o.Book.Title, o.Book.Price, o.Store)
	}

	for _, o := range offers[:2] {
		if _, err := seller.Call("AddToBasket", "alice",
			bookstore.BasketItem{Title: o.Book.Title, Store: o.Store, Price: o.Book.Price}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nadded two books to alice's basket")

	// Crash the seller process mid-session.
	m, _ := u.Machine("server")
	p, _ := m.Process("seller")
	fmt.Println("crashing the BookSeller process ...")
	p.Crash()
	if _, err := m.StartProcess("seller", bookstore.LevelSpecialized.Config()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("seller recovered; checking the basket:")

	res, err = seller.Call("ShowBasket", "alice")
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range res[0].([]bookstore.BasketItem) {
		fmt.Printf("  basket: %-55s $%6.2f\n", it.Title, it.Price)
	}
	res, err = seller.Call("Total", "alice", "WA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total with WA tax: $%.2f\n", res[0])
	if _, err := seller.Call("ClearBasket", "alice"); err != nil {
		log.Fatal(err)
	}
	d.Close()

	// Table 8: the same session at the three optimization levels.
	fmt.Println("\nforces per steady-state session (paper Table 8 shape):")
	for _, level := range []bookstore.Level{
		bookstore.LevelBaseline,
		bookstore.LevelOptimizedLogging,
		bookstore.LevelSpecialized,
	} {
		sub, err := os.MkdirTemp(dir, "lvl-*")
		if err != nil {
			log.Fatal(err)
		}
		u2, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: sub})
		if err != nil {
			log.Fatal(err)
		}
		d2, err := bookstore.Deploy(u2, "server", level, []string{"alice"})
		if err != nil {
			log.Fatal(err)
		}
		buyer := bookstore.NewBuyer(u2, d2, "alice", "WA")
		if _, err := buyer.RunSession(); err != nil { // warm up
			log.Fatal(err)
		}
		d2.ResetStats()
		if _, err := buyer.RunSession(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-48s %3d forces\n", level, d2.Forces())
		d2.Close()
	}
}
