// Package phoenix is the public API of the Phoenix/App reproduction: a
// runtime for persistent stateful components whose interactions are
// transparently intercepted and logged, and whose state is rebuilt
// after a crash by redo recovery — exactly-once execution without any
// application-visible recovery code.
//
// It implements the system of Barga, Chen and Lomet, "Improving Logging
// and Recovery Performance in Phoenix/App" (ICDE 2004): the baseline
// force-everything logging of the earlier prototype, the optimized
// logging disciplines (Algorithms 2-5), specialized component types
// (subordinate, functional, read-only) and read-only methods, the
// multi-call optimization, and checkpointing (context state records and
// process checkpoints) with two-pass recovery.
//
// # Quickstart
//
//	u, _ := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
//	m, _ := u.AddMachine("evo1")
//	p, _ := m.StartProcess("appd", phoenix.Config{
//		LogMode:          phoenix.LogOptimized,
//		SpecializedTypes: true,
//	})
//	h, _ := p.Create("Counter", &Counter{})     // a persistent component
//	ref := u.ExternalRef(h.URI())
//	ref.Call("Add", 1)                          // logged, recoverable
//	p.Crash()                                   // lose everything volatile
//	p, _ = m.StartProcess("appd", cfg)          // replays the log
//	ref.Call("Get")                             // state is intact
//
// Components are plain Go structs: exported fields are the recoverable
// state (fields tagged `phoenix:"-"` and unexported fields are
// transient), exported methods with gob-encodable parameters are
// callable. Components must be piece-wise deterministic: contexts are
// single-threaded, and all interaction with other components must go
// through Refs so the runtime can intercept it. Register argument and
// result struct types with RegisterType.
package phoenix

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// Core runtime types.
type (
	// Universe is the world: machines, network, clock, storage root.
	Universe = core.Universe
	// UniverseConfig configures a Universe.
	UniverseConfig = core.UniverseConfig
	// Machine hosts processes and runs a per-machine recovery service.
	Machine = core.Machine
	// Process is a virtual process hosting component contexts, with
	// its own recovery log. Crash it with Crash; StartProcess on the
	// same machine and name recovers it.
	Process = core.Process
	// Config holds the per-process runtime switches: logging mode,
	// specialized types, multi-call optimization, checkpoint policies,
	// group-commit batching (Config.GroupCommit), log sharding
	// (Config.WAL), and recovery parallelism (Config.Recovery).
	Config = core.Config
	// GroupCommit is the nested Config.GroupCommit section: Enabled
	// routes the process log's forces through a dedicated flusher
	// goroutine that satisfies each batch of concurrent committers
	// with one device sync; MaxWait is the commit window (0 = 200µs)
	// and MaxBatch the batch cap (0 = 64). The zero value disables
	// batching — forces sync inline and combine only opportunistically.
	GroupCommit = core.GroupCommit
	// WALConfig is the nested Config.WAL section: Shards > 1 partitions
	// the process log into that many shard streams keyed by the
	// appending context, each with its own files, append mutex,
	// group-commit flusher and synced watermark; WALConfig.GroupCommit
	// configures the per-shard flushers (falling back to the top-level
	// Config.GroupCommit). The zero value keeps the single-stream log,
	// bit-for-bit today's on-disk format.
	WALConfig = core.WALConfig
	// ShardLogStat pairs one log shard's stream ID with its activity
	// counters (Process.ShardLogStats); a single-stream log reports
	// one entry.
	ShardLogStat = core.ShardLogStat
	// RecoveryConfig is the nested Config.Recovery section — the
	// restart surface. Mode schedules Pass-2 replay: RecoveryEager
	// (the zero value) replays every context's backlog before the
	// process serves a single call; RecoveryLazy admits traffic as
	// soon as Pass 1 has rebuilt the context tables, replaying each
	// context's backlog when a call first touches it (only that call
	// waits; concurrent arrivals share one replay) while a background
	// drain works through the cold contexts hottest-first.
	// Parallelism > 0 bounds concurrent replay work (eager worker
	// slots; lazy per-context replay slots) and QueueDepth bounds the
	// eager demux queues (0 = 64). The zero value keeps the strictly
	// serial eager two-pass replay, bit for bit.
	RecoveryConfig = core.Recovery
	// Recovery is the original name of RecoveryConfig, kept as an
	// equal alias so existing callers compile unchanged.
	Recovery = core.Recovery
	// AdaptiveConfig is the nested Config.Adaptive section: Enabled
	// turns on the runtime discipline controller, which observes each
	// (component, method)'s interaction pattern per epoch (Window on
	// the universe clock, 0 = 100ms) and — after PromoteAfter
	// consecutive qualifying epochs (0 = 3) — promotes the method's
	// effective discipline past the static configuration: Algorithm 1 →
	// Algorithm 2 for persistent↔persistent traffic, detected read-only
	// behavior → Algorithm 5 (with a runtime guard that demotes on the
	// first observed mutation), distinct-server fan-out → per-method
	// multi-call elision. DemoteAfter disqualifying epochs (0 = 2) undo
	// a promotion. Every transition is durable as a forced
	// discipline-change log record before it takes effect, so recovery
	// replays each call under the discipline it was logged with. The
	// zero value is off — static behavior, bit for bit.
	AdaptiveConfig = core.AdaptiveConfig
	// Discipline is the adaptive controller's per-method effective
	// discipline (baseline / algo2 / readonly), as reported by
	// Process.AdaptiveAssignments.
	Discipline = core.Discipline
	// AdaptiveAssignment is one method's current adaptive state
	// (Process.AdaptiveAssignments).
	AdaptiveAssignment = core.AdaptiveAssignment
	// RecoveryMode selects when Pass-2 replay runs relative to the
	// process admitting traffic (RecoveryConfig.Mode).
	RecoveryMode = core.RecoveryMode
	// RecoveryStats summarizes a crash-recovery run: per-pass durations
	// (measured on the universe clock), contexts restored, records
	// scanned, calls replayed, sends suppressed, and worker slots used.
	// Lazy runs also report TimeToFirstCallNanos (recovery start to
	// the first call admitted — perceived downtime), on-demand vs
	// background replay counts, and per-context replay latency.
	// Retrieve it with Process.LastRecovery or from the
	// EventRecoveryDone event's Recovery field; after a lazy restart,
	// Process.DrainRecovery blocks until the background drain is done
	// and Process.RecoverContext replays one context on demand.
	RecoveryStats = core.RecoveryStats
	// Handle is the creator's handle on a hosted component.
	Handle = core.Handle
	// Ref is a proxy for calling a component in another context.
	Ref = core.Ref
	// Ctx is the context API available to ContextAware components.
	Ctx = core.Ctx
	// Local is a direct, unlogged handle on a subordinate component.
	Local = core.Local
	// ContextAware components receive their Ctx at creation/recovery.
	ContextAware = core.ContextAware
	// CreateOption configures Process.Create.
	CreateOption = core.CreateOption
	// LogMode selects the logging discipline.
	LogMode = core.LogMode
	// Injector drives failure injection for recovery testing.
	Injector = core.Injector
	// InjectionPoint names an interception step for failure injection.
	InjectionPoint = core.InjectionPoint
	// ComponentType classifies components (persistent, subordinate,
	// functional, read-only, external).
	ComponentType = msg.ComponentType
	// URI names a component: phoenix://machine/process/component.
	URI = ids.URI
	// AppError is an error returned by the remote method itself.
	AppError = core.AppError
	// Fault is an infrastructure error from the server runtime.
	Fault = core.Fault
	// Event is a runtime lifecycle occurrence (see Config.OnEvent).
	Event = core.Event
	// EventKind classifies lifecycle events.
	EventKind = core.EventKind
)

// Recovery modes (RecoveryConfig.Mode): eager replays everything
// before admission — the zero value and the classic restart — while
// lazy opens the process after Pass 1 and replays per context on first
// touch or in background hotness order.
const (
	RecoveryEager = core.RecoveryEager
	RecoveryLazy  = core.RecoveryLazy
)

// Adaptive disciplines (AdaptiveConfig; Process.AdaptiveAssignments).
const (
	DiscBaseline = core.DiscBaseline
	DiscAlgo2    = core.DiscAlgo2
	DiscReadOnly = core.DiscReadOnly
)

// Lifecycle event kinds (Config.OnEvent).
const (
	EventCrash         = core.EventCrash
	EventRecoveryStart = core.EventRecoveryStart
	EventRecoveryDone  = core.EventRecoveryDone
	EventStateSave     = core.EventStateSave
	EventCheckpoint    = core.EventCheckpoint
	EventTrim          = core.EventTrim
	EventRetry         = core.EventRetry
	EventReplay        = core.EventReplay
)

// Runtime metrics (see internal/obs for the full metric name catalog).
type (
	// MetricsRegistry holds named counters and histograms; pass one in
	// Config.Metrics or UniverseConfig.Metrics to isolate a process's
	// or universe's accounting, or read the shared DefaultMetrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry; Diff two
	// snapshots for per-run deltas.
	MetricsSnapshot = obs.Snapshot
)

// Causal tracing: every external call gets a TraceID that rides the
// wire envelopes and the hot log records; stage spans land in a
// crash-surviving lock-free flight recorder (see internal/obs/trace).
type (
	// TraceRecorder is the per-process (or per-universe) flight
	// recorder. Pass one in UniverseConfig.Trace or Config.Trace; nil
	// disables tracing at zero cost.
	TraceRecorder = trace.Recorder
	// TraceOptions configures NewTraceRecorder: ring size, metrics
	// registry for trace.* histograms, and the clock.
	TraceOptions = trace.Options
	// TraceRef identifies a span within a trace.
	TraceRef = trace.Ref
	// TraceSpan is one recorded stage span (Recorder.Snapshot, dumps).
	TraceSpan = trace.Span
	// TraceStage enumerates the instrumented pipeline legs.
	TraceStage = trace.Stage
	// Timeline is one trace's merged record/span history.
	Timeline = core.Timeline
	// TimelineEvent is one entry of a Timeline.
	TimelineEvent = core.TimelineEvent
)

// NewTraceRecorder builds a flight recorder. Wire Options.Now to the
// universe clock so spans are timestamped in model time.
func NewTraceRecorder(o TraceOptions) *TraceRecorder { return trace.NewRecorder(o) }

// TraceTimelines merges recovery-log scans with flight-recorder dumps
// into per-trace timelines (what phoenix-trace renders). The logs must
// not be owned by live processes.
func TraceTimelines(logs, dumps []string) ([]Timeline, error) {
	return core.TraceTimelines(logs, dumps)
}

// DiscoverTraceFiles finds the process logs and flight-recorder dumps
// under a universe (or machine) directory.
func DiscoverTraceFiles(dir string) (logs, dumps []string, err error) {
	return core.DiscoverTraceFiles(dir)
}

// WriteTimelines renders timelines as text.
func WriteTimelines(w io.Writer, tls []Timeline) { core.WriteTimelines(w, tls) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics returns the shared fallback registry that processes
// account to when no explicit registry is configured.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// Logging modes (paper Section 3).
const (
	// LogBaseline forces every message — the first prototype.
	LogBaseline = core.LogBaseline
	// LogOptimized logs receive messages without forcing and forces
	// (without writing) at send messages.
	LogOptimized = core.LogOptimized
)

// Component types (paper Sections 2 and 3.2).
const (
	// External components get no logging and no guarantees.
	External = msg.External
	// Persistent components are logged and recovered transparently.
	Persistent = msg.Persistent
	// Subordinate components live inside their parent's context.
	Subordinate = msg.Subordinate
	// Functional components are stateless and pure.
	Functional = msg.Functional
	// ReadOnly components are stateless readers of persistent state.
	ReadOnly = msg.ReadOnly
)

// Failure injection points (see core documentation for placement).
const (
	PointServerBeforeLogIncoming = core.PointServerBeforeLogIncoming
	PointServerAfterLogIncoming  = core.PointServerAfterLogIncoming
	PointServerAfterExecute      = core.PointServerAfterExecute
	PointServerBeforeSendReply   = core.PointServerBeforeSendReply
	PointClientBeforeForceSend   = core.PointClientBeforeForceSend
	PointClientAfterForceSend    = core.PointClientAfterForceSend
	PointClientBeforeForceReply  = core.PointClientBeforeForceReply
	PointClientAfterReply        = core.PointClientAfterReply
)

// ErrUnavailable reports that a callee stayed unreachable through the
// whole retry window.
var ErrUnavailable = core.ErrUnavailable

// NewUniverse creates a world rooted at cfg.Dir.
func NewUniverse(cfg UniverseConfig) (*Universe, error) { return core.NewUniverse(cfg) }

// NewRef returns an unbound proxy to assign to a component's exported
// *Ref field before Create; the runtime binds it to the component's
// context.
func NewRef(target URI) *Ref { return core.NewRef(target) }

// NewInjector returns an empty failure injector; arm it with CrashAt
// and pass it in Config.Injector.
func NewInjector() *Injector { return core.NewInjector() }

// MakeURI builds a component URI from its location parts.
func MakeURI(machine, process, component string) URI {
	return ids.MakeURI(machine, process, component)
}

// WithType sets a component's type at Create (default Persistent).
func WithType(t ComponentType) CreateOption { return core.WithType(t) }

// WithReadOnlyMethods declares the read-only attribute (Section 3.3)
// on the named methods of the component being created.
func WithReadOnlyMethods(names ...string) CreateOption {
	return core.WithReadOnlyMethods(names...)
}

// WithSubordinate co-locates a subordinate component in the new
// context (Section 3.2.1).
func WithSubordinate(name string, obj any) CreateOption {
	return core.WithSubordinate(name, obj)
}

// RegisterType makes a concrete type transmissible as a method
// argument or result (a thin wrapper over gob.Register).
func RegisterType(v any) { msg.RegisterType(v) }

// BindStub fills the exported func-typed fields of *stub with typed
// wrappers around ref.Call, giving a component reference a statically
// typed client surface without code generation:
//
//	type StoreClient struct {
//		Search func(keyword string) ([]Book, error)
//	}
//	var c StoreClient
//	phoenix.BindStub(&c, ref)
//	books, err := c.Search("recovery")
//
// Field names are the remote method names; every signature must return
// an error last.
func BindStub(stub any, ref *Ref) error {
	return rpc.BindStub(stub, ref.Call)
}

// RegisterComponentType records a component's concrete type for
// recovery in binaries that recover components they never created.
func RegisterComponentType(sample any) { core.RegisterComponentType(sample) }

// Simulation plumbing, re-exported for experiments and tests.
type (
	// Clock abstracts time for the simulated world.
	Clock = disk.Clock
	// SimParams configures the simulated rotational disk.
	SimParams = disk.SimParams
	// SimDisk is a 7200-RPM rotational disk model (paper Table 3).
	SimDisk = disk.SimDisk
	// DiskModel is the timing model of a log device.
	DiskModel = disk.Model
	// Network carries messages between processes.
	Network = transport.Network
)

// NewRealClock returns a wall clock; scale < 1 compresses simulated
// sleeps while still reporting model time.
func NewRealClock(scale float64) Clock { return disk.NewRealClock(scale) }

// NewVirtualClock returns a non-sleeping, deterministic clock.
func NewVirtualClock() *disk.VirtualClock { return disk.NewVirtualClock() }

// DefaultDiskParams returns the paper's Table 3 disk (7200 RPM, write
// cache disabled).
func DefaultDiskParams() SimParams { return disk.DefaultParams() }

// NewSimDisk builds a simulated disk over the given clock.
func NewSimDisk(p SimParams, c Clock) *SimDisk { return disk.NewSimDisk(p, c) }

// NewMemNetwork builds the in-process network with injected round-trip
// latency.
func NewMemNetwork(c Clock, rtt time.Duration) Network {
	return transport.NewMem(c, rtt)
}

// NewTCPNetwork builds the real-socket network.
func NewTCPNetwork() *transport.TCP { return transport.NewTCP() }

// DumpLog renders a process recovery log human-readably (one line per
// record); dir is the value of Process.LogDir. The log must not be
// owned by a live process.
func DumpLog(w io.Writer, dir string) error { return core.DumpLog(w, dir) }
