// Command phoenix-lint runs the repository's discipline analyzers
// (internal/lint): forcesite, wallclock, locksync, exhaustive,
// metricnames, lockorder, poollife, shutdownpath and droppederr. It
// has two modes:
//
// Standalone (the usual one; what `make lint` and CI run):
//
//	go run ./cmd/phoenix-lint ./...
//
// loads the matched packages, runs the full suite — including the
// cross-package metricnames reconciliation — and exits 1 with one
// line per violation if the tree is not clean.
//
// Vet tool:
//
//	go vet -vettool=$(which phoenix-lint) ./...
//
// follows the unitchecker protocol (-V=full fingerprinting, one JSON
// .cfg per package). Unit invocations see one package at a time, so
// this mode runs the per-package analyzers only; metricnames needs
// the standalone whole-tree view.
//
// Deliberate exceptions live in internal/lint/phoenix-lint.allow
// (embedded at build time); -allow substitutes a different file.
// -deadallow additionally fails when an allowlist entry matches no
// current diagnostic. -lockgraph prints the lock-acquisition graph
// lockorder observed as Graphviz DOT (the DESIGN.md §14 figure).
// -json, standalone, emits the diagnostics (and any dead allowlist
// entries) as a JSON object for CI step summaries.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	versionFlag := flag.String("V", "", "print version and exit (go vet tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON and exit (go vet tool protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON on stdout (unitchecker shape in vet-unit mode, a diagnostic array standalone)")
	allowPath := flag.String("allow", "", "allowlist file to use instead of the embedded phoenix-lint.allow")
	lockgraphFlag := flag.Bool("lockgraph", false, "emit the observed lock-acquisition graph as Graphviz DOT and exit")
	deadallowFlag := flag.Bool("deadallow", false, "also fail on allowlist entries that match no current diagnostic")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: phoenix-lint [-allow file] [package pattern ...]\n\nDefaults to ./... . Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		// `go vet` fingerprints its -vettool with -V=full and caches
		// unit results against the reply, so the ID must change
		// whenever the analyzers do: hash the executable itself.
		id, err := selfID()
		if err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 1
		}
		fmt.Printf("phoenix-lint version devel buildID=%s\n", id)
		return 0
	}
	if *flagsFlag {
		// go vet asks which flags the tool understands before deciding
		// what to forward; phoenix-lint takes no per-analyzer flags.
		fmt.Println("[]")
		return 0
	}

	var allow *lint.Allowlist // nil selects the embedded default
	if *allowPath != "" {
		a, err := lint.LoadAllowlist(*allowPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 2
		}
		allow = a
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0], allow, *jsonFlag)
	}
	if *lockgraphFlag {
		graph, err := lint.LockGraphFor(".", allow, args...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 2
		}
		fmt.Print(graph.DOT())
		return 0
	}
	pkgs, err := lint.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
		return 2
	}
	runner := &lint.Runner{Analyzers: lint.Analyzers(allow)}
	diags, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
		return 2
	}
	var dead []string
	if *deadallowFlag {
		if dead, err = lint.UnusedAllowlist(pkgs, allow); err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 2
		}
	}
	if *jsonFlag {
		if err := writeStandaloneJSON(os.Stdout, diags, dead); err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		for _, e := range dead {
			fmt.Printf("phoenix-lint.allow: dead entry %q matches no current diagnostic; delete it\n", e)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "phoenix-lint: %d violation(s); fix them or add a '# why'-commented entry to internal/lint/phoenix-lint.allow\n", len(diags))
		return 1
	}
	if len(dead) > 0 {
		fmt.Fprintf(os.Stderr, "phoenix-lint: %d dead allowlist entr(y/ies); the exceptions they document no longer exist — delete them\n", len(dead))
		return 1
	}
	return 0
}

// writeStandaloneJSON emits the standalone-mode report: an object with
// the diagnostics array (position, analyzer, enclosing function,
// message) and any dead allowlist entries. CI publishes this as the
// lint job's step summary.
func writeStandaloneJSON(w io.Writer, diags []lint.Diagnostic, dead []string) error {
	type jsonDiag struct {
		Pos      string `json:"pos"`
		Analyzer string `json:"analyzer"`
		Fn       string `json:"fn,omitempty"`
		Message  string `json:"message"`
	}
	out := struct {
		Diagnostics []jsonDiag `json:"diagnostics"`
		DeadAllow   []string   `json:"dead_allowlist_entries,omitempty"`
	}{Diagnostics: []jsonDiag{}, DeadAllow: dead}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			Pos: d.Pos.String(), Analyzer: d.Analyzer, Fn: d.Fn, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// selfID returns a content hash of the running binary.
func selfID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16]), nil
}

// vetUnit is one `go vet` package invocation.
func vetUnit(cfgPath string, allow *lint.Allowlist, asJSON bool) int {
	cfg, err := lint.LoadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
		return 1
	}
	// phoenix-lint keeps no analysis facts, but go vet insists the
	// facts file exists before it will cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The disciplines bind production code: standalone mode never
	// parses test files (tests wait on real deadlines), so skip the
	// test-variant units go vet also hands us.
	if cfg.IsTestUnit() {
		if asJSON {
			if err := writeJSON(os.Stdout, cfg.ImportPath, nil); err != nil {
				fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
				return 1
			}
		}
		return 0
	}
	pkg, err := cfg.LoadPackage()
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
		return 1
	}
	runner := &lint.Runner{Analyzers: lint.UnitAnalyzers(allow)}
	diags, err := runner.Run([]*lint.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
		return 1
	}
	if asJSON {
		if err := writeJSON(os.Stdout, cfg.ImportPath, diags); err != nil {
			fmt.Fprintln(os.Stderr, "phoenix-lint:", err)
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeJSON emits diagnostics in the unitchecker JSON shape:
// importpath -> analyzer -> [{posn, message}].
func writeJSON(w io.Writer, importPath string, diags []lint.Diagnostic) error {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer],
			jsonDiag{Posn: d.Pos.String(), Message: d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(map[string]map[string][]jsonDiag{importPath: byAnalyzer})
}
