// Command bookstore runs the paper's online bookstore application
// (Section 5.5), either as a scripted load generator with optional
// crash/recovery chaos on the server processes, or as the paper's
// interactive console BookBuyer ("displays text menus").
//
//	bookstore -sessions 20 -level specialized -chaos
//	bookstore -interactive
//	bookstore -interactive -debug 127.0.0.1:8642   # live metrics endpoint
//
// With -debug, the runtime metrics registry is served as JSON at
// http://<addr>/debug/phoenixvars while the program runs — watch the
// force, interception and recovery counters move as sessions execute
// or chaos crashes processes — and the live flight recorder at
// http://<addr>/debug/phoenixtrace shows the most recent causal spans
// (client intercept through reply, and replay spans after a chaos
// crash). The same server mounts net/http/pprof under /debug/pprof/,
// so a live run can be profiled:
//
//	go tool pprof http://127.0.0.1:8642/debug/pprof/profile
//	go tool pprof http://127.0.0.1:8642/debug/pprof/heap
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	phoenix "repro"
	"repro/internal/bookstore"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func main() {
	var (
		sessions    = flag.Int("sessions", 10, "buyer sessions to run")
		levelStr    = flag.String("level", "specialized", "optimization level: baseline | optimized | specialized")
		chaos       = flag.Bool("chaos", false, "crash a random server process between sessions")
		seed        = flag.Int64("seed", 1, "chaos randomness seed")
		dir         = flag.String("dir", "", "state directory (default: temp)")
		interactive = flag.Bool("interactive", false, "run the console BookBuyer instead of the load generator")
		debugAddr   = flag.String("debug", "", "serve runtime metrics as JSON on this address (e.g. 127.0.0.1:8642)")
	)
	flag.Parse()

	// The flight recorder traces every external call; its spans feed the
	// -debug endpoint live and the crash dumps phoenix-trace reads.
	rec := trace.NewRecorder(trace.Options{
		Name:    "bookstore",
		Metrics: obs.Default(),
		Now:     func() int64 { return time.Now().UnixNano() },
	})

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, obs.Default(),
			obs.Mount{Path: trace.DebugPath, Handler: trace.Handler(rec)})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer srv.Close()
		fmt.Printf("metrics at http://%s%s\n", srv.Addr(), obs.DebugPath)
		fmt.Printf("traces  at http://%s%s\n", srv.Addr(), trace.DebugPath)
	}

	var level bookstore.Level
	switch *levelStr {
	case "baseline":
		level = bookstore.LevelBaseline
	case "optimized":
		level = bookstore.LevelOptimizedLogging
	case "specialized":
		level = bookstore.LevelSpecialized
	default:
		log.Fatalf("unknown level %q", *levelStr)
	}

	root := *dir
	if root == "" {
		d, err := os.MkdirTemp("", "phoenix-bookstore-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		root = d
	}

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: root, Trace: rec})
	if err != nil {
		log.Fatal(err)
	}
	d, err := bookstore.Deploy(u, "server", level, []string{"alice"})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// The recovery service restarts anything chaos kills.
	m, _ := u.Machine("server")
	m.EnableAutoRestart(level.Config(), 2*time.Millisecond)

	if *interactive {
		console(u, m, d)
		return
	}

	buyer := bookstore.NewBuyer(u, d, "alice", "WA")
	rng := rand.New(rand.NewSource(*seed))
	procs := []string{"store1", "store2", "grabber", "seller", "tax"}

	start := time.Now()
	crashes := 0
	for i := 0; i < *sessions; i++ {
		if *chaos && i > 0 {
			victim := procs[rng.Intn(len(procs))]
			if p, ok := m.Process(victim); ok && !p.Crashed() {
				p.Crash()
				crashes++
				fmt.Printf("session %2d: crashed %s (recovery service restarts it)\n", i, victim)
			}
		}
		r, err := buyer.RunSession()
		if err != nil {
			log.Fatalf("session %d: %v", i, err)
		}
		fmt.Printf("session %2d: %d offers, %d in basket, total $%.2f\n",
			i, r.Offers, r.Shown, r.Total)
	}
	fmt.Printf("\n%d sessions (%d chaos crashes) in %v at level %q; server log forces: %d\n",
		*sessions, crashes, time.Since(start).Round(time.Millisecond), level, d.Forces())
}

// console is the paper's BookBuyer: a text-menu client. Crash server
// processes at any time with `crash <name>`; the recovery service
// brings them back and your basket survives.
func console(u *phoenix.Universe, m *phoenix.Machine, d *bookstore.Deployment) {
	grabber := u.ExternalRef(d.GrabberURI)
	seller := u.ExternalRef(d.SellerURI)
	buyer := "you"
	var lastOffers []bookstore.Offer

	fmt.Println(`bookstore console — commands:
  search <keyword>     query all stores via the PriceGrabber
  add <n>              put result #n into your basket
  show                 list your basket
  total [state]        basket total with tax (default WA)
  checkout [state]     buy everything in the basket
  clear                empty the basket
  crash <process>      kill store1|store2|grabber|seller|tax
  quit`)

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return
		case "search":
			if len(args) == 0 {
				fmt.Println("usage: search <keyword>")
				continue
			}
			res, err := grabber.Call("Grab", strings.Join(args, " "))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			lastOffers = res[0].([]bookstore.Offer)
			for i, o := range lastOffers {
				fmt.Printf("  [%d] %-55s $%7.2f  %s\n", i+1, o.Book.Title, o.Book.Price, o.Store)
			}
		case "add":
			if len(args) != 1 {
				fmt.Println("usage: add <n>")
				continue
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 1 || n > len(lastOffers) {
				fmt.Println("no such search result")
				continue
			}
			o := lastOffers[n-1]
			item := bookstore.BasketItem{Title: o.Book.Title, Store: o.Store, Price: o.Book.Price}
			if _, err := seller.Call("AddToBasket", buyer, item); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  added %q\n", o.Book.Title)
		case "show":
			res, err := seller.Call("ShowBasket", buyer)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, it := range res[0].([]bookstore.BasketItem) {
				fmt.Printf("  %-55s $%7.2f\n", it.Title, it.Price)
			}
		case "total", "checkout":
			state := "WA"
			if len(args) > 0 {
				state = args[0]
			}
			method := map[string]string{"total": "Total", "checkout": "Checkout"}[cmd]
			res, err := seller.Call(method, buyer, state)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  $%.2f (%s tax)\n", res[0], state)
		case "clear":
			if _, err := seller.Call("ClearBasket", buyer); err != nil {
				fmt.Println("error:", err)
			}
		case "crash":
			if len(args) != 1 {
				fmt.Println("usage: crash <process>")
				continue
			}
			p, ok := m.Process(args[0])
			if !ok || p.Crashed() {
				fmt.Println("no such live process")
				continue
			}
			p.Crash()
			fmt.Printf("  crashed %s — the recovery service is restarting it\n", args[0])
		default:
			fmt.Println("unknown command:", cmd)
		}
	}
}
