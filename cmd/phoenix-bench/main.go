// Command phoenix-bench regenerates the evaluation of "Improving
// Logging and Recovery Performance in Phoenix/App" (ICDE 2004):
// Tables 4-8, Figure 9 and the Section 5.5.2 multi-call analysis, each
// printed next to the numbers the paper reports.
//
// Usage:
//
//	phoenix-bench                         # run everything at full fidelity
//	phoenix-bench -experiment table4      # one experiment
//	phoenix-bench -scale 0.05 -calls 30   # 20x compressed clock, fewer calls
//	phoenix-bench -list                   # show experiment IDs
//
// The simulated disks sleep on a scalable clock: -scale 1 runs in real
// time (a few minutes for the full suite); smaller scales compress the
// sleeps while reporting identical model-time results.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID to run (default: all)")
		scale      = flag.Float64("scale", 0.2, "clock scale: 1 = real time, 0.05 = 20x compressed")
		calls      = flag.Int("calls", 60, "iterations per measured cell")
		seed       = flag.Int64("seed", 20040330, "random seed for jitter and phase noise")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Calls: *calls, Seed: *seed}.Defaults()

	var exps []*bench.Experiment
	if *experiment != "" {
		e, ok := bench.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "phoenix-bench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		exps = append(exps, e)
	} else {
		exps = bench.All()
	}

	for _, e := range exps {
		fmt.Printf("running %s ...\n", e.ID)
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
	}
}
