// Command phoenix-bench regenerates the evaluation of "Improving
// Logging and Recovery Performance in Phoenix/App" (ICDE 2004):
// Tables 4-8, Figure 9 and the Section 5.5.2 multi-call analysis, each
// printed next to the numbers the paper reports.
//
// Usage:
//
//	phoenix-bench                         # run everything at full fidelity
//	phoenix-bench -experiment table4      # one experiment
//	phoenix-bench -scale 0.05 -calls 30   # 20x compressed clock, fewer calls
//	phoenix-bench -list                   # show experiment IDs
//	phoenix-bench -json                   # machine-readable tables + metrics
//	phoenix-bench -metrics=false          # suppress the per-run metric dump
//	phoenix-bench -cpuprofile cpu.pb.gz   # CPU profile of the whole run
//	phoenix-bench -memprofile mem.pb.gz   # heap profile at exit
//	phoenix-bench -trace                  # flight recorder on: per-stage p50/p99
//
// Each experiment also reports the runtime metrics it generated — the
// obs counter deltas for that run: log appends and forces by site,
// interceptions by algorithm, record counts by kind. The counters are
// the same ones the tests assert the paper's invariants on.
//
// The simulated disks sleep on a scalable clock: -scale 1 runs in real
// time (a few minutes for the full suite); smaller scales compress the
// sleeps while reporting identical model-time results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

// runResult is one experiment's JSON form: the rendered table plus the
// metric deltas the run produced.
type runResult struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
	// AllocsPerOp is the heap allocations the experiment performed per
	// measured call (runtime.MemStats.Mallocs delta over -calls) — the
	// perf-trajectory number the allocation-regression gates watch.
	AllocsPerOp float64      `json:"allocs_per_op"`
	Metrics     obs.Snapshot `json:"metrics"`
}

// mallocs reads the process-wide cumulative allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// writeStageLatencies prints the per-stage trace latency quantiles an
// experiment's run produced (-trace mode; the histograms are in the
// metric delta, so JSON mode already carries them).
func writeStageLatencies(w io.Writer, id string, delta obs.Snapshot) {
	wrote := false
	for _, name := range obs.TraceStageMicros {
		h := delta.HistogramFor(name)
		if h.Count == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "%s — trace stage latencies (model-time µs)\n", id)
			wrote = true
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(name, "trace.stage."), "_micros")
		fmt.Fprintf(w, "  %-20s %7d spans   p50 %6dµs   p99 %6dµs\n",
			stage, h.Count, h.Quantile(0.50), h.Quantile(0.99))
	}
	if wrote {
		fmt.Fprintln(w)
	}
}

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment ID to run (default: all)")
		scale       = flag.Float64("scale", 0.2, "clock scale: 1 = real time, 0.05 = 20x compressed")
		calls       = flag.Int("calls", 60, "iterations per measured cell")
		concurrency = flag.Int("concurrency", 8, "client count for the concurrent experiments (groupcommit)")
		recoveryPar = flag.Int("recovery-parallelism", 8, "largest Config.Recovery.Parallelism the recovery experiment sweeps to")
		walShards   = flag.Int("wal-shards", 1, "Config.WAL.Shards for the concurrent experiments: 1 = single-stream log, N > 1 partitions the log into N shards")
		seed        = flag.Int64("seed", 20040330, "random seed for jitter and phase noise")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		jsonOut     = flag.Bool("json", false, "emit tables and metric snapshots as JSON")
		showMetrics = flag.Bool("metrics", true, "print the metric deltas of each experiment")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOn     = flag.Bool("trace", false, "wire a flight recorder into every universe and print per-stage trace latencies")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "phoenix-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "phoenix-bench: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Calls: *calls, Seed: *seed,
		Concurrency: *concurrency, RecoveryParallelism: *recoveryPar,
		WALShards: *walShards, Trace: *traceOn}.Defaults()

	var exps []*bench.Experiment
	if *experiment != "" {
		e, ok := bench.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "phoenix-bench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		exps = append(exps, e)
	} else {
		exps = bench.All()
	}

	var results []runResult
	for _, e := range exps {
		if !*jsonOut {
			fmt.Printf("running %s ...\n", e.ID)
		}
		// Experiments build their universes without an explicit
		// registry, so their runtime metrics land in the default one;
		// the snapshot diff isolates this experiment's share.
		before := obs.Default().Snapshot()
		mallocsBefore := mallocs()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		allocsPerOp := float64(mallocs()-mallocsBefore) / float64(opts.Calls)
		delta := obs.Default().Snapshot().Diff(before)
		if *jsonOut {
			results = append(results, runResult{
				ID: tab.ID, Title: tab.Title, Cols: tab.Cols,
				Rows: tab.Rows, Notes: tab.Notes,
				AllocsPerOp: allocsPerOp, Metrics: delta,
			})
			continue
		}
		tab.Render(os.Stdout)
		if *showMetrics && !delta.Empty() {
			fmt.Printf("%s — runtime metrics for this run\n", tab.ID)
			delta.WriteText(os.Stdout, "  ")
			fmt.Printf("  allocs/op (process-wide, over %d calls): %.0f\n\n", opts.Calls, allocsPerOp)
		}
		if *traceOn {
			writeStageLatencies(os.Stdout, tab.ID, delta)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Experiments []runResult `json:"experiments"`
		}{results}); err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-bench: encode: %v\n", err)
			os.Exit(1)
		}
	}
}
