// Command phoenix-recover demonstrates the recovery service: a
// persistent component is driven continuously while its process is
// repeatedly crashed at random points via failure injection; the
// per-machine recovery service restarts and recovers it each time, and
// the final state shows exactly-once execution despite every crash.
//
//	phoenix-recover -crashes 5 -calls 200
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	phoenix "repro"
)

// Tally is the component under fire.
type Tally struct {
	Sum   int
	Calls int
}

// Bump adds to the tally.
func (t *Tally) Bump(d int) (int, error) {
	t.Sum += d
	t.Calls++
	return t.Sum, nil
}

// Driver is the persistent client whose stable call IDs make its
// retries duplicate-free.
type Driver struct {
	Target *phoenix.Ref
}

// Send forwards one bump.
func (d *Driver) Send(v int) (int, error) {
	res, err := d.Target.Call("Bump", v)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

var serverPoints = []phoenix.InjectionPoint{
	phoenix.PointServerBeforeLogIncoming,
	phoenix.PointServerAfterLogIncoming,
	phoenix.PointServerAfterExecute,
	phoenix.PointServerBeforeSendReply,
}

func main() {
	var (
		crashes = flag.Int("crashes", 5, "number of injected crashes")
		calls   = flag.Int("calls", 200, "total driver calls")
		seed    = flag.Int64("seed", 7, "randomness seed")
	)
	flag.Parse()

	dir, err := os.MkdirTemp("", "phoenix-recover-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	base := phoenix.Config{
		LogMode:          phoenix.LogOptimized,
		SpecializedTypes: true,
		RetryInterval:    2 * time.Millisecond,
		RetryLimit:       5000,
		SaveStateEvery:   50,
		CheckpointEvery:  100,
	}
	inj := phoenix.NewInjector()
	srvCfg := base
	srvCfg.Injector = inj

	mSrv, err := u.AddMachine("server")
	if err != nil {
		log.Fatal(err)
	}
	mCli, err := u.AddMachine("client")
	if err != nil {
		log.Fatal(err)
	}
	pSrv, err := mSrv.StartProcess("tallyd", srvCfg)
	if err != nil {
		log.Fatal(err)
	}
	mSrv.EnableAutoRestart(srvCfg, 2*time.Millisecond)
	pCli, err := mCli.StartProcess("driverd", base)
	if err != nil {
		log.Fatal(err)
	}
	defer pCli.Close()

	hT, err := pSrv.Create("Tally", &Tally{})
	if err != nil {
		log.Fatal(err)
	}
	hD, err := pCli.Create("Driver", &Driver{Target: phoenix.NewRef(hT.URI())})
	if err != nil {
		log.Fatal(err)
	}

	// Arm the injector at random points spread through the workload.
	for i := 0; i < *crashes; i++ {
		pt := serverPoints[rng.Intn(len(serverPoints))]
		nth := 1 + rng.Intn(*calls / *crashes)
		inj.CrashAt(pt, nth)
		fmt.Printf("armed crash #%d at %s (pass %d)\n", i+1, pt, nth)

		ref := u.ExternalRef(hD.URI())
		for c := 0; c < *calls / *crashes; c++ {
			if _, err := ref.Call("Send", 1); err != nil {
				log.Fatalf("call failed: %v", err)
			}
		}
		fmt.Printf("  ... workload slice done; crash fired %d time(s)\n", inj.Fired(pt))
	}

	// Verify exactly-once on the final recovered instance.
	p, ok := mSrv.Process("tallyd")
	if !ok {
		log.Fatal("tally process missing")
	}
	h, ok := p.Lookup("Tally")
	if !ok {
		log.Fatal("tally component missing")
	}
	tally := h.Object().(*Tally)
	want := (*calls / *crashes) * (*crashes)
	fmt.Printf("\nfinal tally: sum=%d calls=%d (want %d) — exactly-once across %d crash/recover cycles\n",
		tally.Sum, tally.Calls, want, *crashes)
	if tally.Sum != want {
		log.Fatalf("exactly-once violated: %d != %d", tally.Sum, want)
	}
	if pp, ok := mSrv.Process("tallyd"); ok {
		pp.Close()
	}
}
