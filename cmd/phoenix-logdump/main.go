// Command phoenix-logdump prints a process recovery log human-readably:
// one line per record, with call identities, context IDs, checkpoint
// structure and state-record summaries — the tool for answering "what
// would recovery replay?".
//
//	phoenix-logdump /path/to/state/machine/process.log
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: phoenix-logdump <log-directory>")
		os.Exit(2)
	}
	if err := core.DumpLog(os.Stdout, os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "phoenix-logdump: %v\n", err)
		os.Exit(1)
	}
}
