// Command phoenix-trace reconstructs causal timelines from what a
// Phoenix/App deployment leaves on disk: flight-recorder dumps
// (<process>.ftr.N, written next to the log when a process crashes)
// and the trace-carrying records in the recovery logs themselves. It
// merges both sources per TraceID, so a trace that crossed a crash
// shows its original execution and its recovery replay as one
// timeline, stitched by LSN.
//
//	phoenix-trace /path/to/state            # universe or machine dir
//	phoenix-trace srv.log srv.ftr.0         # explicit logs and dumps
//	phoenix-trace -json /path/to/state      # machine-readable timelines
//
// Directory arguments are searched for process logs and dumps at the
// machine and universe level; file arguments name a specific log
// directory (*.log) or dump file (*.ftr.*).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit timelines as JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: phoenix-trace [-json] <state-dir | process.log | process.ftr.N>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var logs, dumps []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-trace: %v\n", err)
			os.Exit(1)
		}
		switch {
		case strings.HasSuffix(arg, ".log"):
			logs = append(logs, arg)
		case strings.Contains(arg, ".ftr."):
			dumps = append(dumps, arg)
		case info.IsDir():
			l, d, err := core.DiscoverTraceFiles(arg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "phoenix-trace: %v\n", err)
				os.Exit(1)
			}
			logs = append(logs, l...)
			dumps = append(dumps, d...)
		default:
			fmt.Fprintf(os.Stderr, "phoenix-trace: %s: not a state dir, *.log or *.ftr.* file\n", arg)
			os.Exit(2)
		}
	}

	tls, err := core.TraceTimelines(logs, dumps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phoenix-trace: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tls); err != nil {
			fmt.Fprintf(os.Stderr, "phoenix-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(tls) == 0 {
		fmt.Fprintf(os.Stderr, "phoenix-trace: no traced spans or records in %d logs, %d dumps\n",
			len(logs), len(dumps))
		os.Exit(1)
	}
	core.WriteTimelines(os.Stdout, tls)
}
