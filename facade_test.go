package phoenix_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	phoenix "repro"
)

// Vault is a subordinate for the facade coverage test.
type Vault struct {
	N int
}

// Keep stores a value.
func (v *Vault) Keep(n int) (int, error) { v.N += n; return v.N, nil }

// Host is a parent with a static subordinate and a ref field.
type Host struct {
	Peer *phoenix.Ref
	Sum  int

	ctx *phoenix.Ctx
}

// AttachContext receives the context handle.
func (h *Host) AttachContext(cx *phoenix.Ctx) { h.ctx = cx }

// Stash forwards into the subordinate.
func (h *Host) Stash(n int) (int, error) {
	sub, ok := h.ctx.Subordinate("vault")
	if !ok {
		return 0, nil
	}
	res, err := sub.Call("Keep", n)
	if err != nil {
		return 0, err
	}
	h.Sum = res[0].(int)
	return h.Sum, nil
}

// Relay calls the peer through the bound ref field.
func (h *Host) Relay(n int) (int, error) {
	res, err := h.Peer.Call("Keep", n)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// TestFacadeSurface exercises the remaining public API: the simulation
// plumbing, WithType/WithSubordinate/NewRef, the event surface,
// RegisterComponentType, and DumpLog.
func TestFacadeSurface(t *testing.T) {
	phoenix.RegisterComponentType(&Vault{})

	// Simulation plumbing: virtual clock, sim disk, Mem network.
	clk := phoenix.NewVirtualClock()
	params := phoenix.DefaultDiskParams()
	if params.RPM != 7200 {
		t.Errorf("default RPM = %v", params.RPM)
	}
	d := phoenix.NewSimDisk(params, clk)
	t0 := clk.Now()
	d.Write(1024)
	if clk.Now().Sub(t0) < 4*time.Millisecond {
		t.Error("sim disk did not charge rotational latency")
	}
	real := phoenix.NewRealClock(0.5)
	real.Sleep(time.Microsecond)

	net := phoenix.NewMemNetwork(clk, 100*time.Microsecond)

	var events []phoenix.Event
	cfg := phoenix.Config{
		LogMode:          phoenix.LogOptimized,
		SpecializedTypes: true,
		SaveStateEvery:   2,
		OnEvent:          func(e phoenix.Event) { events = append(events, e) },
	}
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{
		Dir:   t.TempDir(),
		Clock: clk,
		Net:   net,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "srv" || p.ProcID() == 0 || p.Machine() != m {
		t.Error("process accessors broken")
	}
	if p.Config().SaveStateEvery != 2 {
		t.Error("Config accessor broken")
	}
	if u.Clock() != phoenix.Clock(clk) {
		t.Error("Clock accessor broken")
	}
	if m.Service() == nil {
		t.Error("Service accessor broken")
	}

	hPeer, err := p.Create("Peer", &Vault{}, phoenix.WithType(phoenix.Persistent))
	if err != nil {
		t.Fatal(err)
	}
	host := &Host{Peer: phoenix.NewRef(hPeer.URI())}
	hHost, err := p.Create("Host", host, phoenix.WithSubordinate("vault", &Vault{}))
	if err != nil {
		t.Fatal(err)
	}
	if hHost.Ctx().URI() != hHost.URI() {
		t.Error("Ctx().URI() mismatch")
	}

	ref := u.ExternalRef(hHost.URI())
	if _, err := ref.Call("Stash", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Call("Relay", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Call("Stash", 1); err != nil {
		t.Fatal(err)
	}
	var sawSave bool
	for _, e := range events {
		if e.Kind == phoenix.EventStateSave {
			sawSave = true
		}
	}
	if !sawSave {
		t.Error("no state-save event surfaced through the facade")
	}

	logDir := p.LogDir()
	p.Close()
	var buf bytes.Buffer
	if err := phoenix.DumpLog(&buf, logDir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Host") {
		t.Errorf("DumpLog output missing component name:\n%s", buf.String())
	}
}
