package bench

import (
	"fmt"
	"time"

	phoenix "repro"
)

// Table 7 — Recovery Performance: time to recover a crashed process as
// a function of the number of method calls replayed, starting either
// from the creation record or from a context state record. Replay is
// CPU-bound (the paper measures ~0.15 ms per replayed call and ~60 ms
// extra to restore a state record); the experiment therefore runs on
// the host file system without disk simulation and reports wall time.
func init() {
	register(&Experiment{
		ID:    "table7",
		Title: "Recovery performance vs calls replayed (ms, wall time)",
		Run:   runTable7,
	})
}

func runTable7(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Table 7",
		Title: "Recovery Performance (ms)",
		Cols:  []string{"Calls replayed", "From creation", "From state record"},
		Notes: []string{
			"paper (ms): creation 575/728/868/1007/1100/1199, state 638/794/875/1162/1252/1507 for 0..5000 calls; ~0.5 s of that is .NET runtime start, ~0.15 ms per replayed call",
			"the paper's crossover rule holds: once replay cost exceeds the state-restore overhead, checkpointed recovery wins (Section 5.4 estimates every ~400 calls)",
		},
	}

	measure := func(n int, fromState bool) (time.Duration, error) {
		ec := localEnv()
		ec.hostDisk = true
		e, err := newEnv(o, ec)
		if err != nil {
			return 0, err
		}
		defer e.Close()
		m, err := e.u.AddMachine("evo1")
		if err != nil {
			return 0, err
		}
		cfg := benchConfig(phoenix.LogOptimized, true)
		proc := uniqueProc("rec")
		p, err := m.StartProcess(proc, cfg)
		if err != nil {
			return 0, err
		}
		h, err := p.Create("Server", &BenchServer{})
		if err != nil {
			return 0, err
		}
		if fromState {
			if err := h.SaveState(); err != nil {
				return 0, err
			}
		}
		ref := e.u.ExternalRef(h.URI())
		for i := 0; i < n; i++ {
			if _, err := ref.Call("Add", 1); err != nil {
				return 0, err
			}
		}
		p.Crash()

		var p2 *phoenix.Process
		elapsed, err := e.elapsed(func() error {
			var err error
			p2, err = m.StartProcess(proc, cfg)
			return err
		})
		if err != nil {
			return 0, err
		}
		// Sanity: the recovered state must be complete.
		h2, ok := p2.Lookup("Server")
		if !ok {
			return 0, fmt.Errorf("server lost in recovery")
		}
		if got := h2.Object().(*BenchServer).N; got != n {
			return 0, fmt.Errorf("recovered N = %d, want %d", got, n)
		}
		p2.Close()
		return elapsed, nil
	}

	// Empty-log row first (paper: ~492 ms, all of it runtime init).
	{
		ec := localEnv()
		ec.hostDisk = true
		e, err := newEnv(o, ec)
		if err != nil {
			return nil, err
		}
		m, _ := e.u.AddMachine("evo1")
		cfg := benchConfig(phoenix.LogOptimized, true)
		proc := uniqueProc("empty")
		p, err := m.StartProcess(proc, cfg)
		if err != nil {
			e.Close()
			return nil, err
		}
		p.Crash()
		var p2 *phoenix.Process
		restart, err := e.elapsed(func() error {
			var err error
			p2, err = m.StartProcess(proc, cfg)
			return err
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"(empty log)", ms(restart), "-"})
		p2.Close()
		e.Close()
	}

	for _, n := range o.RecoverySizes {
		fromCreation, err := measure(n, false)
		if err != nil {
			return nil, fmt.Errorf("table7 n=%d creation: %w", n, err)
		}
		fromState, err := measure(n, true)
		if err != nil {
			return nil, fmt.Errorf("table7 n=%d state: %w", n, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), ms(fromCreation), ms(fromState),
		})
	}
	return t, nil
}
