package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	phoenix "repro"
	"repro/internal/disk"
	"repro/internal/obs"
)

func init() {
	register(&Experiment{
		ID:    "traceoverhead",
		Title: "Causal tracing: per-call overhead and per-stage latency breakdown",
		Run:   runTraceOverhead,
	})
}

// runTraceOverhead runs the group-commit workload (the perf anchor: N
// concurrent external clients, two semantic forces per call, host
// disk, so the run is CPU- and sync-bound — exactly where tracing
// could hurt) twice, flight recorder off then on, and reports the
// per-call cost of tracing plus the traced run's per-stage p50/p99.
// The bench-smoke gate (TestTraceOverhead) holds the overhead under
// 5%.
func runTraceOverhead(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID: "TraceOverhead",
		Title: fmt.Sprintf("Tracing overhead: group-commit workload, %d clients × %d calls",
			o.Concurrency, o.Calls),
		Cols: []string{"Row", "Calls", "Per call", "Overhead", "Spans"},
		Notes: []string{
			"host disk + group commit: the workload is CPU/sync bound, so tracing cost is not hidden behind rotational sleeps",
			"per-call times are each mode's best of 3 interleaved rounds (fsync wall noise only ever adds time)",
			"stage rows are the traced runs' trace.stage.* histograms (model-time µs; span recording itself is alloc-free)",
		},
	}
	// Wall time over real syncs is noisy (±tens of percent on one
	// run), so each mode runs three interleaved rounds and reports its
	// best — noise over host fsyncs only ever adds time. The CI gate
	// (TestTraceOverhead) measures the same cells more strictly, via
	// paired rusage ratios on a virtual clock.
	const rounds = 3
	var per [2]time.Duration
	var calls int
	before := obs.Default().Snapshot()
	for r := 0; r < rounds; r++ {
		for mode, traced := range []bool{false, true} {
			oo := o
			oo.Trace = traced
			ec := localEnv()
			ec.hostDisk = true
			p, c, err := runTraceOverheadCell(oo, ec, true)
			if err != nil {
				return nil, err
			}
			calls = c
			if per[mode] == 0 || p < per[mode] {
				per[mode] = p
			}
		}
	}
	delta := obs.Default().Snapshot().Diff(before)
	t.Rows = append(t.Rows,
		[]string{"tracing off", fmt.Sprintf("%d", calls), ms(per[0]), "-", "0"},
		[]string{"tracing on", fmt.Sprintf("%d", calls), ms(per[1]),
			fmt.Sprintf("%+.1f%%", 100*float64(per[1]-per[0])/float64(per[0])),
			fmt.Sprintf("%d", delta.Counter(obs.TraceSpans))})
	t.Rows = append(t.Rows, traceStageRows(delta)...)
	return t, nil
}

// traceStageRows renders each populated trace.stage.* histogram of the
// snapshot as a breakdown row: count, p50 and p99 in microseconds.
func traceStageRows(s obs.Snapshot) [][]string {
	var rows [][]string
	for _, name := range obs.TraceStageMicros {
		h := s.HistogramFor(name)
		if h.Count == 0 {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(name, "trace.stage."), "_micros")
		rows = append(rows, []string{
			"  stage " + stage,
			fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("p50 %dµs", h.Quantile(0.50)),
			fmt.Sprintf("p99 %dµs", h.Quantile(0.99)),
			"",
		})
	}
	return rows
}

// runTraceOverheadCell runs the concurrent workload once and returns
// the wall time per call. The experiment passes a host-disk env (real
// syncs) with the batching flusher on; the gate passes a virtual-clock
// env with the direct force path — the flusher's commit-window sleep
// busy-spins under a virtual clock, and its scheduling noise would
// swamp a 5% budget.
func runTraceOverheadCell(o Options, ec envConfig, gcOn bool) (perCall time.Duration, calls int, err error) {
	e, err := newEnv(o, ec)
	if err != nil {
		return 0, 0, err
	}
	defer e.Close()
	m, err := e.u.AddMachine("server")
	if err != nil {
		return 0, 0, err
	}
	cfg := benchConfig(phoenix.LogOptimized, true)
	if gcOn {
		cfg.GroupCommit = phoenix.GroupCommit{Enabled: true}
	}
	ps, err := m.StartProcess("srv", cfg)
	if err != nil {
		return 0, 0, err
	}
	defer ps.Close()
	refs := make([]*phoenix.Ref, o.Concurrency)
	for i := range refs {
		h, err := ps.Create(fmt.Sprintf("Comp%d", i), &BenchServer{})
		if err != nil {
			return 0, 0, err
		}
		refs[i] = e.u.ExternalRef(h.URI())
	}
	for _, ref := range refs {
		if _, err := ref.Call("Add", 0); err != nil {
			return 0, 0, err
		}
	}

	calls = o.Concurrency * o.Calls
	errs := make(chan error, o.Concurrency)
	// Measure on a private clock nobody sleeps on: e.clock's overshoot
	// correction assumes one timeline, and this cell's concurrent
	// sleepers (commit windows, retries) would drag its reading around.
	meas := disk.NewRealClock(1)
	start := meas.Now()
	var wg sync.WaitGroup
	for _, ref := range refs {
		wg.Add(1)
		go func(r *phoenix.Ref) {
			defer wg.Done()
			for i := 0; i < o.Calls; i++ {
				if _, err := r.Call("Add", 1); err != nil {
					errs <- err
					return
				}
			}
		}(ref)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, 0, err
	}
	return meas.Now().Sub(start) / time.Duration(calls), calls, nil
}
