package bench

import (
	"fmt"
	"time"

	phoenix "repro"
	"repro/internal/msg"
	"repro/internal/rpc"
)

// Micro-benchmark components (the paper's client/server pair with the
// measurement loop inside the client object, Section 5.1).

// BenchServer is the persistent server.
type BenchServer struct {
	N int
}

// Add mutates server state.
func (s *BenchServer) Add(d int) (int, error) { s.N += d; return s.N, nil }

// Get is a candidate read-only method.
func (s *BenchServer) Get() (int, error) { return s.N, nil }

// BenchBatcher is the client component: one incoming call drives n
// outgoing calls.
type BenchBatcher struct {
	Server *phoenix.Ref
	Sum    int
}

// RunBatch calls method(arg) n times on the server.
func (b *BenchBatcher) RunBatch(method string, n, arg int) (int, error) {
	for i := 0; i < n; i++ {
		res, err := b.Server.Call(method, arg)
		if err != nil {
			return 0, err
		}
		if len(res) == 1 {
			if v, ok := res[0].(int); ok {
				b.Sum += v
			}
		}
	}
	return b.Sum, nil
}

// RunBatchNoArg calls a zero-argument method n times.
func (b *BenchBatcher) RunBatchNoArg(method string, n int) (int, error) {
	for i := 0; i < n; i++ {
		res, err := b.Server.Call(method)
		if err != nil {
			return 0, err
		}
		if len(res) == 1 {
			if v, ok := res[0].(int); ok {
				b.Sum += v
			}
		}
	}
	return b.Sum, nil
}

// BenchPure is the functional server.
type BenchPure struct{}

// Double is pure.
func (BenchPure) Double(x int) (int, error) { return 2 * x, nil }

// BenchEcho is a self-contained read-only component (a stateless
// reader; the statistics-collector example of Section 3.2.3).
type BenchEcho struct{}

// Echo returns its input.
func (BenchEcho) Echo(x int) (int, error) { return x, nil }

// BenchSubHost hosts a subordinate and fans calls into it.
type BenchSubHost struct {
	Total int

	ctx *phoenix.Ctx
}

// AttachContext receives the context handle.
func (h *BenchSubHost) AttachContext(cx *phoenix.Ctx) { h.ctx = cx }

// BatchSub calls the subordinate n times (unintercepted, unlogged).
func (h *BenchSubHost) BatchSub(n int) (int, error) {
	sub, ok := h.ctx.Subordinate("vault")
	if !ok {
		return 0, fmt.Errorf("bench: no subordinate")
	}
	for i := 0; i < n; i++ {
		res, err := sub.Call("Add", 1)
		if err != nil {
			return 0, err
		}
		h.Total = res[0].(int)
	}
	return h.Total, nil
}

// measurement is one micro-benchmark cell.
type measurement struct {
	perCall time.Duration
	// forcesPerCall counts physical log forces per call summed over
	// both processes — the quantity the optimizations reduce.
	forcesPerCall float64
}

// runRaw measures the "native .NET object" analogue: transport + gob
// marshalling + reflection dispatch, with no Phoenix contexts or
// interception (Table 4's MarshalByRefObject row).
func runRaw(e *env, calls int) (measurement, error) {
	disp, err := rpc.NewDispatcher(&BenchServer{})
	if err != nil {
		return measurement{}, err
	}
	const addr = "raw/srv"
	err = e.mem.Listen(addr, func(req []byte) ([]byte, error) {
		call, err := msg.DecodeCall(req)
		if err != nil {
			return nil, err
		}
		results, nres, appErr, err := disp.InvokeEncoded(call.Method, call.Args, call.NumArgs)
		if err != nil {
			return nil, err
		}
		return msg.EncodeReply(&msg.Reply{ID: call.ID, Results: results, NumResults: nres, AppErr: appErr})
	})
	if err != nil {
		return measurement{}, err
	}
	defer e.mem.Unlisten(addr)

	per, err := e.perCall(calls, func() error {
		for i := 0; i < calls; i++ {
			args, n, err := rpc.EncodeArgs(1)
			if err != nil {
				return err
			}
			data, err := msg.EncodeCall(&msg.Call{Method: "Add", Args: args, NumArgs: n})
			if err != nil {
				return err
			}
			resp, err := e.mem.Send(addr, data)
			if err != nil {
				return err
			}
			if _, err := msg.DecodeReply(resp); err != nil {
				return err
			}
		}
		return nil
	})
	return measurement{perCall: per}, err
}

// runExternalTo measures an external client looping calls against a
// hosted component of the given type.
func runExternalTo(e *env, cfg phoenix.Config, obj any, opts []phoenix.CreateOption,
	method string, args []any, calls int) (measurement, error) {
	pc, ps, err := e.startPair(cfg)
	if err != nil {
		return measurement{}, err
	}
	defer pc.Close()
	defer ps.Close()
	h, err := ps.Create(uniqueProc("Comp"), obj, opts...)
	if err != nil {
		return measurement{}, err
	}
	ref := e.u.ExternalRef(h.URI())
	if _, err := ref.Call(method, args...); err != nil { // warm up
		return measurement{}, err
	}
	ps.ResetLogStats()
	per, err := e.perCall(calls, func() error {
		for i := 0; i < calls; i++ {
			if _, err := ref.Call(method, args...); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return measurement{}, err
	}
	forces := float64(ps.LogStats().Forces) / float64(calls)
	return measurement{perCall: per, forcesPerCall: forces}, nil
}

// runBatch measures the paper's in-client loop: an external envelope
// call drives `calls` outgoing calls from a hosted client component to
// a hosted server component. The envelope cost (two forces at the
// client) is measured separately with a zero-length batch and
// subtracted.
func runBatch(e *env, cfg phoenix.Config, clientType phoenix.ComponentType,
	serverObj any, serverOpts []phoenix.CreateOption,
	method string, arg *int, calls int) (measurement, error) {
	pc, ps, err := e.startPair(cfg)
	if err != nil {
		return measurement{}, err
	}
	defer pc.Close()
	defer ps.Close()
	hs, err := ps.Create(uniqueProc("Server"), serverObj, serverOpts...)
	if err != nil {
		return measurement{}, err
	}
	clientOpts := []phoenix.CreateOption(nil)
	if clientType != phoenix.Persistent {
		clientOpts = append(clientOpts, phoenix.WithType(clientType))
	}
	hb, err := pc.Create(uniqueProc("Batcher"), &BenchBatcher{Server: phoenix.NewRef(hs.URI())}, clientOpts...)
	if err != nil {
		return measurement{}, err
	}
	ref := e.u.ExternalRef(hb.URI())

	drive := func(n int) error {
		var err error
		if arg == nil {
			_, err = ref.Call("RunBatchNoArg", method, n)
		} else {
			_, err = ref.Call("RunBatch", method, n, *arg)
		}
		return err
	}
	if err := drive(1); err != nil { // warm up: learn server types
		return measurement{}, err
	}
	// Envelope cost alone.
	envelope, err := e.elapsed(func() error { return drive(0) })
	if err != nil {
		return measurement{}, err
	}
	pc.ResetLogStats()
	ps.ResetLogStats()
	total, err := e.elapsed(func() error { return drive(calls) })
	if err != nil {
		return measurement{}, err
	}
	per := (total - envelope) / time.Duration(calls)
	if per < 0 {
		per = 0
	}
	// Exclude the envelope's own forces (2 at the client).
	forces := float64(pc.LogStats().Forces+ps.LogStats().Forces-2) / float64(calls)
	if forces < 0 {
		forces = 0
	}
	return measurement{perCall: per, forcesPerCall: forces}, nil
}

// runSubordinate measures parent→subordinate calls.
func runSubordinate(e *env, cfg phoenix.Config, inner int) (measurement, error) {
	pc, ps, err := e.startPair(cfg)
	if err != nil {
		return measurement{}, err
	}
	defer pc.Close()
	defer ps.Close()
	h, err := ps.Create(uniqueProc("SubHost"), &BenchSubHost{},
		phoenix.WithSubordinate("vault", &BenchServer{}))
	if err != nil {
		return measurement{}, err
	}
	ref := e.u.ExternalRef(h.URI())
	if _, err := ref.Call("BatchSub", 1); err != nil {
		return measurement{}, err
	}
	envelope, err := e.elapsed(func() error {
		_, err := ref.Call("BatchSub", 0)
		return err
	})
	if err != nil {
		return measurement{}, err
	}
	total, err := e.elapsed(func() error {
		_, err := ref.Call("BatchSub", inner)
		return err
	})
	if err != nil {
		return measurement{}, err
	}
	per := (total - envelope) / time.Duration(inner)
	if per < 0 {
		per = 0
	}
	return measurement{perCall: per}, nil
}
