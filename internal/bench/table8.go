package bench

import (
	"fmt"
	"time"

	"repro/internal/bookstore"
)

// Table 8 — Performance of the Online Bookstore Application: the
// scripted buyer session (search "recovery", add a book from each
// store, show basket + total with tax, clear) at the three
// optimization levels, reporting elapsed time and number of log
// forces.
func init() {
	register(&Experiment{
		ID:    "table8",
		Title: "Online bookstore application (elapsed time and forces per session)",
		Run:   runTable8,
	})
}

var paper8 = map[bookstore.Level][2]string{
	bookstore.LevelBaseline:         {"589 ms", "64"},
	bookstore.LevelOptimizedLogging: {"382 ms", "46"},
	bookstore.LevelSpecialized:      {"296 ms", "34"},
}

func runTable8(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Table 8",
		Title: "Performance of Online Bookstore Application",
		Cols: []string{"Optimization level", "Elapsed", "Forces",
			"Paper elapsed", "Paper forces"},
		Notes: []string{
			"one steady-state session: search + 2 basket adds + show + total + clear; forces summed over all server processes",
			"absolute force counts differ from the paper's (session scripts differ in call counts) — the reproduction target is the monotone drop and the roughly 2x elapsed-time cut",
		},
	}
	levels := []bookstore.Level{
		bookstore.LevelBaseline,
		bookstore.LevelOptimizedLogging,
		bookstore.LevelSpecialized,
	}
	for _, level := range levels {
		ec := remoteEnv() // buyer on one machine, servers on the other
		e, err := newEnv(o, ec)
		if err != nil {
			return nil, err
		}
		d, err := bookstore.Deploy(e.u, "evo2", level, []string{"buyer"})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("table8 %v: %w", level, err)
		}
		buyer := bookstore.NewBuyer(e.u, d, "buyer", "WA")
		if _, err := buyer.RunSession(); err != nil { // warm up
			d.Close()
			e.Close()
			return nil, fmt.Errorf("table8 %v warmup: %w", level, err)
		}
		d.ResetStats()
		var elapsed time.Duration
		elapsed, err = e.elapsed(func() error {
			_, err := buyer.RunSession()
			return err
		})
		if err != nil {
			d.Close()
			e.Close()
			return nil, fmt.Errorf("table8 %v: %w", level, err)
		}
		forces := d.Forces()
		paper := paper8[level]
		t.Rows = append(t.Rows, []string{
			level.String(), ms(elapsed) + " ms", fmt.Sprintf("%d", forces),
			paper[0], paper[1],
		})
		d.Close()
		e.Close()
	}
	return t, nil
}
