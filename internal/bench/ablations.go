package bench

import (
	"fmt"
	"sync"

	phoenix "repro"
)

// Ablations beyond the paper's tables, for the design choices DESIGN.md
// calls out: force-combining across components sharing a process log,
// short versus long message-2 records, and the checkpoint-interval
// sweep around the paper's ~400-call crossover estimate.

func init() {
	register(&Experiment{
		ID:    "ablation-combining",
		Title: "Force combining across contexts sharing one process log",
		Run:   runAblationCombining,
	})
	register(&Experiment{
		ID:    "ablation-records",
		Title: "Short vs long message-2 records (bytes written per call)",
		Run:   runAblationRecords,
	})
	register(&Experiment{
		ID:    "ablation-ckpt-interval",
		Title: "Recovery time vs context-state-save interval",
		Run:   runAblationCkptInterval,
	})
}

// runAblationCombining: N concurrent persistent clients call N
// components hosted in ONE server process. Each call semantically
// requires a force at its reply, but the contexts share the log
// manager, so one physical sync covers several components' pending
// records — "it allows more opportunities to combine log forces from
// multiple components that share the same log" (Section 3.1.1). The
// measured forces-per-call drop below 1.0 as concurrency grows.
func runAblationCombining(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Ablation",
		Title: "Force combining: server forces per call vs concurrent clients",
		Cols:  []string{"Concurrent clients", "Calls", "Server forces", "Forces/call"},
		Notes: []string{
			"contexts sharing one process log piggyback on each other's syncs; at 1 client every call pays its own force",
		},
	}
	for _, clients := range []int{1, 2, 4, 8} {
		ec := localEnv()
		ec.hostDisk = true // combining is about counts; real fsync makes it visible
		e, err := newEnv(o, ec)
		if err != nil {
			return nil, err
		}
		ms, err := e.u.AddMachine("server")
		if err != nil {
			e.Close()
			return nil, err
		}
		cfg := benchConfig(phoenix.LogOptimized, true)
		ps, err := ms.StartProcess("shared", cfg)
		if err != nil {
			e.Close()
			return nil, err
		}

		type clientRig struct {
			ref *phoenix.Ref
		}
		var rigs []clientRig
		for c := 0; c < clients; c++ {
			hs, err := ps.Create(fmt.Sprintf("Comp%d", c), &BenchServer{})
			if err != nil {
				e.Close()
				return nil, err
			}
			mc, err := e.u.AddMachine(fmt.Sprintf("client%d", c))
			if err != nil {
				e.Close()
				return nil, err
			}
			pc, err := mc.StartProcess("cli", cfg)
			if err != nil {
				e.Close()
				return nil, err
			}
			hb, err := pc.Create("Batcher", &BenchBatcher{Server: phoenix.NewRef(hs.URI())})
			if err != nil {
				e.Close()
				return nil, err
			}
			rigs = append(rigs, clientRig{ref: e.u.ExternalRef(hb.URI())})
		}
		// Warm up (learning + creation noise), then measure.
		for _, r := range rigs {
			if _, err := r.ref.Call("RunBatch", "Add", 1, 1); err != nil {
				e.Close()
				return nil, err
			}
		}
		ps.ResetLogStats()
		perClient := o.Calls
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for _, r := range rigs {
			wg.Add(1)
			go func(ref *phoenix.Ref) {
				defer wg.Done()
				if _, err := ref.Call("RunBatch", "Add", perClient, 1); err != nil {
					errs <- err
				}
			}(r.ref)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			e.Close()
			return nil, err
		}
		total := clients * perClient
		forces := ps.LogStats().Forces
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", forces),
			fmt.Sprintf("%.2f", float64(forces)/float64(total)),
		})
		e.Close()
	}
	return t, nil
}

// runAblationRecords compares log bytes per external call: the
// baseline logs message 2 in full; Algorithm 3 logs only a short
// sent-marker, because replay can regenerate the content.
func runAblationRecords(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Ablation",
		Title: "Message-2 record size: baseline full reply vs Algorithm 3 short record",
		Cols:  []string{"Mode", "Appends/call", "Bytes/call"},
		Notes: []string{
			"the paper's incoming record measured 186 B; reply bodies scale with results, the short record does not",
		},
	}
	for _, mode := range []phoenix.LogMode{phoenix.LogBaseline, phoenix.LogOptimized} {
		ec := localEnv()
		ec.hostDisk = true
		e, err := newEnv(o, ec)
		if err != nil {
			return nil, err
		}
		m, _ := e.u.AddMachine("evo1")
		cfg := benchConfig(mode, mode == phoenix.LogOptimized)
		p, err := m.StartProcess("srv", cfg)
		if err != nil {
			e.Close()
			return nil, err
		}
		h, err := p.Create("Server", &BenchServer{})
		if err != nil {
			e.Close()
			return nil, err
		}
		ref := e.u.ExternalRef(h.URI())
		if _, err := ref.Call("Add", 1); err != nil {
			e.Close()
			return nil, err
		}
		p.ResetLogStats()
		for i := 0; i < o.Calls; i++ {
			if _, err := ref.Call("Add", 1); err != nil {
				e.Close()
				return nil, err
			}
		}
		st := p.LogStats()
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmt.Sprintf("%.1f", float64(st.Appends)/float64(o.Calls)),
			fmt.Sprintf("%.0f", float64(st.BytesWritten)/float64(o.Calls)),
		})
		p.Close()
		e.Close()
	}
	return t, nil
}

// runAblationCkptInterval sweeps SaveStateEvery for a fixed workload
// and reports recovery wall time — the engineering answer to the
// paper's "how frequent context states should be saved" (Section 5.4).
func runAblationCkptInterval(o Options) (*Table, error) {
	o = o.Defaults()
	workload := 3000
	if len(o.RecoverySizes) > 0 {
		workload = o.RecoverySizes[len(o.RecoverySizes)-1]
	}
	t := &Table{
		ID:    "Ablation",
		Title: fmt.Sprintf("Recovery time vs state-save interval (%d-call workload)", workload),
		Cols:  []string{"SaveStateEvery", "Recovery (ms)", "State records"},
		Notes: []string{
			"0 = never: recovery replays the whole history from the creation record",
		},
	}
	for _, every := range []int{0, 100, 400, 1000} {
		ec := localEnv()
		ec.hostDisk = true
		e, err := newEnv(o, ec)
		if err != nil {
			return nil, err
		}
		m, _ := e.u.AddMachine("evo1")
		cfg := benchConfig(phoenix.LogOptimized, true)
		cfg.SaveStateEvery = every
		cfg.CheckpointEvery = 500
		p, err := m.StartProcess("srv", cfg)
		if err != nil {
			e.Close()
			return nil, err
		}
		h, err := p.Create("Server", &BenchServer{})
		if err != nil {
			e.Close()
			return nil, err
		}
		ref := e.u.ExternalRef(h.URI())
		for i := 0; i < workload; i++ {
			if _, err := ref.Call("Add", 1); err != nil {
				e.Close()
				return nil, err
			}
		}
		states := 0
		if every > 0 {
			states = workload / every
		}
		p.Crash()
		var p2 *phoenix.Process
		elapsed, err := e.elapsed(func() error {
			var err error
			p2, err = m.StartProcess("srv", cfg)
			return err
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		if hh, ok := p2.Lookup("Server"); !ok || hh.Object().(*BenchServer).N != workload {
			e.Close()
			return nil, fmt.Errorf("ablation-ckpt: bad recovery at interval %d", every)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", every), ms(elapsed), fmt.Sprintf("~%d", states),
		})
		p2.Close()
		e.Close()
	}
	return t, nil
}
