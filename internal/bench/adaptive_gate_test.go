package bench

import (
	"strconv"
	"testing"
)

// adaptiveCell finds the (workload, config) row and parses a column.
func adaptiveCell(t *testing.T, tab *Table, workload, config, col string) float64 {
	t.Helper()
	ci := -1
	for i, c := range tab.Cols {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, tab.Cols)
	}
	for _, row := range tab.Rows {
		if row[0] == workload && row[1] == config {
			v, err := strconv.ParseFloat(row[ci], 64)
			if err != nil {
				t.Fatalf("cell %s/%s/%s = %q not a number", workload, config, col, row[ci])
			}
			return v
		}
	}
	t.Fatalf("no row %s/%s in %s", workload, config, tab.ID)
	return 0
}

// TestAdaptiveConvergenceGate pins the adaptive experiment's contract:
// on both workloads the controller, starting from Algorithm 1, must
// converge to within 1.1x of the best hand-tuned static discipline's
// forces per call — and must actually improve on its own first phase.
func TestAdaptiveConvergenceGate(t *testing.T) {
	tab, err := runAdaptive(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"bookstore", "pipeline"} {
		static := adaptiveCell(t, tab, w, "static", "Forces/call (converged)")
		converged := adaptiveCell(t, tab, w, "adaptive", "Forces/call (converged)")
		early := adaptiveCell(t, tab, w, "adaptive", "Forces/call (early)")
		baseline := adaptiveCell(t, tab, w, "algo1", "Forces/call (converged)")
		if converged > 1.1*static {
			t.Errorf("%s: adaptive converged at %.2f forces/call, want <= 1.1x static (%.2f)",
				w, converged, static)
		}
		if converged >= baseline {
			t.Errorf("%s: adaptive converged at %.2f forces/call, no better than Algorithm 1 (%.2f)",
				w, converged, baseline)
		}
		if converged > early {
			t.Errorf("%s: adaptive got worse over time: early %.2f -> converged %.2f",
				w, early, converged)
		}
	}
}
