//go:build unix

package bench

import (
	"runtime"
	"sort"
	"syscall"
	"testing"
	"time"
)

// cpuNow reads the process's cumulative CPU time (user + system).
func cpuNow(t *testing.T) time.Duration {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatal(err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// TestTraceOverhead is the CI perf gate for the tracing tentpole: on
// the group-commit workload, enabling the flight recorder must cost
// under 5% per call. Span recording is wait-free and alloc-free, so
// the honest number is noise-level — which dictates the measurement:
// cells run on a virtual clock (simulated waits are free, so the run
// is pure CPU), the meter is process CPU time (wall time over real
// syncs swings ±50% and cannot resolve a 5% budget), and the verdict
// is the median of per-round paired ratios — each round runs the two
// modes back to back, so slow environmental drift (CPU frequency,
// noisy neighbors) cancels within the pair instead of landing on one
// mode. BENCH_PR6.json records the measured trajectory.
func TestTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate is slow under -short")
	}
	o := Options{Scale: 1, Calls: 800, Concurrency: 4, Dir: t.TempDir()}.Defaults()
	ec := localEnv()
	ec.virtualClock = true
	run := func(traced bool) time.Duration {
		oo := o
		oo.Trace = traced
		runtime.GC() // start each cell with the same collector debt
		start := cpuNow(t)
		_, calls, err := runTraceOverheadCell(oo, ec, false)
		if err != nil {
			t.Fatal(err)
		}
		return (cpuNow(t) - start) / time.Duration(calls)
	}
	run(false) // discard the cold first run
	var ratios []float64
	for i := 0; i < 5; i++ {
		b := run(false)
		tr := run(true)
		ratios = append(ratios, float64(tr)/float64(b))
		t.Logf("round %d: untraced %v, traced %v (%+.2f%%)",
			i, b, tr, 100*(float64(tr)/float64(b)-1))
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2] - 1
	t.Logf("median CPU overhead per call: %+.2f%%", 100*overhead)
	if overhead > 0.05 {
		t.Errorf("tracing overhead %.2f%% exceeds the 5%% gate", 100*overhead)
	}
}
