package bench

import (
	"fmt"
	"time"

	"repro/internal/disk"
)

// Figure 9 — Unbuffered disk write performance: 1 KB writes in a loop
// with an inserted delay after each write; elapsed time per iteration
// jumps in discrete steps of one rotation (8.33 ms at 7200 RPM),
// showing that unbuffered writes miss a full rotation.
func init() {
	register(&Experiment{
		ID:    "figure9",
		Title: "Unbuffered disk write performance (staircase)",
		Run:   runFigure9,
	})
}

func runFigure9(o Options) (*Table, error) {
	o = o.Defaults()
	clock := disk.NewRealClock(o.Scale)
	t := &Table{
		ID:    "Figure 9",
		Title: "Elapsed time per iteration vs delay after a 1KB unbuffered write",
		Cols:  []string{"Delay (ms)", "Per-iteration (ms)", "Missed rotations"},
		Notes: []string{
			"paper: ~8.5 ms with no delay, discrete jumps at multiples of the 8.33 ms rotation",
		},
	}
	iters := o.Calls / 3
	if iters < 8 {
		iters = 8
	}
	for delayMs := 0; delayMs <= 36; delayMs += 2 {
		d := disk.NewSimDisk(disk.DefaultParams(), clock)
		delay := time.Duration(delayMs) * time.Millisecond
		d.Write(1024) // prime the phase
		start := clock.Now()
		for i := 0; i < iters; i++ {
			clock.Sleep(delay)
			d.Write(1024)
		}
		per := clock.Now().Sub(start) / time.Duration(iters)
		rot := d.Rotation()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", delayMs),
			ms(per),
			fmt.Sprintf("%.2f", float64(per)/float64(rot)),
		})
	}
	return t, nil
}
