package bench

import (
	"fmt"
	"os"
	"time"

	phoenix "repro"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/transport"
)

// env is a simulated two-machine world for micro-benchmarks: machine
// "evo1" hosts the client process, machine "evo2" the server process,
// each process logging to its own 7200-RPM simulated disk, connected by
// a latency- and jitter-injecting network.
type env struct {
	o     Options
	u     *phoenix.Universe
	clock phoenix.Clock
	mem   *transport.Mem
	rec   *phoenix.TraceRecorder // non-nil when Options.Trace
	dir   string
	own   bool // dir owned (delete on close)

	diskParams disk.SimParams
}

// envConfig shapes the simulated world.
type envConfig struct {
	// rtt is the injected network round trip (the paper measures
	// ~0.2 ms per remote call; local runs use loopback ~40 µs).
	rtt time.Duration
	// jitter randomizes message timing. (Timing jitter alone cannot
	// break rotational lockstep — the disks' waits absorb it and the
	// call cycle re-quantizes to a rotation multiple — but it is part
	// of the remote setup's realism.)
	jitter time.Duration
	// phaseNoise randomizes each disk write's rotational phase,
	// modelling the seeks and request reordering that make the
	// paper's remote runs wait the 4.17 ms average instead of a full
	// rotation per write (Section 5.2.2: "we did not see discrete
	// steps... average rotational delay of 4.17ms plus some small
	// seek times").
	phaseNoise bool
	// writeCache enables the simulated drives' write cache (paper
	// Table 6's right column).
	writeCache bool
	// hostDisk disables the disk simulation entirely (Table 7 times
	// CPU-bound replay, not media).
	hostDisk bool
	// virtualClock replaces the scaled-sleep clock with a non-sleeping
	// VirtualClock: simulated waits (rotations, commit windows, RTTs)
	// cost zero wall time, so wall-clock measurements over such an env
	// isolate pure CPU cost (the trace-overhead gate).
	virtualClock bool
}

// local/remote presets per the paper's experimental setup.
func localEnv() envConfig { return envConfig{rtt: 40 * time.Microsecond} }
func remoteEnv() envConfig {
	return envConfig{
		rtt:        200 * time.Microsecond,
		jitter:     500 * time.Microsecond,
		phaseNoise: true,
	}
}

func newEnv(o Options, ec envConfig) (*env, error) {
	e := &env{o: o, clock: disk.NewRealClock(o.Scale)}
	if ec.virtualClock {
		e.clock = disk.NewVirtualClock()
	}
	e.diskParams = disk.DefaultParams()
	e.diskParams.WriteCache = ec.writeCache

	// Each environment gets a private directory: simulated machines
	// must not see a previous measurement's logs and process tables.
	var dir string
	own := false
	if o.Dir == "" {
		d, err := os.MkdirTemp("", "phoenix-bench-*")
		if err != nil {
			return nil, err
		}
		dir, own = d, true
	} else {
		d, err := os.MkdirTemp(o.Dir, "env-*")
		if err != nil {
			return nil, err
		}
		dir, own = d, true
	}
	e.dir, e.own = dir, own

	e.mem = transport.NewMem(e.clock, ec.rtt)
	if ec.jitter > 0 {
		e.mem.SetJitter(ec.jitter, o.Seed)
	}
	// Local setup: both processes run on one machine and their log
	// files share one physical disk with adjacently allocated blocks
	// (paper footnote: "newly allocated disk blocks for the two files
	// are close enough to incur only small disk seek times"), so every
	// append chases the same log-head region and misses a full
	// rotation — one shared SimDisk models this. Remote setup: one
	// disk per machine, with per-write phase noise standing in for the
	// seeks and scheduling that give the paper's remote runs average
	// rather than full rotational delays.
	var shared disk.Model
	if !ec.hostDisk && !ec.phaseNoise {
		shared = disk.NewSimDisk(e.diskParams, e.clock)
	}
	var diskSeq int64
	diskModel := func(machine, process string) disk.Model {
		if ec.hostDisk {
			return disk.HostModel{}
		}
		if shared != nil {
			return shared
		}
		params := e.diskParams
		d := disk.NewSimDisk(params, e.clock)
		params.PhaseNoise = d.Rotation()
		diskSeq++
		params.NoiseSeed = o.Seed + diskSeq
		return disk.NewSimDisk(params, e.clock)
	}
	if o.Trace {
		// Stage histograms account to the default registry, where the
		// per-experiment snapshot diffs (and phoenix-bench -json/-trace)
		// pick them up; timestamps are model time.
		e.rec = phoenix.NewTraceRecorder(phoenix.TraceOptions{
			Name:    "bench",
			Metrics: obs.Default(),
			Now:     func() int64 { return e.clock.Now().UnixNano() },
		})
	}
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{
		Dir:       dir,
		Clock:     e.clock,
		Net:       e.mem,
		DiskModel: diskModel,
		Trace:     e.rec,
	})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.u = u
	return e, nil
}

// Close removes scratch state.
func (e *env) Close() {
	if e.own && e.dir != "" {
		os.RemoveAll(e.dir)
	}
}

// elapsed measures fn in model time.
func (e *env) elapsed(fn func() error) (time.Duration, error) {
	start := e.clock.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	return e.clock.Now().Sub(start), nil
}

// perCall measures fn (which performs n calls) and returns model time
// per call.
func (e *env) perCall(n int, fn func() error) (time.Duration, error) {
	total, err := e.elapsed(fn)
	if err != nil {
		return 0, err
	}
	return total / time.Duration(n), nil
}

// benchConfig is the per-process runtime config used by micro rows.
func benchConfig(mode phoenix.LogMode, specialized bool) phoenix.Config {
	return phoenix.Config{
		LogMode:          mode,
		SpecializedTypes: specialized,
		RetryInterval:    5 * time.Millisecond,
		RetryLimit:       200,
	}
}

// startPair boots the client and server processes.
func (e *env) startPair(cfg phoenix.Config) (pc, ps *phoenix.Process, err error) {
	mc, err := e.u.AddMachine("evo1")
	if err != nil {
		return nil, nil, err
	}
	ms, err := e.u.AddMachine("evo2")
	if err != nil {
		return nil, nil, err
	}
	pc, err = mc.StartProcess("cli", cfg)
	if err != nil {
		return nil, nil, err
	}
	ps, err = ms.StartProcess("srv", cfg)
	if err != nil {
		pc.Close()
		return nil, nil, err
	}
	return pc, ps, nil
}

var procSeq int

// uniqueProc returns a fresh process name (several measurements share
// one universe directory).
func uniqueProc(prefix string) string {
	procSeq++
	return fmt.Sprintf("%s%d", prefix, procSeq)
}
