package bench

import (
	"fmt"

	phoenix "repro"
)

// Table 6 — Checkpointing Performance: the remote Persistent→Persistent
// micro-benchmark with and without saving the server's context state
// after every method call, with the disk write cache disabled and
// enabled. Saving context state adds only the serialization cost plus
// an unforced log append — about 1 ms in the paper against the
// rotational cost of the call's forces.
func init() {
	register(&Experiment{
		ID:    "table6",
		Title: "Checkpointing performance (ms per call, remote Persistent→Persistent)",
		Run:   runTable6,
	})
}

var paper6 = map[string]string{
	"Persistent→Persistent / cache off":              "10.8",
	"Persistent→Persistent (save state) / cache off": "11.8",
	"Persistent→Persistent / cache on":               "2.62",
	"Persistent→Persistent (save state) / cache on":  "3.82",
}

func runTable6(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Table 6",
		Title: "Checkpointing Performance (ms per call)",
		Cols:  []string{"Configuration", "Measured", "Paper"},
		Notes: []string{
			"save-state-on-call serializes the server component and appends a context state record (plus last-call reply records) without forcing (Section 4.2)",
		},
	}
	one := 1
	for _, cache := range []bool{false, true} {
		for _, save := range []bool{false, true} {
			ec := remoteEnv()
			ec.writeCache = cache
			cfg := benchConfig(phoenix.LogOptimized, true)
			if save {
				cfg.SaveStateEvery = 1
			}
			m, err := measureIn(o, ec, func(e *env) (measurement, error) {
				return runBatch(e, cfg, phoenix.Persistent, &BenchServer{}, nil,
					"Add", &one, o.Calls)
			})
			if err != nil {
				return nil, fmt.Errorf("table6 cache=%v save=%v: %w", cache, save, err)
			}
			name := "Persistent→Persistent"
			if save {
				name += " (save state)"
			}
			key := name + " / cache off"
			if cache {
				key = name + " / cache on"
			}
			t.Rows = append(t.Rows, []string{key, ms(m.perCall), paper6[key]})
		}
	}
	return t, nil
}
