package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	phoenix "repro"
)

// Lazy admission — perceived downtime under skewed traffic: one
// process hosts 64 contexts with replay backlogs, but 4 of them take
// 99% of post-restart traffic. Eager recovery makes every caller wait
// for the full Pass-2 replay; lazy admission opens after Pass 1 and
// replays per context on first touch, so the hot set is serving while
// the cold 60 contexts drain in the background. The experiment
// restarts the same crashed image both ways and reports what a client
// actually feels: time-to-first-call and the first-touch latency
// distribution.
func init() {
	register(&Experiment{
		ID:    "lazyrecovery",
		Title: "Lazy admission: time-to-first-call under 99%-hot-4 traffic",
		Run:   runLazyRecovery,
	})
}

const (
	lazyContexts = 64
	lazyHot      = 4
	lazyCalls    = 3    // calls logged per context pre-crash
	lazyWorkUS   = 1000 // per-call replay cost, microseconds
	lazySamples  = 400  // post-restart traffic sample
)

func runLazyRecovery(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID: "LazyRecovery",
		Title: fmt.Sprintf(
			"Lazy admission: %d contexts x %d calls (%d µs replay each), %d hot contexts take 99%% of traffic",
			lazyContexts, lazyCalls, lazyWorkUS, lazyHot),
		Cols: []string{"Mode", "Restart block (ms)", "TTFC (ms)", "First-touch p50 (ms)",
			"First-touch p99 (ms)", "On-demand", "Background", "Calls replayed"},
		Notes: []string{
			"Restart block is how long StartProcess held traffic out; TTFC is recovery start to the first admitted call (RecoveryStats.TimeToFirstCallNanos)",
			"first-touch latency is each context's first post-restart call, p50/p99 over the 99%-hot-4 sample plus one cold sweep",
			"replayed calls are identical across modes — lazy changes when replay runs, never what it computes",
		},
	}
	for _, mode := range []phoenix.RecoveryMode{phoenix.RecoveryEager, phoenix.RecoveryLazy} {
		row, err := runLazyRecoveryCell(o, mode)
		if err != nil {
			return nil, fmt.Errorf("lazyrecovery %v: %w", mode, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runLazyRecoveryCell(o Options, mode phoenix.RecoveryMode) ([]string, error) {
	ec := localEnv()
	ec.hostDisk = true // replay cost, not media, is under measurement
	e, err := newEnv(o, ec)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	m, err := e.u.AddMachine("evo1")
	if err != nil {
		return nil, err
	}
	cfg := benchConfig(phoenix.LogOptimized, true)
	cfg.Recovery = phoenix.RecoveryConfig{Mode: mode, Parallelism: 2}
	proc := uniqueProc("plazy")
	p, err := m.StartProcess(proc, cfg)
	if err != nil {
		return nil, err
	}

	// Build the backlog, one client goroutine per context.
	uris := make([]phoenix.URI, lazyContexts)
	for i := range uris {
		h, err := p.Create(fmt.Sprintf("Ctx%d", i), &ReplayServer{})
		if err != nil {
			return nil, err
		}
		uris[i] = h.URI()
	}
	var wg sync.WaitGroup
	errs := make(chan error, lazyContexts)
	for _, uri := range uris {
		wg.Add(1)
		go func(r *phoenix.Ref) {
			defer wg.Done()
			for c := 0; c < lazyCalls; c++ {
				if _, err := r.Call("Work", lazyWorkUS); err != nil {
					errs <- err
					return
				}
			}
		}(e.u.ExternalRef(uri))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	p.Crash()

	var p2 *phoenix.Process
	restart, err := e.elapsed(func() error {
		var err error
		p2, err = m.StartProcess(proc, cfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	defer p2.Close()

	// Post-restart traffic: 99% of calls hit the hot set, driven by a
	// deterministic LCG so both modes replay the same arrival order.
	// Work(0) touches without simulated replay cost, so the measured
	// latency is admission wait (lazy on-demand replay) plus transport.
	refs := make([]*phoenix.Ref, lazyContexts)
	for i, uri := range uris {
		refs[i] = e.u.ExternalRef(uri)
	}
	var touches []time.Duration
	rng := uint64(o.Seed)
	for s := 0; s < lazySamples; s++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		i := int(rng>>33) % lazyHot
		if (rng>>20)%100 == 0 { // the 1% cold tail
			i = lazyHot + int(rng>>33)%(lazyContexts-lazyHot)
		}
		d, err := e.elapsed(func() error {
			_, err := refs[i].Call("Work", 0)
			return err
		})
		if err != nil {
			return nil, err
		}
		touches = append(touches, d)
	}
	// Cold sweep: every context's first touch lands in the sample even
	// if the skewed traffic never reached it (most of the cold 60).
	for _, ref := range refs {
		d, err := e.elapsed(func() error {
			_, err := ref.Call("Work", 0)
			return err
		})
		if err != nil {
			return nil, err
		}
		touches = append(touches, d)
	}
	if err := p2.DrainRecovery(); err != nil {
		return nil, err
	}

	// Sanity: every context replayed its whole backlog. The traffic
	// sample added live Work(0) calls on top, so N >= the backlog.
	for i := 0; i < lazyContexts; i++ {
		h, ok := p2.Lookup(fmt.Sprintf("Ctx%d", i))
		if !ok {
			return nil, fmt.Errorf("context Ctx%d lost in recovery", i)
		}
		if got := h.Object().(*ReplayServer).N; got < lazyCalls {
			return nil, fmt.Errorf("Ctx%d recovered N = %d, want >= %d", i, got, lazyCalls)
		}
	}
	stats, ok := p2.LastRecovery()
	if !ok {
		return nil, fmt.Errorf("restarted process reports no recovery run")
	}
	sort.Slice(touches, func(i, j int) bool { return touches[i] < touches[j] })
	p50 := touches[len(touches)/2]
	p99 := touches[len(touches)*99/100]
	return []string{
		fmt.Sprintf("%v", mode),
		ms(restart),
		ms(time.Duration(stats.TimeToFirstCallNanos)),
		ms(p50),
		ms(p99),
		fmt.Sprintf("%d", stats.ContextsOnDemand),
		fmt.Sprintf("%d", stats.ContextsBackground),
		fmt.Sprintf("%d", stats.CallsReplayed),
	}, nil
}
