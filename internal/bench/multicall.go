package bench

import (
	"fmt"
	"time"

	phoenix "repro"
	"repro/internal/ids"
)

// Section 5.5.2 — Multi-call optimization: a PriceGrabber-like fan-out
// component queries k servers inside one method execution. Without the
// optimization the client forces the log before each distinct send;
// with it, calls to distinct servers within one execution skip the
// force, so the per-execution force count stays flat as k grows.
func init() {
	register(&Experiment{
		ID:    "multicall",
		Title: "Multi-call optimization (Section 3.5 / 5.5.2)",
		Run:   runMultiCall,
	})
}

// FanOut is the measured component: one incoming call fans out to k
// persistent servers.
type FanOut struct {
	Servers []string
	ctx     *phoenix.Ctx
}

// AttachContext receives the context handle.
func (f *FanOut) AttachContext(cx *phoenix.Ctx) { f.ctx = cx }

// Fan queries every server once.
func (f *FanOut) Fan(arg int) (int, error) {
	sum := 0
	for _, s := range f.Servers {
		res, err := f.ctx.NewRef(ids.URI(s)).Call("Add", arg)
		if err != nil {
			return 0, err
		}
		sum += res[0].(int)
	}
	return sum, nil
}

func runMultiCall(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Sec 5.5.2",
		Title: "Multi-call optimization: client forces per fan-out execution",
		Cols: []string{"Servers queried", "Forces (off)", "Forces (on)",
			"Elapsed off", "Elapsed on"},
		Notes: []string{
			"paper: \"the PriceGrabber forces the log only once, regardless of the number of Bookstores it queries\" — with the optimization the per-execution force count is flat; without it, it grows with the fan-out",
		},
	}
	for _, k := range []int{1, 2, 4, 8} {
		var cells [2]measurement
		for i, multi := range []bool{false, true} {
			ec := localEnv()
			e, err := newEnv(o, ec)
			if err != nil {
				return nil, err
			}
			cfg := benchConfig(phoenix.LogOptimized, true)
			cfg.MultiCall = multi
			pc, ps, err := e.startPair(cfg)
			if err != nil {
				e.Close()
				return nil, err
			}
			var servers []string
			for s := 0; s < k; s++ {
				hs, err := ps.Create(fmt.Sprintf("S%d", s), &BenchServer{})
				if err != nil {
					e.Close()
					return nil, err
				}
				servers = append(servers, string(hs.URI()))
			}
			hf, err := pc.Create("FanOut", &FanOut{Servers: servers})
			if err != nil {
				e.Close()
				return nil, err
			}
			ref := e.u.ExternalRef(hf.URI())
			if _, err := ref.Call("Fan", 1); err != nil { // warm up
				e.Close()
				return nil, err
			}
			pc.ResetLogStats()
			reps := o.Calls / 10
			if reps < 3 {
				reps = 3
			}
			elapsed, err := e.elapsed(func() error {
				for r := 0; r < reps; r++ {
					if _, err := ref.Call("Fan", 1); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				e.Close()
				return nil, err
			}
			forces := float64(pc.LogStats().Forces) / float64(reps)
			cells[i] = measurement{
				perCall:       elapsed / time.Duration(reps),
				forcesPerCall: forces - 2, // exclude the external envelope
			}
			pc.Close()
			ps.Close()
			e.Close()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", cells[0].forcesPerCall),
			fmt.Sprintf("%.1f", cells[1].forcesPerCall),
			ms(cells[0].perCall), ms(cells[1].perCall),
		})
	}
	return t, nil
}
