package bench

import (
	"bytes"

	"strconv"
	"strings"
	"testing"
	"time"
)

// quickOptions runs the experiments at high clock compression with few
// iterations — the functional test of the harness itself.
func quickOptions(t *testing.T) Options {
	return Options{
		Scale:         0.002,
		Calls:         12,
		RecoverySizes: []int{0, 50, 100},
		Seed:          42,
		Dir:           t.TempDir(),
	}.Defaults()
}

func cell(t *testing.T, tab *Table, rowPrefix, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tab.Cols {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, tab.Cols)
	}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			return row[ci]
		}
	}
	t.Fatalf("no row starting %q in %s", rowPrefix, tab.ID)
	return ""
}

func cellFloat(t *testing.T, tab *Table, rowPrefix, col string) float64 {
	t.Helper()
	s := cell(t, tab, rowPrefix, col)
	s = strings.TrimSuffix(s, " ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q/%q = %q not a number", rowPrefix, col, s)
	}
	return v
}

func TestAblationShapes(t *testing.T) {
	o := quickOptions(t)
	rec, err := runAblationRecords(o)
	if err != nil {
		t.Fatal(err)
	}
	baseB := cellFloat(t, rec, "baseline", "Bytes/call")
	optB := cellFloat(t, rec, "optimized", "Bytes/call")
	if optB >= baseB {
		t.Errorf("short records (%v B) not smaller than full (%v B)", optB, baseB)
	}
	ck, err := runAblationCkptInterval(o)
	if err != nil {
		t.Fatal(err)
	}
	never := cellFloat(t, ck, "0", "Recovery (ms)")
	at100 := cellFloat(t, ck, "100", "Recovery (ms)")
	_ = never
	_ = at100 // tiny quick workloads are noisy; presence + success is the check
	if len(ck.Rows) != 4 {
		t.Errorf("ckpt sweep rows = %d", len(ck.Rows))
	}
	comb, err := runAblationCombining(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(comb.Rows) != 4 {
		t.Errorf("combining rows = %d", len(comb.Rows))
	}
	one := cellFloat(t, comb, "1", "Forces/call")
	if one != 1.0 {
		t.Errorf("1 client forces/call = %v, want exactly 1.0", one)
	}
}

func TestAllRegistered(t *testing.T) {
	want := []string{"table4", "table5", "figure9", "table6", "table7", "table8", "multicall"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	all := All()
	if len(all) < len(want) {
		t.Errorf("All() returned %d experiments, want >= %d", len(all), len(want))
	}
	// Paper order first.
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := runTable4(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("table4 rows = %d", len(tab.Rows))
	}
	// The reproduction targets: baseline P→P ≈ 4 rotations local,
	// optimized ≈ 2; optimized halves baseline; native rows are far
	// below the logged rows.
	base := cellFloat(t, tab, "Persistent→Persistent (baseline)", "Local")
	opt := cellFloat(t, tab, "Persistent→Persistent (optimized)", "Local")
	ext := cellFloat(t, tab, "External→Persistent (baseline)", "Local")
	native := cellFloat(t, tab, "External→MarshalByRefObject", "Local")
	if base < 30 || base > 40 {
		t.Errorf("baseline P→P local = %v ms, want ~34", base)
	}
	if opt < 14 || opt > 21 {
		t.Errorf("optimized P→P local = %v ms, want ~17", opt)
	}
	if ratio := base / opt; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("baseline/optimized = %.2f, want ~2", ratio)
	}
	if ext < 14 || ext > 21 {
		t.Errorf("external→persistent local = %v ms, want ~17", ext)
	}
	if native > 1 {
		t.Errorf("native row = %v ms, want well under 1ms", native)
	}
	// Remote optimized shows partial rotational delays (paper 10.8 vs
	// local 17.9).
	remOpt := cellFloat(t, tab, "Persistent→Persistent (optimized)", "Remote")
	if remOpt >= opt {
		t.Errorf("remote optimized %v >= local %v; jitter should desynchronize rotations", remOpt, opt)
	}
	// Force counts per call ((2n-1)/n for optimized: the first inner
	// call's force is absorbed by the envelope's).
	if f := cellFloat(t, tab, "Persistent→Persistent (baseline)", "Forces/call (local)"); f < 3.8 || f > 4.0 {
		t.Errorf("baseline forces/call = %v, want ~4", f)
	}
	if f := cellFloat(t, tab, "Persistent→Persistent (optimized)", "Forces/call (local)"); f < 1.8 || f > 2.0 {
		t.Errorf("optimized forces/call = %v, want ~2", f)
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := runTable5(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("table5 rows = %d", len(tab.Rows))
	}
	// Every specialized row must eliminate forces entirely.
	for _, row := range tab.Rows {
		if f := cell(t, tab, row[0], "Forces/call (local)"); f != "0.0" {
			t.Errorf("%s forces/call = %s, want 0.0", row[0], f)
		}
		local := cellFloat(t, tab, row[0], "Local")
		if local > 5 {
			t.Errorf("%s local = %v ms; specialized rows must avoid rotational waits", row[0], local)
		}
	}
	// Subordinate calls are orders of magnitude cheaper than any
	// cross-context call.
	sub := cellFloat(t, tab, "Persistent→Subordinate", "Local")
	ro := cellFloat(t, tab, "Persistent→Read-only", "Local")
	// ro can measure 0 when a concurrent sleeper's clock correction
	// swallows the whole (microsecond) window; the ratio is meaningless
	// then, so only compare against a real measurement.
	if ro > 0 && sub*10 > ro {
		t.Errorf("subordinate %v ms not well below cross-context %v ms", sub, ro)
	}
}

func TestFigure9Shape(t *testing.T) {
	tab, err := runFigure9(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	rot := 8.333
	// delay 0 → ~1 rotation; delay 10 → 2; delay 20 → 3; delay 30 → 4.
	for _, tc := range []struct {
		delay string
		steps float64
	}{{"0", 1}, {"10", 2}, {"20", 3}, {"30", 4}} {
		got := cellFloat(t, tab, tc.delay, "Per-iteration (ms)")
		want := tc.steps * rot
		if got < want-1 || got > want+1.5 {
			t.Errorf("delay %s: %v ms, want ~%.1f", tc.delay, got, want)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	tab, err := runTable6(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	offPlain := cellFloat(t, tab, "Persistent→Persistent / cache off", "Measured")
	offSave := cellFloat(t, tab, "Persistent→Persistent (save state) / cache off", "Measured")
	onPlain := cellFloat(t, tab, "Persistent→Persistent / cache on", "Measured")
	onSave := cellFloat(t, tab, "Persistent→Persistent (save state) / cache on", "Measured")
	// Saving state costs little compared with the disk media cost
	// (the records are appended without forcing; the paper measures
	// ~1 ms of serialization against 10.8 ms of media time).
	if offSave < offPlain*0.8 || offSave > offPlain*1.6 {
		t.Errorf("cache-off: save %v vs plain %v — state saving should be cheap", offSave, offPlain)
	}
	if onSave < onPlain*0.7 || onSave > onPlain*2.5 {
		t.Errorf("cache-on: save %v vs plain %v — state saving should be cheap", onSave, onPlain)
	}
	// Enabling the cache removes rotational waits.
	if onPlain*2 > offPlain {
		t.Errorf("cache-on %v not well below cache-off %v", onPlain, offPlain)
	}
}

func TestTable7Shape(t *testing.T) {
	tab, err := runTable7(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	// Recovery time grows with replayed calls.
	c0 := cellFloat(t, tab, "0", "From creation")
	c100 := cellFloat(t, tab, "100", "From creation")
	if c100 < c0 {
		t.Errorf("recovery at 100 calls (%v) cheaper than at 0 (%v)", c100, c0)
	}
	if len(tab.Rows) != 4 { // empty + three sizes
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestTable8Shape(t *testing.T) {
	tab, err := runTable8(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("table8 rows = %d", len(tab.Rows))
	}
	baseF := cellFloat(t, tab, "Baseline", "Forces")
	optF := cellFloat(t, tab, "Optimized", "Forces")
	specF := cellFloat(t, tab, "Specialized", "Forces")
	if !(baseF > optF && optF > specF) {
		t.Errorf("forces not strictly decreasing: %v %v %v", baseF, optF, specF)
	}
	baseT := cellFloat(t, tab, "Baseline", "Elapsed")
	specT := cellFloat(t, tab, "Specialized", "Elapsed")
	if specT*1.5 > baseT {
		t.Errorf("specialized elapsed %v not well below baseline %v", specT, baseT)
	}
}

func TestMultiCallShape(t *testing.T) {
	tab, err := runMultiCall(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	// With the optimization on, forces stay flat in the fan-out; off,
	// they grow.
	off8 := cellFloat(t, tab, "8", "Forces (off)")
	on8 := cellFloat(t, tab, "8", "Forces (on)")
	on1 := cellFloat(t, tab, "1", "Forces (on)")
	if on8 != on1 {
		t.Errorf("multi-call on: forces at k=8 (%v) != k=1 (%v); should be flat", on8, on1)
	}
	if off8 < 5 {
		t.Errorf("multi-call off at k=8: forces = %v, want ~7 (one per send)", off8)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:    "T",
		Title: "demo",
		Cols:  []string{"A", "B"},
		Rows:  [][]string{{"x", "1"}, {"yyyy", "22"}},
		Notes: []string{"n1"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T — demo", "A", "yyyy", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Scale != 1 || o.Calls <= 0 || len(o.RecoverySizes) == 0 || o.Seed == 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
}

func TestMsFormat(t *testing.T) {
	cases := map[string]string{
		"150ms":  "150",
		"17.9ms": "17.90",
		"350µs":  "0.350",
		"30ns":   "3.00e-05",
	}
	for in, want := range cases {
		d, err := time.ParseDuration(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := ms(d); got != want {
			t.Errorf("ms(%s) = %q, want %q", in, got, want)
		}
	}
}
