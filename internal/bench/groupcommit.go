package bench

import (
	"fmt"
	"sync"

	phoenix "repro"
	"repro/internal/obs"
)

func init() {
	register(&Experiment{
		ID:    "groupcommit",
		Title: "Group commit: device syncs per call vs concurrent clients",
		Run:   runGroupCommit,
	})
}

// runGroupCommit measures the group-commit log manager against the
// direct force path: N external clients call N persistent components
// hosted in ONE server process, so every call pays Algorithm 3's two
// forces (incoming record, then reply record) against the shared log.
// The direct path combines concurrent forces only opportunistically
// (later requesters piggyback on a sync in flight); the flusher's
// commit window batches them deliberately, so device syncs per call
// drop below 1 as concurrency grows. The wal.group.* metrics expose
// the batch shape and land in phoenix-bench -json via the default
// registry.
func runGroupCommit(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID: "GroupCommit",
		Title: fmt.Sprintf(
			"Group commit: device syncs per call, 2-forces-per-call workload, up to %d clients, %d log shard(s)",
			o.Concurrency, o.WALShards),
		Cols: []string{"Log manager", "Shards", "Clients", "Calls", "Device syncs", "Syncs/call", "Mean batch", "Syncs saved", "Calls/s (bound)", "Appends/s (bound)"},
		Notes: []string{
			"every external call semantically forces twice (Algorithm 3: incoming + reply); syncs/call < 1 means combining beats the per-call bill",
			"Mean batch and Syncs saved are the wal.group.* metrics (the direct path reports saved piggybacks but no batches)",
			"Shards > 1 partitions the log by context (Config.WAL.Shards): appends and forces from different clients stop serializing on one mutex and one device file",
			"Calls/s (bound) divides total calls by the busiest shard's serialized busy time (append critical sections + flush/sync durations, Stats.*BusyNanos): the throughput ceiling the log's serial resources impose, independent of the measuring host's core count",
			"Appends/s (bound) is the same ceiling for the append path alone (record appends / busiest shard's AppendBusyNanos): the mutex-serialized work that sharding divides; sync busy does not divide here because tail-covering group commit already gives each device ~constant syncs per call",
		},
	}
	for _, gcOn := range []bool{false, true} {
		for _, clients := range clientLevels(o.Concurrency) {
			row, err := runGroupCommitCell(o, gcOn, clients)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// clientLevels sweeps 1, 2, 4, ... capped at max (always including it).
func clientLevels(max int) []int {
	var levels []int
	for c := 1; c < max; c *= 2 {
		levels = append(levels, c)
	}
	return append(levels, max)
}

func runGroupCommitCell(o Options, gcOn bool, clients int) ([]string, error) {
	ec := localEnv()
	ec.hostDisk = true // batching is about sync counts; real fsyncs make it visible
	e, err := newEnv(o, ec)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	m, err := e.u.AddMachine("server")
	if err != nil {
		return nil, err
	}
	cfg := benchConfig(phoenix.LogOptimized, true)
	if gcOn {
		cfg.GroupCommit = phoenix.GroupCommit{Enabled: true}
	}
	cfg.WAL = phoenix.WALConfig{Shards: o.WALShards}
	ps, err := m.StartProcess("srv", cfg)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	refs := make([]*phoenix.Ref, clients)
	for i := range refs {
		h, err := ps.Create(fmt.Sprintf("Comp%d", i), &BenchServer{})
		if err != nil {
			return nil, err
		}
		refs[i] = e.u.ExternalRef(h.URI())
	}
	// Warm up (creation noise), then measure.
	for _, ref := range refs {
		if _, err := ref.Call("Add", 0); err != nil {
			return nil, err
		}
	}
	ps.ResetLogStats()
	before := obs.Default().Snapshot()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for _, ref := range refs {
		wg.Add(1)
		go func(r *phoenix.Ref) {
			defer wg.Done()
			for i := 0; i < o.Calls; i++ {
				if _, err := r.Call("Add", 1); err != nil {
					errs <- err
					return
				}
			}
		}(ref)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	delta := obs.Default().Snapshot().Diff(before)
	syncs := ps.LogStats().Forces
	total := clients * o.Calls
	batch := delta.HistogramFor(obs.WALGroupBatchSize)
	meanBatch := "-"
	if batch.Count > 0 {
		meanBatch = fmt.Sprintf("%.2f", batch.Mean())
	}
	mode := "direct"
	if gcOn {
		mode = "group-commit"
	}
	// The busiest shard's serialized busy time bounds throughput: its
	// append mutex and device file admit one operation at a time no
	// matter how many clients (or host cores) there are.
	var maxBusy, maxAppendBusy, appends int64
	for _, sh := range ps.ShardLogStats() {
		if busy := sh.Stats.AppendBusyNanos + sh.Stats.SyncBusyNanos; busy > maxBusy {
			maxBusy = busy
		}
		if sh.Stats.AppendBusyNanos > maxAppendBusy {
			maxAppendBusy = sh.Stats.AppendBusyNanos
		}
		appends += sh.Stats.Appends
	}
	rate, appendRate := "-", "-"
	if maxBusy > 0 {
		rate = fmt.Sprintf("%.0f", float64(total)/(float64(maxBusy)/1e9))
	}
	if maxAppendBusy > 0 {
		appendRate = fmt.Sprintf("%.0f", float64(appends)/(float64(maxAppendBusy)/1e9))
	}
	return []string{
		mode,
		fmt.Sprintf("%d", o.WALShards),
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", total),
		fmt.Sprintf("%d", syncs),
		fmt.Sprintf("%.2f", float64(syncs)/float64(total)),
		meanBatch,
		fmt.Sprintf("%d", delta.Counter(obs.WALGroupSyncsSaved)),
		rate,
		appendRate,
	}, nil
}
