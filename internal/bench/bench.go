// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment builds a simulated world —
// 7200-RPM disks with the write cache disabled (paper Table 3), a
// network with the paper's measured ~0.2 ms round trip — runs the
// paper's workload, and prints the measured values next to the numbers
// the paper reports.
//
// Timing note: measurements are in model time. The simulated disk
// sleeps on a scalable clock, so a run at Scale 0.05 finishes 20x
// faster while reporting the same model-time latencies; Go execution
// overhead (microseconds) is included in the measurement but is noise
// against rotational delays (milliseconds), exactly as .NET overhead
// was noise in the paper's logging-bound rows. Rows with no logging
// are dominated by Go, not .NET, execution speed: they come out in
// microseconds where the paper reports ~0.6-1.5 ms of remoting
// overhead — the shape (which configurations force the log, and the
// ordering among rows) is what reproduces.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options tune an experiment run.
type Options struct {
	// Scale compresses simulated sleeps: 1.0 is real time; 0.05 runs
	// 20x faster with identical model-time results.
	Scale float64
	// Calls is the iteration count per measured cell.
	Calls int
	// Recovery workload sizes for Table 7 (calls replayed).
	RecoverySizes []int
	// Concurrency is the client count for the concurrent experiments
	// (group-commit): how many external clients commit against one
	// server process at once.
	Concurrency int
	// RecoveryParallelism is the largest Config.Recovery.Parallelism
	// the recovery experiment sweeps to (0, 1, 2, ... up to it).
	RecoveryParallelism int
	// WALShards is the Config.WAL.Shards value the concurrent
	// experiments run the server's log with: 1 (the default) is the
	// single-stream log; higher values partition appends and forces
	// across that many shard streams.
	WALShards int
	// Seed drives the network jitter.
	Seed int64
	// Dir is scratch space for logs; empty uses a temp dir per run.
	Dir string
	// Trace wires a flight recorder into every universe the experiment
	// builds, so calls run with causal tracing enabled and the trace.*
	// stage histograms land in the default registry (phoenix-bench
	// -trace reports their p50/p99).
	Trace bool
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Calls <= 0 {
		o.Calls = 60
	}
	if len(o.RecoverySizes) == 0 {
		o.RecoverySizes = []int{0, 1000, 2000, 3000, 4000, 5000}
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.RecoveryParallelism <= 0 {
		o.RecoveryParallelism = 8
	}
	if o.WALShards <= 0 {
		o.WALShards = 1
	}
	if o.Seed == 0 {
		o.Seed = 20040330
	}
	return o
}

// Table is a rendered experiment result.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// Render prints the table in a fixed-width layout.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID matches the paper artifact: "table4" ... "table8", "figure9",
	// "multicall", and the extra ablations.
	ID string
	// Title describes the experiment.
	Title string
	// Run executes it.
	Run func(o Options) (*Table, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) { registry[e.ID] = e }

// ByID finds an experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns the experiments in a stable order.
func All() []*Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Paper order: tables 4-8, figure 9, then extras.
	order := map[string]int{
		"table4": 1, "table5": 2, "figure9": 3, "table6": 4,
		"table7": 5, "table8": 6, "multicall": 7,
	}
	sort.SliceStable(ids, func(i, j int) bool {
		oi, oki := order[ids[i]]
		oj, okj := order[ids[j]]
		switch {
		case oki && okj:
			return oi < oj
		case oki:
			return true
		case okj:
			return false
		default:
			return ids[i] < ids[j]
		}
	})
	out := make([]*Experiment, len(ids))
	for i, id := range ids {
		out[i] = registry[id]
	}
	return out
}

// ms renders a duration in milliseconds as the paper's tables do.
func ms(d time.Duration) string {
	v := float64(d) / float64(time.Millisecond)
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	case v >= 0.001:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}
