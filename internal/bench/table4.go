package bench

import (
	"fmt"

	phoenix "repro"
)

// Table 4 — Log Optimizations for Persistent Components. Eight rows:
// four "native" baselines (no logging, measuring pure call machinery)
// and four logged configurations (external/persistent client ×
// baseline/optimized logging), each measured in the local and remote
// setups.
func init() {
	register(&Experiment{
		ID:    "table4",
		Title: "Log Optimizations for Persistent Components (ms per call)",
		Run:   runTable4,
	})
}

// paper4 holds the paper's reported numbers for side-by-side output.
var paper4 = map[string][2]string{
	"External→MarshalByRefObject":           {"0.593", "0.798"},
	"External→ContextBoundObject":           {"0.598", "0.804"},
	"ContextBound→ContextBound":             {"0.585", "0.808"},
	"ContextBound→ContextBound (intercept)": {"0.674", "0.870"},
	"External→Persistent (baseline)":        {"17.0", "17.3"},
	"External→Persistent (optimized)":       {"17.1", "17.0"},
	"Persistent→Persistent (baseline)":      {"34.7", "28.4"},
	"Persistent→Persistent (optimized)":     {"17.9", "10.8"},
}

func runTable4(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Table 4",
		Title: "Log Optimizations for Persistent Components (ms per call)",
		Cols: []string{"Client/Server", "Local", "Remote",
			"Forces/call (local)", "Paper local", "Paper remote"},
		Notes: []string{
			"native rows are marshalling+dispatch machinery: Go runs them in microseconds where .NET took ~0.6-0.9 ms; the logged rows reproduce the paper's rotational-latency arithmetic",
			"ContextBound rows map to Phoenix-hosted External-type components (intercepted, unlogged); interception is always on in this runtime, so the two ContextBound rows coincide",
		},
	}

	type rowSpec struct {
		name string
		run  func(e *env) (measurement, error)
	}
	one := 1
	rows := []rowSpec{
		{"External→MarshalByRefObject", func(e *env) (measurement, error) {
			return runRaw(e, o.Calls)
		}},
		{"External→ContextBoundObject", func(e *env) (measurement, error) {
			return runExternalTo(e, benchConfig(phoenix.LogOptimized, true),
				&BenchServer{}, []phoenix.CreateOption{phoenix.WithType(phoenix.External)},
				"Add", []any{1}, o.Calls)
		}},
		{"ContextBound→ContextBound", func(e *env) (measurement, error) {
			return runBatch(e, benchConfig(phoenix.LogOptimized, true),
				phoenix.External, &BenchServer{},
				[]phoenix.CreateOption{phoenix.WithType(phoenix.External)},
				"Add", &one, o.Calls)
		}},
		{"ContextBound→ContextBound (intercept)", func(e *env) (measurement, error) {
			return runBatch(e, benchConfig(phoenix.LogOptimized, true),
				phoenix.External, &BenchServer{},
				[]phoenix.CreateOption{phoenix.WithType(phoenix.External)},
				"Add", &one, o.Calls)
		}},
		{"External→Persistent (baseline)", func(e *env) (measurement, error) {
			return runExternalTo(e, benchConfig(phoenix.LogBaseline, false),
				&BenchServer{}, nil, "Add", []any{1}, o.Calls)
		}},
		{"External→Persistent (optimized)", func(e *env) (measurement, error) {
			return runExternalTo(e, benchConfig(phoenix.LogOptimized, true),
				&BenchServer{}, nil, "Add", []any{1}, o.Calls)
		}},
		{"Persistent→Persistent (baseline)", func(e *env) (measurement, error) {
			return runBatch(e, benchConfig(phoenix.LogBaseline, false),
				phoenix.Persistent, &BenchServer{}, nil, "Add", &one, o.Calls)
		}},
		{"Persistent→Persistent (optimized)", func(e *env) (measurement, error) {
			return runBatch(e, benchConfig(phoenix.LogOptimized, true),
				phoenix.Persistent, &BenchServer{}, nil, "Add", &one, o.Calls)
		}},
	}

	for _, r := range rows {
		local, err := measureIn(o, localEnv(), r.run)
		if err != nil {
			return nil, fmt.Errorf("table4 %s local: %w", r.name, err)
		}
		remote, err := measureIn(o, remoteEnv(), r.run)
		if err != nil {
			return nil, fmt.Errorf("table4 %s remote: %w", r.name, err)
		}
		paper := paper4[r.name]
		t.Rows = append(t.Rows, []string{
			r.name, ms(local.perCall), ms(remote.perCall),
			fmt.Sprintf("%.1f", local.forcesPerCall),
			paper[0], paper[1],
		})
	}
	return t, nil
}

// measureIn runs one measurement in a fresh environment.
func measureIn(o Options, ec envConfig, run func(e *env) (measurement, error)) (measurement, error) {
	e, err := newEnv(o, ec)
	if err != nil {
		return measurement{}, err
	}
	defer e.Close()
	return run(e)
}
