package bench

import (
	"fmt"

	phoenix "repro"
)

// Table 5 — New Components and Read-only Methods: the specialized
// component types eliminate log forces, so each row runs without disk
// waits; the Persistent→Subordinate row is a direct in-context call.
func init() {
	register(&Experiment{
		ID:    "table5",
		Title: "New Components and Read-only Methods (ms per call)",
		Run:   runTable5,
	})
}

var paper5 = map[string][2]string{
	"External→Read-only":                {"0.689", "0.887"},
	"External→Functional":               {"0.672", "0.875"},
	"Persistent→Read-only":              {"1.351", "1.495"},
	"Persistent→Functional":             {"1.194", "1.414"},
	"Persistent→Subordinate":            {"3.44e-5", "-"},
	"Persistent→Persistent (RO method)": {"1.407", "1.547"},
	"Read-only→Persistent":              {"1.218", "1.404"},
}

func runTable5(o Options) (*Table, error) {
	o = o.Defaults()
	cfg := benchConfig(phoenix.LogOptimized, true)
	one := 1
	t := &Table{
		ID:    "Table 5",
		Title: "New Components and Read-only Methods (ms per call)",
		Cols: []string{"Client/Server", "Local", "Remote",
			"Forces/call (local)", "Paper local", "Paper remote"},
		Notes: []string{
			"every row eliminates log forces (the Forces/call column is the reproduction target); absolute times are Go-speed where the paper's were .NET remoting overhead",
			"Persistent→Read-only and the RO-method row still append the reply to the log buffer without forcing (Algorithm 5)",
		},
	}

	type rowSpec struct {
		name   string
		remote bool
		run    func(e *env) (measurement, error)
	}
	rows := []rowSpec{
		{"External→Read-only", true, func(e *env) (measurement, error) {
			return runExternalTo(e, cfg, &BenchEcho{},
				[]phoenix.CreateOption{phoenix.WithType(phoenix.ReadOnly)},
				"Echo", []any{7}, o.Calls)
		}},
		{"External→Functional", true, func(e *env) (measurement, error) {
			return runExternalTo(e, cfg, &BenchPure{},
				[]phoenix.CreateOption{phoenix.WithType(phoenix.Functional)},
				"Double", []any{7}, o.Calls)
		}},
		{"Persistent→Read-only", true, func(e *env) (measurement, error) {
			return runBatch(e, cfg, phoenix.Persistent, &BenchEcho{},
				[]phoenix.CreateOption{phoenix.WithType(phoenix.ReadOnly)},
				"Echo", &one, o.Calls)
		}},
		{"Persistent→Functional", true, func(e *env) (measurement, error) {
			return runBatch(e, cfg, phoenix.Persistent, &BenchPure{},
				[]phoenix.CreateOption{phoenix.WithType(phoenix.Functional)},
				"Double", &one, o.Calls)
		}},
		{"Persistent→Subordinate", false, func(e *env) (measurement, error) {
			return runSubordinate(e, cfg, 200*o.Calls)
		}},
		{"Persistent→Persistent (RO method)", true, func(e *env) (measurement, error) {
			return runBatch(e, cfg, phoenix.Persistent, &BenchServer{},
				[]phoenix.CreateOption{phoenix.WithReadOnlyMethods("Get")},
				"Get", nil, o.Calls)
		}},
		// A read-only client only reads persistent servers ("These
		// calls read the states of persistent server components").
		{"Read-only→Persistent", true, func(e *env) (measurement, error) {
			return runBatch(e, cfg, phoenix.ReadOnly, &BenchServer{},
				nil, "Get", nil, o.Calls)
		}},
	}

	for _, r := range rows {
		local, err := measureIn(o, localEnv(), r.run)
		if err != nil {
			return nil, fmt.Errorf("table5 %s local: %w", r.name, err)
		}
		remoteCell := "-"
		if r.remote {
			remote, err := measureIn(o, remoteEnv(), r.run)
			if err != nil {
				return nil, fmt.Errorf("table5 %s remote: %w", r.name, err)
			}
			remoteCell = ms(remote.perCall)
		}
		paper := paper5[r.name]
		t.Rows = append(t.Rows, []string{
			r.name, ms(local.perCall), remoteCell,
			fmt.Sprintf("%.1f", local.forcesPerCall),
			paper[0], paper[1],
		})
	}
	return t, nil
}
