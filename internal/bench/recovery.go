package bench

import (
	"fmt"
	"sync"
	"time"

	phoenix "repro"
)

// Recovery sweep — restart latency vs Pass-2 parallelism: one process
// hosts many contexts, each with a backlog of logged calls whose
// re-execution costs real time (the paper measures ~0.15 ms of CPU per
// replayed call; here the per-call cost is an explicit wait so the
// effect is visible at any machine size). Serial recovery replays the
// backlog one call at a time; Config.Recovery overlaps the per-context
// replays, so restart latency drops as parallelism grows while the
// replayed-call and scanned-record counts stay identical. Like Table 7
// the experiment runs on the host file system and reports wall time.
func init() {
	register(&Experiment{
		ID:    "recovery",
		Title: "Parallel recovery: restart latency vs Pass-2 parallelism",
		Run:   runRecovery,
	})
}

// ReplayServer is the per-context component: each call waits a fixed
// interval and bumps a counter, standing in for method bodies whose
// re-execution during replay has real cost.
type ReplayServer struct {
	N int
}

// Work sleeps for us microseconds and mutates state.
func (s *ReplayServer) Work(us int) (int, error) {
	time.Sleep(time.Duration(us) * time.Microsecond)
	s.N++
	return s.N, nil
}

const (
	recoveryContexts = 64
	recoveryCalls    = 3    // calls logged per context
	recoveryWorkUS   = 1000 // per-call replay cost, microseconds
)

func runRecovery(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID: "Recovery",
		Title: fmt.Sprintf(
			"Parallel recovery: %d contexts x %d calls, %d µs replay cost per call",
			recoveryContexts, recoveryCalls, recoveryWorkUS),
		Cols: []string{"Parallelism", "Restart (ms)", "Pass 1 (ms)", "Pass 2 (ms)",
			"Workers", "Calls replayed", "Records scanned"},
		Notes: []string{
			"parallelism 0 is the serial two-pass replay; the other rows partition Pass 2 by context (Config.Recovery)",
			"replayed calls and scanned records are identical across rows — only the schedule changes",
			"durations are Process.LastRecovery() stats; Restart wraps the whole StartProcess call",
		},
	}
	levels := append([]int{0}, clientLevels(o.RecoveryParallelism)...)
	for _, par := range levels {
		row, err := runRecoveryCell(o, par)
		if err != nil {
			return nil, fmt.Errorf("recovery parallelism=%d: %w", par, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runRecoveryCell(o Options, par int) ([]string, error) {
	ec := localEnv()
	ec.hostDisk = true // replay cost, not media, is under measurement
	e, err := newEnv(o, ec)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	m, err := e.u.AddMachine("evo1")
	if err != nil {
		return nil, err
	}
	cfg := benchConfig(phoenix.LogOptimized, true)
	cfg.Recovery = phoenix.Recovery{Parallelism: par}
	proc := uniqueProc("prec")
	p, err := m.StartProcess(proc, cfg)
	if err != nil {
		return nil, err
	}

	// Build the backlog: each context's calls run from its own client
	// goroutine (contexts are independent; setup overlaps the waits
	// the same way parallel recovery will).
	refs := make([]*phoenix.Ref, recoveryContexts)
	for i := range refs {
		h, err := p.Create(fmt.Sprintf("Ctx%d", i), &ReplayServer{})
		if err != nil {
			return nil, err
		}
		refs[i] = e.u.ExternalRef(h.URI())
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(refs))
	for _, ref := range refs {
		wg.Add(1)
		go func(r *phoenix.Ref) {
			defer wg.Done()
			for c := 0; c < recoveryCalls; c++ {
				if _, err := r.Call("Work", recoveryWorkUS); err != nil {
					errs <- err
					return
				}
			}
		}(ref)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	p.Crash()

	var p2 *phoenix.Process
	restart, err := e.elapsed(func() error {
		var err error
		p2, err = m.StartProcess(proc, cfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	defer p2.Close()
	// Sanity: every context replayed its whole backlog.
	for i := 0; i < recoveryContexts; i++ {
		h, ok := p2.Lookup(fmt.Sprintf("Ctx%d", i))
		if !ok {
			return nil, fmt.Errorf("context Ctx%d lost in recovery", i)
		}
		if got := h.Object().(*ReplayServer).N; got != recoveryCalls {
			return nil, fmt.Errorf("Ctx%d recovered N = %d, want %d", i, got, recoveryCalls)
		}
	}
	stats, ok := p2.LastRecovery()
	if !ok {
		return nil, fmt.Errorf("restarted process reports no recovery run")
	}
	return []string{
		fmt.Sprintf("%d", par),
		ms(restart),
		ms(stats.Pass1Duration),
		ms(stats.Pass2Duration),
		fmt.Sprintf("%d", stats.WorkersUsed),
		fmt.Sprintf("%d", stats.CallsReplayed),
		fmt.Sprintf("%d", stats.RecordsScanned),
	}, nil
}
