package bench

import (
	"fmt"
	"strings"
	"time"

	phoenix "repro"
	"repro/internal/ids"
)

// Adaptive-discipline convergence: start every component on the
// baseline discipline (Algorithm 1, force every message) with the
// runtime controller enabled, and measure forces per call phase by
// phase as the controller promotes methods to Algorithm 2 and
// per-method multi-call elision. The converged phase must land within
// a whisker of the best hand-tuned static configuration — the
// controller discovers at runtime what the static switches encode by
// hand.
func init() {
	register(&Experiment{
		ID:    "adaptive",
		Title: "Adaptive disciplines: convergence from Algorithm 1 to the tuned static config",
		Run:   runAdaptive,
	})
}

// Storefront is the bookstore workload's frontend: one incoming Quote
// fans out to every store once (the PriceGrabber pattern of
// Section 3.5, here hosted in the same process as the stores).
type Storefront struct {
	Stores []string
	ctx    *phoenix.Ctx
}

// AttachContext receives the context handle.
func (s *Storefront) AttachContext(cx *phoenix.Ctx) { s.ctx = cx }

// Quote queries every store.
func (s *Storefront) Quote(arg int) (int, error) {
	sum := 0
	for _, st := range s.Stores {
		res, err := s.ctx.NewRef(ids.URI(st)).Call("Add", arg)
		if err != nil {
			return 0, err
		}
		sum += res[0].(int)
	}
	return sum, nil
}

// Stage is one hop of the pipeline workload: persistent state plus one
// downstream call per execution; an empty Next marks the sink.
type Stage struct {
	N    int
	Next string
	ctx  *phoenix.Ctx
}

// AttachContext receives the context handle.
func (s *Stage) AttachContext(cx *phoenix.Ctx) { s.ctx = cx }

// Run updates this stage and forwards down the pipeline.
func (s *Stage) Run(d int) (int, error) {
	s.N += d
	if s.Next == "" {
		return s.N, nil
	}
	res, err := s.ctx.NewRef(ids.URI(s.Next)).Call("Run", d)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// adaptiveWorkload builds one workload variant inside a fresh server
// process and returns the external entry ref.
type adaptiveWorkload struct {
	name  string
	entry string // entry component method
	// build creates the component graph and returns the entry URI.
	build func(ps *phoenix.Process) (ids.URI, error)
	// multiCall marks the workload whose tuned static config also sets
	// Config.MultiCall (the bookstore's distinct-server fan-out).
	multiCall bool
}

func adaptiveWorkloads() []adaptiveWorkload {
	return []adaptiveWorkload{
		{
			name:  "bookstore",
			entry: "Quote",
			build: func(ps *phoenix.Process) (ids.URI, error) {
				var stores []string
				for i := 0; i < 3; i++ {
					h, err := ps.Create(fmt.Sprintf("Store%d", i), &BenchServer{})
					if err != nil {
						return "", err
					}
					stores = append(stores, string(h.URI()))
				}
				h, err := ps.Create("Front", &Storefront{Stores: stores})
				if err != nil {
					return "", err
				}
				return h.URI(), nil
			},
			multiCall: true,
		},
		{
			name:  "pipeline",
			entry: "Run",
			build: func(ps *phoenix.Process) (ids.URI, error) {
				ht, err := ps.Create("Sink", &Stage{})
				if err != nil {
					return "", err
				}
				h2, err := ps.Create("Mid", &Stage{Next: string(ht.URI())})
				if err != nil {
					return "", err
				}
				h1, err := ps.Create("Head", &Stage{Next: string(h2.URI())})
				if err != nil {
					return "", err
				}
				return h1.URI(), nil
			},
		},
	}
}

// adaptiveRow is one (workload, config) measurement: forces and bytes
// per call in the first and last of four equal phases.
type adaptiveRow struct {
	early, converged float64
	bytesPerCall     float64
	perCall          time.Duration
	assignments      string
}

func runAdaptiveCell(o Options, w adaptiveWorkload, label string, cfg phoenix.Config) (adaptiveRow, error) {
	var row adaptiveRow
	ec := localEnv()
	// The virtual clock ties epoch time to model time: simulated disk
	// rotations and network RTTs advance it, wall time does not, so the
	// controller's windows elapse identically at any -scale.
	ec.virtualClock = true
	e, err := newEnv(o, ec)
	if err != nil {
		return row, err
	}
	defer e.Close()
	m, err := e.u.AddMachine("evo1")
	if err != nil {
		return row, err
	}
	ps, err := m.StartProcess("srv", cfg)
	if err != nil {
		return row, err
	}
	entry, err := w.build(ps)
	if err != nil {
		return row, err
	}
	ref := e.u.ExternalRef(entry)
	if _, err := ref.Call(w.entry, 1); err != nil { // creation + learning noise
		return row, err
	}

	phase := o.Calls / 4
	if phase < 8 {
		phase = 8
	}
	var phases [4]float64
	var total time.Duration
	var bytes int64
	for p := 0; p < 4; p++ {
		ps.ResetLogStats()
		elapsed, err := e.elapsed(func() error {
			for i := 0; i < phase; i++ {
				if _, err := ref.Call(w.entry, 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return row, err
		}
		st := ps.LogStats()
		phases[p] = float64(st.Forces) / float64(phase)
		bytes += st.BytesWritten
		total += elapsed
	}
	row.early, row.converged = phases[0], phases[3]
	row.bytesPerCall = float64(bytes) / float64(4*phase)
	row.perCall = total / time.Duration(4*phase)
	if assigns := ps.AdaptiveAssignments(); len(assigns) > 0 {
		parts := make([]string, 0, len(assigns))
		for _, a := range assigns {
			s := fmt.Sprintf("%s=%s", a.Method, a.Discipline)
			if a.MultiCall {
				s += "+multicall"
			}
			parts = append(parts, s)
		}
		row.assignments = fmt.Sprintf("%s %s assignments: %s",
			w.name, label, strings.Join(parts, " "))
	}
	return row, nil
}

func runAdaptive(o Options) (*Table, error) {
	o = o.Defaults()
	t := &Table{
		ID:    "Adaptive",
		Title: "Adaptive disciplines: forces/call from Algorithm-1 start vs tuned static",
		Cols: []string{"Workload", "Config", "Forces/call (early)",
			"Forces/call (converged)", "vs static", "Bytes/call", "Model time/call"},
		Notes: []string{
			"adaptive starts every method on Algorithm 1 and must converge within 1.1x of the best hand-tuned static discipline's forces/call",
		},
	}
	for _, w := range adaptiveWorkloads() {
		static := benchConfig(phoenix.LogOptimized, true)
		static.MultiCall = w.multiCall
		adaptive := benchConfig(phoenix.LogBaseline, false)
		adaptive.Adaptive = phoenix.AdaptiveConfig{
			Enabled:      true,
			Window:       40 * time.Millisecond,
			PromoteAfter: 2,
			DemoteAfter:  2,
		}
		configs := []struct {
			label string
			cfg   phoenix.Config
		}{
			{"algo1", benchConfig(phoenix.LogBaseline, false)},
			{"static", static},
			{"adaptive", adaptive},
		}
		var staticConverged float64
		for _, c := range configs {
			row, err := runAdaptiveCell(o, w, c.label, c.cfg)
			if err != nil {
				return nil, fmt.Errorf("adaptive %s/%s: %w", w.name, c.label, err)
			}
			if c.label == "static" {
				staticConverged = row.converged
			}
			ratio := "-"
			if c.label != "static" && staticConverged > 0 {
				ratio = fmt.Sprintf("%.2fx", row.converged/staticConverged)
			}
			t.Rows = append(t.Rows, []string{
				w.name, c.label,
				fmt.Sprintf("%.1f", row.early),
				fmt.Sprintf("%.1f", row.converged),
				ratio,
				fmt.Sprintf("%.0f", row.bytesPerCall),
				ms(row.perCall),
			})
			if row.assignments != "" {
				t.Notes = append(t.Notes, row.assignments)
			}
		}
	}
	return t, nil
}
