package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestTraceOverheadShape runs the experiment end to end at quick
// options: both rows present, the traced run recorded spans, and the
// per-stage breakdown rows carry parseable quantiles.
func TestTraceOverheadShape(t *testing.T) {
	tab, err := runTraceOverhead(quickOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "tracing off", "Overhead"); got != "-" {
		t.Errorf("untraced overhead cell = %q, want -", got)
	}
	spans, err := strconv.Atoi(cell(t, tab, "tracing on", "Spans"))
	if err != nil || spans == 0 {
		t.Errorf("traced run recorded %q spans, want > 0", cell(t, tab, "tracing on", "Spans"))
	}
	stageRows := 0
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "  stage ") {
			stageRows++
			if !strings.HasPrefix(row[2], "p50 ") || !strings.HasPrefix(row[3], "p99 ") {
				t.Errorf("stage row %v lacks p50/p99 cells", row)
			}
		}
	}
	if stageRows == 0 {
		t.Error("no per-stage breakdown rows in the traced run")
	}
}
