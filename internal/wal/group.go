package wal

import (
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
)

// Group commit: a dedicated flusher goroutine collects concurrent
// force requests into batches and satisfies each batch with a single
// device sync. The paper's Section 3.1 observes that contexts sharing
// a process log combine forces opportunistically; the flusher makes
// that combining deliberate — the first request opens a commit window
// (MaxWait) during which later requests pile on, then one sync covers
// the whole tail and wakes every waiter whose records it covered.

// GroupCommitConfig tunes the group-commit flusher. The zero value of
// each knob means its default; Enabled false means forces stay on the
// direct path (inline sync with opportunistic piggybacking).
type GroupCommitConfig struct {
	// Enabled routes force requests through the flusher goroutine.
	Enabled bool
	// MaxWait is the commit window: how long the flusher holds the
	// batch open after the first request arrives, giving concurrent
	// committers time to join. 0 means 200µs. The window sleeps on the
	// clock passed to StartGroupCommit, so a virtual clock makes it
	// deterministic (and instant) in tests.
	MaxWait time.Duration
	// MaxBatch closes the window early once this many requests are
	// waiting, and caps the waiters satisfied per sync. 0 means 64.
	MaxBatch int
}

const (
	defaultGroupMaxWait  = 200 * time.Microsecond
	defaultGroupMaxBatch = 64
)

func (c GroupCommitConfig) withDefaults() GroupCommitConfig {
	if c.MaxWait <= 0 {
		c.MaxWait = defaultGroupMaxWait
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = defaultGroupMaxBatch
	}
	return c
}

// gcWaiter is one queued force request.
type gcWaiter struct {
	target  ids.LSN // exclusive position the waiter needs stable
	done    chan struct{}
	outcome SyncOutcome
	err     error
	enq     time.Time
}

// groupCommitter owns the flusher goroutine and its queue.
type groupCommitter struct {
	l     *Log
	cfg   GroupCommitConfig
	clock disk.Clock

	mu       sync.Mutex
	room     *sync.Cond // backpressure: signaled when the queue drains
	pending  []*gcWaiter
	stopped  bool // no new waiters; pending being resolved
	stopping bool
	drain    bool // stop mode: final sync (close) vs fail (crash)

	wake   chan struct{} // cap 1: queue went empty -> non-empty
	full   chan struct{} // cap 1: queue reached MaxBatch
	stopCh chan struct{}
	done   chan struct{} // closed when the flusher exits
}

// StartGroupCommit routes this log's force requests through a
// dedicated flusher goroutine per cfg. clock drives the commit window
// (nil means an unscaled wall clock); the runtime passes the
// universe's clock so a virtual clock drives the window
// deterministically. No-op when cfg.Enabled is false, when the log is
// closed, or when a flusher is already running.
func (l *Log) StartGroupCommit(cfg GroupCommitConfig, clock disk.Clock) {
	if !cfg.Enabled {
		return
	}
	if clock == nil {
		clock = disk.NewRealClock(1)
	}
	g := &groupCommitter{
		l:      l,
		cfg:    cfg.withDefaults(),
		clock:  clock,
		wake:   make(chan struct{}, 1),
		full:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	g.room = sync.NewCond(&g.mu)
	l.mu.Lock()
	if l.closed || l.gc != nil {
		l.mu.Unlock()
		return
	}
	l.gc = g
	l.mu.Unlock()
	go g.run()
}

// queueCap bounds the waiter queue; enqueuers past it block until the
// flusher drains a batch (backpressure instead of unbounded memory).
func (g *groupCommitter) queueCap() int { return 4 * g.cfg.MaxBatch }

// wait enqueues a force request and blocks until a batch sync covers
// it (or shutdown resolves it).
func (g *groupCommitter) wait(target ids.LSN) (SyncOutcome, error) {
	w := &gcWaiter{target: target, done: make(chan struct{}), enq: time.Now()}
	g.mu.Lock()
	for !g.stopped && len(g.pending) >= g.queueCap() {
		g.l.m.GroupBackpressure.Inc()
		g.room.Wait()
	}
	if g.stopped {
		g.mu.Unlock()
		return SyncClean, ErrClosed
	}
	g.pending = append(g.pending, w)
	n := len(g.pending)
	g.mu.Unlock()
	if n == 1 {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
	if n >= g.cfg.MaxBatch {
		select {
		case g.full <- struct{}{}:
		default:
		}
	}
	<-w.done
	g.l.m.GroupWaitMicros.Observe(time.Since(w.enq).Microseconds())
	return w.outcome, w.err
}

// run is the flusher: wait for the first request, hold the commit
// window open so concurrent requests pile up, then satisfy batches
// until the queue is dry. Follow-up batches skip the window — under
// overload the sync latency itself is the batching interval.
func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		select {
		case <-g.stopCh:
			g.finish()
			return
		case <-g.wake:
		}
		if g.window() {
			// Stop arrived mid-window: the shutdown mode, not another
			// sync, decides the fate of whatever is queued — a crash
			// must fail waiters, not quietly commit them on the way out.
			g.finish()
			return
		}
		for g.syncBatch() {
		}
	}
}

// window sleeps MaxWait on the configured clock unless the batch
// fills first; reports whether stop cut it short.
func (g *groupCommitter) window() (stopped bool) {
	timer := make(chan struct{})
	go func() {
		g.clock.Sleep(g.cfg.MaxWait)
		close(timer)
	}()
	select {
	case <-timer:
		return false
	case <-g.full:
		return false
	case <-g.stopCh:
		return true
	}
}

// syncBatch takes up to MaxBatch waiters and satisfies them with one
// device sync; reports whether more are already pending. Every
// queue-empty -> non-empty transition sends a wake token, so waiters
// that arrive after the final emptiness check re-arm the run loop.
func (g *groupCommitter) syncBatch() bool {
	g.mu.Lock()
	n := len(g.pending)
	if n == 0 {
		g.mu.Unlock()
		return false
	}
	if n > g.cfg.MaxBatch {
		n = g.cfg.MaxBatch
	}
	batch := g.pending[:n:n]
	rest := make([]*gcWaiter, len(g.pending)-n)
	copy(rest, g.pending[n:])
	g.pending = rest
	g.room.Broadcast()
	g.mu.Unlock()

	g.l.syncFor(batch)

	g.mu.Lock()
	more := len(g.pending) > 0
	g.mu.Unlock()
	return more
}

// stopAndWait stops the flusher and blocks until it has exited and
// every queued waiter is resolved. Idempotent; concurrent callers all
// wait for the same exit.
func (g *groupCommitter) stopAndWait(drain bool) {
	g.mu.Lock()
	if !g.stopping {
		g.stopping = true
		g.drain = drain
		close(g.stopCh)
	}
	g.mu.Unlock()
	<-g.done
}

// finish resolves whatever is still queued at shutdown: a clean close
// drains it with a final sync; a crash fails it — those records were
// never acknowledged, so losing them is within the contract.
func (g *groupCommitter) finish() {
	g.mu.Lock()
	g.stopped = true
	pending := g.pending
	g.pending = nil
	drain := g.drain
	g.room.Broadcast()
	g.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	if drain {
		g.l.syncFor(pending)
		return
	}
	for _, w := range pending {
		w.err = ErrClosed
		close(w.done)
	}
}

// syncFor performs one device sync on behalf of batch and completes
// every waiter. The sync covers the whole log tail, so it necessarily
// covers each waiter's target; when a previous batch's sync already
// covered everything the batch rides for free. The first waiter of a
// real sync is its issuer (per-site accounting in core keys off
// this); everyone else is a combined force.
func (l *Log) syncFor(batch []*gcWaiter) {
	l.mu.Lock()
	var didSync bool
	var err error
	if l.closed {
		err = ErrClosed
	} else {
		didSync, err = l.syncLocked()
	}
	l.mu.Unlock()
	if err == nil {
		if didSync {
			l.m.GroupBatchSize.Observe(int64(len(batch)))
			l.m.GroupSyncsSaved.Add(int64(len(batch) - 1))
		} else {
			l.m.GroupSyncsSaved.Add(int64(len(batch)))
		}
	}
	for i, w := range batch {
		w.err = err
		if err == nil {
			if didSync && i == 0 {
				w.outcome = SyncIssued
			} else {
				w.outcome = SyncCombined
			}
		}
		close(w.done)
	}
}
