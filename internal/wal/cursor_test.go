package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ids"
)

// TestScanFromMatchesScan: a cursor visits exactly the records Scan
// visits, from any starting position.
func TestScanFromMatchesScan(t *testing.T) {
	l, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(256) // force several segments

	var lsns []ids.LSN
	for i := 0; i < 50; i++ {
		lsn, err := l.Append(RecordType(i%7), []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}

	for _, from := range []ids.LSN{ids.NilLSN, lsns[0], lsns[10], lsns[49]} {
		var want []Record
		if err := l.Scan(from, func(r Record) error {
			r.Payload = append([]byte(nil), r.Payload...) // payload is scan-owned
			want = append(want, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		cur, err := l.ScanFrom(from)
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		for {
			rec, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rec.Payload = append([]byte(nil), rec.Payload...) // payload is cursor-owned
			got = append(got, rec)
		}
		if len(got) != len(want) {
			t.Fatalf("from %v: cursor saw %d records, Scan saw %d", from, len(got), len(want))
		}
		for i := range got {
			if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type ||
				string(got[i].Payload) != string(want[i].Payload) {
				t.Fatalf("from %v: record %d differs: %+v vs %+v", from, i, got[i], want[i])
			}
		}
	}
}

// TestScanFromConcurrentCursors: many cursors iterate the same log
// concurrently, each seeing the full record sequence (run under -race).
func TestScanFromConcurrentCursors(t *testing.T) {
	l, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(512)

	const records = 200
	for i := 0; i < records; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("r%04d", i))); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, err := l.ScanFrom(ids.NilLSN)
			if err != nil {
				errs <- err
				return
			}
			n := 0
			for {
				rec, ok, err := cur.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					break
				}
				if want := fmt.Sprintf("r%04d", n); string(rec.Payload) != want {
					errs <- fmt.Errorf("record %d: got %q, want %q", n, rec.Payload, want)
					return
				}
				n++
			}
			if n != records {
				errs <- fmt.Errorf("saw %d records, want %d", n, records)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestScanFromBoundedView: records appended after ScanFrom are not
// visited — the cursor's view is the log end at creation time.
func TestScanFromBoundedView(t *testing.T) {
	l, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, []byte("early")); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := l.ScanFrom(ids.NilLSN)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte("late")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for {
		rec, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if string(rec.Payload) != "early" {
			t.Fatalf("cursor leaked a late record: %q", rec.Payload)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("cursor saw %d records, want 5", n)
	}
}
