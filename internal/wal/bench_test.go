package wal

import (
	"testing"

	"repro/internal/ids"
)

// benchPayload is a typical record size: an incoming-call record with a
// small argument stream (what the Figure-1 workloads append per call).
var benchPayload = make([]byte, 128)

func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(1 << 30) // no rolls during the measurement
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendInto measures the encode-into path core's appendRec
// uses: the payload is built directly in a pooled scratch buffer.
func BenchmarkWALAppendInto(b *testing.B) {
	l, err := Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(1 << 30)
	enc := EncodeFunc(func(dst []byte) ([]byte, error) {
		return append(dst, benchPayload...), nil
	})
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendInto(0, 1, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCursorScan(b *testing.B) {
	l, err := Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const records = 4096
	for i := 0; i < records; i++ {
		if _, err := l.Append(1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(records * len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := l.ScanFrom(ids.NilLSN)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			rec, ok, err := cur.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			if len(rec.Payload) != len(benchPayload) {
				b.Fatalf("record %d: payload %d bytes", n, len(rec.Payload))
			}
			n++
		}
		if n != records {
			b.Fatalf("scanned %d records, want %d", n, records)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	l, err := Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const records = 4096
	for i := 0; i < records; i++ {
		if _, err := l.Append(1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(records * len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.Scan(ids.NilLSN, func(rec Record) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("scanned %d records, want %d", n, records)
		}
	}
}
