package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

// fillSegments appends records until the log has rolled to at least
// nSegs segments, returning all LSNs.
func fillSegments(t *testing.T, l *Log, nSegs int) []ids.LSN {
	t.Helper()
	payload := bytes.Repeat([]byte("r"), 100)
	var lsns []ids.LSN
	for i := 0; len(l.SegmentPaths()) < nSegs; i++ {
		lsn, err := l.Append(1, payload)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		if i%10 == 0 {
			if err := l.Flush(); err != nil { // rolling happens at flush
				t.Fatal(err)
			}
		}
		if i > 100000 {
			t.Fatal("log never rolled; SetSegmentBytes broken?")
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	return lsns
}

func TestSegmentRollingPreservesRecords(t *testing.T) {
	l, dir := openTemp(t)
	l.SetSegmentBytes(1024)
	lsns := fillSegments(t, l, 4)
	if got := l.Stats().Segments; got < 4 {
		t.Fatalf("segments = %d, want >= 4", got)
	}
	// Every record is readable across segment boundaries.
	for i, lsn := range lsns {
		rec, err := l.Read(lsn)
		if err != nil {
			t.Fatalf("Read(%v) [%d]: %v", lsn, i, err)
		}
		if len(rec.Payload) != 100 {
			t.Fatalf("record %d payload length %d", i, len(rec.Payload))
		}
	}
	// A scan sees them all, in order.
	var seen int
	if err := l.Scan(ids.NilLSN, func(r Record) error {
		if r.LSN != lsns[seen] {
			t.Fatalf("scan order: got %v, want %v", r.LSN, lsns[seen])
		}
		seen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(lsns) {
		t.Fatalf("scanned %d, want %d", seen, len(lsns))
	}
	l.Close()

	// Reopen: same records, same segment layout.
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, lsn := range lsns {
		if _, err := l2.Read(lsn); err != nil {
			t.Fatalf("after reopen Read(%v): %v", lsn, err)
		}
	}
}

func TestTrimHeadDeletesDeadSegments(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.SetSegmentBytes(1024)
	lsns := fillSegments(t, l, 5)
	before := l.Stats().Segments

	keep := lsns[len(lsns)/2]
	if err := l.TrimHead(keep); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= before {
		t.Errorf("segments %d -> %d; nothing trimmed", before, after.Segments)
	}
	if after.TrimmedBytes == 0 {
		t.Error("TrimmedBytes not accounted")
	}
	// Everything at or after keep is still readable.
	for _, lsn := range lsns {
		_, err := l.Read(lsn)
		if lsn >= keep && err != nil {
			t.Errorf("kept record %v unreadable: %v", lsn, err)
		}
	}
	// Start moved forward; scans start there.
	if l.Start() > keep {
		t.Errorf("Start %v is past keep %v", l.Start(), keep)
	}
	count := 0
	if err := l.Scan(ids.NilLSN, func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count == 0 || count == len(lsns) {
		t.Errorf("scan after trim saw %d of %d", count, len(lsns))
	}
}

func TestTrimHeadNeverRemovesActiveSegment(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	lsn, _ := l.Append(1, []byte("x"))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.TrimHead(l.End()); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Errorf("segments = %d, want the active one", got)
	}
	if _, err := l.Read(lsn); err != nil {
		t.Errorf("record lost by no-op trim: %v", err)
	}
}

func TestTrimSurvivesReopen(t *testing.T) {
	l, dir := openTemp(t)
	l.SetSegmentBytes(1024)
	lsns := fillSegments(t, l, 4)
	keep := lsns[len(lsns)-3]
	if err := l.TrimHead(keep); err != nil {
		t.Fatal(err)
	}
	start := l.Start()
	l.Close()

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen after trim: %v", err)
	}
	defer l2.Close()
	if l2.Start() != start {
		t.Errorf("Start after reopen = %v, want %v", l2.Start(), start)
	}
	if _, err := l2.Read(lsns[len(lsns)-1]); err != nil {
		t.Errorf("tail record unreadable after trim+reopen: %v", err)
	}
	if _, err := l2.Read(lsns[0]); err == nil {
		t.Error("trimmed record still readable after reopen")
	}
}

func TestSegmentGapRejected(t *testing.T) {
	l, dir := openTemp(t)
	l.SetSegmentBytes(512)
	fillSegments(t, l, 4)
	paths := l.SegmentPaths()
	l.Close()
	// Delete a middle segment: the gap must be detected at open.
	if err := os.Remove(paths[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Error("Open accepted a log with a missing middle segment")
	}
}

func TestDiscardRemovesUnsyncedSegments(t *testing.T) {
	l, dir := openTemp(t)
	l.SetSegmentBytes(256)
	forced, err := l.Append(1, []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Push unforced data across several new segments.
	big := bytes.Repeat([]byte("z"), 200)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(1, big); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Discard(); err != nil {
		t.Fatalf("Discard: %v", err)
	}
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen after discard: %v", err)
	}
	defer l2.Close()
	if _, err := l2.Read(forced); err != nil {
		t.Errorf("forced record lost: %v", err)
	}
	n := 0
	if err := l2.Scan(ids.NilLSN, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("records after discard = %d, want 1 (only the forced one)", n)
	}
	// New appends continue from the synced watermark.
	lsn, err := l2.Append(1, []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := l2.Read(lsn); err != nil || string(rec.Payload) != "fresh" {
		t.Errorf("append after discard: %v %v", rec, err)
	}
}

func TestSegmentPathsSorted(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.SetSegmentBytes(512)
	fillSegments(t, l, 3)
	paths := l.SegmentPaths()
	for i := 1; i < len(paths); i++ {
		if filepath.Base(paths[i-1]) >= filepath.Base(paths[i]) {
			t.Errorf("segment paths out of order: %v", paths)
		}
	}
}
