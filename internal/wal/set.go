package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/obs"
)

// Set is a sharded log: N appendable shard streams keyed by the
// append's routing key (the context's CompID), each stream owning its
// own segment files, append mutex, group-commit flusher and synced
// watermark. It satisfies Writer, so core.Process drives it exactly
// like a single Log — what changes is that appends from different
// contexts stop serializing on one mutex and one flusher, and forces
// to different shards sync different files concurrently.
//
// Cross-shard ordering: there is none, deliberately. Recoverability
// does not need a totally ordered log (arXiv:1901.06491) — it needs
// the per-context record order, and a context's records all land in
// one stream per era because the routing key is the context ID. The
// well-known checkpoint watermark becomes a per-stream vector (see
// SaveWellKnownMarks).
type Set struct {
	dir    string
	eras   []Era
	shards []Shard // era order; index-aligned with eras expansion
	active []*Log  // logs of the latest era, routing-index order
	byStr  map[uint32]*Log
	m      *obs.WALMetrics
}

// OpenSet opens (creating or resharding as necessary) the sharded log
// at dir with n appendable shards:
//
//   - fresh directory: creates streams 1..n (no empty stream-0 era);
//   - legacy single-stream directory: records era {0,1} and, when
//     n > 1, appends era {base 1, n} — an in-place upgrade, old
//     records untouched;
//   - already-sharded directory: n <= 1 keeps the existing layout
//     (restarts with a zero config must not reshard), n != current
//     count appends a new era.
func OpenSet(dir string, model disk.Model, n int) (*Set, error) {
	if n > ids.MaxStream {
		return nil, fmt.Errorf("wal: %d shards exceeds the %d-stream LSN tag space", n, ids.MaxStream)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	eras, err := loadShardMeta(dir)
	if err != nil {
		return nil, err
	}
	reshards := 0
	if eras == nil {
		if legacy, err := hasRootSegments(dir); err != nil {
			return nil, err
		} else if legacy {
			eras = []Era{{Base: 0, Count: 1}}
		}
	}
	switch {
	case len(eras) == 0:
		if n < 1 {
			n = 1
		}
		eras = []Era{{Base: 1, Count: n}}
	case n >= 1 && n != eras[len(eras)-1].Count:
		last := eras[len(eras)-1]
		base := uint64(last.Base) + uint64(last.Count)
		if base+uint64(n)-1 > ids.MaxStream {
			return nil, fmt.Errorf("wal: reshard to %d shards exhausts the %d-stream LSN tag space", n, ids.MaxStream)
		}
		eras = append(eras, Era{Base: uint32(base), Count: n})
		reshards++
	}
	if err := saveShardMeta(dir, eras); err != nil {
		return nil, err
	}

	s := &Set{
		dir:   dir,
		eras:  eras,
		byStr: make(map[uint32]*Log),
		m:     obs.WALView(obs.Default()),
	}
	for ei, e := range eras {
		for i := 0; i < e.Count; i++ {
			stream := e.Base + uint32(i)
			sdir, base := dir, firstLSN
			if stream != 0 {
				sdir = filepath.Join(dir, shardDirName(stream))
				base = ids.StreamLSN(stream, ids.LSN(segHeaderSize))
			}
			l, err := openLog(sdir, model, base)
			if err != nil {
				s.closeOpened()
				return nil, err
			}
			s.shards = append(s.shards, Shard{Stream: stream, Era: ei, Log: l})
			s.byStr[stream] = l
			if ei == len(eras)-1 {
				s.active = append(s.active, l)
			}
		}
	}
	for ; reshards > 0; reshards-- {
		s.m.ShardReshards.Inc()
	}
	s.m.ShardStreams.Observe(int64(len(s.active)))
	return s, nil
}

// hasRootSegments reports whether dir itself holds legacy stream-0
// segment files.
func hasRootSegments(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("wal: read dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			return true, nil
		}
	}
	return false, nil
}

func (s *Set) closeOpened() {
	for _, sh := range s.shards {
		sh.Log.Close()
	}
}

// shardIdx maps a routing key onto [0, n). Key 0 — the runtime's
// "meta" key for process-wide records (CompIDs start at 1) — always
// maps to shard 0, so checkpoint records share one stream and
// SyncedLSN is well defined.
func shardIdx(key uint64, n int) int {
	if key == 0 || n <= 1 {
		return 0
	}
	h := key * 0x9E3779B97F4A7C15 // Fibonacci hashing; CompIDs are small sequential ints
	h ^= h >> 33
	return int(h % uint64(n))
}

// route returns the active shard the key maps to, and its index.
func (s *Set) route(key uint64) (*Log, int) {
	i := shardIdx(key, len(s.active))
	return s.active[i], i
}

// AppendInto appends to the shard the key maps to. Implements Writer.
func (s *Set) AppendInto(key uint64, t RecordType, enc PayloadEncoder) (ids.LSN, error) {
	l, i := s.route(key)
	lsn, err := l.AppendInto(key, t, enc)
	if err == nil {
		s.m.ShardAppends.Inc()
		s.m.ShardSpread.Observe(int64(i))
	}
	return lsn, err
}

// streamLog resolves the shard owning an LSN's stream.
func (s *Set) streamLog(lsn ids.LSN) (*Log, error) {
	l, ok := s.byStr[lsn.Stream()]
	if !ok {
		return nil, fmt.Errorf("%w: %v (no stream %d)", ErrNotFound, lsn, lsn.Stream())
	}
	return l, nil
}

// ForceTo implements Writer: the force routes to the LSN's stream.
func (s *Set) ForceTo(lsn ids.LSN) error {
	_, err := s.SyncTo(lsn)
	return err
}

// SyncTo implements Writer. A nil LSN is a clean force accounted to
// the meta shard, as on a single Log.
func (s *Set) SyncTo(lsn ids.LSN) (SyncOutcome, error) {
	if lsn.IsNil() {
		return s.active[0].SyncTo(lsn)
	}
	l, err := s.streamLog(lsn)
	if err != nil {
		return SyncClean, err
	}
	return l.SyncTo(lsn)
}

// SyncAll forces the full tail of every appendable shard (read-only
// era streams have no dirty tail). The combined outcome is SyncIssued
// if any shard issued a device sync.
func (s *Set) SyncAll() (SyncOutcome, error) {
	out := SyncClean
	for _, l := range s.active {
		o, err := l.SyncAll()
		if err != nil {
			return out, err
		}
		if o == SyncIssued || (o == SyncCombined && out == SyncClean) {
			out = o
		}
	}
	return out, nil
}

// SyncedLSN implements Writer: the stable watermark of the meta shard
// (where checkpoint records live).
func (s *Set) SyncedLSN() ids.LSN { return s.active[0].SyncedLSN() }

// Flush implements Writer.
func (s *Set) Flush() error {
	for _, sh := range s.shards {
		if err := sh.Log.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Read implements Writer, routed by the LSN's stream tag.
func (s *Set) Read(lsn ids.LSN) (Record, error) {
	l, err := s.streamLog(lsn)
	if err != nil {
		return Record{}, err
	}
	return l.Read(lsn)
}

// TrimHead implements Writer, routed by keep's stream tag.
func (s *Set) TrimHead(keep ids.LSN) error {
	l, err := s.streamLog(keep)
	if err != nil {
		return err
	}
	return l.TrimHead(keep)
}

// Empty implements Writer: true when no stream holds a record.
func (s *Set) Empty() bool {
	for _, sh := range s.shards {
		if !sh.Log.Empty() {
			return false
		}
	}
	return true
}

// Shards implements Writer: all streams, era order.
func (s *Set) Shards() []Shard {
	out := make([]Shard, len(s.shards))
	copy(out, s.shards)
	return out
}

// StreamsFor implements Writer: the stream the key maps to in each
// era, era order.
func (s *Set) StreamsFor(key uint64) []uint32 {
	out := make([]uint32, len(s.eras))
	for i, e := range s.eras {
		out[i] = e.Base + uint32(shardIdx(key, e.Count))
	}
	return out
}

// Stats implements Writer: counters summed over all streams.
func (s *Set) Stats() Stats {
	var sum Stats
	for _, sh := range s.shards {
		st := sh.Log.Stats()
		sum.Appends += st.Appends
		sum.Forces += st.Forces
		sum.PhysicalWrites += st.PhysicalWrites
		sum.BytesWritten += st.BytesWritten
		sum.Segments += st.Segments
		sum.TrimmedBytes += st.TrimmedBytes
		sum.AppendBusyNanos += st.AppendBusyNanos
		sum.SyncBusyNanos += st.SyncBusyNanos
	}
	return sum
}

// ResetStats implements Writer.
func (s *Set) ResetStats() {
	for _, sh := range s.shards {
		sh.Log.ResetStats()
	}
}

// SetSegmentBytes implements Writer.
func (s *Set) SetSegmentBytes(n int64) {
	for _, sh := range s.shards {
		sh.Log.SetSegmentBytes(n)
	}
}

// SetMetrics implements Writer: every shard accounts to reg, and so
// do the set-level wal.shard.* counters.
func (s *Set) SetMetrics(reg *obs.Registry) {
	s.m = obs.WALView(reg)
	for _, sh := range s.shards {
		sh.Log.SetMetrics(reg)
	}
}

// StartGroupCommit implements Writer: one flusher per appendable
// shard, so commit windows on different shards close — and sync their
// files — independently and in parallel.
func (s *Set) StartGroupCommit(cfg GroupCommitConfig, clock disk.Clock) {
	for _, l := range s.active {
		l.StartGroupCommit(cfg, clock)
	}
}

// Close implements Writer.
func (s *Set) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.Log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Discard implements Writer: every shard drops its unforced tail, the
// per-shard crash model.
func (s *Set) Discard() error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.Log.Discard(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
