package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/obs"
)

// TestForceToCoveredLSNIsClean pins the LSN-aware force contract: a
// record already covered by the synced watermark costs nothing even
// when the log tail is dirty — that is the whole point of ForceTo over
// the all-or-nothing Force.
func TestForceToCoveredLSNIsClean(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	a, err := l.Append(1, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ForceTo(a); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 1 {
		t.Fatalf("Forces = %d after first ForceTo, want 1", got)
	}
	// Dirty the tail; a's force must stay free.
	if _, err := l.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	out, err := l.SyncTo(a)
	if err != nil {
		t.Fatal(err)
	}
	if out != SyncClean {
		t.Errorf("SyncTo(covered) = %v, want SyncClean", out)
	}
	if got := l.Stats().Forces; got != 1 {
		t.Errorf("Forces = %d after covered ForceTo with dirty tail, want still 1", got)
	}
	// Force() still covers the whole tail.
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 2 {
		t.Errorf("Forces = %d after tail Force, want 2", got)
	}
}

func TestForceToNilIsClean(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if _, err := l.Append(1, []byte("dirty tail")); err != nil {
		t.Fatal(err)
	}
	out, err := l.SyncTo(ids.NilLSN)
	if err != nil {
		t.Fatal(err)
	}
	if out != SyncClean {
		t.Errorf("SyncTo(nil) = %v, want SyncClean", out)
	}
	if got := l.Stats().Forces; got != 0 {
		t.Errorf("Forces = %d after nil ForceTo, want 0", got)
	}
}

func TestSyncedLSNTracksForces(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	a, err := l.Append(1, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedLSN(); got > a {
		t.Errorf("SyncedLSN = %v before any force, covers unforced %v", got, a)
	}
	if err := l.ForceTo(a); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedLSN(); got <= a {
		t.Errorf("SyncedLSN = %v after ForceTo(%v), want > %v", got, a, a)
	}
}

// groupLog opens a log with the group-commit flusher running.
func groupLog(t *testing.T, cfg GroupCommitConfig, clock disk.Clock) (*Log, string, *obs.Registry) {
	t.Helper()
	l, path := openTemp(t)
	reg := obs.NewRegistry()
	l.SetMetrics(reg)
	cfg.Enabled = true
	l.StartGroupCommit(cfg, clock)
	return l, path, reg
}

// ackRec is one acknowledged append: ForceTo returned nil, so the
// record must survive any subsequent crash.
type ackRec struct {
	lsn     ids.LSN
	payload string
}

// TestGroupCommitStressAccounting runs concurrent committers against
// the flusher (virtual clock: the commit window is deterministic and
// instant) and checks the force-accounting invariant: every request is
// resolved exactly once as a device sync, a saved sync, or a clean
// force — wal.forces + wal.group.syncs_saved + wal.clean_forces equals
// the request count. Run under -race this is also the flusher's data
// race stress.
func TestGroupCommitStressAccounting(t *testing.T) {
	l, path, reg := groupLog(t, GroupCommitConfig{MaxBatch: 8}, disk.NewVirtualClock())
	const workers, iters = 8, 40

	acked := make([][]ackRec, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				payload := fmt.Sprintf("w%d-%d", g, i)
				lsn, err := l.Append(1, []byte(payload))
				if err != nil {
					t.Errorf("worker %d: Append: %v", g, err)
					return
				}
				if err := l.ForceTo(lsn); err != nil {
					t.Errorf("worker %d: ForceTo: %v", g, err)
					return
				}
				acked[g] = append(acked[g], ackRec{lsn, payload})
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	forces := snap.Counter(obs.WALForces)
	saved := snap.Counter(obs.WALGroupSyncsSaved)
	clean := snap.Counter(obs.WALCleanForces)
	if total := forces + saved + clean; total != workers*iters {
		t.Errorf("force accounting: forces %d + saved %d + clean %d = %d, want %d",
			forces, saved, clean, total, workers*iters)
	}
	if forces == 0 {
		t.Error("no device syncs at all")
	}

	// Clean close drains; every acknowledged record survives reopen.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkAcked(t, l2, acked)
}

// TestGroupCommitCrashDurability is the crash property: inject a crash
// (Discard) in the middle of a concurrent commit storm; afterwards
// every record whose ForceTo was acknowledged before the crash must be
// readable on reopen. Lost in-flight requests must fail, not hang.
func TestGroupCommitCrashDurability(t *testing.T) {
	l, path, _ := groupLog(t, GroupCommitConfig{MaxBatch: 4}, disk.NewVirtualClock())
	const workers, iters = 8, 60

	acked := make([][]ackRec, workers)
	crashed := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				payload := fmt.Sprintf("w%d-%d", g, i)
				lsn, err := l.Append(1, []byte(payload))
				if err != nil {
					return // crashed under us: unacked, nothing to check
				}
				if err := l.ForceTo(lsn); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("worker %d: ForceTo: %v", g, err)
					}
					return
				}
				acked[g] = append(acked[g], ackRec{lsn, payload})
			}
		}(g)
	}
	go func() {
		defer close(crashed)
		time.Sleep(2 * time.Millisecond) // let the storm build
		if err := l.Discard(); err != nil {
			t.Errorf("Discard: %v", err)
		}
	}()
	wg.Wait()
	<-crashed

	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkAcked(t, l2, acked)
}

func checkAcked(t *testing.T, l *Log, acked [][]ackRec) {
	t.Helper()
	n := 0
	for g, list := range acked {
		for _, a := range list {
			rec, err := l.Read(a.lsn)
			if err != nil {
				t.Fatalf("worker %d: acked record %v lost: %v", g, a.lsn, err)
			}
			if string(rec.Payload) != a.payload {
				t.Fatalf("worker %d: record %v = %q, want %q", g, a.lsn, rec.Payload, a.payload)
			}
			n++
		}
	}
	if n == 0 {
		t.Error("no records were acknowledged before the crash")
	}
}

// TestGroupCommitCloseDrainsPending holds the commit window open (an
// hour on the wall clock) so a force request is provably parked in the
// flusher queue, then closes the log: Close must resolve the waiter
// with a final sync, and the record must survive reopen.
func TestGroupCommitCloseDrainsPending(t *testing.T) {
	l, path, _ := groupLog(t, GroupCommitConfig{MaxWait: time.Hour}, disk.NewRealClock(1))
	lsn, err := l.Append(1, []byte("parked"))
	if err != nil {
		t.Fatal(err)
	}
	forceErr := make(chan error, 1)
	go func() { forceErr <- l.ForceTo(lsn) }()
	waitPending(t, l, 1)

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-forceErr:
		if err != nil {
			t.Fatalf("ForceTo resolved with %v, want nil (drained by Close)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForceTo still blocked after Close")
	}
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Read(lsn); err != nil {
		t.Errorf("drained record lost: %v", err)
	}
}

// TestGroupCommitCrashFailsPending is the other shutdown mode: Discard
// (a crash) must fail parked waiters with ErrClosed instead of
// acknowledging records it is about to throw away.
func TestGroupCommitCrashFailsPending(t *testing.T) {
	l, path, _ := groupLog(t, GroupCommitConfig{MaxWait: time.Hour}, disk.NewRealClock(1))
	lsn, err := l.Append(1, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	forceErr := make(chan error, 1)
	go func() { forceErr <- l.ForceTo(lsn) }()
	waitPending(t, l, 1)

	if err := l.Discard(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-forceErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("ForceTo resolved with %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForceTo still blocked after Discard")
	}
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Read(lsn); err == nil {
		t.Error("unacknowledged record survived the crash — ack semantics too weak to test")
	}
}

// waitPending polls until the flusher queue holds at least n waiters.
func waitPending(t *testing.T, l *Log, n int) {
	t.Helper()
	l.mu.Lock()
	g := l.gc
	l.mu.Unlock()
	if g == nil {
		t.Fatal("group commit not running")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		got := len(g.pending)
		g.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher queue never reached %d waiters", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGroupCommitBackpressure fills the bounded waiter queue (MaxBatch
// 1 bounds it at 4) while the first commit window is still open; the
// excess committers must block — visible as wal.group.backpressure —
// and still complete once the flusher drains.
func TestGroupCommitBackpressure(t *testing.T) {
	l, _, reg := groupLog(t,
		GroupCommitConfig{MaxWait: 50 * time.Millisecond, MaxBatch: 1},
		disk.NewRealClock(1))
	defer l.Close()
	// A single burst can serialize under an unlucky scheduler (each
	// committer finishing before the next starts sees an empty queue),
	// so repeat the burst until the counter moves, bounded.
	const committers = 32
	for attempt := 0; attempt < 10; attempt++ {
		var wg sync.WaitGroup
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				lsn, err := l.Append(1, []byte("x"))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := l.ForceTo(lsn); err != nil {
					t.Errorf("ForceTo: %v", err)
				}
			}()
		}
		wg.Wait()
		if reg.Snapshot().Counter(obs.WALGroupBackpressure) > 0 {
			return
		}
	}
	t.Error("10 bursts of 32 committers against a 4-deep queue produced no backpressure")
}

// TestGroupCommitDisabledZeroValue: the zero GroupCommitConfig must
// leave the direct force path in place.
func TestGroupCommitDisabledZeroValue(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.StartGroupCommit(GroupCommitConfig{}, nil)
	if l.gc != nil {
		t.Fatal("zero-value config started a flusher")
	}
	lsn, err := l.Append(1, []byte("direct"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 1 {
		t.Errorf("Forces = %d, want 1", got)
	}
}

// gateModel is a disk model whose Sync parks until released, pinning
// the "device sync in flight" state open for as long as a test needs.
type gateModel struct {
	entered chan struct{} // closed when Sync is reached
	release chan struct{} // Sync returns when this closes
}

func (m *gateModel) Write(int) {}
func (m *gateModel) Sync() {
	select {
	case <-m.entered:
	default:
		close(m.entered)
	}
	<-m.release
}
func (m *gateModel) Name() string { return "gate" }

// TestAppendNotBlockedByInFlightSync pins the mutex-release fix: while
// a device sync is in flight, Append must proceed — the log mutex is
// not held across the device sync. The gate model holds the sync open
// until the concurrent append has demonstrably completed.
func TestAppendNotBlockedByInFlightSync(t *testing.T) {
	model := &gateModel{entered: make(chan struct{}), release: make(chan struct{})}
	l, err := Open(t.TempDir()+"/slow.log", model)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("to sync")); err != nil {
		t.Fatal(err)
	}
	syncDone := make(chan struct{})
	go func() {
		defer close(syncDone)
		if err := l.Force(); err != nil {
			t.Errorf("Force: %v", err)
		}
	}()
	select {
	case <-model.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("device sync never started")
	}
	appendDone := make(chan struct{})
	go func() {
		defer close(appendDone)
		if _, err := l.Append(1, []byte("concurrent")); err != nil {
			t.Errorf("Append during sync: %v", err)
		}
	}()
	select {
	case <-appendDone: // appended while the sync was provably in flight
	case <-time.After(5 * time.Second):
		close(model.release)
		t.Fatal("Append blocked behind the in-flight device sync")
	}
	close(model.release)
	<-syncDone
}
