package wal

import (
	"testing"

	"repro/internal/obs"
)

// TestCleanForceIsFreeAndNotDoubleCounted pins the "clean force is
// free" contract at the device boundary: forcing an already-clean log
// does no I/O, does not advance Stats().Forces, and is accounted only
// under the wal.clean_forces counter — never under wal.forces. Site
// counters in core key off Stats().Forces advancing, so this is also
// the regression guard against double-counting clean forces anywhere
// upstream.
func TestCleanForceIsFreeAndNotDoubleCounted(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	reg := obs.NewRegistry()
	l.SetMetrics(reg)

	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Forces != 1 {
		t.Fatalf("Forces = %d after one dirty force, want 1", after.Forces)
	}

	// Repeated forces on a clean log: free, and counted separately.
	for i := 0; i < 3; i++ {
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Forces != 1 {
		t.Errorf("Forces = %d after clean forces, want still 1", s.Forces)
	}
	if s.PhysicalWrites != after.PhysicalWrites {
		t.Errorf("PhysicalWrites advanced on a clean force: %d -> %d",
			after.PhysicalWrites, s.PhysicalWrites)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.WALForces); got != 1 {
		t.Errorf("wal.forces counter = %d, want 1", got)
	}
	if got := snap.Counter(obs.WALCleanForces); got != 3 {
		t.Errorf("wal.clean_forces counter = %d, want 3", got)
	}
	// The force-latency histogram only observes device forces.
	if h := snap.HistogramFor(obs.WALForceMicros); h.Count != 1 {
		t.Errorf("wal.force_micros count = %d, want 1", h.Count)
	}

	// Dirtying the log re-arms the real force path.
	if _, err := l.Append(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 2 {
		t.Errorf("Forces = %d after second dirty force, want 2", got)
	}
	if got := reg.Snapshot().Counter(obs.WALForces); got != 2 {
		t.Errorf("wal.forces counter = %d, want 2", got)
	}
}
