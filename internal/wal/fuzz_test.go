package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

// FuzzOpenTornSegment: arbitrary bytes appended to (or replacing the
// tail of) a valid segment must never panic Open, and the valid prefix
// must survive.
func FuzzOpenTornSegment(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0xff, 0x00, 0x01}, true)
	f.Add([]byte("half a record maybe"), false)
	f.Fuzz(func(t *testing.T, tail []byte, clobberLast bool) {
		dir := filepath.Join(t.TempDir(), "f.log")
		l, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		var lsns []ids.LSN
		for i := 0; i < 3; i++ {
			lsn, err := l.Append(RecordType(i+1), []byte{byte(i), byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			lsns = append(lsns, lsn)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
		seg := l.SegmentPaths()[len(l.SegmentPaths())-1]
		l.Close()

		fh, err := os.OpenFile(seg, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if clobberLast && len(tail) > 0 {
			fi, _ := fh.Stat()
			off := fi.Size() - int64(len(tail))
			if off < segHeaderSize {
				off = segHeaderSize
			}
			fh.WriteAt(tail, off)
		} else {
			fi, _ := fh.Stat()
			fh.WriteAt(tail, fi.Size())
		}
		fh.Close()

		l2, err := Open(dir, nil)
		if err != nil {
			// Header clobbered: rejection is acceptable, panics are not.
			return
		}
		defer l2.Close()
		// Whatever survived must scan cleanly and in order.
		prev := ids.NilLSN
		if err := l2.Scan(ids.NilLSN, func(r Record) error {
			if r.LSN <= prev {
				t.Fatalf("scan not monotonic at %v", r.LSN)
			}
			prev = r.LSN
			return nil
		}); err != nil {
			t.Fatalf("scan after torn open: %v", err)
		}
		// Appends still work.
		if _, err := l2.Append(1, []byte("post")); err != nil {
			t.Fatalf("append after torn open: %v", err)
		}
	})
}
