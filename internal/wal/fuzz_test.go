package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

// FuzzOpenTornSegment: arbitrary bytes appended to (or replacing the
// tail of) a valid segment must never panic Open, and the valid prefix
// must survive.
func FuzzOpenTornSegment(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0xff, 0x00, 0x01}, true)
	f.Add([]byte("half a record maybe"), false)
	f.Fuzz(func(t *testing.T, tail []byte, clobberLast bool) {
		dir := filepath.Join(t.TempDir(), "f.log")
		l, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		var lsns []ids.LSN
		for i := 0; i < 3; i++ {
			lsn, err := l.Append(RecordType(i+1), []byte{byte(i), byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			lsns = append(lsns, lsn)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
		seg := l.SegmentPaths()[len(l.SegmentPaths())-1]
		l.Close()

		fh, err := os.OpenFile(seg, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if clobberLast && len(tail) > 0 {
			fi, _ := fh.Stat()
			off := fi.Size() - int64(len(tail))
			if off < segHeaderSize {
				off = segHeaderSize
			}
			fh.WriteAt(tail, off)
		} else {
			fi, _ := fh.Stat()
			fh.WriteAt(tail, fi.Size())
		}
		fh.Close()

		l2, err := Open(dir, nil)
		if err != nil {
			// Header clobbered: rejection is acceptable, panics are not.
			return
		}
		defer l2.Close()
		// Whatever survived must scan cleanly and in order.
		prev := ids.NilLSN
		if err := l2.Scan(ids.NilLSN, func(r Record) error {
			if r.LSN <= prev {
				t.Fatalf("scan not monotonic at %v", r.LSN)
			}
			prev = r.LSN
			return nil
		}); err != nil {
			t.Fatalf("scan after torn open: %v", err)
		}
		// Appends still work.
		if _, err := l2.Append(1, []byte("post")); err != nil {
			t.Fatalf("append after torn open: %v", err)
		}
	})
}

// FuzzFrameRoundTrip fuzzes the record framing itself: arbitrary
// payloads (including empty, binary, and multi-record mixes) must
// survive append -> force -> reopen -> scan bit-for-bit, through both
// the buffered append path and the encode-into path.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte("a"), uint8(1))
	f.Add([]byte{0xc3, 0x02}, []byte{0x00}, uint8(255))
	f.Add(bytes.Repeat([]byte{0xaa}, 300), []byte{}, uint8(7))
	f.Fuzz(func(t *testing.T, p1, p2 []byte, typ uint8) {
		dir := filepath.Join(t.TempDir(), "f.log")
		l, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		lsn1, err := l.Append(RecordType(typ), p1)
		if err != nil {
			t.Fatal(err)
		}
		lsn2, err := l.AppendInto(0, RecordType(typ)+1, EncodeFunc(func(dst []byte) ([]byte, error) {
			return append(dst, p2...), nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
		l.Close()

		l2, err := Open(dir, nil)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		var got []Record
		if err := l2.Scan(ids.NilLSN, func(r Record) error {
			r.Payload = append([]byte(nil), r.Payload...)
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("scan: %v", err)
		}
		if len(got) != 2 {
			t.Fatalf("scanned %d records, want 2", len(got))
		}
		if got[0].LSN != lsn1 || got[0].Type != RecordType(typ) || !bytes.Equal(got[0].Payload, p1) {
			t.Fatalf("record 1 mismatch: %+v", got[0])
		}
		if got[1].LSN != lsn2 || got[1].Type != RecordType(typ)+1 || !bytes.Equal(got[1].Payload, p2) {
			t.Fatalf("record 2 mismatch: %+v", got[1])
		}
	})
}
