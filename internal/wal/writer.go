package wal

import (
	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/obs"
)

// PayloadEncoder produces a record payload by appending it to the
// slice it is given and returning the extended slice (the append-style
// contract of Log.AppendInto). Hot record types implement it directly
// on their pointer receivers so the append path stays allocation-free;
// one-off encoders wrap a closure in EncodeFunc.
type PayloadEncoder interface {
	AppendPayload(dst []byte) ([]byte, error)
}

// EncodeFunc adapts a plain closure to PayloadEncoder.
type EncodeFunc func(dst []byte) ([]byte, error)

// AppendPayload implements PayloadEncoder.
func (f EncodeFunc) AppendPayload(dst []byte) ([]byte, error) { return f(dst) }

// Shard is one stream of a sharded log: the stream tag its LSNs carry
// and the Log that owns its files. Writer.Shards returns them in era
// order (monotonic stream tags), which is also temporal order — the
// order recovery scans them in.
type Shard struct {
	// Stream is the tag in the top byte of this shard's LSNs.
	Stream uint32
	// Era indexes the reshard era the stream belongs to (0-based).
	// Streams of the same era carry concurrent records; a stream of a
	// later era holds only records appended after every record of
	// earlier eras' streams.
	Era int
	// Log manages the shard's segment files. Scans and reads on it see
	// only this stream's records.
	Log *Log
}

// Writer is the log interface the Phoenix runtime writes through —
// satisfied by a single *Log (one stream, the legacy bit-for-bit
// format) and by *Set (N shard streams with per-shard group commit).
//
// The redesign over the old concrete-*Log API:
//
//   - AppendInto takes a routing key (the appending context's CompID):
//     a Set hashes it to pick the shard, a Log ignores it.
//   - Forces are LSN-aware (ForceTo/SyncTo) and route to the shard
//     that owns the LSN's stream; bare Force() is deprecated.
//   - Whole-log introspection goes through Shards(): recovery and
//     tooling scan each stream with its own cursor instead of assuming
//     one contiguous LSN space.
type Writer interface {
	// AppendInto appends a record built by enc to the stream the
	// routing key maps to and returns its stream-qualified LSN.
	AppendInto(key uint64, t RecordType, enc PayloadEncoder) (ids.LSN, error)
	// ForceTo blocks until the record at lsn (and everything before it
	// in its stream) is stable.
	ForceTo(lsn ids.LSN) error
	// SyncTo is ForceTo with the outcome exposed for per-site force
	// accounting.
	SyncTo(lsn ids.LSN) (SyncOutcome, error)
	// SyncAll forces every stream's full tail. The outcome is
	// SyncIssued if any stream issued a device sync.
	SyncAll() (SyncOutcome, error)
	// SyncedLSN returns the stable watermark of the meta stream (the
	// stream checkpoint records append to; the only stream of a plain
	// Log).
	SyncedLSN() ids.LSN
	// Flush writes buffered records of every stream to their files
	// without syncing.
	Flush() error
	// Read returns the record at lsn, routed by the LSN's stream tag.
	Read(lsn ids.LSN) (Record, error)
	// TrimHead deletes whole segments entirely before keep in the
	// stream keep's tag names.
	TrimHead(keep ids.LSN) error
	// Empty reports whether no stream holds any record.
	Empty() bool
	// Shards returns the streams in era order.
	Shards() []Shard
	// StreamsFor returns the stream the routing key maps to in each
	// era, in era order — the streams that may hold the key's records.
	StreamsFor(key uint64) []uint32
	// Stats returns activity counters summed over all streams.
	Stats() Stats
	// ResetStats zeroes the activity counters of every stream.
	ResetStats()
	// SetSegmentBytes overrides every stream's segment roll threshold.
	SetSegmentBytes(n int64)
	// SetMetrics redirects device-boundary accounting to reg.
	SetMetrics(reg *obs.Registry)
	// StartGroupCommit starts a group-commit flusher per appendable
	// stream (one for a plain Log).
	StartGroupCommit(cfg GroupCommitConfig, clock disk.Clock)
	// Close flushes and closes every stream without syncing.
	Close() error
	// Discard closes every stream simulating a crash: unforced records
	// are dropped.
	Discard() error
}

var (
	_ Writer = (*Log)(nil)
	_ Writer = (*Set)(nil)
)
