package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

func appendKeyed(t *testing.T, w Writer, key uint64, payload []byte) ids.LSN {
	t.Helper()
	lsn, err := w.AppendInto(key, 1, EncodeFunc(func(dst []byte) ([]byte, error) {
		return append(dst, payload...), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

// TestOpenSetFresh: a fresh 4-shard set creates streams 1..4 (no empty
// legacy stream), routes appends deterministically by key, and reads
// records back through the stream-tagged LSNs.
func TestOpenSetFresh(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p.log")
	s, err := OpenSet(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	shards := s.Shards()
	if len(shards) != 4 {
		t.Fatalf("fresh 4-shard set has %d shards", len(shards))
	}
	for i, sh := range shards {
		if sh.Stream != uint32(i+1) || sh.Era != 0 {
			t.Errorf("shard %d: stream %d era %d, want stream %d era 0", i, sh.Stream, sh.Era, i+1)
		}
	}

	// Key 0 (process-wide records) pins to the meta shard.
	meta := appendKeyed(t, s, 0, []byte("meta"))
	if meta.Stream() != shards[0].Stream {
		t.Errorf("key 0 landed on stream %d, want meta stream %d", meta.Stream(), shards[0].Stream)
	}

	// Routing is deterministic, and reads route back by stream tag.
	byKey := make(map[uint64]uint32)
	for key := uint64(1); key <= 16; key++ {
		lsn := appendKeyed(t, s, key, []byte(fmt.Sprintf("k%d", key)))
		byKey[key] = lsn.Stream()
		rec, err := s.Read(lsn)
		if err != nil {
			t.Fatalf("read %v: %v", lsn, err)
		}
		if !bytes.Equal(rec.Payload, []byte(fmt.Sprintf("k%d", key))) {
			t.Errorf("read %v returned %q", lsn, rec.Payload)
		}
		if streams := s.StreamsFor(key); len(streams) != 1 || streams[0] != lsn.Stream() {
			t.Errorf("StreamsFor(%d) = %v, append landed on %d", key, streams, lsn.Stream())
		}
	}
	spread := make(map[uint32]bool)
	for key, stream := range byKey {
		lsn2 := appendKeyed(t, s, key, []byte("again"))
		if lsn2.Stream() != stream {
			t.Errorf("key %d moved from stream %d to %d", key, stream, lsn2.Stream())
		}
		spread[stream] = true
	}
	if len(spread) < 2 {
		t.Errorf("16 keys all routed to %d stream(s); hashing is not spreading", len(spread))
	}

	// Reopen: same meta, same routing, records still there.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSet(dir, nil, 0) // 0 = keep existing layout
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Shards()); got != 4 {
		t.Fatalf("reopen with n=0: %d shards, want 4", got)
	}
	for key, stream := range byKey {
		if lsn := appendKeyed(t, s2, key, []byte("post")); lsn.Stream() != stream {
			t.Errorf("after reopen key %d routed to stream %d, want %d", key, lsn.Stream(), stream)
		}
	}
}

// TestOpenSetLegacyUpgrade: sharding an existing single-stream log
// keeps the old records in stream 0 (era 0) and appends a new era for
// fresh appends — the in-place upgrade path.
func TestOpenSetLegacyUpgrade(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p.log")
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	legacyLSN, err := l.Append(1, []byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ForceTo(legacyLSN); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSet(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	shards := s.Shards()
	if len(shards) != 5 {
		t.Fatalf("upgraded set has %d shards, want 5 (legacy + 4)", len(shards))
	}
	if shards[0].Stream != 0 || shards[0].Era != 0 {
		t.Fatalf("first shard is stream %d era %d, want the legacy stream 0", shards[0].Stream, shards[0].Era)
	}
	for i := 1; i <= 4; i++ {
		if shards[i].Stream != uint32(i) || shards[i].Era != 1 {
			t.Errorf("shard %d: stream %d era %d, want stream %d era 1", i, shards[i].Stream, shards[i].Era, i)
		}
	}
	// The legacy record is still readable at its untagged LSN.
	rec, err := s.Read(legacyLSN)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Payload, []byte("old")) {
		t.Errorf("legacy record reads %q", rec.Payload)
	}
	// New appends land in the new era, never stream 0.
	for key := uint64(1); key <= 8; key++ {
		if lsn := appendKeyed(t, s, key, []byte("new")); lsn.Stream() == 0 {
			t.Errorf("post-upgrade append for key %d landed in the legacy stream", key)
		}
		if streams := s.StreamsFor(key); len(streams) != 2 || streams[0] != 0 {
			t.Errorf("StreamsFor(%d) = %v, want [0, new-era stream]", key, streams)
		}
	}
}

// TestOpenSetReshard: changing the shard count appends an era with
// fresh stream IDs; reopening with 0 or the same count does not.
func TestOpenSetReshard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p.log")
	s, err := OpenSet(dir, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	appendKeyed(t, s, 7, []byte("era0"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSet(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	shards := s2.Shards()
	if len(shards) != 6 {
		t.Fatalf("resharded set has %d shards, want 6 (2 + 4)", len(shards))
	}
	want := []struct {
		stream uint32
		era    int
	}{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 1}, {6, 1}}
	for i, w := range want {
		if shards[i].Stream != w.stream || shards[i].Era != w.era {
			t.Errorf("shard %d: stream %d era %d, want stream %d era %d",
				i, shards[i].Stream, shards[i].Era, w.stream, w.era)
		}
	}
	if lsn := appendKeyed(t, s2, 7, []byte("era1")); lsn.Stream() < 3 {
		t.Errorf("post-reshard append landed on old-era stream %d", lsn.Stream())
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Same count and zero both keep the layout.
	for _, n := range []int{0, 4} {
		s3, err := OpenSet(dir, nil, n)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(s3.Shards()); got != 6 {
			t.Errorf("reopen with n=%d: %d shards, want 6", n, got)
		}
		s3.Close()
	}
}

// TestOpenSetShardBound: shard counts past the LSN tag space are
// rejected up front.
func TestOpenSetShardBound(t *testing.T) {
	if _, err := OpenSet(filepath.Join(t.TempDir(), "p.log"), nil, ids.MaxStream+1); err == nil {
		t.Fatal("OpenSet accepted a shard count past the stream tag space")
	}
}

// TestSetSyncRouting: SyncTo touches only the target LSN's shard;
// SyncAll makes every appendable shard durable.
func TestSetSyncRouting(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p.log")
	s, err := OpenSet(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Find two keys on different streams.
	a := appendKeyed(t, s, 1, []byte("a"))
	var b ids.LSN
	for key := uint64(2); ; key++ {
		b = appendKeyed(t, s, key, []byte("b"))
		if b.Stream() != a.Stream() {
			break
		}
	}
	if _, err := s.SyncTo(a); err != nil {
		t.Fatal(err)
	}
	// The synced watermark is an exclusive end position: a record is
	// durable once the watermark passes the shard's End() after it.
	la, lb := s.byStr[a.Stream()], s.byStr[b.Stream()]
	if la.SyncedLSN() < la.End() {
		t.Errorf("shard %d synced watermark %v, want >= %v", a.Stream(), la.SyncedLSN(), la.End())
	}
	if lb.SyncedLSN() >= lb.End() {
		t.Errorf("SyncTo(%v) also forced shard %d (synced %v)", a, b.Stream(), lb.SyncedLSN())
	}
	if _, err := s.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if lb.SyncedLSN() < lb.End() {
		t.Errorf("SyncAll left shard %d at %v, want >= %v", b.Stream(), lb.SyncedLSN(), lb.End())
	}
}

// TestWellKnownMarksFormats: the marks vector round-trips; a
// single-stream vector writes the legacy v1 bytes bit-for-bit; v1
// files load as a stream-0 vector; LoadWellKnownLSN refuses v2.
func TestWellKnownMarksFormats(t *testing.T) {
	dir := t.TempDir()

	// {0: lsn} must be byte-identical to SaveWellKnownLSN.
	v1Path := filepath.Join(dir, "v1.wk")
	marksPath := filepath.Join(dir, "marks.wk")
	if err := SaveWellKnownLSN(v1Path, 4242); err != nil {
		t.Fatal(err)
	}
	if err := SaveWellKnownMarks(marksPath, map[uint32]ids.LSN{0: 4242}); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(v1Path)
	b2, _ := os.ReadFile(marksPath)
	if !bytes.Equal(b1, b2) {
		t.Errorf("single-stream marks file differs from the v1 format:\n  v1    % x\n  marks % x", b1, b2)
	}
	if m, err := LoadWellKnownMarks(v1Path); err != nil || len(m) != 1 || m[0] != 4242 {
		t.Errorf("v1 file loads as marks %v, %v; want {0:4242}", m, err)
	}

	// Multi-stream vector round-trips through v2.
	want := map[uint32]ids.LSN{
		1: ids.StreamLSN(1, 100),
		2: ids.StreamLSN(2, 16),
		7: ids.StreamLSN(7, 99999),
	}
	v2Path := filepath.Join(dir, "v2.wk")
	if err := SaveWellKnownMarks(v2Path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWellKnownMarks(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d marks, want %d", len(got), len(want))
	}
	for s, l := range want {
		if got[s] != l {
			t.Errorf("stream %d mark %v, want %v", s, got[s], l)
		}
	}
	if _, err := LoadWellKnownLSN(v2Path); err == nil {
		t.Error("LoadWellKnownLSN accepted a v2 vector file")
	}

	// Corruption is ErrNoWellKnown, not garbage.
	raw, _ := os.ReadFile(v2Path)
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(v2Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWellKnownMarks(v2Path); err != ErrNoWellKnown {
		t.Errorf("corrupt v2 file: err = %v, want ErrNoWellKnown", err)
	}
}

// TestSetDiscardAndEmpty: Discard drops every shard's unforced tail;
// Empty is true only when no stream holds a record.
func TestSetDiscardAndEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p.log")
	s, err := OpenSet(dir, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Error("fresh set is not Empty")
	}
	forced := appendKeyed(t, s, 1, []byte("durable"))
	if err := s.ForceTo(forced); err != nil {
		t.Fatal(err)
	}
	var unforcedKey uint64
	for key := uint64(2); ; key++ {
		if lsn := appendKeyed(t, s, key, []byte("volatile")); lsn.Stream() != forced.Stream() {
			unforcedKey = key
			break
		}
	}
	if s.Empty() {
		t.Error("set with records reports Empty")
	}
	if err := s.Discard(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSet(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Read(forced); err != nil {
		t.Errorf("forced record lost by Discard: %v", err)
	}
	unforcedStream := s2.StreamsFor(unforcedKey)[0]
	if !s2.byStr[unforcedStream].Empty() {
		t.Errorf("unforced shard %d still holds records after Discard", unforcedStream)
	}
}
