package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ids"
)

// A sharded log is a log directory plus a shards.meta file recording
// its reshard eras. Each era is a contiguous run of stream tags; the
// streams of the latest era are the appendable shards, earlier eras
// are read-only history that recovery still scans and trim still
// reclaims. Stream tags are assigned monotonically across eras —
// never reused — so raw LSN comparison orders records first by era
// (temporal order), then by offset within a stream.
//
// Stream 0 is the log directory itself (the legacy single-stream
// layout, bit-for-bit); stream s > 0 lives in the shard-<s>
// subdirectory. A legacy directory upgraded to N shards gets the era
// list [{0,1}, {1,N}]: its old records stay where they are and decode
// unchanged.

// Era is one reshard era: streams Base..Base+Count-1.
type Era struct {
	Base  uint32
	Count int
}

const (
	// shardMetaName is the era-list file inside a sharded log
	// directory; its presence is what makes a directory sharded.
	shardMetaName = "shards.meta"
	// shardMetaMagic heads the meta file.
	shardMetaMagic = "PHXSHARDS1"
)

// shardDirName is the subdirectory of stream s > 0. Stream 0 is the
// log directory itself.
func shardDirName(stream uint32) string {
	return fmt.Sprintf("shard-%03d", stream)
}

// IsSharded reports whether the log directory at dir carries a shard
// era file (i.e. must be opened with OpenSet).
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shardMetaName))
	return err == nil
}

// loadShardMeta reads the era list. A missing file returns (nil, nil).
func loadShardMeta(dir string) ([]Era, error) {
	f, err := os.Open(filepath.Join(dir, shardMetaName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open shard meta: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != shardMetaMagic {
		return nil, fmt.Errorf("wal: bad shard meta magic in %s", dir)
	}
	var eras []Era
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var e Era
		if _, err := fmt.Sscanf(line, "era %d %d", &e.Base, &e.Count); err != nil {
			return nil, fmt.Errorf("wal: bad shard meta line %q: %v", line, err)
		}
		if e.Count < 1 || uint64(e.Base)+uint64(e.Count)-1 > ids.MaxStream {
			return nil, fmt.Errorf("wal: shard meta era out of range: %+v", e)
		}
		if len(eras) > 0 && e.Base <= eras[len(eras)-1].Base+uint32(eras[len(eras)-1].Count)-1 {
			return nil, fmt.Errorf("wal: shard meta eras not monotonic at %+v", e)
		}
		eras = append(eras, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: read shard meta: %w", err)
	}
	if len(eras) == 0 {
		return nil, fmt.Errorf("wal: shard meta in %s lists no eras", dir)
	}
	return eras, nil
}

// saveShardMeta writes the era list atomically: temp file, fsync,
// rename over shards.meta, fsync the directory — the same crash
// discipline as the well-known file, since losing the era list after
// a reshard would strand the new shard directories.
func saveShardMeta(dir string, eras []Era) error {
	var b strings.Builder
	b.WriteString(shardMetaMagic)
	b.WriteByte('\n')
	for _, e := range eras {
		fmt.Fprintf(&b, "era %d %d\n", e.Base, e.Count)
	}
	return atomicWriteFile(filepath.Join(dir, shardMetaName), []byte(b.String()))
}

// atomicWriteFile makes data the durable content of path: write to a
// temp file in the same directory, fsync it, rename into place, fsync
// the directory so the rename itself survives a crash.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
