package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/ids"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "proc.log")
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, dir
}

// activeSegPath returns the tail segment file for direct manipulation.
func activeSegPath(t *testing.T, l *Log) string {
	t.Helper()
	paths := l.SegmentPaths()
	if len(paths) == 0 {
		t.Fatal("no segments")
	}
	return paths[len(paths)-1]
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	lsn, err := l.Append(RecordType(3), []byte("hello phoenix"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	rec, err := l.Read(lsn)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rec.Type != RecordType(3) || string(rec.Payload) != "hello phoenix" {
		t.Errorf("got %v %q", rec.Type, rec.Payload)
	}
	if rec.LSN != lsn {
		t.Errorf("LSN = %v, want %v", rec.LSN, lsn)
	}
}

func TestLSNsAreMonotonic(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	var prev ids.LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(1, bytes.Repeat([]byte("x"), i))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn <= prev {
			t.Fatalf("LSN %v not > previous %v", lsn, prev)
		}
		prev = lsn
	}
}

func TestForcedRecordsSurviveReopen(t *testing.T) {
	l, path := openTemp(t)
	var lsns []ids.LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(RecordType(i%4+1), []byte{byte(i)})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatalf("Force: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	for i, lsn := range lsns {
		rec, err := l2.Read(lsn)
		if err != nil {
			t.Fatalf("Read(%v): %v", lsn, err)
		}
		if len(rec.Payload) != 1 || rec.Payload[0] != byte(i) {
			t.Errorf("record %d payload = %v", i, rec.Payload)
		}
	}
}

func TestUnforcedRecordsLostOnDiscard(t *testing.T) {
	l, path := openTemp(t)
	forced, err := l.Append(1, []byte("survives"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	lost, err := l.Append(1, []byte("lost"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Discard(); err != nil {
		t.Fatalf("Discard: %v", err)
	}
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if _, err := l2.Read(forced); err != nil {
		t.Errorf("forced record lost: %v", err)
	}
	if _, err := l2.Read(lost); err == nil {
		t.Error("unforced record survived Discard")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	l, path := openTemp(t)
	good, err := l.Append(1, []byte("good"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	seg := activeSegPath(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage that is not a valid record.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x13, 0x37, 0x42}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if _, err := l2.Read(good); err != nil {
		t.Errorf("good record lost: %v", err)
	}
	// New appends must land where the torn tail was truncated.
	lsn, err := l2.Append(2, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := l2.Read(lsn)
	if err != nil || string(rec.Payload) != "after" {
		t.Errorf("post-truncation append unreadable: %v %v", rec, err)
	}
}

func TestCorruptRecordStopsScanAtOpen(t *testing.T) {
	l, path := openTemp(t)
	if _, err := l.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	second, err := l.Append(1, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	seg := activeSegPath(t, l)
	l.Close()
	// Flip a byte inside the second record's payload. In the first
	// segment (start LSN 16, 16-byte header) the file offset of a
	// record equals its LSN.
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, int64(second)+frameSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.End() != second {
		t.Errorf("End = %v, want truncation at %v", l2.End(), second)
	}
}

func TestScanOrderAndStop(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := l.Append(RecordType(1), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []byte
	err := l.Scan(ids.NilLSN, func(r Record) error {
		seen = append(seen, r.Payload[0])
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("scanned %d records, want %d", len(seen), n)
	}
	for i, b := range seen {
		if b != byte(i) {
			t.Fatalf("out of order at %d: %d", i, b)
		}
	}
	// Early stop via ErrStopScan.
	count := 0
	err = l.Scan(ids.NilLSN, func(r Record) error {
		count++
		if count == 5 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || count != 5 {
		t.Errorf("early stop: err=%v count=%d", err, count)
	}
}

func TestScanFromMiddle(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	var lsns []ids.LSN
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(1, []byte{byte(i)})
		lsns = append(lsns, lsn)
	}
	var seen []byte
	if err := l.Scan(lsns[6], func(r Record) error {
		seen = append(seen, r.Payload[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 || seen[0] != 6 {
		t.Errorf("scan from middle = %v", seen)
	}
}

func TestNext(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	a, _ := l.Append(1, []byte("aa"))
	b, _ := l.Append(1, []byte("bb"))
	next, err := l.Next(a)
	if err != nil {
		t.Fatal(err)
	}
	if next != b {
		t.Errorf("Next(%v) = %v, want %v", a, next, b)
	}
}

func TestForceOnCleanLogIsFree(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 1 {
		t.Errorf("Forces = %d, want 1 (clean forces are free)", got)
	}
}

func TestFlushMakesReadableWithoutForce(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	lsn, _ := l.Append(1, []byte("buffered"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Read(lsn)
	if err != nil || string(rec.Payload) != "buffered" {
		t.Errorf("read after flush: %v %v", rec, err)
	}
	if got := l.Stats().Forces; got != 0 {
		t.Errorf("Flush must not count as force, got %d", got)
	}
}

func TestFlushThenForceStillSyncs(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 1 {
		t.Errorf("Forces = %d, want 1 (flushed data still needs the sync)", got)
	}
}

func TestStatsCounting(t *testing.T) {
	model := disk.NewSimDisk(disk.DefaultParams(), disk.NewVirtualClock())
	path := filepath.Join(t.TempDir(), "p.log")
	l, err := Open(path, model)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Appends != 3 || s.Forces != 3 || s.PhysicalWrites != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesWritten < 3*int64(len("payload")) {
		t.Errorf("BytesWritten = %d too small", s.BytesWritten)
	}
	w, syncs, _ := model.Stats()
	if w != 3 || syncs != 3 {
		t.Errorf("device saw %d writes %d syncs, want 3/3", w, syncs)
	}
	l.ResetStats()
	if got := l.Stats(); got.Appends != 0 || got.Forces != 0 || got.PhysicalWrites != 0 {
		t.Errorf("ResetStats did not zero: %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if _, err := l.Read(ids.LSN(9999)); err == nil {
		t.Error("Read past end succeeded")
	}
	if _, err := l.Read(ids.LSN(1)); err == nil {
		t.Error("Read inside header succeeded")
	}
}

func TestClosedLogErrors(t *testing.T) {
	l, _ := openTemp(t)
	l.Close()
	if _, err := l.Append(1, nil); err != ErrClosed {
		t.Errorf("Append after close: %v", err)
	}
	if err := l.Force(); err != ErrClosed {
		t.Errorf("Force after close: %v", err)
	}
	if _, err := l.Read(ids.LSN(16)); err != ErrClosed {
		t.Errorf("Read after close: %v", err)
	}
	if err := l.Scan(ids.NilLSN, nil); err != ErrClosed {
		t.Errorf("Scan after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bad.log")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(16)),
		[]byte("NOTALOGFILE------"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Error("Open accepted a bad segment header")
	}
}

func TestStraySegmentNameRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bad.log")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hello.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Error("Open accepted a stray segment name")
	}
}

func TestLargeBufferAutoFlush(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	big := bytes.Repeat([]byte("z"), maxBuffered/2+1)
	if _, err := l.Append(1, big); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, big); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().PhysicalWrites; got == 0 {
		t.Error("full buffer did not auto-flush")
	}
	if got := l.Stats().Forces; got != 0 {
		t.Error("auto-flush must not sync")
	}
}

// TestAppendScanProperty: any sequence of appended payloads is returned
// by a full scan, in order, byte-for-byte.
func TestAppendScanProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		path := filepath.Join(t.TempDir(), "q.log")
		l, err := Open(path, nil)
		if err != nil {
			return false
		}
		defer l.Close()
		for _, p := range payloads {
			if _, err := l.Append(2, p); err != nil {
				return false
			}
		}
		var got [][]byte
		if err := l.Scan(ids.NilLSN, func(r Record) error {
			cp := make([]byte, len(r.Payload))
			copy(cp, r.Payload)
			got = append(got, cp)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(payloads) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestReopenIdempotent: reopening a cleanly forced log any number of
// times neither loses nor duplicates records.
func TestReopenIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.log")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	for round := 0; round < 3; round++ {
		l, err := Open(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := l.Scan(ids.NilLSN, func(r Record) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("round %d: %d records, want 5", round, n)
		}
		l.Close()
	}
}

func TestWellKnownRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wk")
	if _, err := LoadWellKnownLSN(path); err != ErrNoWellKnown {
		t.Errorf("missing file: err = %v, want ErrNoWellKnown", err)
	}
	if err := SaveWellKnownLSN(path, ids.LSN(12345)); err != nil {
		t.Fatal(err)
	}
	lsn, err := LoadWellKnownLSN(path)
	if err != nil || lsn != ids.LSN(12345) {
		t.Errorf("load = %v, %v", lsn, err)
	}
	// Overwrite with a new value.
	if err := SaveWellKnownLSN(path, ids.LSN(99)); err != nil {
		t.Fatal(err)
	}
	lsn, err = LoadWellKnownLSN(path)
	if err != nil || lsn != ids.LSN(99) {
		t.Errorf("reload = %v, %v", lsn, err)
	}
}

func TestWellKnownCorruptRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wk")
	if err := SaveWellKnownLSN(path, ids.LSN(7)); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWellKnownLSN(path); err != ErrNoWellKnown {
		t.Errorf("corrupt file: err = %v, want ErrNoWellKnown", err)
	}
	// Short file.
	if err := os.WriteFile(path, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWellKnownLSN(path); err != ErrNoWellKnown {
		t.Errorf("short file: err = %v, want ErrNoWellKnown", err)
	}
}
