// Package wal implements the process-local recovery log of Phoenix/App.
//
// Each virtual process owns one log managed by a log manager (paper
// Section 4.1: "We manage disk files on a per-process basis to simplify
// file access. Logging is performed through a log manager in a
// process."). Records accumulate in a buffer and are written at a log
// force or when the buffer fills (Section 5: "Log records accumulate in
// a buffer and are written at a log force or full buffer."). A force
// makes every previously appended record stable, which is what lets the
// optimized logging discipline of Section 3.1 combine the forces of
// several receive messages into the single force at the next send.
//
// The log is a directory of fixed-capacity segment files named by their
// starting LSN. LSNs are positions in one contiguous address space that
// spans segments, so records keep their LSNs forever; once every
// context's restart point has moved past a segment (checkpointing,
// Section 4), TrimHead deletes the dead prefix — the space reclamation
// that makes the paper's long-lived components operable.
//
// The package is schema-agnostic: it frames opaque typed payloads with
// lengths and checksums. The Phoenix runtime defines the payload
// encodings. A torn record at the tail — a crash in the middle of a
// physical write — is detected by checksum at open time and the log is
// truncated to the last complete record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/obs"
)

// RecordType tags a log record's payload schema. The WAL treats it as
// opaque; the runtime defines the values (see package core).
type RecordType uint8

// Record is a single log record as returned by Read and Scan.
type Record struct {
	LSN     ids.LSN
	Type    RecordType
	Payload []byte
}

// Stats counts logical and physical log activity. The experiment
// harness reports Forces for paper Table 8 ("Number of Forces").
type Stats struct {
	// Appends is the number of records appended.
	Appends int64
	// Forces is the number of log forces that reached the device
	// (forces with no dirty data are free and not counted).
	Forces int64
	// PhysicalWrites is the number of buffer flushes to a file.
	PhysicalWrites int64
	// BytesWritten is the total payload+framing bytes flushed.
	BytesWritten int64
	// Segments is the current number of segment files.
	Segments int
	// TrimmedBytes counts log space reclaimed by TrimHead.
	TrimmedBytes int64
	// AppendBusyNanos is the cumulative wall time spent inside the
	// append critical section (encode, frame, roll) with the log mutex
	// held. One mutex admits one append at a time, so total appends
	// divided by the busiest shard's AppendBusyNanos bounds the append
	// throughput a partitioned log can sustain — independent of how
	// many CPUs the measuring host happens to have.
	AppendBusyNanos int64
	// SyncBusyNanos is the cumulative wall time of device flush+sync
	// operations on this log's files. Together with AppendBusyNanos it
	// is the busy time of the shard's serial resources (one append
	// mutex, one device file).
	SyncBusyNanos int64
}

const (
	segHeaderSize = 16
	frameSize     = 4 + 1 + 4 // length + type + crc32
	magic         = "PHXSEG1\n"
	maxBuffered   = 1 << 20 // flush (without sync) past 1 MiB of buffer

	// firstLSN is where a fresh log starts; LSN 0 stays the nil value.
	firstLSN = ids.LSN(16)
)

// crcTable backs the incremental crc32.Update calls on the append and
// read paths (ChecksumIEEE over a joined copy is an allocation per
// record).
var crcTable = crc32.MakeTable(crc32.IEEE)

// DefaultSegmentBytes is the roll-over threshold for segment files.
const DefaultSegmentBytes = 4 << 20

var (
	// ErrNotFound reports a read at an LSN with no record (including
	// LSNs trimmed away).
	ErrNotFound = errors.New("wal: no record at LSN")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrStopScan can be returned by a Scan callback to stop early
	// without Scan reporting an error.
	ErrStopScan = errors.New("wal: stop scan")
)

// segment is one on-disk file covering LSNs [start, start+size).
type segment struct {
	f     *os.File
	path  string
	start ids.LSN
	size  int64 // record bytes in the file (excluding the header)
}

func (s *segment) end() ids.LSN { return s.start + ids.LSN(s.size) }

// Log is a process-local recovery log. It is safe for concurrent use.
// Buffer and segment bookkeeping serialize on a mutex, but the device
// sync itself runs with the mutex released, so Append never blocks
// behind an in-flight force. Concurrent force requests combine: on the
// direct path later requesters piggyback on the sync in flight (the
// paper's Section 3.1 force-combining); with StartGroupCommit a
// dedicated flusher batches them deliberately.
type Log struct {
	dir          string
	model        disk.Model
	segmentBytes int64
	// base is where this log's LSN space starts: firstLSN for a plain
	// single-stream log, ids.StreamLSN(stream, 16) for a shard stream
	// owned by a Set. Segment names, watermarks and record LSNs are all
	// natively stream-qualified; a stream-0 log is bit-for-bit the
	// legacy format.
	base ids.LSN

	mu       sync.Mutex
	segs     []*segment // ascending by start; last is active
	buf      []byte
	encBuf   []byte  // grow-only scratch for AppendInto encoders
	bufBase  ids.LSN // LSN of buf[0]
	synced   ids.LSN // stable watermark (survives Discard)
	unsynced map[*segment]bool
	syncing  bool       // a device sync is in flight with mu released
	syncDone *sync.Cond // broadcast (on mu) when an in-flight sync completes
	closed   bool
	stats    Stats
	m        *obs.WALMetrics
	gc       *groupCommitter // non-nil once StartGroupCommit ran
}

// Open opens (creating if necessary) the log directory at dir, verifies
// segment headers, truncates any torn tail, and returns a log manager
// whose physical writes and syncs are accounted to model. A nil model
// means disk.HostModel.
func Open(dir string, model disk.Model) (*Log, error) {
	return openLog(dir, model, firstLSN)
}

// openLog opens a log whose LSN space starts at base (the stream-
// qualified first position; see Log.base). Open passes firstLSN; Set
// opens each shard stream at ids.StreamLSN(stream, 16).
func openLog(dir string, model disk.Model, base ids.LSN) (*Log, error) {
	if model == nil {
		model = disk.HostModel{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	l := &Log{
		dir:          dir,
		model:        model,
		segmentBytes: DefaultSegmentBytes,
		base:         base,
		unsynced:     make(map[*segment]bool),
		m:            obs.WALView(obs.Default()),
	}
	l.syncDone = sync.NewCond(&l.mu)
	if err := l.load(); err != nil {
		l.closeSegs()
		return nil, err
	}
	return l, nil
}

func segName(start ids.LSN) string {
	return fmt.Sprintf("%020d.seg", uint64(start))
}

func (l *Log) load() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	var starts []ids.LSN
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			return fmt.Errorf("wal: stray segment name %q", name)
		}
		starts = append(starts, ids.LSN(n))
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	if len(starts) == 0 {
		seg, err := l.createSegment(l.base)
		if err != nil {
			return err
		}
		l.segs = []*segment{seg}
		l.bufBase = l.base
		l.synced = l.base
		return nil
	}

	for i, start := range starts {
		if start.Stream() != l.base.Stream() {
			return fmt.Errorf("wal: segment %v belongs to stream %d, log is stream %d",
				start, start.Stream(), l.base.Stream())
		}
		seg, err := l.openSegment(start)
		if err != nil {
			return err
		}
		if i > 0 && l.segs[i-1].end() != seg.start {
			return fmt.Errorf("wal: gap between segments %v and %v", l.segs[i-1].end(), seg.start)
		}
		l.segs = append(l.segs, seg)
	}
	// Only the active (last) segment can have a torn tail.
	active := l.segs[len(l.segs)-1]
	validEnd, err := l.scanValidEnd(active)
	if err != nil {
		return err
	}
	if validEnd < active.end() {
		if err := active.f.Truncate(segHeaderSize + int64(validEnd-active.start)); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync truncation: %w", err)
		}
		active.size = int64(validEnd - active.start)
	}
	l.bufBase = active.end()
	l.synced = active.end()
	return nil
}

func (l *Log) createSegment(start ids.LSN) (*segment, error) {
	path := filepath.Join(l.dir, segName(start))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(start))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync segment header: %w", err)
	}
	return &segment{f: f, path: path, start: start}, nil
}

func (l *Log) openSegment(start ids.LSN) (*segment, error) {
	path := filepath.Join(l.dir, segName(start))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() < segHeaderSize {
		f.Close()
		return nil, fmt.Errorf("wal: segment %s too short", path)
	}
	hdr := make([]byte, segHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:8]) != magic {
		f.Close()
		return nil, fmt.Errorf("wal: bad segment header in %s", path)
	}
	if got := ids.LSN(binary.LittleEndian.Uint64(hdr[8:])); got != start {
		f.Close()
		return nil, fmt.Errorf("wal: segment %s claims start %v", path, got)
	}
	return &segment{f: f, path: path, start: start, size: fi.Size() - segHeaderSize}, nil
}

// scanValidEnd walks the active segment's records and returns the LSN
// just past the last complete, checksum-valid record.
func (l *Log) scanValidEnd(s *segment) (ids.LSN, error) {
	off := int64(0)
	buf := make([]byte, frameSize, 4096) // frame + payload scratch, grow-only
	for off+frameSize <= s.size {
		frame := buf[:frameSize]
		if _, err := s.f.ReadAt(frame, segHeaderSize+off); err != nil {
			return 0, fmt.Errorf("wal: read frame: %w", err)
		}
		n := int64(binary.LittleEndian.Uint32(frame))
		wantCRC := binary.LittleEndian.Uint32(frame[5:9])
		if n > s.size-off-frameSize {
			break // torn tail
		}
		if int64(cap(buf)) < frameSize+n {
			nb := make([]byte, frameSize+int(n))
			copy(nb, frame)
			buf = nb
		}
		payload := buf[frameSize : frameSize+int(n)]
		if _, err := s.f.ReadAt(payload, segHeaderSize+off+frameSize); err != nil {
			return 0, fmt.Errorf("wal: read payload: %w", err)
		}
		if crc32.Update(crc32.Update(0, crcTable, buf[4:5]), crcTable, payload) != wantCRC {
			break // corrupt record: stop here
		}
		off += frameSize + n
	}
	return s.start + ids.LSN(off), nil
}

func (l *Log) closeSegs() {
	for _, s := range l.segs {
		s.f.Close()
	}
}

// active returns the tail segment (always present while open).
func (l *Log) active() *segment { return l.segs[len(l.segs)-1] }

// Append adds a record to the log buffer and returns its LSN. The
// record is not stable until the next Force (or until recovery-time
// reads flush it to a file, which still does not sync it). Append
// does not retain payload and, in steady state, does not allocate:
// the frame header is built on the stack, the checksum runs over the
// type byte and payload without a joining copy, and the payload lands
// directly in the log buffer.
func (l *Log) Append(t RecordType, payload []byte) (ids.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ids.NilLSN, ErrClosed
	}
	start := time.Now()
	lsn, err := l.appendLocked(t, payload)
	l.stats.AppendBusyNanos += time.Since(start).Nanoseconds()
	return lsn, err
}

func (l *Log) appendLocked(t RecordType, payload []byte) (ids.LSN, error) {
	// Records never straddle segment files: if this record would push
	// the active segment past its capacity, flush what is pending and
	// roll first, so the record begins the new segment. (An oversized
	// single record gets a segment to itself and may exceed the
	// threshold.)
	recLen := int64(frameSize + len(payload))
	s := l.active()
	if s.size+int64(len(l.buf))+recLen > l.segmentBytes &&
		s.size+int64(len(l.buf)) > 0 {
		if err := l.flushLocked(); err != nil {
			return ids.NilLSN, err
		}
		next, err := l.createSegment(l.active().end())
		if err != nil {
			return ids.NilLSN, err
		}
		l.segs = append(l.segs, next)
	}

	lsn := l.bufBase + ids.LSN(len(l.buf))
	// Frame and checksum are built directly inside l.buf (a stack frame
	// scratch escapes via the checksum/write calls and becomes a
	// per-record allocation).
	base := len(l.buf)
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	frame[4] = byte(t)
	l.buf = append(l.buf, frame[:]...)
	l.buf = append(l.buf, payload...)
	crc := crc32.Update(crc32.Update(0, crcTable, l.buf[base+4:base+5]), crcTable, payload)
	binary.LittleEndian.PutUint32(l.buf[base+5:base+9], crc)
	l.stats.Appends++
	l.m.Appends.Inc()
	l.m.AppendBytes.Observe(int64(len(payload)))
	if len(l.buf) >= maxBuffered {
		if err := l.flushLocked(); err != nil {
			return ids.NilLSN, err
		}
	}
	return lsn, nil
}

// AppendInto appends a record whose payload is produced by enc (see
// PayloadEncoder). The payload is built in a grow-only scratch buffer
// the log owns and framed from there, so the encode+append path
// allocates nothing in steady state. enc runs under the log mutex: it
// must not call back into the log, and must not retain the slice it is
// given or the one it returns.
//
// key is the record's routing key (the Writer contract); a single Log
// is one stream, so it ignores the key and every record lands here.
func (l *Log) AppendInto(key uint64, t RecordType, enc PayloadEncoder) (ids.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ids.NilLSN, ErrClosed
	}
	start := time.Now()
	payload, err := enc.AppendPayload(l.encBuf[:0])
	if err != nil {
		return ids.NilLSN, err
	}
	// Keep the (possibly grown) scratch for the next record, but let an
	// occasional giant payload go to the collector rather than pinning
	// its capacity forever.
	if cap(payload) <= maxBuffered {
		l.encBuf = payload[:0]
	} else {
		l.encBuf = nil
	}
	lsn, err := l.appendLocked(t, payload)
	l.stats.AppendBusyNanos += time.Since(start).Nanoseconds()
	return lsn, err
}

// flushLocked writes the buffer into the active segment without
// syncing. Append's roll logic guarantees it fits.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	s := l.active()
	n := int64(len(l.buf))
	if _, err := s.f.WriteAt(l.buf, segHeaderSize+s.size); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	l.model.Write(int(n))
	s.size += n
	l.unsynced[s] = true
	l.buf = l.buf[:0]
	l.bufBase += ids.LSN(n)
	l.stats.PhysicalWrites++
	l.stats.BytesWritten += n
	l.m.PhysicalWrites.Inc()
	l.m.BytesWritten.Add(n)
	return nil
}

// SyncOutcome classifies how a force request was satisfied. Callers
// that keep per-site force accounting (core's Tables 4-5 counters)
// count a site only on SyncIssued, so the per-site sum stays equal to
// the device-sync count even when requests combine.
type SyncOutcome uint8

const (
	// SyncClean: the requested records were already stable — no
	// waiting, no device I/O (counted under wal.clean_forces).
	SyncClean SyncOutcome = iota
	// SyncIssued: this request issued (or led) the device sync.
	SyncIssued
	// SyncCombined: the request was covered by a device sync another
	// request issued — the paper's combined force (Section 3.1).
	SyncCombined
)

// Force makes every appended record stable. Forcing a clean log is
// free and not counted in Stats.Forces.
//
// Deprecated: Force is the bare whole-tail alias that predates the
// LSN-aware Writer API. Callers that know the LSN of the last record
// they care about should use ForceTo or SyncTo and stop over-waiting
// on records they did not write; callers that really mean "everything"
// should use SyncAll, whose outcome feeds the per-site force
// accounting. The forcesite analyzer reports Force calls outside test
// files.
func (l *Log) Force() error {
	_, err := l.SyncAll()
	return err
}

// ForceTo blocks until the record appended at lsn — and every record
// before it — is stable. An lsn already covered by the stable
// watermark (or NilLSN) returns immediately as a clean force, even if
// later records are dirty: that is the over-waiting the LSN-aware API
// eliminates.
func (l *Log) ForceTo(lsn ids.LSN) error {
	_, err := l.SyncTo(lsn)
	return err
}

// SyncAll is Force with the outcome exposed.
func (l *Log) SyncAll() (SyncOutcome, error) {
	l.mu.Lock()
	target := l.bufBase + ids.LSN(len(l.buf))
	l.mu.Unlock()
	return l.syncTarget(target)
}

// SyncTo is ForceTo with the outcome exposed.
func (l *Log) SyncTo(lsn ids.LSN) (SyncOutcome, error) {
	if lsn.IsNil() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.closed {
			return SyncClean, ErrClosed
		}
		l.m.CleanForces.Inc()
		return SyncClean, nil
	}
	// The watermark only ever takes record-boundary values, so
	// synced > lsn means the record starting at lsn is fully durable.
	return l.syncTarget(lsn + 1)
}

// SyncedLSN returns the stable watermark: every record below it is
// durable.
func (l *Log) SyncedLSN() ids.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// syncTarget blocks until the stable watermark reaches target (an
// exclusive log position). Getting there may mean issuing the device
// sync, piggybacking on one in flight, or — with group commit on —
// joining the flusher's next batch.
func (l *Log) syncTarget(target ids.LSN) (SyncOutcome, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return SyncClean, ErrClosed
	}
	if l.synced >= target {
		l.m.CleanForces.Inc()
		l.mu.Unlock()
		return SyncClean, nil
	}
	if gc := l.gc; gc != nil {
		l.mu.Unlock()
		return gc.wait(target)
	}
	// Direct path: single-flight. A sync in flight may already cover
	// our records — the paper's combined force, now without holding
	// the mutex through device I/O.
	for l.syncing {
		l.syncDone.Wait()
		if l.closed {
			l.mu.Unlock()
			return SyncClean, ErrClosed
		}
		if l.synced >= target {
			l.m.GroupSyncsSaved.Inc()
			l.mu.Unlock()
			return SyncCombined, nil
		}
	}
	_, err := l.syncLocked()
	l.mu.Unlock()
	if err != nil {
		return SyncClean, err
	}
	return SyncIssued, nil
}

// syncLocked performs one device sync covering everything appended so
// far. Called with l.mu held; the mutex is RELEASED during the file
// syncs — so Append never blocks behind an in-flight force — and
// retaken to publish the new watermark. The syncing flag keeps syncs
// single-flight. Reports whether a device sync actually happened
// (false when a previous sync already covered the whole tail).
func (l *Log) syncLocked() (bool, error) {
	for l.syncing {
		l.syncDone.Wait()
		if l.closed {
			return false, ErrClosed
		}
	}
	start := time.Now()
	if err := l.flushLocked(); err != nil {
		return false, err
	}
	target := l.bufBase
	if target <= l.synced {
		return false, nil
	}
	l.syncing = true
	defer func() {
		l.syncing = false
		l.syncDone.Broadcast()
	}()
	type syncSnap struct {
		s    *segment
		size int64
	}
	snaps := make([]syncSnap, 0, len(l.unsynced))
	for s := range l.unsynced {
		snaps = append(snaps, syncSnap{s, s.size})
	}
	l.mu.Unlock()
	errs := make([]error, len(snaps))
	for i, sn := range snaps {
		errs[i] = sn.s.f.Sync()
	}
	l.model.Sync()
	l.mu.Lock()
	if l.closed {
		return false, ErrClosed
	}
	for i, sn := range snaps {
		if errs[i] != nil {
			if l.unsynced[sn.s] {
				return false, fmt.Errorf("wal: sync: %w", errs[i])
			}
			continue // segment trimmed away mid-sync; nothing to keep
		}
		if sn.s.size == sn.size {
			// Unchanged since the snapshot: fully synced. A segment that
			// grew mid-sync stays unsynced for the next force.
			delete(l.unsynced, sn.s)
		}
	}
	if target > l.synced {
		l.synced = target
	}
	l.stats.Forces++
	l.stats.SyncBusyNanos += time.Since(start).Nanoseconds()
	l.m.Forces.Inc()
	l.m.ForceMicros.Observe(time.Since(start).Microseconds())
	return true, nil
}

// Flush writes buffered records to the files without syncing. Paper
// Section 4.3: "There is no need to force the log immediately after
// either a state record or a process checkpoint is written" — but
// recovery-time reads need the bytes in the file.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushLocked()
}

// End returns the LSN one past the last appended record.
func (l *Log) End() ids.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bufBase + ids.LSN(len(l.buf))
}

// Start returns the LSN of the oldest retained record position.
func (l *Log) Start() ids.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].start
}

// Empty reports whether the log has no records at all (fresh log,
// nothing ever appended or everything trimmed).
func (l *Log) Empty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bufBase+ids.LSN(len(l.buf)) == l.segs[0].start
}

// Shards returns the log's shard streams in era order. A single Log is
// its own only stream.
func (l *Log) Shards() []Shard {
	return []Shard{{Stream: l.base.Stream(), Log: l}}
}

// StreamsFor returns the streams, one per era in era order, that
// records with the given routing key were (or would be) appended to. A
// single Log has one era and one stream.
func (l *Log) StreamsFor(key uint64) []uint32 {
	return []uint32{l.base.Stream()}
}

// findSegment returns the segment containing lsn, or nil.
func (l *Log) findSegment(lsn ids.LSN) *segment {
	i := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].end() > lsn })
	if i == len(l.segs) || lsn < l.segs[i].start {
		return nil
	}
	return l.segs[i]
}

// Read returns the record at lsn. It flushes the buffer first so that
// records appended but not yet forced are readable.
func (l *Log) Read(lsn ids.LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return Record{}, err
	}
	return l.readLocked(lsn)
}

func (l *Log) readLocked(lsn ids.LSN) (Record, error) {
	rec, _, err := l.readIntoLocked(lsn, nil)
	return rec, err
}

// readIntoLocked reads the record at lsn, staging frame and payload in
// buf (grown as needed). It returns the possibly grown buffer so
// iterating callers (Scan, Cursor) can amortize one buffer across a
// whole traversal; with a nil buf the payload is freshly allocated and
// safe for the caller to keep (the readLocked/Read contract). The
// frame scratch lives inside buf too — a stack array here escapes via
// the read/checksum calls and costs an allocation per record.
func (l *Log) readIntoLocked(lsn ids.LSN, buf []byte) (Record, []byte, error) {
	s := l.findSegment(lsn)
	if s == nil {
		return Record{}, buf, fmt.Errorf("%w: %v", ErrNotFound, lsn)
	}
	off := segHeaderSize + int64(lsn-s.start)
	if off+frameSize > segHeaderSize+s.size {
		return Record{}, buf, fmt.Errorf("%w: %v", ErrNotFound, lsn)
	}
	if cap(buf) < frameSize {
		buf = make([]byte, frameSize, 512)
	}
	frame := buf[:frameSize]
	if _, err := s.f.ReadAt(frame, off); err != nil {
		return Record{}, buf, fmt.Errorf("wal: read frame: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(frame))
	typ := RecordType(frame[4])
	wantCRC := binary.LittleEndian.Uint32(frame[5:9])
	if off+frameSize+n > segHeaderSize+s.size {
		return Record{}, buf, fmt.Errorf("%w: %v (record extends past end)", ErrNotFound, lsn)
	}
	if int64(cap(buf)) < frameSize+n {
		nb := make([]byte, frameSize+int(n))
		copy(nb, frame)
		buf = nb
	}
	payload := buf[frameSize : frameSize+int(n)]
	if _, err := s.f.ReadAt(payload, off+frameSize); err != nil {
		return Record{}, buf, fmt.Errorf("wal: read payload: %w", err)
	}
	if crc32.Update(crc32.Update(0, crcTable, buf[4:5]), crcTable, payload) != wantCRC {
		return Record{}, buf, fmt.Errorf("wal: checksum mismatch at %v", lsn)
	}
	return Record{LSN: lsn, Type: typ, Payload: payload}, buf, nil
}

// Scan calls fn for every record from lsn `from` (or the log start if
// from is nil or trimmed away) to the end of the log, in LSN order.
//
// The Record's Payload is only valid for the duration of the callback:
// the scan reuses one grow-only buffer across records (recovery walks
// the whole log, and a per-record allocation there is exactly the cost
// this log exists to avoid). A callback that retains payload bytes
// must copy them.
func (l *Log) Scan(from ids.LSN, fn func(Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	end := l.bufBase
	start := l.segs[0].start
	l.mu.Unlock()

	lsn := from
	if lsn.IsNil() || lsn < start {
		lsn = start
	}
	var buf []byte
	for lsn+frameSize <= end {
		l.mu.Lock()
		// Segment boundaries: a position at a segment's end is the
		// start of the next segment.
		if s := l.findSegment(lsn); s == nil {
			l.mu.Unlock()
			return fmt.Errorf("%w: %v (scan)", ErrNotFound, lsn)
		}
		var rec Record
		var err error
		rec, buf, err = l.readIntoLocked(lsn, buf)
		l.mu.Unlock()
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
		lsn += ids.LSN(frameSize + len(rec.Payload))
	}
	return nil
}

// Cursor is a stateful forward iterator over the log, as returned by
// ScanFrom. Unlike Scan — which holds the whole traversal inside one
// call — a cursor hands out one record per Next, so several consumers
// (recovery passes, concurrent readers of disjoint ranges) can each
// hold their own position without coordinating. A cursor is NOT safe
// for concurrent use by multiple goroutines; concurrency comes from
// giving each consumer its own cursor, which the log (safe for
// concurrent use) serves independently.
type Cursor struct {
	l   *Log
	lsn ids.LSN // position of the next record to return
	end ids.LSN // snapshot of the log end at ScanFrom time
	buf []byte  // grow-only payload buffer reused across Next calls
}

// ScanFrom returns a cursor positioned at lsn (or the log start if lsn
// is nil or trimmed away). The cursor sees the records present when
// ScanFrom ran: buffered records are flushed so they are readable, and
// records appended afterwards are not visited — the same bounded view
// Scan takes, reified so concurrent consumers can each hold one.
func (l *Log) ScanFrom(lsn ids.LSN) (*Cursor, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	end := l.bufBase
	start := l.segs[0].start
	l.mu.Unlock()
	if lsn.IsNil() || lsn < start {
		lsn = start
	}
	return &Cursor{l: l, lsn: lsn, end: end}, nil
}

// Next returns the next record and advances the cursor. ok is false at
// the end of the cursor's view (err is nil there).
//
// The Record's Payload is only valid until the following Next call:
// the cursor reuses one grow-only buffer for the whole traversal, the
// same contract as Scan. Consumers that retain payload bytes must
// copy them.
func (c *Cursor) Next() (rec Record, ok bool, err error) {
	if c.lsn+frameSize > c.end {
		return Record{}, false, nil
	}
	c.l.mu.Lock()
	if c.l.closed {
		c.l.mu.Unlock()
		return Record{}, false, ErrClosed
	}
	rec, c.buf, err = c.l.readIntoLocked(c.lsn, c.buf)
	c.l.mu.Unlock()
	if err != nil {
		return Record{}, false, err
	}
	c.lsn += ids.LSN(frameSize + len(rec.Payload))
	return rec, true, nil
}

// LSN returns the position of the record Next would return.
func (c *Cursor) LSN() ids.LSN { return c.lsn }

// Next returns the LSN of the record following the record at lsn.
func (l *Log) Next(lsn ids.LSN) (ids.LSN, error) {
	rec, err := l.Read(lsn)
	if err != nil {
		return ids.NilLSN, err
	}
	return lsn + ids.LSN(frameSize+len(rec.Payload)), nil
}

// TrimHead deletes whole segments that lie entirely before keep: every
// record at LSN >= keep stays readable. It is called once recovery no
// longer needs the prefix (all restart points and last-call reply
// records have moved past it). Trimming never touches the active
// segment.
func (l *Log) TrimHead(keep ids.LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	cut := 0
	for cut < len(l.segs)-1 && l.segs[cut].end() <= keep {
		cut++
	}
	if cut == 0 {
		return nil
	}
	for _, s := range l.segs[:cut] {
		s.f.Close()
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: trim %s: %w", s.path, err)
		}
		delete(l.unsynced, s)
		l.stats.TrimmedBytes += s.size
		l.m.TrimmedBytes.Add(s.size)
	}
	l.segs = append([]*segment{}, l.segs[cut:]...)
	return nil
}

// SegmentPaths returns the on-disk segment files, oldest first (used
// by tests and operational tooling).
func (l *Log) SegmentPaths() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.segs))
	for i, s := range l.segs {
		out[i] = s.path
	}
	return out
}

// SetSegmentBytes overrides the roll-over threshold (tests use small
// segments to exercise rolling and trimming).
func (l *Log) SetSegmentBytes(n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > 0 {
		l.segmentBytes = n
	}
}

// SetMetrics redirects the log's device-boundary accounting to reg
// (by default it reports to obs.Default). The runtime calls this right
// after Open so a process's log shares the process's registry; switch
// before any activity you intend to account.
func (l *Log) SetMetrics(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = obs.WALView(reg)
}

// Stats returns a snapshot of the log's activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	return s
}

// ResetStats zeroes the activity counters (used between experiment runs).
func (l *Log) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// Close flushes and closes the log without syncing (a crash may follow
// Close in tests; durability comes only from Force). Pending
// group-commit force requests are drained with a final sync first, so
// no acknowledged-in-flight waiter is left behind.
func (l *Log) Close() error {
	l.stopGroupCommit(true)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.syncDone.Wait()
	}
	if l.closed {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		l.closed = true
		l.closeSegs()
		return err
	}
	l.closed = true
	l.closeSegs()
	return nil
}

// stopGroupCommit detaches and stops the flusher, if any. drain makes
// pending force requests durable with a final sync; !drain fails them
// with ErrClosed (their records were never acknowledged, so a crash is
// allowed to lose them).
func (l *Log) stopGroupCommit(drain bool) {
	l.mu.Lock()
	gc := l.gc
	l.gc = nil
	l.mu.Unlock()
	if gc != nil {
		gc.stopAndWait(drain)
	}
}

// Discard closes the log simulating a process crash: buffered records
// are dropped and the files are truncated back to the last forced
// position, so only data made stable by Force survives. (A real crash
// loses whatever the OS page cache had not written; truncating to the
// sync watermark models the worst permitted loss, which redo recovery
// must tolerate.)
func (l *Log) Discard() error {
	l.stopGroupCommit(false)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.syncDone.Wait()
	}
	if l.closed {
		return nil
	}
	l.closed = true
	l.buf = nil
	var firstErr error
	for i := len(l.segs) - 1; i >= 0; i-- {
		s := l.segs[i]
		switch {
		case s.start >= l.synced:
			// Entirely unsynced segment: it never became durable.
			s.f.Close()
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = err
			}
		case s.end() > l.synced:
			if err := s.f.Truncate(segHeaderSize + int64(l.synced-s.start)); err != nil && firstErr == nil {
				firstErr = err
			}
			s.f.Close()
		default:
			s.f.Close()
		}
	}
	l.segs = nil
	return firstErr
}
