package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sort"

	"repro/internal/ids"
)

// The well-known file of paper Section 4.3: "Once a process checkpoint
// has been flushed to the log ... the log manager writes and forces the
// LSN of the begin checkpoint record into a well-known file. This LSN
// always points to a process checkpoint (if exists)."
//
// Two formats share the file:
//
//   - v1 (legacy, single stream): a fixed 12-byte record, LSN + CRC.
//     Written whenever the marks vector is exactly {stream 0: lsn}, so
//     a single-shard process keeps producing files any older build can
//     read.
//   - v2 (sharded): an 8-byte magic, a count, per-stream (tag, LSN)
//     pairs, and a trailing CRC — the cross-shard checkpoint
//     watermark. Recovery scans each stream from its own mark.
//
// Both formats are written atomically: temp file, fsync, rename,
// fsync of the containing directory — so the file named path always
// holds a complete record even across a crash right after checkpoint
// (the rename is the commit point). A corrupt or missing file makes
// recovery scan from the very beginning, exactly the paper's "If the
// LSN does not exist, the log is examined from the very beginning."

// ErrNoWellKnown reports that the well-known file is absent or
// unreadable, so recovery must scan from the log start.
var ErrNoWellKnown = errors.New("wal: no well-known checkpoint LSN")

// wellKnownV2Magic heads the v2 (per-stream vector) format. The first
// 8 bytes of a v1 file are a little-endian LSN whose top byte is a
// stream tag well below 'P', so the formats cannot be confused.
const wellKnownV2Magic = "PHXWKV2\n"

// SaveWellKnownLSN durably records lsn in the v1 well-known file at
// path: write a temp file, rename it over path, fsync the directory.
func SaveWellKnownLSN(path string, lsn ids.LSN) error {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint64(buf, uint64(lsn))
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[:8]))
	if err := atomicWriteFile(path, buf); err != nil {
		return fmt.Errorf("wal: write well-known file: %w", err)
	}
	return nil
}

// LoadWellKnownLSN reads the last durably recorded checkpoint LSN from
// a v1 file. It returns ErrNoWellKnown if the file is missing, short,
// corrupt, or in the v2 vector format (sharded callers use
// LoadWellKnownMarks).
func LoadWellKnownLSN(path string) (ids.LSN, error) {
	buf, err := readWellKnown(path)
	if err != nil {
		return ids.NilLSN, err
	}
	if len(buf) < 12 || string(buf[:8]) == wellKnownV2Magic {
		return ids.NilLSN, ErrNoWellKnown
	}
	if crc32.ChecksumIEEE(buf[:8]) != binary.LittleEndian.Uint32(buf[8:12]) {
		return ids.NilLSN, ErrNoWellKnown
	}
	return ids.LSN(binary.LittleEndian.Uint64(buf[:8])), nil
}

// SaveWellKnownMarks durably records the cross-shard checkpoint
// watermark: one LSN per stream, each the point that stream's recovery
// scan may start from. A vector of exactly {stream 0: lsn} is written
// in the legacy v1 format, so single-shard processes stay bit-for-bit
// compatible; anything else is v2.
func SaveWellKnownMarks(path string, marks map[uint32]ids.LSN) error {
	if len(marks) == 1 {
		if lsn, ok := marks[0]; ok {
			return SaveWellKnownLSN(path, lsn)
		}
	}
	streams := make([]uint32, 0, len(marks))
	for s := range marks {
		streams = append(streams, s)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i] < streams[j] })
	buf := make([]byte, 0, 8+4+12*len(streams)+4)
	buf = append(buf, wellKnownV2Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(streams)))
	for _, s := range streams {
		buf = binary.LittleEndian.AppendUint32(buf, s)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(marks[s]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if err := atomicWriteFile(path, buf); err != nil {
		return fmt.Errorf("wal: write well-known file: %w", err)
	}
	return nil
}

// LoadWellKnownMarks reads the checkpoint watermark vector, accepting
// both formats: a v1 file loads as {stream 0: lsn}. It returns
// ErrNoWellKnown if the file is missing, short, or corrupt.
func LoadWellKnownMarks(path string) (map[uint32]ids.LSN, error) {
	buf, err := readWellKnown(path)
	if err != nil {
		return nil, err
	}
	if len(buf) >= 8 && string(buf[:8]) == wellKnownV2Magic {
		if len(buf) < 16 {
			return nil, ErrNoWellKnown
		}
		body, crc := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
		if crc32.ChecksumIEEE(body) != crc {
			return nil, ErrNoWellKnown
		}
		n := int(binary.LittleEndian.Uint32(body[8:12]))
		if len(body) != 12+12*n {
			return nil, ErrNoWellKnown
		}
		marks := make(map[uint32]ids.LSN, n)
		for i := 0; i < n; i++ {
			off := 12 + 12*i
			s := binary.LittleEndian.Uint32(body[off:])
			marks[s] = ids.LSN(binary.LittleEndian.Uint64(body[off+4:]))
		}
		return marks, nil
	}
	lsn, err := LoadWellKnownLSN(path)
	if err != nil {
		return nil, err
	}
	return map[uint32]ids.LSN{0: lsn}, nil
}

// readWellKnown reads the raw file, mapping absence to ErrNoWellKnown.
func readWellKnown(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoWellKnown
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read well-known file: %w", err)
	}
	return buf, nil
}
