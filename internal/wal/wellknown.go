package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"

	"repro/internal/ids"
)

// The well-known file of paper Section 4.3: "Once a process checkpoint
// has been flushed to the log ... the log manager writes and forces the
// LSN of the begin checkpoint record into a well-known file. This LSN
// always points to a process checkpoint (if exists)."
//
// The file holds a fixed 12-byte record (LSN + CRC); the write is a
// single sector-sized overwrite, which is atomic enough for a
// fixed-size record, and the CRC rejects a torn update, in which case
// recovery falls back to scanning the log from the very beginning —
// exactly the paper's "If the LSN does not exist, the log is examined
// from the very beginning."

// ErrNoWellKnown reports that the well-known file is absent or
// unreadable, so recovery must scan from the log start.
var ErrNoWellKnown = errors.New("wal: no well-known checkpoint LSN")

// SaveWellKnownLSN durably records lsn in the well-known file at path.
func SaveWellKnownLSN(path string, lsn ids.LSN) error {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint64(buf, uint64(lsn))
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[:8]))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open well-known file: %w", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("wal: write well-known file: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync well-known file: %w", err)
	}
	return nil
}

// LoadWellKnownLSN reads the last durably recorded checkpoint LSN.
// It returns ErrNoWellKnown if the file is missing, short, or corrupt.
func LoadWellKnownLSN(path string) (ids.LSN, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return ids.NilLSN, ErrNoWellKnown
	}
	if err != nil {
		return ids.NilLSN, fmt.Errorf("wal: read well-known file: %w", err)
	}
	if len(buf) < 12 {
		return ids.NilLSN, ErrNoWellKnown
	}
	if crc32.ChecksumIEEE(buf[:8]) != binary.LittleEndian.Uint32(buf[8:12]) {
		return ids.NilLSN, ErrNoWellKnown
	}
	return ids.LSN(binary.LittleEndian.Uint64(buf[:8])), nil
}
