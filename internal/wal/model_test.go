package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

// TestWALModelProperty drives random operation sequences — append,
// force, flush, trim, crash (Discard+reopen), clean close+reopen —
// against an in-memory model of what must survive:
//
//   - after a clean close, every appended record survives;
//   - after a crash, exactly the records up to the last force survive
//     (flushed-but-unsynced data is deliberately dropped);
//   - after a trim at LSN k, every surviving record at LSN >= k is
//     still readable and intact.
func TestWALModelProperty(t *testing.T) {
	type modelRec struct {
		lsn     ids.LSN
		typ     RecordType
		payload []byte
	}
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		dir := filepath.Join(t.TempDir(), "model.log")
		l, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.SetSegmentBytes(int64(256 + rng.Intn(2048)))

		var all []modelRec // every record ever appended (uncrashed)
		var stable int     // records covered by the last force
		trimmedTo := ids.LSN(0)

		reopen := func(crash bool) {
			if crash {
				if err := l.Discard(); err != nil {
					t.Fatalf("trial %d: discard: %v", trial, err)
				}
				all = all[:stable]
			} else {
				if err := l.Close(); err != nil {
					t.Fatalf("trial %d: close: %v", trial, err)
				}
			}
			l2, err := Open(dir, nil)
			if err != nil {
				t.Fatalf("trial %d: reopen: %v", trial, err)
			}
			l = l2
			l.SetSegmentBytes(int64(256 + rng.Intn(2048)))
			// Reopening makes whatever is in the files stable.
			stable = len(all)
		}

		steps := 60 + rng.Intn(120)
		for s := 0; s < steps; s++ {
			switch op := rng.Intn(10); {
			case op < 5: // append
				payload := bytes.Repeat([]byte{byte(s)}, rng.Intn(300))
				typ := RecordType(1 + rng.Intn(10))
				lsn, err := l.Append(typ, payload)
				if err != nil {
					t.Fatalf("trial %d step %d: append: %v", trial, s, err)
				}
				all = append(all, modelRec{lsn: lsn, typ: typ, payload: payload})
			case op < 7: // force
				if err := l.Force(); err != nil {
					t.Fatal(err)
				}
				stable = len(all)
			case op == 7: // flush (no stability)
				if err := l.Flush(); err != nil {
					t.Fatal(err)
				}
			case op == 8: // trim to a random surviving record
				if len(all) > 0 {
					k := all[rng.Intn(len(all))].lsn
					if err := l.Force(); err != nil { // trim follows checkpoints in practice
						t.Fatal(err)
					}
					stable = len(all)
					if err := l.TrimHead(k); err != nil {
						t.Fatal(err)
					}
					if k > trimmedTo {
						trimmedTo = k
					}
				}
			case op == 9: // crash or clean restart
				reopen(rng.Intn(2) == 0)
			}
		}
		reopen(rng.Intn(2) == 0) // final restart, then audit

		// Audit: every surviving record at or past the trim point must
		// read back intact; a full scan returns them in order.
		start := l.Start()
		want := make(map[ids.LSN]modelRec)
		for _, r := range all {
			if r.lsn >= start {
				want[r.lsn] = r
			}
			if r.lsn >= trimmedTo && r.lsn < start {
				t.Errorf("trial %d: record %v (>= trim %v) was lost (start %v)",
					trial, r.lsn, trimmedTo, start)
			}
		}
		for lsn, r := range want {
			rec, err := l.Read(lsn)
			if err != nil {
				t.Errorf("trial %d: Read(%v): %v", trial, lsn, err)
				continue
			}
			if rec.Type != r.typ || !bytes.Equal(rec.Payload, r.payload) {
				t.Errorf("trial %d: record %v corrupted", trial, lsn)
			}
		}
		seen := 0
		prev := ids.NilLSN
		if err := l.Scan(ids.NilLSN, func(rec Record) error {
			if rec.LSN <= prev {
				return fmt.Errorf("scan not monotonic at %v", rec.LSN)
			}
			prev = rec.LSN
			if _, ok := want[rec.LSN]; ok {
				seen++
			}
			return nil
		}); err != nil {
			t.Fatalf("trial %d: scan: %v", trial, err)
		}
		if seen != len(want) {
			t.Errorf("trial %d: scan saw %d of %d surviving records", trial, seen, len(want))
		}
		l.Close()
	}
}
