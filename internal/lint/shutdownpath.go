package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ShutdownPathConfig scopes the shutdownpath analyzer.
type ShutdownPathConfig struct {
	// Packages are the import paths checked. Empty means core + wal.
	Packages []string
	// Roots are method/function names that anchor shutdown: a
	// goroutine's join (or a latch's open) must be reachable from a
	// function with one of these names. Empty means the runtime
	// defaults (Close, Crash, Discard, stop, ...).
	Roots []string
	// Latches are close-once readiness channels ("pkgpath.Type.field")
	// that waiters block on: every latch must be opened on shutdown
	// paths and its close must be idempotent. Empty means the
	// context-ready latch.
	Latches []string
}

var (
	defaultShutdownPackages = []string{"repro/internal/core", "repro/internal/wal"}
	defaultShutdownRoots    = []string{
		"Close", "Crash", "Discard", "shutdown", "stop", "Stop",
		"stopAndWait", "stopGroupCommit", "DrainRecovery",
	}
	defaultShutdownLatches = []string{"repro/internal/core.Context.ready"}
)

// spawn is one `go ...` site and what we learned about its body.
type spawn struct {
	pos      token.Position
	fn       string // enclosing function (allowlist unit)
	what     string // description of the spawned body
	sigClass string // field class closed/Done'd by the body, "" if local/none
	sigKind  string // "chan" or "wg"
	hasLocal bool   // body signals via a spawner-local chan/WaitGroup
	joined   bool   // spawner joins the local signal unconditionally
	none     bool   // body has no termination signal at all
}

// latchInfo accumulates facts about one latch class.
type latchInfo struct {
	closers    []string // functions containing close(x.f)
	nonIdem    []token.Position
	nonIdemFns []string
}

// NewShutdownPath returns the shutdownpath analyzer: every goroutine
// spawned in the checked packages must signal termination (close a
// done channel or call WaitGroup.Done) and that signal must be joined
// — locally by its spawner, or from a function reachable from a
// shutdown root (Close/Crash/stop). Every configured latch must be
// opened by a close() that is idempotent (guarded by a ready-poll
// select or sync.Once) and reachable from a shutdown root, so a crash
// can never strand waiters — the engine.stop() bug class PR 8 fixed by
// hand.
func NewShutdownPath(cfg ShutdownPathConfig, allow *Allowlist) *Analyzer {
	pkgs := toSet(cfg.Packages, defaultShutdownPackages)
	roots := toSet(cfg.Roots, defaultShutdownRoots)
	latches := toSet(cfg.Latches, defaultShutdownLatches)

	cg := newCallGraph()
	var spawns []*spawn
	// joiners maps a field class to the functions that join it
	// (receive from the chan, or call .Wait on the WaitGroup).
	joiners := map[string]map[string]bool{}
	latchState := map[string]*latchInfo{}
	// allFuncs is every analyzed function — the candidate set for
	// shutdown roots (a leaf Close makes no calls, so cg.edges alone
	// would miss it).
	allFuncs := map[string]bool{}

	addJoiner := func(class, fn string) {
		if joiners[class] == nil {
			joiners[class] = map[string]bool{}
		}
		joiners[class][fn] = true
	}

	return &Analyzer{
		Name: "shutdownpath",
		Doc:  "every spawned goroutine is joined from a shutdown path; every latch is opened on all exits",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			cg.addPackage(pass)
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				allFuncs[fname] = true
				if decl.Body == nil {
					return
				}
				collectShutdownFacts(pass, decl, fname, latches, spawnSink{
					spawn:  func(s *spawn) { spawns = append(spawns, s) },
					joiner: addJoiner,
					latch: func(class string, idempotent bool, pos token.Pos) {
						li := latchState[class]
						if li == nil {
							li = &latchInfo{}
							latchState[class] = li
						}
						li.closers = append(li.closers, fname)
						if !idempotent {
							li.nonIdem = append(li.nonIdem, pass.Fset.Position(pos))
							li.nonIdemFns = append(li.nonIdemFns, fname)
						}
					},
				})
			})
			return nil
		},
		Finish: func(report func(Diagnostic)) {
			finishShutdownPath(cg, allFuncs, spawns, joiners, latchState, latches, roots, allow, report)
		},
	}
}

type spawnSink struct {
	spawn  func(*spawn)
	joiner func(class, fn string)
	latch  func(class string, idempotent bool, pos token.Pos)
}

// collectShutdownFacts walks one declaration for go statements, join
// operations and latch closes.
func collectShutdownFacts(pass *Pass, decl *ast.FuncDecl, fname string, latches map[string]bool, sink spawnSink) {
	info := pass.Info
	// funcLits maps local variables assigned a function literal, so
	// `drain := func(...){...}; go drain(q)` resolves.
	funcLits := map[*types.Var]*ast.FuncLit{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if v, _ := info.Defs[id].(*types.Var); v != nil {
					funcLits[v] = lit
				}
			}
		}
		return true
	})

	localVarOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() != nil && v.Parent() != v.Pkg().Scope() {
				return v
			}
		}
		return nil
	}

	// signalsOf inspects a goroutine body for its termination signal.
	signalsOf := func(body ast.Node) (fieldClass, kind string, localObj types.Object, hasAny bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch CalleeString(info, n) {
				case "close":
					// handled via Ident case below (close is a builtin,
					// Callee returns nil) — nothing here.
				case "(*sync.WaitGroup).Done":
					hasAny = true
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if class := fieldClassOf(info, sel.X); class != "" {
							fieldClass, kind = class, "wg"
						} else if obj := localVarOf(sel.X); obj != nil {
							localObj, kind = obj, "wg"
						}
					}
					return false
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					hasAny = true
					if class := fieldClassOf(info, n.Args[0]); class != "" {
						fieldClass, kind = class, "chan"
					} else if obj := localVarOf(n.Args[0]); obj != nil {
						localObj, kind = obj, "chan"
					}
					return false
				}
			}
			return true
		})
		return
	}

	// localJoins: unconditional joins of local signals in this
	// function: wg.Wait() anywhere, or <-ch outside a multi-case
	// select.
	localJoins := map[types.Object]bool{}
	condJoins := map[types.Object]bool{}
	var scanJoins func(n ast.Node)
	scanJoins = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				multi := len(n.Body.List) > 1
				for _, cl := range n.Body.List {
					cc, ok := cl.(*ast.CommClause)
					if !ok {
						continue
					}
					if u := recvExpr(cc.Comm); u != nil {
						if obj := localVarOf(u.X); obj != nil {
							if multi {
								condJoins[obj] = true
							} else {
								localJoins[obj] = true
							}
						}
						if class := fieldClassOf(info, u.X); class != "" && !multi {
							sink.joiner(class, fname)
						}
					}
					for _, st := range cc.Body {
						scanJoins(st)
					}
				}
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := localVarOf(n.X); obj != nil {
						localJoins[obj] = true
					}
					if class := fieldClassOf(info, n.X); class != "" {
						sink.joiner(class, fname)
					}
				}
			case *ast.CallExpr:
				if CalleeString(info, n) == "(*sync.WaitGroup).Wait" {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if obj := localVarOf(sel.X); obj != nil {
							localJoins[obj] = true
						}
						if class := fieldClassOf(info, sel.X); class != "" {
							sink.joiner(class, fname)
						}
					}
				}
			}
			return true
		})
	}
	scanJoins(decl.Body)

	// Latch closes: close(x.f) for a configured latch class must sit
	// inside an idempotent guard — a select with a default clause that
	// also polls <-x.f, or a sync.Once.Do literal.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			class := fieldClassOf(info, call.Args[0])
			if class != "" && latches[class] {
				sink.latch(class, latchCloseIdempotent(info, decl.Body, call, class), call.Pos())
			}
		}
		return true
	})

	// Go statements.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		s := &spawn{pos: pass.Fset.Position(g.Pos()), fn: fname}
		var body ast.Node
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			s.what = "goroutine"
			body = fun.Body
		case *ast.Ident:
			if v, _ := info.Uses[fun].(*types.Var); v != nil && funcLits[v] != nil {
				s.what = fun.Name
				body = funcLits[v].Body
			} else if fn, _ := info.Uses[fun].(*types.Func); fn != nil {
				s.what = FuncString(fn)
				body = declBodyOf(pass, fn)
			}
		case *ast.SelectorExpr:
			if fn, _ := info.Uses[fun.Sel].(*types.Func); fn != nil {
				s.what = FuncString(fn)
				body = declBodyOf(pass, fn)
			}
		}
		if body == nil {
			s.none = true
			s.what = "goroutine (unresolved target)"
			sink.spawn(s)
			return true
		}
		fieldClass, kind, localObj, hasAny := signalsOf(body)
		switch {
		case fieldClass != "":
			s.sigClass, s.sigKind = fieldClass, kind
		case localObj != nil:
			s.hasLocal = true
			s.joined = localJoins[localObj]
		case !hasAny:
			s.none = true
		default:
			s.hasLocal = true // signal found but target unresolved: treat as local, unjoined
		}
		sink.spawn(s)
		return true
	})
}

// recvExpr extracts the receive of a select comm clause, if any.
func recvExpr(comm ast.Stmt) *ast.UnaryExpr {
	switch comm := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u
		}
	case *ast.AssignStmt:
		for _, rhs := range comm.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u
			}
		}
	}
	return nil
}

// declBodyOf finds the body of fn when it is declared in the current
// package's files.
func declBodyOf(pass *Pass, fn *types.Func) ast.Node {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj == fn {
				if fd.Body == nil {
					return nil
				}
				return fd.Body
			}
		}
	}
	return nil
}

// latchCloseIdempotent reports whether the close(x.f) call is guarded:
// inside a select that has both a default clause and a ready-poll
// receive of the same class, or inside a sync.Once.Do closure.
func latchCloseIdempotent(info *types.Info, body *ast.BlockStmt, target *ast.CallExpr, class string) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !containsNode(n, target) {
				return true
			}
			hasDefault, polls := false, false
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
				} else if u := recvExpr(cc.Comm); u != nil && fieldClassOf(info, u.X) == class {
					polls = true
				}
			}
			if hasDefault && polls {
				guarded = true
			}
		case *ast.CallExpr:
			if CalleeString(info, n) == "(*sync.Once).Do" && containsNode(n, target) && n != target {
				guarded = true
			}
		}
		return true
	})
	return guarded
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func finishShutdownPath(cg *callGraph, allFuncs map[string]bool, spawns []*spawn, joiners map[string]map[string]bool, latchState map[string]*latchInfo, latches, roots map[string]bool, allow *Allowlist, report func(Diagnostic)) {
	// Functions reachable from any shutdown root, over the
	// devirtualized call graph. Roots come from the full function set,
	// not cg.edges: a leaf Close with no outgoing calls is still a root.
	var rootFns []string
	for fn := range allFuncs {
		if roots[methodName(fn)] {
			rootFns = append(rootFns, fn)
		}
	}
	sort.Strings(rootFns)
	reach := cg.reachable(rootFns)

	joinedFromShutdown := func(class string) (string, bool) {
		fns := make([]string, 0, len(joiners[class]))
		for fn := range joiners[class] {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		for _, fn := range fns {
			if reach[fn] {
				return fn, true
			}
		}
		return "", false
	}

	for _, s := range spawns {
		if allow.Allowed("shutdownpath", s.fn) {
			continue
		}
		switch {
		case s.none:
			report(Diagnostic{Pos: s.pos, Fn: s.fn, Message: fmt.Sprintf(
				"%s spawned in %s has no termination signal (no done-channel close, no WaitGroup.Done); it cannot be joined on shutdown — signal completion or allowlist %s",
				s.what, s.fn, s.fn)})
		case s.sigClass != "":
			if _, ok := joinedFromShutdown(s.sigClass); !ok {
				report(Diagnostic{Pos: s.pos, Fn: s.fn, Message: fmt.Sprintf(
					"%s spawned in %s signals %s but no Close/Crash/stop path joins it (no receive/Wait reachable from a shutdown root); join it or allowlist %s",
					s.what, s.fn, s.sigClass, s.fn)})
			}
		case s.hasLocal && !s.joined:
			report(Diagnostic{Pos: s.pos, Fn: s.fn, Message: fmt.Sprintf(
				"%s spawned in %s signals a local channel/WaitGroup that %s does not unconditionally join; it may outlive its spawner — join it or allowlist %s",
				s.what, s.fn, s.fn, s.fn)})
		}
	}

	classes := make([]string, 0, len(latches))
	for class := range latches {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		li := latchState[class]
		if li == nil {
			continue // latch not closed in analyzed packages: nothing to prove
		}
		for i, pos := range li.nonIdem {
			if allow.Allowed("shutdownpath", li.nonIdemFns[i]) {
				continue
			}
			report(Diagnostic{Pos: pos, Fn: li.nonIdemFns[i], Message: fmt.Sprintf(
				"close of latch %s in %s is not idempotent; guard it with a ready-poll select or sync.Once so shutdown and completion can race safely",
				class, li.nonIdemFns[i])})
		}
		opened := false
		for _, fn := range li.closers {
			if reach[fn] {
				opened = true
				break
			}
		}
		if !opened && len(li.closers) > 0 {
			sort.Strings(li.closers)
			report(Diagnostic{Pos: token.Position{}, Fn: li.closers[0], Message: fmt.Sprintf(
				"latch %s is opened only in %s, which no Close/Crash/stop path reaches; a crash would strand waiters (the engine.stop bug class)",
				class, strings.Join(li.closers, ", "))})
		}
	}
}

// methodName extracts the bare function/method name from FuncString
// spelling: "(T).M" -> "M", "pkg.F" -> "F".
func methodName(fn string) string {
	if i := strings.LastIndex(fn, ")."); i >= 0 {
		return fn[i+2:]
	}
	if i := strings.LastIndex(fn, "."); i >= 0 {
		return fn[i+1:]
	}
	return fn
}
