package lint

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderConfig scopes the lockorder analyzer.
type LockOrderConfig struct {
	// Packages are the import paths whose functions are replayed.
	// Empty means the runtime defaults (core + wal).
	Packages []string
	// Order is the declared hierarchy, outermost class first. Empty
	// means the embedded lockorder.order file.
	Order []string
	// Semaphores are channel classes acquired by send and released by
	// receive (worker-slot semaphores). Empty means the lazy-recovery
	// slots channel.
	Semaphores []string
	// Latches are close-once readiness channels; a blocking receive
	// counts as an acquisition for ordering (it can wait forever).
	// Empty means the context-ready latch.
	Latches []string
}

//go:embed lockorder.order
var defaultLockOrderSrc []byte

var (
	defaultLockOrderPackages = []string{
		"repro/internal/core",
		"repro/internal/wal",
	}
	defaultLockOrderSemaphores = []string{"repro/internal/core.lazyRecovery.slots"}
	defaultLockOrderLatches    = []string{"repro/internal/core.Context.ready"}
)

// ParseLockOrder parses a lockorder.order file: one lock class per
// line, outermost first; blank lines and # comments are skipped.
func ParseLockOrder(src []byte) []string {
	var order []string
	for _, line := range strings.Split(string(src), "\n") {
		text, _, _ := strings.Cut(line, "#")
		if text = strings.TrimSpace(text); text != "" {
			order = append(order, text)
		}
	}
	return order
}

// LockEdge is one observed acquisition edge: To was acquired (or
// waited on) while From was held. Pos is the acquire site, HeldPos
// where From was taken, Fn the function the acquire site lives in (the
// allowlist unit). Via names the callee chain when the acquisition is
// transitive through a call rather than lexical.
type LockEdge struct {
	From, To     string
	Pos, HeldPos token.Position
	Fn           string
	Via          string
}

// LockGraph is the whole-run acquisition graph, filled in at Finish by
// the analyzer NewLockOrderGraph returns. Order is the declared
// hierarchy the edges were checked against.
type LockGraph struct {
	Order []string
	Edges []LockEdge
}

// DOT renders the graph for Graphviz; DESIGN.md embeds the output.
func (g *LockGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	rank := map[string]int{}
	for i, class := range g.Order {
		rank[class] = i
		fmt.Fprintf(&b, "  %q [label=\"%d. %s\"];\n", class, i, class)
	}
	nodes := map[string]bool{}
	for _, class := range g.Order {
		nodes[class] = true
	}
	seen := map[[2]string]bool{}
	var edges []LockEdge
	for _, e := range g.Edges {
		if key := [2]string{e.From, e.To}; !seen[key] {
			seen[key] = true
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		for _, n := range []string{e.From, e.To} {
			if !nodes[n] {
				nodes[n] = true
				fmt.Fprintf(&b, "  %q [style=dashed];\n", n)
			}
		}
		attr := ""
		if e.Via != "" {
			attr = fmt.Sprintf(" [label=%q, style=dashed]", "via "+e.Via)
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.From, e.To, attr)
	}
	b.WriteString("}\n")
	return b.String()
}

// orderEvent is one direct acquisition inside a function.
type orderEvent struct {
	class string
	pos   token.Pos
	held  []heldLock
	inGo  bool
}

// orderCall is one call site with the locks held across it.
type orderCall struct {
	callee string
	pos    token.Pos
	held   []heldLock
	inGo   bool
}

type orderFunc struct {
	events []orderEvent
	calls  []orderCall
	fset   *token.FileSet
	// seed is the receiver mutex class a *Locked function is entered
	// holding. Its re-acquisition inside the function is the documented
	// drop-and-retake idiom (syncLocked releases the caller's mutex
	// around the device sync, then retakes it), so it is excluded from
	// the caller-visible transitive-acquire set; acquiring the seed
	// while it is still held is caught lexically as a direct self-edge.
	seed string
}

// NewLockOrder returns the lockorder analyzer: every pair of nested
// lock acquisitions in the checked packages must agree with the
// declared hierarchy in lockorder.order (outermost first), the
// acquisition graph must be acyclic, and every class that appears in
// an edge must be declared. Acquisition is tracked lexically per
// function (reusing locksync's replay, with per-closure scoping) and
// propagated over a call graph devirtualized against the analyzed
// types, so holding the engine mutex while calling a helper that locks
// a shard is an edge even though the lock is two calls away.
func NewLockOrder(cfg LockOrderConfig, allow *Allowlist) *Analyzer {
	a, _ := NewLockOrderGraph(cfg, allow)
	return a
}

// NewLockOrderGraph is NewLockOrder, additionally exposing the
// acquisition graph the Finish pass computed (for `phoenix-lint
// -lockgraph`). The graph is valid only after the analyzer has run.
func NewLockOrderGraph(cfg LockOrderConfig, allow *Allowlist) (*Analyzer, *LockGraph) {
	pkgs := map[string]bool{}
	paths := cfg.Packages
	if len(paths) == 0 {
		paths = defaultLockOrderPackages
	}
	for _, p := range paths {
		pkgs[p] = true
	}
	order := cfg.Order
	if len(order) == 0 {
		order = ParseLockOrder(defaultLockOrderSrc)
	}
	walkCfg := lockWalkConfig{semaphores: map[string]bool{}, latches: map[string]bool{}}
	sems := cfg.Semaphores
	if cfg.Semaphores == nil {
		sems = defaultLockOrderSemaphores
	}
	for _, s := range sems {
		walkCfg.semaphores[s] = true
	}
	latches := cfg.Latches
	if cfg.Latches == nil {
		latches = defaultLockOrderLatches
	}
	for _, l := range latches {
		walkCfg.latches[l] = true
	}

	graph := &LockGraph{Order: order}
	funcs := map[string]*orderFunc{}
	cg := newCallGraph()

	analyzer := &Analyzer{
		Name: "lockorder",
		Doc:  "nested lock acquisitions follow the declared hierarchy (lockorder.order) and form no cycle",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			cg.addTypes(pass)
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				of := funcs[fname]
				if of == nil {
					of = &orderFunc{fset: pass.Fset}
					if strings.HasSuffix(decl.Name.Name, "Locked") {
						if fn, _ := pass.Info.Defs[decl.Name].(*types.Func); fn != nil {
							of.seed = recvMutexClass(fn)
						}
					}
					funcs[fname] = of
				}
				walkLocks(pass, decl, walkCfg, lockCallbacks{
					acquire: func(held []heldLock, class string, pos token.Pos, inGo bool) {
						of.events = append(of.events, orderEvent{class, pos, append([]heldLock(nil), held...), inGo})
					},
					wait: func(held []heldLock, class string, pos token.Pos, inGo bool) {
						of.events = append(of.events, orderEvent{class, pos, append([]heldLock(nil), held...), inGo})
					},
					call: func(held []heldLock, fn *types.Func, call *ast.CallExpr, inGo bool) {
						cg.addEdge(fname, fn)
						of.calls = append(of.calls, orderCall{FuncString(fn), call.Pos(), append([]heldLock(nil), held...), inGo})
					},
				})
			})
			return nil
		},
		Finish: func(report func(Diagnostic)) {
			finishLockOrder(funcs, cg, graph, order, allow, report)
		},
	}
	return analyzer, graph
}

func finishLockOrder(funcs map[string]*orderFunc, cg *callGraph, graph *LockGraph, order []string, allow *Allowlist, report func(Diagnostic)) {
	virt := cg.devirtualize()

	// Transitive acquisitions: the classes a call to fn can take on
	// the calling goroutine. Spawned goroutines (inGo) are excluded —
	// their locks are not nested under the caller's.
	trans := map[string]map[string]token.Pos{}
	own := func(name string) map[string]token.Pos {
		m := trans[name]
		if m == nil {
			m = map[string]token.Pos{}
			trans[name] = m
		}
		return m
	}
	for name, of := range funcs {
		m := own(name)
		for _, e := range of.events {
			if e.inGo || e.class == "" {
				continue
			}
			if of.seed != "" && e.class == of.seed {
				continue // drop-and-retake of the lock the caller handed in
			}
			if _, ok := m[e.class]; !ok {
				m[e.class] = e.pos
			}
		}
	}
	expand := func(callee string) []string {
		if more, ok := virt[callee]; ok {
			return append([]string{callee}, more...)
		}
		return []string{callee}
	}
	for changed := true; changed; {
		changed = false
		for name, of := range funcs {
			m := own(name)
			for _, c := range of.calls {
				if c.inGo {
					continue
				}
				for _, callee := range expand(c.callee) {
					for class := range trans[callee] {
						if _, ok := m[class]; !ok {
							m[class] = c.pos
							changed = true
						}
					}
				}
			}
		}
	}

	// Edges: direct (held at an acquire site) and transitive (held
	// across a call whose expansion acquires).
	type edgeKey struct{ from, to string }
	edges := map[edgeKey]LockEdge{}
	addEdge := func(e LockEdge) {
		key := edgeKey{e.From, e.To}
		if _, ok := edges[key]; !ok {
			edges[key] = e
			graph.Edges = append(graph.Edges, e)
		}
	}
	names := make([]string, 0, len(funcs))
	for name := range funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		of := funcs[name]
		if allow.Allowed("lockorder", name) {
			continue
		}
		for _, e := range of.events {
			if e.class == "" {
				continue
			}
			for _, h := range e.held {
				if h.Class == "" {
					continue
				}
				addEdge(LockEdge{
					From: h.Class, To: e.class,
					Pos: of.fset.Position(e.pos), HeldPos: of.fset.Position(h.Pos),
					Fn: name,
				})
			}
		}
		for _, c := range of.calls {
			if c.inGo || len(c.held) == 0 {
				continue
			}
			for _, callee := range expand(c.callee) {
				for class := range trans[callee] {
					for _, h := range c.held {
						if h.Class == "" {
							continue
						}
						addEdge(LockEdge{
							From: h.Class, To: class,
							Pos: of.fset.Position(c.pos), HeldPos: of.fset.Position(h.Pos),
							Fn: name, Via: c.callee,
						})
					}
				}
			}
		}
	}

	// Adjacency for cycle checks.
	succ := map[string][]string{}
	for key := range edges {
		succ[key.from] = append(succ[key.from], key.to)
	}
	reaches := func(from, to string) []string { // returns path from→…→to, nil if none
		type node struct {
			class string
			prev  *node
		}
		seen := map[string]bool{from: true}
		queue := []*node{{class: from}}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n.class == to {
				var path []string
				for ; n != nil; n = n.prev {
					path = append([]string{n.class}, path...)
				}
				return path
			}
			next := append([]string(nil), succ[n.class]...)
			sort.Strings(next)
			for _, s := range next {
				if !seen[s] {
					seen[s] = true
					queue = append(queue, &node{class: s, prev: n})
				}
			}
		}
		return nil
	}

	rank := map[string]int{}
	for i, class := range order {
		rank[class] = i
	}
	keys := make([]edgeKey, 0, len(edges))
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, key := range keys {
		e := edges[key]
		via := ""
		if e.Via != "" {
			via = fmt.Sprintf(" (via call to %s)", e.Via)
		}
		switch {
		case e.From == e.To:
			report(Diagnostic{Pos: e.Pos, Fn: e.Fn, Message: fmt.Sprintf(
				"lock %s acquired at %s while already held (taken at %s) in %s%s; recursive acquisition self-deadlocks",
				e.To, e.Pos, e.HeldPos, e.Fn, via)})
		case len(reaches(e.To, e.From)) > 0:
			path := reaches(e.To, e.From)
			back := edges[edgeKey{path[0], path[1]}]
			report(Diagnostic{Pos: e.Pos, Fn: e.Fn, Message: fmt.Sprintf(
				"acquiring %s at %s while holding %s in %s%s completes a lock cycle: the reverse edge %s -> %s is taken at %s in %s",
				e.To, e.Pos, e.From, e.Fn, via, back.From, back.To, back.Pos, back.Fn)})
		default:
			rf, okf := rank[e.From]
			rt, okt := rank[e.To]
			switch {
			case !okf || !okt:
				missing := e.From
				if okf {
					missing = e.To
				}
				report(Diagnostic{Pos: e.Pos, Fn: e.Fn, Message: fmt.Sprintf(
					"undocumented lock class %s in acquisition edge %s -> %s in %s%s; declare it in internal/lint/lockorder.order or allowlist %s",
					missing, e.From, e.To, e.Fn, via, e.Fn)})
			case rf >= rt:
				report(Diagnostic{Pos: e.Pos, Fn: e.Fn, Message: fmt.Sprintf(
					"acquiring %s (rank %d) at %s while holding %s (rank %d) in %s%s inverts the declared hierarchy (lockorder.order: outermost first)",
					e.To, rt, e.Pos, e.From, rf, e.Fn, via)})
			}
		}
	}
	sort.Slice(graph.Edges, func(i, j int) bool {
		if graph.Edges[i].From != graph.Edges[j].From {
			return graph.Edges[i].From < graph.Edges[j].From
		}
		return graph.Edges[i].To < graph.Edges[j].To
	})
}
