package lint

// Analyzers returns the phoenix-lint suite configured for this
// repository, sharing one allowlist. A nil allow means the embedded
// default (phoenix-lint.allow). The returned analyzers carry run
// state (metricnames reconciles declarations against uses at Finish),
// so build a fresh set per Runner.
func Analyzers(allow *Allowlist) []*Analyzer {
	if allow == nil {
		allow = DefaultAllowlist()
	}
	return []*Analyzer{
		NewForcesite(ForcesiteConfig{}, allow),
		NewWallclock(WallclockConfig{
			Packages: []string{
				"repro/internal/core",
				"repro/internal/wal",
				"repro/internal/bench",
			},
		}, allow),
		NewLocksync(LocksyncConfig{}, allow),
		NewExhaustive(ExhaustiveConfig{}, allow),
		NewMetricNames(MetricNamesConfig{}, allow),
	}
}

// UnitAnalyzers is the per-package subset of the suite for `go vet
// -vettool` mode, where every package is analyzed in its own process.
// metricnames is deliberately absent: it reconciles declarations in
// internal/obs against uses across the whole tree, a view a unit
// invocation never has — run standalone phoenix-lint (or `make lint`)
// for the full suite.
func UnitAnalyzers(allow *Allowlist) []*Analyzer {
	all := Analyzers(allow)
	unit := all[:0]
	for _, a := range all {
		if a.Name != "metricnames" {
			unit = append(unit, a)
		}
	}
	return unit
}

// Check loads the packages matching patterns under dir and runs the
// full suite with the given allowlist (nil means embedded default).
// It is the programmatic equivalent of `phoenix-lint <patterns>`.
func Check(dir string, allow *Allowlist, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	r := &Runner{Analyzers: Analyzers(allow)}
	return r.Run(pkgs)
}
