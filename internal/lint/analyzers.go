package lint

// Analyzers returns the phoenix-lint suite configured for this
// repository, sharing one allowlist. A nil allow means the embedded
// default (phoenix-lint.allow). The returned analyzers carry run
// state (metricnames reconciles declarations against uses at Finish),
// so build a fresh set per Runner.
func Analyzers(allow *Allowlist) []*Analyzer {
	if allow == nil {
		allow = DefaultAllowlist()
	}
	return []*Analyzer{
		NewForcesite(ForcesiteConfig{}, allow),
		NewWallclock(WallclockConfig{
			Packages: []string{
				"repro/internal/core",
				"repro/internal/wal",
				"repro/internal/bench",
			},
		}, allow),
		NewLocksync(repoLocksyncConfig(), allow),
		NewExhaustive(ExhaustiveConfig{}, allow),
		NewMetricNames(MetricNamesConfig{}, allow),
		NewLockOrder(LockOrderConfig{}, allow),
		NewPoolLife(PoolLifeConfig{}, allow),
		NewShutdownPath(ShutdownPathConfig{}, allow),
		NewDroppedErr(DroppedErrConfig{}, allow),
	}
}

// repoLocksyncConfig is the repository's locksync scope: since PRs 7-8
// the blocking-I/O-free critical sections are the per-shard log
// mutexes (every Set shard is a Log), the group-commit flusher queue,
// the engine registry and the lazy-recovery bookkeeping — named
// explicitly so the per-context mutex, which serializes whole handler
// executions (forces included) by design, stays exempt. The blocking
// list adds the wal append/force entry points and the core
// chokepoints that reach them.
func repoLocksyncConfig() LocksyncConfig {
	return LocksyncConfig{
		Packages: []string{
			"repro/internal/wal",
			"repro/internal/core",
		},
		Mutexes: []string{
			"repro/internal/wal.Log.mu",
			"repro/internal/wal.groupCommitter.mu",
			"repro/internal/core.Process.mu",
			"repro/internal/core.lazyRecovery.mu",
		},
		Blocking: append([]string{
			"(*repro/internal/wal.Log).Append",
			"(*repro/internal/wal.Log).AppendInto",
			"(*repro/internal/wal.Log).ForceTo",
			"(*repro/internal/wal.Log).SyncTo",
			"(*repro/internal/wal.Log).SyncAll",
			"(*repro/internal/wal.Set).AppendInto",
			"(*repro/internal/wal.Set).ForceTo",
			"(*repro/internal/wal.Set).SyncTo",
			"(*repro/internal/wal.Set).SyncAll",
			"(repro/internal/wal.Writer).AppendInto",
			"(repro/internal/wal.Writer).ForceTo",
			"(repro/internal/wal.Writer).SyncTo",
			"(repro/internal/wal.Writer).SyncAll",
			"(*repro/internal/core.Process).appendRec",
			"(*repro/internal/core.Process).forceTo",
			"(*repro/internal/core.Process).force",
		}, defaultLocksyncBlocking...),
	}
}

// UnitAnalyzers is the per-package subset of the suite for `go vet
// -vettool` mode, where every package is analyzed in its own process.
// metricnames is deliberately absent: it reconciles declarations in
// internal/obs against uses across the whole tree, a view a unit
// invocation never has — run standalone phoenix-lint (or `make lint`)
// for the full suite.
func UnitAnalyzers(allow *Allowlist) []*Analyzer {
	all := Analyzers(allow)
	unit := all[:0]
	for _, a := range all {
		if a.Name != "metricnames" {
			unit = append(unit, a)
		}
	}
	return unit
}

// Check loads the packages matching patterns under dir and runs the
// full suite with the given allowlist (nil means embedded default).
// It is the programmatic equivalent of `phoenix-lint <patterns>`.
func Check(dir string, allow *Allowlist, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	r := &Runner{Analyzers: Analyzers(allow)}
	return r.Run(pkgs)
}

// LockGraphFor loads the packages matching patterns under dir, runs
// the lockorder analyzer alone and returns the acquisition graph it
// observed — the `phoenix-lint -lockgraph` back end. Diagnostics are
// discarded; the graph records every deduplicated edge regardless.
func LockGraphFor(dir string, allow *Allowlist, patterns ...string) (*LockGraph, error) {
	if allow == nil {
		allow = DefaultAllowlist()
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	analyzer, graph := NewLockOrderGraph(LockOrderConfig{}, allow)
	r := &Runner{Analyzers: []*Analyzer{analyzer}}
	if _, err := r.Run(pkgs); err != nil {
		return nil, err
	}
	return graph, nil
}
