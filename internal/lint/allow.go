package lint

import (
	_ "embed"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Allowlist is the set of deliberate exceptions to the analyzers: a
// small, commented file instead of suppressions scattered through the
// code. Each entry names an analyzer and a function (in FuncString
// spelling) and must carry a trailing "# why" comment — an exception
// nobody can explain is not an exception.
//
// The entries mean different things per analyzer:
//
//   - wallclock, locksync: diagnostics inside the named function are
//     suppressed (the function is a deliberate exception).
//   - forcesite: the named functions are the *blessed* append/force
//     sites — the only ones allowed to call into the wal entry points.
type Allowlist struct {
	entries map[string]map[string]string // analyzer -> function -> why
}

//go:embed phoenix-lint.allow
var defaultAllowSrc []byte

// DefaultAllowlist parses the allowlist compiled into the binary
// (internal/lint/phoenix-lint.allow).
func DefaultAllowlist() *Allowlist {
	a, err := ParseAllowlist("phoenix-lint.allow (embedded)", defaultAllowSrc)
	if err != nil {
		// The embedded file is validated by the package's own tests;
		// reaching this means the binary was built from a broken tree.
		panic(err)
	}
	return a
}

// LoadAllowlist parses an allowlist file from disk.
func LoadAllowlist(path string) (*Allowlist, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseAllowlist(path, src)
}

// ParseAllowlist parses allowlist source. Lines are
//
//	<analyzer> <function>   # why this exception is deliberate
//
// Blank lines and full-line # comments are skipped. The function field
// uses FuncString spelling: pkgpath.Func, or (pkgpath.Recv).Method /
// (*pkgpath.Recv).Method for methods.
func ParseAllowlist(name string, src []byte) (*Allowlist, error) {
	a := &Allowlist{entries: map[string]map[string]string{}}
	for i, line := range strings.Split(string(src), "\n") {
		text, why, _ := strings.Cut(line, "#")
		text = strings.TrimSpace(text)
		why = strings.TrimSpace(why)
		if text == "" {
			continue
		}
		analyzer, fn, ok := strings.Cut(text, " ")
		fn = strings.TrimSpace(fn)
		if !ok || fn == "" || strings.ContainsAny(fn, " \t") {
			return nil, fmt.Errorf("%s:%d: want \"<analyzer> <function> # why\", got %q", name, i+1, line)
		}
		if why == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry for %s lacks a '# why' comment", name, i+1, fn)
		}
		if a.entries[analyzer] == nil {
			a.entries[analyzer] = map[string]string{}
		}
		if _, dup := a.entries[analyzer][fn]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate entry %s %s", name, i+1, analyzer, fn)
		}
		a.entries[analyzer][fn] = why
	}
	return a, nil
}

// Allowed reports whether fn is listed for analyzer.
func (a *Allowlist) Allowed(analyzer, fn string) bool {
	if a == nil {
		return false
	}
	_, ok := a.entries[analyzer][fn]
	return ok
}

// Entries returns every (analyzer, function) pair in the list, sorted.
func (a *Allowlist) Entries() [][2]string {
	if a == nil {
		return nil
	}
	var out [][2]string
	for analyzer, fns := range a.entries {
		for fn := range fns {
			out = append(out, [2]string{analyzer, fn})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Functions returns the functions listed for analyzer, unordered.
func (a *Allowlist) Functions(analyzer string) []string {
	if a == nil {
		return nil
	}
	fns := make([]string, 0, len(a.entries[analyzer]))
	for fn := range a.entries[analyzer] {
		fns = append(fns, fn)
	}
	return fns
}
