// Fixture for the forcesite analyzer: calls into the wal append/force
// entry points from blessed and rogue functions. The test's fixture
// allowlist blesses blessedAppend only.
package forcesite

import (
	"repro/internal/wal"
)

// blessedAppend is the fixture's accounting chokepoint (allowlisted).
func blessedAppend(l *wal.Log, payload []byte) error {
	if _, err := l.Append(1, payload); err != nil {
		return err
	}
	return l.Force()
}

func rogueAppend(l *wal.Log, payload []byte) {
	l.Append(2, payload) // want `\Q(*repro/internal/wal.Log).Append\E called from .*rogueAppend, which is not a blessed force/append site`
}

func rogueForces(l *wal.Log) error {
	if err := l.Force(); err != nil { // want `\Q(*repro/internal/wal.Log).Force\E called from`
		return err
	}
	if err := l.ForceTo(7); err != nil { // want `\Q(*repro/internal/wal.Log).ForceTo\E called from`
		return err
	}
	if _, err := l.SyncAll(); err != nil { // want `\Q(*repro/internal/wal.Log).SyncAll\E called from`
		return err
	}
	_, err := l.SyncTo(9) // want `\Q(*repro/internal/wal.Log).SyncTo\E called from`
	return err
}

// reads are not guarded: only the append/force entry points are.
func reader(l *wal.Log) (wal.Record, error) {
	return l.Read(16)
}
