// Fixture for the forcesite analyzer: calls into the wal append/force
// entry points from blessed and rogue functions. The test's fixture
// allowlist blesses blessedAppend only.
package forcesite

import (
	"repro/internal/wal"
)

// blessedAppend is the fixture's accounting chokepoint (allowlisted).
// Blessing does not excuse the deprecated bare force.
func blessedAppend(l *wal.Log, payload []byte) error {
	if _, err := l.Append(1, payload); err != nil {
		return err
	}
	return l.Force() // want `\Q(*repro/internal/wal.Log).Force\E is deprecated outside tests`
}

func rogueAppend(l *wal.Log, payload []byte) {
	l.Append(2, payload) // want `\Q(*repro/internal/wal.Log).Append\E called from .*rogueAppend, which is not a blessed force/append site`
}

func rogueForces(l *wal.Log) error {
	if err := l.Force(); err != nil { // want `\Q(*repro/internal/wal.Log).Force\E is deprecated outside tests`
		return err
	}
	if err := l.ForceTo(7); err != nil { // want `\Q(*repro/internal/wal.Log).ForceTo\E called from`
		return err
	}
	if _, err := l.SyncAll(); err != nil { // want `\Q(*repro/internal/wal.Log).SyncAll\E called from`
		return err
	}
	_, err := l.SyncTo(9) // want `\Q(*repro/internal/wal.Log).SyncTo\E called from`
	return err
}

// The sharded set and the Writer interface are guarded the same way:
// core appends through wal.Writer, so interface call sites must not
// slip past the accounting.
func rogueSet(s *wal.Set, enc wal.PayloadEncoder) error {
	if _, err := s.AppendInto(3, 1, enc); err != nil { // want `\Q(*repro/internal/wal.Set).AppendInto\E called from`
		return err
	}
	if _, err := s.SyncAll(); err != nil { // want `\Q(*repro/internal/wal.Set).SyncAll\E called from`
		return err
	}
	return s.ForceTo(7) // want `\Q(*repro/internal/wal.Set).ForceTo\E called from`
}

func rogueWriter(w wal.Writer, enc wal.PayloadEncoder) error {
	if _, err := w.AppendInto(3, 1, enc); err != nil { // want `\Q(repro/internal/wal.Writer).AppendInto\E called from`
		return err
	}
	if _, err := w.SyncTo(9); err != nil { // want `\Q(repro/internal/wal.Writer).SyncTo\E called from`
		return err
	}
	return w.ForceTo(7) // want `\Q(repro/internal/wal.Writer).ForceTo\E called from`
}

// reads are not guarded: only the append/force entry points are.
func reader(l *wal.Log) (wal.Record, error) {
	return l.Read(16)
}
