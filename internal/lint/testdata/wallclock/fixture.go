// Fixture for the wallclock analyzer: direct wall-clock reads in a
// simulation-clocked package, with one allowlisted instrumentation
// function.
package wallclock

import "time"

func bad() time.Duration {
	t0 := time.Now()             // want `time\.Now reads the wall clock in .*bad`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	_ = time.After(time.Second)  // want `time\.After reads the wall clock`
	return time.Since(t0)        // want `time\.Since reads the wall clock`
}

func badTimer() *time.Ticker {
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	defer t.Stop()
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

// instrumented is allowlisted by the test: a deliberate wall-time
// histogram site, like wal.force_micros.
func instrumented() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// durations are data, not clock reads: nothing to flag here.
func scale(d time.Duration) time.Duration {
	return 3 * d / 2
}
