// Fixture for the poollife analyzer: getBuf/freeBuf stand in for
// msg.GetBuf/msg.FreeBuf, Record.Payload for the WAL scan payload
// window.
package poollife

func getBuf(n int) []byte { return make([]byte, n) }
func freeBuf([]byte)      {}

type Record struct{ Payload []byte }

type holder struct{ b []byte }

var global []byte

var sink = make(chan []byte, 1)

// good frees exactly once on the straight-line path.
func good() {
	b := getBuf(8)
	b[0] = 1
	freeBuf(b)
}

// goodDefer frees exactly once via defer.
func goodDefer() {
	b := getBuf(8)
	defer freeBuf(b)
	b[0] = 1
}

// appendAndFree keeps ownership through an append chain (the
// EncodeCall pattern) and still frees once.
func appendAndFree(n int) {
	b := getBuf(n)
	b = append(b, 1, 2, 3)
	freeBuf(b)
}

// errPath frees on the early exit and on the fall-through — one free
// per path, so nothing is flagged.
func errPath(fail bool) int {
	b := getBuf(8)
	if fail {
		freeBuf(b)
		return 1
	}
	freeBuf(b)
	return 0
}

func neverFreed() {
	b := getBuf(8) // want `pooled buffer b acquired in .*neverFreed is never freed`
	b[0] = 1
}

func doubleFree() {
	b := getBuf(8)
	freeBuf(b)
	freeBuf(b) // want `pooled buffer b freed twice` `pooled buffer b used after FreeBuf`
}

func deferPlusLexical() {
	b := getBuf(8)
	defer freeBuf(b)
	freeBuf(b) // want `freed here and again by a deferred FreeBuf`
}

func useAfterFree() {
	b := getBuf(8)
	freeBuf(b)
	b[0] = 1 // want `pooled buffer b used after FreeBuf`
}

func escapeGlobal() {
	b := getBuf(8)
	global = b // want `pooled buffer stored to package-level variable global`
	freeBuf(b)
}

func escapeField(h *holder) {
	b := getBuf(8)
	h.b = b // want `pooled buffer stored to field b`
	freeBuf(b)
}

func escapeChan() {
	b := getBuf(8)
	sink <- b // want `pooled buffer sent on a channel`
	freeBuf(b)
}

// leakSubSlice hands out a window into pooled memory: flagged both as
// the escape and as a buffer that is never returned to the pool.
func leakSubSlice() []byte {
	b := getBuf(8) // want `pooled buffer b acquired in .*leakSubSlice is never freed`
	return b[:4]   // want `pooled buffer returned as a sub-slice`
}

// transferOwnership returns the whole pooled buffer — the producer
// pattern that must be documented with an allowlist entry.
func transferOwnership() []byte {
	b := getBuf(8)
	return b // want `pooled buffer returned in .*transferOwnership`
}

// keepPayload stores a scan-window payload that is only valid until
// the callback returns.
func keepPayload(r *Record) {
	global = r.Payload // want `WAL record payload .* stored to package-level variable global`
}

// leakPayloadSlice aliases the payload window and returns part of it.
func leakPayloadSlice(r *Record) []byte {
	p := r.Payload
	return p[2:] // want `WAL record payload .* returned as a sub-slice`
}

// decodePayload reads the payload in place inside the window: fine.
func decodePayload(r *Record) byte {
	return r.Payload[0]
}
