// Fixture for the droppederr analyzer: syncDevice, readDevice and
// (*Dev).Close are configured as guarded durability calls.
package droppederr

import "errors"

type Dev struct{}

func (d *Dev) Close() error { return nil }

func syncDevice() error { return errors.New("io") }

func readDevice() ([]byte, error) { return nil, errors.New("io") }

func otherOp() error { return nil }

func ignoredStmt() {
	syncDevice() // want `syncDevice error discarded \(result ignored\)`
}

func ignoredDefer(d *Dev) {
	defer d.Close() // want `error discarded \(deferred, result ignored\)`
}

func ignoredGo() {
	go syncDevice() // want `error discarded \(spawned, result ignored\)`
}

func blankAssign() {
	_ = syncDevice() // want `syncDevice error assigned to _`
}

func blankSecond() {
	data, _ := readDevice() // want `readDevice error assigned to _`
	_ = data
}

// handled propagates both errors: nothing is flagged.
func handled() error {
	if err := syncDevice(); err != nil {
		return err
	}
	d := &Dev{}
	return d.Close()
}

// unguarded calls may drop their errors freely.
func unguarded() {
	otherOp()
	_ = otherOp()
}
