// Fixture for the metricnames analyzer: the fixture package stands in
// for internal/obs — it declares the Registry-like resolver and the
// names.go constants — and uses them well and badly.
package metricnames

type Registry struct{}

func (r *Registry) Counter(name string) *int   { return nil }
func (r *Registry) Histogram(name string) *int { return nil }
func (r *Registry) Gauge(name string) *int     { return nil }

// localAlias is a metric-name constant declared outside names.go.
const localAlias = "fix.undeclared"

func use(r *Registry) {
	r.Counter(MetricGood)               // ok: the declared constant
	r.Histogram(MetricViaConst)         // ok
	r.Counter(MetricShardAppends)       // ok: dotted shard family
	r.Histogram(MetricShardSpread)      // ok
	r.Counter("fix.good")               // want `use the constant MetricGood from .* instead of the literal "fix\.good"`
	r.Counter("fix.rogue")              // want `metric name "fix\.rogue" is not declared in`
	r.Counter(localAlias)               // want `constant metricnames\.localAlias \("fix\.undeclared"\) is used as a metric name but not declared in`
	r.Histogram("fix.shard.spread")     // want `use the constant MetricShardSpread from .* instead of the literal "fix\.shard\.spread"`
	r.Counter("fix.shard.reshards")     // want `metric name "fix\.shard\.reshards" is not declared in`
	r.Counter(MetricLazyOnDemand)       // ok: dotted lazy family
	r.Histogram(MetricLazyTTFC)         // ok
	r.Histogram("fix.lazy.ttfc_micros") // want `use the constant MetricLazyTTFC from .* instead of the literal "fix\.lazy\.ttfc_micros"`
	r.Gauge(MetricDiscLevel)            // ok: gauge resolver
	r.Gauge("fix.disc.level")           // want `use the constant MetricDiscLevel from .* instead of the literal "fix\.disc\.level"`
	r.Gauge("fix.disc.rogue")           // want `metric name "fix\.disc\.rogue" is not declared in`
}

// dynamic names cannot be checked statically; nothing to flag.
func dynamic(r *Registry, name string) *int {
	return r.Counter(name)
}
