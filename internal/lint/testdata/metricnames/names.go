// Fixture names file for the metricnames analyzer: the canonical
// metric-name constants, including one orphan nobody resolves.
package metricnames

const (
	MetricGood     = "fix.good"
	MetricViaConst = "fix.via_const"
	MetricOrphan   = "fix.orphan" // want `metric name constant MetricOrphan \("fix\.orphan"\) is declared in names\.go but never resolved`

	// Two-level families (the wal.shard.* shape) must reconcile like
	// any other name.
	MetricShardAppends = "fix.shard.appends"
	MetricShardSpread  = "fix.shard.spread"

	// Three-level families with underscored leaves (the recovery.lazy.*
	// shape) reconcile the same way.
	MetricLazyOnDemand = "fix.lazy.on_demand_replays"
	MetricLazyTTFC     = "fix.lazy.ttfc_micros"

	// Gauge-resolved names (the adaptive.disc.* shape) reconcile
	// through Registry.Gauge like any other resolver method.
	MetricDiscLevel = "fix.disc.level"
)
