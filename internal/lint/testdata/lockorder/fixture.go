// Fixture for the lockorder analyzer. The declared hierarchy (see
// TestLockOrderFixture) is, outermost first:
//
//	slots, A.mu, B.mu, C.mu, E.mu, F.mu, G.ready
//
// D.mu is deliberately undeclared.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }
type G struct{ ready chan struct{} }

// slots is a worker semaphore: a send acquires a slot.
var slots = make(chan struct{}, 4)

// goodNesting follows the declared order at every step: semaphore
// outermost, then C before E, and the latch wait innermost.
func goodNesting(c *C, e *E, g *G) {
	slots <- struct{}{}
	c.mu.Lock()
	e.mu.Lock()
	<-g.ready
	e.mu.Unlock()
	c.mu.Unlock()
	<-slots
}

// cycleFwd and cycleBack together form an A<->B cycle: each direction
// is diagnosed, naming the reverse edge's acquire site.
func cycleFwd(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `completes a lock cycle: the reverse edge .*B\.mu -> .*A\.mu is taken at .*fixture\.go`
	b.mu.Unlock()
	a.mu.Unlock()
}

func cycleBack(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `completes a lock cycle: the reverse edge .*A\.mu -> .*B\.mu is taken at .*fixture\.go`
	a.mu.Unlock()
	b.mu.Unlock()
}

// relock self-deadlocks: sync.Mutex is not reentrant.
func relock(c *C) {
	c.mu.Lock()
	c.mu.Lock() // want `lock .*C\.mu acquired at .* while already held .*; recursive acquisition self-deadlocks`
}

// inverted takes E while holding F; the hierarchy says E is outer.
func inverted(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want `acquiring .*E\.mu \(rank 4\) at .* while holding .*F\.mu \(rank 5\) .* inverts the declared hierarchy`
	e.mu.Unlock()
	f.mu.Unlock()
}

// undocumented nests a class the order file does not declare.
func undocumented(a *A, d *D) {
	a.mu.Lock()
	d.mu.Lock() // want `undocumented lock class .*D\.mu in acquisition edge`
	d.mu.Unlock()
	a.mu.Unlock()
}

// outer acquires E two calls away while holding C — a transitive edge
// that agrees with the hierarchy, so nothing is flagged.
func outer(c *C, e *E) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockE(e)
}

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

// swapLocked is the drop-and-retake idiom (*wal.Log).syncLocked
// establishes: entered with c.mu held, it releases the caller's mutex
// and retakes it. The re-acquisition is not a recursive acquire.
func (c *C) swapLocked() {
	c.mu.Unlock()
	c.mu.Lock()
}

func useSwap(c *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.swapLocked()
}
