// Fixture for the exhaustive analyzer: switches over local enum types
// (integer and string), with and without full coverage, defaults and
// a bound sentinel.
package exhaustive

import "fmt"

type Kind int

const (
	KindA Kind = iota
	KindB
	KindC

	kindCount // bound sentinel: never required in switches
)

func good(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

func goodDefault(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

func bad(k Kind) string {
	switch k { // want `switch over repro/internal/lint/testdata/exhaustive\.Kind is missing cases KindB, KindC and has no default`
	case KindA:
		return "a"
	}
	return ""
}

type mode string

const (
	modeOn  mode = "on"
	modeOff mode = "off"
)

func badString(m mode) bool {
	switch m { // want `switch over .*\.mode is missing cases modeOff and has no default`
	case modeOn:
		return true
	}
	return false
}

// syncOutcome mirrors the WAL's per-shard sync merge: a three-way
// enum whose switches must stay exhaustive as outcomes are added.
type syncOutcome int

const (
	syncClean syncOutcome = iota
	syncCombined
	syncIssued
)

func mergeOutcomes(a, b syncOutcome) syncOutcome {
	switch a {
	case syncClean:
		return b
	case syncCombined:
		if b == syncIssued {
			return b
		}
		return a
	case syncIssued:
		return a
	}
	return a
}

func badOutcome(o syncOutcome) string {
	switch o { // want `switch over .*\.syncOutcome is missing cases syncCombined, syncIssued and has no default`
	case syncClean:
		return "clean"
	}
	return ""
}

// recMode mirrors core.RecoveryMode: a two-value policy enum whose
// zero value is the default. Switches over it must name both modes or
// carry a default that renders strays.
type recMode int

const (
	recEager recMode = iota
	recLazy
)

func admit(m recMode) string {
	switch m {
	case recEager:
		return "eager"
	case recLazy:
		return "lazy"
	}
	return ""
}

func badMode(m recMode) bool {
	switch m { // want `switch over .*\.recMode is missing cases recLazy and has no default`
	case recEager:
		return false
	}
	return true
}

// discipline mirrors core.Discipline: a three-value logging-discipline
// enum whose String() carries a default rendering strays; switches
// elsewhere must cover every discipline or carry a default.
type discipline int

const (
	discBase discipline = iota
	discAlgo2
	discRO
)

func disciplineName(d discipline) string {
	switch d {
	case discBase:
		return "baseline"
	case discAlgo2:
		return "algo2"
	case discRO:
		return "readonly"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

func badDiscipline(d discipline) bool {
	switch d { // want `switch over .*\.discipline is missing cases discAlgo2, discRO and has no default`
	case discBase:
		return false
	}
	return true
}

// plain built-in types are not enums; nothing to flag.
func notEnum(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// untagged switches are ordinary conditionals; nothing to flag.
func untagged(k Kind) bool {
	switch {
	case k == KindA:
		return true
	}
	return false
}
