// Fixture for the shutdownpath analyzer: spawned goroutines must
// signal termination and be joined from a shutdown root; latch closes
// must be idempotent.
package shutdownpath

import "sync"

// Engine is the good field-signal pattern: the loop closes done, and
// Close (a shutdown root) joins it.
type Engine struct {
	stopCh chan struct{}
	done   chan struct{}
}

func (e *Engine) Start() {
	go func() {
		defer close(e.done)
		<-e.stopCh
	}()
}

func (e *Engine) Close() {
	close(e.stopCh)
	<-e.done
}

// Pool is the good WaitGroup pattern (the lazy-recovery drainers):
// workers Done a field WaitGroup that Close waits on.
type Pool struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

func (p *Pool) start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	<-p.quit
}

func (p *Pool) Close() {
	close(p.quit)
	p.wg.Wait()
}

// fanout joins its local WaitGroup unconditionally before returning.
func fanout(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// leak spawns a goroutine with no termination signal at all.
func (e *Engine) leak() {
	go func() { // want `goroutine spawned in .*leak.* has no termination signal`
		for {
			if e == nil {
				return
			}
		}
	}()
}

// Orphan signals a done field that no Close/Crash/stop path ever
// joins.
type Orphan struct{ done chan struct{} }

func (o *Orphan) run() {
	go func() { // want `signals .*Orphan\.done but no Close/Crash/stop path joins it`
		close(o.done)
	}()
}

// window races a timer goroutine against other wake-ups: the join is
// one arm of a multi-case select, so the goroutine may outlive the
// function (the groupCommitter.window shape — allowlisted in the real
// tree, flagged here).
func window(full chan struct{}) bool {
	timer := make(chan struct{})
	go func() { // want `signals a local channel/WaitGroup that .* does not unconditionally join`
		close(timer)
	}()
	select {
	case <-timer:
		return false
	case <-full:
		return true
	}
}

// Gate is the latch under test (configured as a latch class).
type Gate struct {
	ready chan struct{}
	once  sync.Once
}

// markReady is the blessed idempotent open: ready-poll plus default.
func (g *Gate) markReady() {
	select {
	case <-g.ready:
	default:
		close(g.ready)
	}
}

// openOnce is the other accepted guard.
func (g *Gate) openOnce() {
	g.once.Do(func() { close(g.ready) })
}

// stop makes markReady reachable from a shutdown root.
func (g *Gate) stop() {
	g.markReady()
}

// openUnguarded closes the latch bare: a second close panics, so
// shutdown and completion cannot race through it.
func (g *Gate) openUnguarded() {
	close(g.ready) // want `close of latch .*Gate\.ready in .* is not idempotent`
}
