// Fixture for the locksync analyzer: device syncs and sleeps under a
// held mutex, the release-around-the-sync pattern, and the *Locked
// naming convention.
package locksync

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

func (s *store) badHeld() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `\Q(*os.File).Sync\E can block on device I/O while .*store\.mu is held in .*badHeld`
}

func (s *store) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep can block on device I/O while .*store\.mu is held`
	s.mu.Unlock()
}

// flushLocked follows the *Locked convention: entered with the mutex
// held, so the sync is flagged even without a visible Lock.
func (s *store) flushLocked() error {
	return s.f.Sync() // want `\Q(*os.File).Sync\E can block on device I/O while .*flushLocked`
}

// syncLocked releases the mutex around the device sync — the pattern
// (*wal.Log).syncLocked establishes — so nothing is flagged.
func (s *store) syncLocked() error {
	s.mu.Unlock()
	err := s.f.Sync()
	s.mu.Lock()
	return err
}

func (s *store) goodReleased() error {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	return f.Sync()
}

// unguarded code may sync freely.
func flush(f *os.File) error {
	return f.Sync()
}
