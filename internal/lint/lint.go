// Package lint is phoenix-lint: a family of static analyzers that
// mechanically enforce the logging, clock and lock disciplines the
// runtime otherwise maintains by convention (DESIGN.md Section 9).
//
// The package deliberately mirrors the shape of golang.org/x/tools'
// go/analysis — Analyzer, Pass, Diagnostic — but is built on the
// standard library only: packages are loaded with `go list -export`
// and type-checked from compiler export data (see load.go), so the
// checker needs no dependencies beyond the Go toolchain itself.
//
// Analyzers:
//
//	forcesite   — wal.Log append/force entry points may only be called
//	              from the blessed accounting chokepoints in core
//	wallclock   — no direct wall-clock reads in the simulation-clocked
//	              packages (core, wal, bench) outside the allowlist
//	locksync    — no device I/O while the wal mutex is held
//	exhaustive  — switches over runtime enums cover every member or
//	              carry an explicit default
//	metricnames — obs metric names at call sites are the names.go
//	              constants, and every declared name is wired somewhere
//
// Deliberate exceptions live in one commented allowlist file
// (phoenix-lint.allow), not in suppressions scattered through code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported violation. Position is resolved against
// the run's shared FileSet so diagnostics from different packages (and
// from cross-package Finish hooks) sort and print uniformly. Fn, when
// known, is the enclosing function in FuncString spelling — the unit
// allowlist entries are written against, which is what lets the
// dead-allowlist check (UnusedAllowlist) match entries to raw
// diagnostics.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Fn       string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFn(pos, "", format, args...)
}

// ReportfFn records a diagnostic at pos attributed to the enclosing
// function fn (FuncString spelling, "" when unknown).
func (p *Pass) ReportfFn(pos token.Pos, fn string, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Fn:       fn,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Run is invoked once per package; the
// optional Finish hook runs after every package of the run has been
// analyzed, for checks that need whole-repo state (metricnames'
// orphan detection). Analyzers carrying cross-package state are built
// fresh per run by their constructor, so a Runner must not be reused.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish, when non-nil, reports diagnostics that could only be
	// decided after all packages were seen. The Analyzer field of the
	// reported Diagnostic is filled in by the Runner.
	Finish func(report func(Diagnostic))
}

// Runner applies a set of analyzers to a set of loaded packages.
type Runner struct {
	Analyzers []*Analyzer
}

// Run analyzes every package with every analyzer, runs the Finish
// hooks, and returns the diagnostics sorted by position.
func (r *Runner) Run(pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range r.Analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				report:   report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range r.Analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// FuncString names a function object the way the allowlist file spells
// functions: "pkgpath.Func" for package functions and
// "(recvtype).Method" — e.g. "(*repro/internal/wal.Log).syncLocked" —
// for methods.
func FuncString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), nil), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// WalkFuncs visits every function declaration of the package, passing
// its allowlist name. Code inside function literals is attributed to
// the enclosing declaration — exceptions are granted per named
// function, never per closure.
func WalkFuncs(pass *Pass, visit func(decl *ast.FuncDecl, name string)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			visit(fd, FuncString(fn))
		}
	}
}

// Callee resolves the function or method a call expression invokes,
// or nil for calls through function values, conversions and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CalleeString is Callee rendered in allowlist spelling, or "".
func CalleeString(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	return FuncString(fn)
}
