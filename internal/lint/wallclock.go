package lint

import (
	"go/ast"
)

// WallclockConfig scopes the wallclock analyzer.
type WallclockConfig struct {
	// Packages are the import paths where direct wall-clock reads are
	// banned (they must run on the universe clock).
	Packages []string
	// Banned are the call targets (FuncString spelling) that read or
	// wait on the wall clock. Empty means the package time's readers,
	// sleepers and timers.
	Banned []string
}

var defaultWallclockBanned = []string{
	"time.Now", "time.Since", "time.Until", "time.Sleep",
	"time.After", "time.Tick", "time.NewTimer", "time.NewTicker",
	"time.AfterFunc",
}

// NewWallclock returns the wallclock analyzer: inside the configured
// packages, every read of or wait on the wall clock must go through
// the clock abstraction (disk.Clock / the universe clock), so that
// simulated-time runs stay deterministic and scaled runs report model
// time. Wall-time instrumentation that is deliberate — host-side
// latency histograms — is granted per function in the allowlist.
//
// This is the bug class PR 3 fixed by hand: recovery durations read
// time.Now under a VirtualClock and reported nonsense.
func NewWallclock(cfg WallclockConfig, allow *Allowlist) *Analyzer {
	banned := map[string]bool{}
	names := cfg.Banned
	if len(names) == 0 {
		names = defaultWallclockBanned
	}
	for _, n := range names {
		banned[n] = true
	}
	pkgs := map[string]bool{}
	for _, p := range cfg.Packages {
		pkgs[p] = true
	}
	return &Analyzer{
		Name: "wallclock",
		Doc:  "ban direct wall-clock reads outside the clock abstraction in simulation-clocked packages",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				if allow.Allowed("wallclock", fname) {
					return
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeString(pass.Info, call); banned[callee] {
						pass.ReportfFn(call.Pos(), fname,
							"%s reads the wall clock in %s; use the universe clock (disk.Clock), or allowlist %s in phoenix-lint.allow if this wall read is deliberate instrumentation",
							callee, fname, fname)
					}
					return true
				})
			})
			return nil
		},
	}
}
