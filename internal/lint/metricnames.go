package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// MetricNamesConfig scopes the metricnames analyzer.
type MetricNamesConfig struct {
	// ObsPath is the import path of the metrics package. Empty means
	// "repro/internal/obs".
	ObsPath string
	// NamesFile is the file (base name) inside ObsPath that declares
	// the canonical metric-name constants. Empty means "names.go".
	NamesFile string
	// Methods are the method names on ObsPath types that take a
	// metric name as their first argument. Empty means Counter,
	// Histogram, HistogramFor, Gauge.
	Methods []string
}

// NewMetricNames returns the metricnames analyzer: every metric name
// that reaches a Counter/Histogram resolution call must be one of the
// constants declared in internal/obs/names.go (spelled as the
// constant, not a string literal), and every declared constant must be
// resolved somewhere — no orphan declarations. The declared set and
// the use set are gathered per package and reconciled once the whole
// run has been seen, so this analyzer is only meaningful on ./...
// runs; on partial runs that never see the obs package it stays
// silent.
func NewMetricNames(cfg MetricNamesConfig, allow *Allowlist) *Analyzer {
	obsPath := cfg.ObsPath
	if obsPath == "" {
		obsPath = "repro/internal/obs"
	}
	namesFile := cfg.NamesFile
	if namesFile == "" {
		namesFile = "names.go"
	}
	methods := map[string]bool{}
	names := cfg.Methods
	if len(names) == 0 {
		names = []string{"Counter", "Histogram", "HistogramFor", "Gauge"}
	}
	for _, m := range names {
		methods[m] = true
	}

	type decl struct {
		name string
		pos  token.Position
	}
	type use struct {
		constName string // "" for a plain literal
		value     string
		pos       token.Position
		fn        string
	}
	var (
		sawObs   bool
		declared = map[string]decl{} // metric name value -> declaration
		resolved = map[string]bool{} // metric name values seen at call sites
		uses     []use
	)

	return &Analyzer{
		Name: "metricnames",
		Doc:  "metric names at call sites are the names.go constants; no orphan declarations",
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() == obsPath {
				sawObs = true
				collectDeclared(pass, namesFile, func(name, value string, pos token.Pos) {
					declared[value] = decl{name: name, pos: pass.Fset.Position(pos)}
				})
			}
			WalkFuncs(pass, func(fd *ast.FuncDecl, fname string) {
				if allow.Allowed("metricnames", fname) {
					return
				}
				ast.Inspect(fd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					fn := Callee(pass.Info, call)
					if fn == nil || !methods[fn.Name()] || !receiverIn(fn, obsPath) {
						return true
					}
					arg := ast.Unparen(call.Args[0])
					tv, ok := pass.Info.Types[arg]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						return true // dynamic name: nothing checkable
					}
					value := constant.StringVal(tv.Value)
					resolved[value] = true
					uses = append(uses, use{
						constName: obsConstName(pass, arg, obsPath),
						value:     value,
						pos:       pass.Fset.Position(arg.Pos()),
						fn:        fname,
					})
					return true
				})
			})
			return nil
		},
		Finish: func(report func(Diagnostic)) {
			if !sawObs {
				return
			}
			for _, u := range uses {
				d, ok := declared[u.value]
				switch {
				case u.constName == "" && ok:
					report(Diagnostic{Pos: u.pos, Fn: u.fn, Message: fmt.Sprintf("use the constant %s from %s/%s instead of the literal %q", d.name, obsPath, namesFile, u.value)})
				case u.constName == "" && !ok:
					report(Diagnostic{Pos: u.pos, Fn: u.fn, Message: fmt.Sprintf("metric name %q is not declared in %s/%s", u.value, obsPath, namesFile)})
				case u.constName != "" && !ok:
					report(Diagnostic{Pos: u.pos, Fn: u.fn, Message: fmt.Sprintf("constant %s (%q) is used as a metric name but not declared in %s/%s", u.constName, u.value, obsPath, namesFile)})
				}
			}
			var orphans []string
			for value := range declared {
				if !resolved[value] {
					orphans = append(orphans, value)
				}
			}
			sort.Strings(orphans)
			for _, value := range orphans {
				d := declared[value]
				report(Diagnostic{Pos: d.pos, Message: fmt.Sprintf("metric name constant %s (%q) is declared in %s but never resolved by any Counter/Histogram call — orphan declaration", d.name, value, namesFile)})
			}
		},
	}
}

// collectDeclared walks the obs package's names file and reports every
// package-level string constant it declares.
func collectDeclared(pass *Pass, namesFile string, emit func(name, value string, pos token.Pos)) {
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) != namesFile {
			continue
		}
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					c, ok := pass.Info.Defs[id].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					emit(id.Name, constant.StringVal(c.Val()), id.Pos())
				}
			}
		}
	}
}

// obsConstName returns "obs.WALForces"-style spelling when arg is a
// reference to a constant declared in the obs package, else "".
func obsConstName(pass *Pass, arg ast.Expr, obsPath string) string {
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != obsPath {
		return ""
	}
	return c.Pkg().Name() + "." + c.Name()
}

// receiverIn reports whether fn is a method whose receiver type is
// declared in pkgPath.
func receiverIn(fn *types.Func, pkgPath string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}
