package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the scaffolding shared by the second-generation
// concurrency analyzers (lockorder, locksync, shutdownpath): lock
// *classes* that name a struct field the way config files spell them,
// a lexical walker that replays acquire/release/wait events per
// function with proper scoping for closures and goroutines, and a
// whole-run call graph with cheap interface devirtualization (core
// reaches wal only through the wal.Writer interface, so without it
// every core→wal edge would be lost).

// FieldClass spells a struct field as a lock class:
// "pkgpath.Type.field", e.g. "repro/internal/wal.Log.mu".
func FieldClass(named *types.Named, field string) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + field
}

// fieldClassOf resolves the operand of a lock or channel operation
// (x.mu in x.mu.Lock(), lr.slots in lr.slots <- tok) to its lock
// class. Package-level variables resolve to "pkgpath.var". Locals and
// anything else resolve to "" (untracked: a lock nobody else can see
// cannot participate in a cross-function ordering).
func fieldClassOf(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			// Qualified package-level var: pkg.Var.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		t := sel.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return ""
		}
		return FieldClass(named, sel.Obj().Name())
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// heldLock is one entry of the lexical held-set.
type heldLock struct {
	Class string // "" for an untracked (local) mutex
	Pos   token.Pos
}

func heldClasses(held []heldLock) []string {
	out := make([]string, 0, len(held))
	for _, h := range held {
		out = append(out, h.Class)
	}
	return out
}

// lockWalkConfig declares which channel-typed classes carry lock-like
// semantics for the walker.
type lockWalkConfig struct {
	// semaphores: buffered channels used as worker semaphores; a send
	// acquires a slot, a receive releases it.
	semaphores map[string]bool
	// latches: close-once readiness channels; a blocking receive (one
	// not inside a select that has a default clause) is a wait event.
	latches map[string]bool
}

// lockCallbacks receive the walker's events. held is the lexical
// held-set at the event, innermost last; inGo is true inside a
// function literal spawned by a go statement (a different goroutine:
// its acquisitions are not nested under the spawner's locks).
type lockCallbacks struct {
	acquire func(held []heldLock, class string, pos token.Pos, inGo bool)
	wait    func(held []heldLock, class string, pos token.Pos, inGo bool)
	call    func(held []heldLock, fn *types.Func, call *ast.CallExpr, inGo bool)
}

// lockScope is the per-goroutine, per-closure replay state.
type lockScope struct {
	held []heldLock
	inGo bool
	// inDefer suppresses release effects: `defer mu.Unlock()` keeps
	// the lock held to the end of the function.
	inDefer bool
}

type lockWalker struct {
	info *types.Info
	cfg  lockWalkConfig
	cb   lockCallbacks
}

// walkLocks replays decl's body. A name ending in "Locked" is entered
// with its receiver's mu held (the package naming convention); the
// seed class is the receiver type's "mu" field when it has one.
func walkLocks(pass *Pass, decl *ast.FuncDecl, cfg lockWalkConfig, cb lockCallbacks) {
	if decl.Body == nil {
		return
	}
	w := &lockWalker{info: pass.Info, cfg: cfg, cb: cb}
	sc := &lockScope{}
	if strings.HasSuffix(decl.Name.Name, "Locked") {
		class := ""
		if fn, _ := pass.Info.Defs[decl.Name].(*types.Func); fn != nil {
			class = recvMutexClass(fn)
		}
		sc.held = append(sc.held, heldLock{Class: class, Pos: decl.Name.Pos()})
	}
	w.walk(decl.Body, sc)
}

// recvMutexClass returns the class of the receiver type's "mu" field,
// or "" when the method has no receiver or the type no such field.
func recvMutexClass(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "mu" {
			return FieldClass(named, "mu")
		}
	}
	return ""
}

func (w *lockWalker) walk(root ast.Node, sc *lockScope) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A plain closure runs on this goroutine but manages its
			// own locks; give it a fresh held-set so a `defer
			// mu.Unlock()` inside (the ctxOf pattern in recovery.go)
			// cannot poison the enclosing replay.
			w.walk(n.Body, &lockScope{inGo: sc.inGo})
			return false
		case *ast.DeferStmt:
			w.handleDefer(n, sc)
			return false
		case *ast.GoStmt:
			w.handleGo(n, sc)
			return false
		case *ast.IfStmt:
			w.handleIf(n, sc)
			return false
		case *ast.SelectStmt:
			w.handleSelect(n, sc)
			return false
		case *ast.SendStmt:
			w.walk(n.Value, sc)
			w.handleSend(n, sc)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.handleRecv(n, sc, false)
				return false
			}
		case *ast.CallExpr:
			w.handleCall(n, sc)
			return true // arguments may hold nested calls and literals
		}
		return true
	})
}

func (w *lockWalker) handleCall(call *ast.CallExpr, sc *lockScope) {
	fn := Callee(w.info, call)
	if fn == nil {
		return
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	switch {
	case isLockAcquire(FuncString(fn)):
		class := ""
		if sel != nil {
			class = fieldClassOf(w.info, sel.X)
		}
		if w.cb.acquire != nil {
			w.cb.acquire(sc.held, class, call.Pos(), sc.inGo)
		}
		sc.held = append(sc.held, heldLock{Class: class, Pos: call.Pos()})
	case isLockRelease(FuncString(fn)):
		if sc.inDefer {
			return // held until function exit
		}
		class := ""
		if sel != nil {
			class = fieldClassOf(w.info, sel.X)
		}
		sc.release(class)
	default:
		if w.cb.call != nil {
			w.cb.call(sc.held, fn, call, sc.inGo)
		}
	}
}

// release pops the innermost held entry of class (falling back to the
// innermost entry of any class, so unresolved aliasing degrades to the
// old purely-lexical behavior instead of leaking a phantom lock).
func (sc *lockScope) release(class string) {
	for i := len(sc.held) - 1; i >= 0; i-- {
		if sc.held[i].Class == class {
			sc.held = append(sc.held[:i], sc.held[i+1:]...)
			return
		}
	}
	if n := len(sc.held); n > 0 {
		sc.held = sc.held[:n-1]
	}
}

func (w *lockWalker) handleDefer(d *ast.DeferStmt, sc *lockScope) {
	fn := Callee(w.info, d.Call)
	if fn != nil && isLockRelease(FuncString(fn)) {
		return // deferred unlock: stays held to function exit
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		// Deferred closures run at exit; releases inside must not
		// rewind the lexical held-set of the body that follows.
		w.walk(lit.Body, &lockScope{inGo: sc.inGo, inDefer: true})
		return
	}
	inner := *sc
	inner.inDefer = true
	w.handleCall(d.Call, &inner)
	sc.held = inner.held
}

func (w *lockWalker) handleGo(g *ast.GoStmt, sc *lockScope) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		w.walk(lit.Body, &lockScope{inGo: true})
		return
	}
	// go x.method(): the callee runs on a new goroutine; report the
	// call so analyzers can model the spawn, flagged inGo with an
	// empty held-set.
	if fn := Callee(w.info, g.Call); fn != nil && w.cb.call != nil {
		w.cb.call(nil, fn, g.Call, true)
	}
}

// handleIf replays both arms. A branch whose body terminates (ends in
// return or panic) cannot leak its locks into the code after the if —
// the `if cond { mu.Lock(); defer mu.Unlock(); ...; return }` fast
// path in (*wal.Log).SyncTo must not poison the slow path below it —
// so the held-set is restored to its pre-branch snapshot.
func (w *lockWalker) handleIf(s *ast.IfStmt, sc *lockScope) {
	if s.Init != nil {
		w.walk(s.Init, sc)
	}
	w.walk(s.Cond, sc)
	saved := append([]heldLock(nil), sc.held...)
	w.walk(s.Body, sc)
	if blockTerminates(s.Body) {
		sc.held = saved
	}
	if s.Else != nil {
		saved = append([]heldLock(nil), sc.held...)
		w.walk(s.Else, sc)
		if blk, ok := s.Else.(*ast.BlockStmt); ok && blockTerminates(blk) {
			sc.held = saved
		}
	}
}

// blockTerminates reports whether the block's last statement leaves the
// function (return, panic, or an unconditional branch out of the
// lexical flow) — the cases where locks acquired inside cannot still be
// held by the code that lexically follows the block.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) handleSelect(s *ast.SelectStmt, sc *lockScope) {
	hasDefault := false
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		// Each clause replays against a snapshot of the held-set:
		// clauses are alternatives, not a sequence.
		saved := append([]heldLock(nil), sc.held...)
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			w.walk(comm.Value, sc)
			w.handleSend(comm, sc)
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.handleRecv(u, sc, hasDefault)
			}
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					w.handleRecv(u, sc, hasDefault)
				}
			}
		}
		for _, st := range cc.Body {
			w.walk(st, sc)
		}
		sc.held = saved
	}
}

func (w *lockWalker) handleSend(s *ast.SendStmt, sc *lockScope) {
	class := fieldClassOf(w.info, s.Chan)
	if class == "" || !w.cfg.semaphores[class] {
		return
	}
	if w.cb.acquire != nil {
		w.cb.acquire(sc.held, class, s.Pos(), sc.inGo)
	}
	sc.held = append(sc.held, heldLock{Class: class, Pos: s.Pos()})
}

// handleRecv processes `<-ch`: a semaphore receive releases a slot; a
// latch receive is a wait event unless the enclosing select has a
// default clause (a non-blocking readiness poll).
func (w *lockWalker) handleRecv(u *ast.UnaryExpr, sc *lockScope, selectHasDefault bool) {
	w.walk(u.X, sc)
	class := fieldClassOf(w.info, u.X)
	if class == "" {
		return
	}
	switch {
	case w.cfg.semaphores[class]:
		sc.release(class)
	case w.cfg.latches[class] && !selectHasDefault:
		if w.cb.wait != nil {
			w.cb.wait(sc.held, class, u.Pos(), sc.inGo)
		}
	}
}

// ---------------------------------------------------------------------
// Call graph.

// callGraph accumulates caller→callee edges across every analyzed
// package of a run, plus the raw material for devirtualizing interface
// calls at Finish time: the named types seen and the interface methods
// invoked.
type callGraph struct {
	edges      map[string]map[string]bool // FuncString -> set of callee FuncStrings
	ifaceCalls map[string]*types.Func     // callee FuncString -> interface method
	named      map[string]*types.Named    // type name -> named types seen
}

func newCallGraph() *callGraph {
	return &callGraph{
		edges:      map[string]map[string]bool{},
		ifaceCalls: map[string]*types.Func{},
		named:      map[string]*types.Named{},
	}
}

// addTypes collects the package's named types for devirtualization.
func (g *callGraph) addTypes(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				g.named[named.Obj().Pkg().Path()+"."+named.Obj().Name()] = named
			}
		}
	}
}

// addPackage records every call edge of the package and collects its
// named types for later devirtualization.
func (g *callGraph) addPackage(pass *Pass) {
	g.addTypes(pass)
	WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
		if decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := Callee(pass.Info, call); fn != nil {
				g.addEdge(fname, fn)
			}
			return true
		})
	})
}

func (g *callGraph) addEdge(caller string, callee *types.Func) {
	name := FuncString(callee)
	if g.edges[caller] == nil {
		g.edges[caller] = map[string]bool{}
	}
	g.edges[caller][name] = true
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			g.ifaceCalls[name] = callee
		}
	}
}

// devirtualize returns, for every interface-method callee seen, the
// concrete methods it may dispatch to among the analyzed named types.
func (g *callGraph) devirtualize() map[string][]string {
	out := map[string][]string{}
	for name, fn := range g.ifaceCalls {
		sig := fn.Type().(*types.Signature)
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, named := range g.named {
			if types.IsInterface(named.Underlying()) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), fn.Name())
			if m, ok := obj.(*types.Func); ok {
				out[name] = append(out[name], FuncString(m))
			}
		}
	}
	return out
}

// reachable returns the set of functions reachable from roots over the
// devirtualized edges (roots included).
func (g *callGraph) reachable(roots []string) map[string]bool {
	virt := g.devirtualize()
	seen := map[string]bool{}
	work := append([]string(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		for callee := range g.edges[fn] {
			work = append(work, callee)
			work = append(work, virt[callee]...)
		}
	}
	return seen
}
