package lint

import (
	"go/ast"
	"go/types"
)

// LocksyncConfig scopes the locksync analyzer.
type LocksyncConfig struct {
	// Packages are the import paths checked (the log manager and the
	// engine that drives it).
	Packages []string
	// Blocking are the call targets (FuncString spelling) that can
	// block on device I/O or real time. Empty means the runtime
	// defaults: file syncs, the disk model's sync, the group-commit
	// wait, clock sleeps, segment creation, and the wal append/force
	// entry points core reaches while holding its own mutexes.
	Blocking []string
	// Mutexes are the lock classes ("pkgpath.Type.field") whose
	// critical sections must stay free of blocking calls. Empty means
	// every lock the replay can see (the strict mode fixtures use);
	// the repository configuration names the shard, flusher, engine
	// and lazy-recovery mutexes explicitly so that coarse outer locks
	// like the per-context mutex — which serializes whole handler
	// executions, forces included, by design — stay exempt.
	Mutexes []string
}

var defaultLocksyncBlocking = []string{
	"(*os.File).Sync",
	"(repro/internal/disk.Model).Sync",
	"(*repro/internal/wal.groupCommitter).wait",
	"(repro/internal/disk.Clock).Sleep",
	"time.Sleep",
	"(*repro/internal/wal.Log).createSegment",
}

// NewLocksync returns the locksync analyzer: no call that can block on
// device I/O may run while a guarded mutex is held — the PR-2
// invariant that keeps Append from ever waiting behind an in-flight
// force (device syncs run with the log mutex released; see
// (*wal.Log).syncLocked), extended in PR 9 to the per-shard mutexes
// and the lazy-recovery engine mutex.
//
// The check is lexical and intra-procedural: within each function it
// replays Lock/Unlock/defer-Unlock calls in source order — with lock
// *classes* resolved from the mutex operand, and closures scoped
// separately — and flags the configured blocking calls made while a
// guarded lock is held. A function whose name ends in "Locked" is
// assumed to be entered with its receiver's mu held (the package's
// naming convention). Cond.Wait is fine — it releases the mutex.
// Calls reached indirectly (a helper that syncs, called under the
// lock) are caught only if the helper is itself in the blocking list.
func NewLocksync(cfg LocksyncConfig, allow *Allowlist) *Analyzer {
	blocking := toSet(cfg.Blocking, defaultLocksyncBlocking)
	pkgs := toSet(cfg.Packages, []string{"repro/internal/wal"})
	guardedClass := func(class string) bool { return true }
	if len(cfg.Mutexes) > 0 {
		classes := toSet(cfg.Mutexes, nil)
		guardedClass = func(class string) bool { return classes[class] }
	}
	return &Analyzer{
		Name: "locksync",
		Doc:  "no device I/O while a log or engine mutex is held (syncs run with the mutex released)",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				if allow.Allowed("locksync", fname) {
					return
				}
				walkLocks(pass, decl, lockWalkConfig{}, lockCallbacks{
					call: func(held []heldLock, fn *types.Func, call *ast.CallExpr, inGo bool) {
						if !blocking[FuncString(fn)] {
							return
						}
						for _, h := range held {
							if !guardedClass(h.Class) {
								continue
							}
							lock := "the mutex"
							if h.Class != "" {
								lock = h.Class
							}
							pass.ReportfFn(call.Pos(), fname,
								"%s can block on device I/O while %s is held in %s; release the mutex around the sync (see (*wal.Log).syncLocked) or allowlist %s in phoenix-lint.allow",
								FuncString(fn), lock, fname, fname)
							return
						}
					},
				})
			})
			return nil
		},
	}
}

func isLockAcquire(callee string) bool {
	switch callee {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return true
	}
	return false
}

func isLockRelease(callee string) bool {
	switch callee {
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return true
	}
	return false
}
