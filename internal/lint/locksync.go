package lint

import (
	"go/ast"
	"strings"
)

// LocksyncConfig scopes the locksync analyzer.
type LocksyncConfig struct {
	// Packages are the import paths checked (the log manager).
	Packages []string
	// Blocking are the call targets (FuncString spelling) that can
	// block on device I/O or real time. Empty means the wal defaults:
	// file syncs, the disk model's sync, the group-commit wait, clock
	// sleeps — plus (*wal.Log).createSegment, which transitively syncs
	// the fresh segment's header.
	Blocking []string
}

var defaultLocksyncBlocking = []string{
	"(*os.File).Sync",
	"(repro/internal/disk.Model).Sync",
	"(*repro/internal/wal.groupCommitter).wait",
	"(repro/internal/disk.Clock).Sleep",
	"time.Sleep",
	"(*repro/internal/wal.Log).createSegment",
}

// NewLocksync returns the locksync analyzer: no call that can block on
// device I/O may run while a mutex is held — the PR-2 invariant that
// keeps Append from ever waiting behind an in-flight force (device
// syncs run with the log mutex released; see (*wal.Log).syncLocked).
//
// The check is lexical and intra-procedural: within each function it
// replays Lock/Unlock/defer-Unlock calls in source order and flags the
// configured blocking calls made while a lock is held. A function
// whose name ends in "Locked" is assumed to be entered with the mutex
// held (the package's naming convention). Cond.Wait is fine — it
// releases the mutex. Calls reached indirectly (a helper that syncs,
// called under the lock) are caught only if the helper is itself in
// the blocking list.
func NewLocksync(cfg LocksyncConfig, allow *Allowlist) *Analyzer {
	blocking := map[string]bool{}
	names := cfg.Blocking
	if len(names) == 0 {
		names = defaultLocksyncBlocking
	}
	for _, n := range names {
		blocking[n] = true
	}
	pkgs := map[string]bool{}
	paths := cfg.Packages
	if len(paths) == 0 {
		paths = []string{"repro/internal/wal"}
	}
	for _, p := range paths {
		pkgs[p] = true
	}
	return &Analyzer{
		Name: "locksync",
		Doc:  "no device I/O while the log mutex is held (syncs run with the mutex released)",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				if allow.Allowed("locksync", fname) || decl.Body == nil {
					return
				}
				// deferred marks calls that appear directly under a
				// defer statement: `defer mu.Unlock()` holds the lock
				// for the rest of the function, so it counts as a
				// lock-acquire for the lexical replay.
				deferred := map[*ast.CallExpr]bool{}
				held := strings.HasSuffix(decl.Name.Name, "Locked")
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if d, ok := n.(*ast.DeferStmt); ok {
						deferred[d.Call] = true
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := CalleeString(pass.Info, call)
					switch {
					case isLockAcquire(callee):
						held = true
					case isLockRelease(callee):
						if deferred[call] {
							held = true // held until return
						} else {
							held = false
						}
					case blocking[callee] && held:
						pass.Reportf(call.Pos(),
							"%s can block on device I/O while the mutex is held in %s; release the mutex around the sync (see (*wal.Log).syncLocked) or allowlist %s in phoenix-lint.allow",
							callee, fname, fname)
					}
					return true
				})
			})
			return nil
		},
	}
}

func isLockAcquire(callee string) bool {
	switch callee {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return true
	}
	return false
}

func isLockRelease(callee string) bool {
	switch callee {
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return true
	}
	return false
}
