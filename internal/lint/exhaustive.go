package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveConfig scopes the exhaustive analyzer.
type ExhaustiveConfig struct {
	// ModulePrefix restricts the check to enum types declared in
	// packages under this import-path prefix. Empty means "repro".
	ModulePrefix string
}

// NewExhaustive returns the exhaustive analyzer: a switch over one of
// the runtime's enums (EventKind, the wal record types, the component
// kinds, ...) must either cover every declared member or carry an
// explicit default — a bare partial switch silently drops newly added
// members, the regression class the defensive String() defaults exist
// for.
//
// An enum is any named integer or string type declared under the
// module prefix with at least two package-level constants of exactly
// that type; the members are gathered from the type's own package and
// from the switching package (the wal record types are declared in
// core, not wal). Members whose name ends in "count" are bound
// sentinels (eventKindCount) and are not required.
func NewExhaustive(cfg ExhaustiveConfig, allow *Allowlist) *Analyzer {
	prefix := cfg.ModulePrefix
	if prefix == "" {
		prefix = "repro"
	}
	return &Analyzer{
		Name: "exhaustive",
		Doc:  "switches over runtime enums cover every member or carry an explicit default",
		Run: func(pass *Pass) error {
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				if allow.Allowed("exhaustive", fname) {
					return
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					checkSwitch(pass, sw, fname, prefix)
					return true
				})
			})
			return nil
		},
	}
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt, fname, prefix string) {
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !underPrefix(obj.Pkg().Path(), prefix) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	members := enumMembers(named, obj.Pkg(), pass.Pkg)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author owns the remainder
		}
		for _, e := range cc.List {
			if v := pass.Info.Types[e].Value; v != nil {
				covered[v.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.key] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.ReportfFn(sw.Pos(), fname,
		"switch over %s is missing cases %s and has no default; add the cases or an explicit default",
		types.TypeString(named, nil), strings.Join(missing, ", "))
}

type enumMember struct {
	name string
	key  string // constant.Value.ExactString()
	val  constant.Value
}

// enumMembers gathers the package-level constants of exactly type
// named, deduplicated by value, from the given package scopes. They
// come back in declaration (value) order so diagnostics read the way
// the enum is written.
func enumMembers(named *types.Named, scopes ...*types.Package) []enumMember {
	seen := map[string]bool{}
	var members []enumMember
	for _, pkg := range scopes {
		if pkg == nil {
			continue
		}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || name == "_" {
				continue
			}
			if strings.HasSuffix(strings.ToLower(name), "count") {
				continue // bound sentinel (eventKindCount)
			}
			if !sameNamed(c.Type(), named) {
				continue
			}
			key := c.Val().ExactString()
			if seen[key] {
				continue
			}
			seen[key] = true
			members = append(members, enumMember{name: name, key: key, val: c.Val()})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		a, b := members[i].val, members[j].val
		if a.Kind() == b.Kind() && a.Kind() != constant.Unknown {
			return constant.Compare(a, token.LSS, b)
		}
		return members[i].name < members[j].name
	})
	return members
}

// sameNamed reports whether t is the same named type as named,
// comparing by declaring package path and name so that a type seen
// once from source and once through export data still matches.
func sameNamed(t types.Type, named *types.Named) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	a, b := n.Obj(), named.Obj()
	if a.Pkg() == nil || b.Pkg() == nil {
		return a == b
	}
	return a.Name() == b.Name() && a.Pkg().Path() == b.Pkg().Path()
}

func underPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
