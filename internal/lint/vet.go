package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// VetConfig is the package description `go vet -vettool` hands the
// tool: one JSON .cfg file per package, with the import graph already
// resolved to export-data files in the build cache. Only the fields
// phoenix-lint consumes are decoded.
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	// ImportMap maps import paths as spelled in the source to canonical
	// package paths; PackageFile maps canonical paths to export data.
	ImportMap   map[string]string
	PackageFile map[string]string
	// VetxOnly marks a facts-only invocation for a dependency: go vet
	// wants the tool's fact file (phoenix-lint keeps none) and no
	// diagnostics.
	VetxOnly   bool
	VetxOutput string
	// SucceedOnTypecheckFailure asks the tool to stay silent on broken
	// packages — the compiler will report the real error.
	SucceedOnTypecheckFailure bool
}

// LoadVetConfig reads a `go vet` .cfg file.
func LoadVetConfig(path string) (*VetConfig, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(src, cfg); err != nil {
		return nil, fmt.Errorf("lint: parse vet config %s: %w", path, err)
	}
	return cfg, nil
}

// IsTestUnit reports whether the config describes a test variant of a
// package (in-package test build, external _test package, or the
// generated test main) rather than the production package.
func (cfg *VetConfig) IsTestUnit() bool {
	if cfg.ID != "" && cfg.ID != cfg.ImportPath {
		return true
	}
	if strings.HasSuffix(cfg.ImportPath, "_test") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return true
	}
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return true
		}
	}
	return false
}

// LoadPackage type-checks the vet unit from its config, resolving
// imports through ImportMap into the export files go vet prepared.
func (cfg *VetConfig) LoadPackage() (*Package, error) {
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}
	return newLoader(exports).check(cfg.ImportPath, cfg.Dir, cfg.GoFiles)
}
