package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis. All packages
// of a Load share one FileSet, so positions are comparable across the
// whole run.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	DepOnly    bool
	GoFiles    []string
}

// goList is the cached front end to goListUncached: `go list -export`
// re-exports (or at best re-validates) every package in the dependency
// closure, which dominated `make lint` wall time because the suite
// lists the module several times per run (the main load plus one
// LoadDir per fixture test). Results are memoized in-process and
// persisted to a file in the user cache keyed on a hash of go.mod,
// go.sum and every non-testdata .go file, so a warm run skips the go
// tool entirely. A cached entry is trusted only while every export
// file it names still exists (the build cache may be trimmed).
func goList(dir string, patterns []string) ([]listedPkg, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	listMu.Lock()
	cached, ok := listMemo[key]
	listMu.Unlock()
	if ok && exportsExist(cached) {
		return cached, nil
	}
	pkgs, err := goListDisk(dir, patterns)
	if err != nil {
		return nil, err
	}
	listMu.Lock()
	listMemo[key] = pkgs
	listMu.Unlock()
	return pkgs, nil
}

var (
	listMu   sync.Mutex
	listMemo = map[string][]listedPkg{}
)

func exportsExist(pkgs []listedPkg) bool {
	for _, p := range pkgs {
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return false
			}
		}
	}
	return true
}

// goListDisk consults the on-disk cache before shelling out.
func goListDisk(dir string, patterns []string) ([]listedPkg, error) {
	path, ok := listCachePath(dir, patterns)
	if ok {
		if data, err := os.ReadFile(path); err == nil {
			var pkgs []listedPkg
			if json.Unmarshal(data, &pkgs) == nil && exportsExist(pkgs) {
				return pkgs, nil
			}
		}
	}
	pkgs, err := goListUncached(dir, patterns)
	if err != nil {
		return nil, err
	}
	if ok {
		if data, err := json.Marshal(pkgs); err == nil {
			tmp := path + ".tmp"
			if os.WriteFile(tmp, data, 0o644) == nil {
				_ = os.Rename(tmp, path)
			}
		}
	}
	return pkgs, nil
}

// listCachePath derives the cache file for (dir, patterns) from a hash
// over the module's inputs. A false return disables the disk cache
// (no module root, unreadable tree) — correctness never depends on it.
func listCachePath(dir string, patterns []string) (string, bool) {
	root, err := moduleRoot(dir)
	if err != nil {
		return "", false
	}
	cacheDir, err := os.UserCacheDir()
	if err != nil {
		cacheDir = os.TempDir()
	}
	h := sha256.New()
	fmt.Fprintf(h, "phoenix-lint|%s|%s|%s\n", runtime.Version(), dir, strings.Join(patterns, " "))
	for _, name := range []string{"go.mod", "go.sum"} {
		data, err := os.ReadFile(filepath.Join(root, name))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return "", false
		}
		h.Write(data)
	}
	// Hash every tracked .go source; testdata is skipped — fixtures
	// are parsed directly and never alter `go list` output.
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		fmt.Fprintf(h, "%s\x00", rel)
		h.Write(data)
		return nil
	})
	if err != nil {
		return "", false
	}
	return filepath.Join(cacheDir, fmt.Sprintf("phoenix-lint-list-%x.json", h.Sum(nil)[:16])), true
}

// goListUncached runs `go list -export -deps -json` for patterns in
// dir and returns the decoded package stream. -export compiles (or
// reuses from the build cache) every package's export data, which is
// what lets the type checker resolve imports without
// golang.org/x/tools.
func goListUncached(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader type-checks packages from parsed source, resolving every
// import from compiler export data.
type loader struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

func newLoader(exports map[string]string) *loader {
	l := &loader{fset: token.NewFileSet(), exports: exports}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for import %q", path)
		}
		return os.Open(f)
	})
	return l
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// check parses files and type-checks them as package path.
func (l *loader) check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load type-checks the packages matching the `go list` patterns,
// resolved relative to dir. Only the matched packages are analyzed;
// their dependencies are consumed as export data. Test files are not
// included — the disciplines bind production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	l := newLoader(exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks all .go files of one directory as a package with
// the given import path. It exists for analysistest-style fixtures,
// which live under testdata where the go tool will not list them; the
// fixtures may import anything in the repo module's dependency
// closure (the module's own packages included), resolved from export
// data built at the enclosing module root.
func LoadDir(dir, importPath string) (*Package, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, []string{"./..."})
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(names)
	return newLoader(exports).check(importPath, dir, names)
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}
