package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolLifeConfig scopes the poollife analyzer.
type PoolLifeConfig struct {
	// Packages are the import paths checked. Empty means the buffer
	// pool's producer and consumers (msg, core, wal, transport).
	Packages []string
	// Get are the calls (FuncString spelling) whose first result is a
	// pooled buffer the caller owns. Empty means msg.GetBuf and
	// msg.EncodeCall.
	Get []string
	// Free is the call that returns a buffer to the pool. Empty means
	// msg.FreeBuf.
	Free []string
	// Payloads are struct-field classes ("pkgpath.Type.field") whose
	// bytes are valid only inside a documented window (the wal Scan /
	// Cursor.Next payload contract): they may be decoded in place but
	// never stored or returned. Empty means wal.Record.Payload.
	Payloads []string
}

var (
	defaultPoolLifePackages = []string{
		"repro/internal/msg",
		"repro/internal/core",
		"repro/internal/wal",
		"repro/internal/transport",
	}
	defaultPoolLifeGet      = []string{"repro/internal/msg.GetBuf", "repro/internal/msg.EncodeCall"}
	defaultPoolLifeFree     = []string{"repro/internal/msg.FreeBuf"}
	defaultPoolLifePayloads = []string{"repro/internal/wal.Record.Payload"}
)

// trackKind distinguishes what a tracked variable aliases.
type trackKind int

const (
	trackPooled  trackKind = iota // owns a pooled buffer (must be freed)
	trackAlias                    // aliases a pooled buffer (sub-slice, append result)
	trackPayload                  // aliases a reused scan payload window
)

// NewPoolLife returns the poollife analyzer: a pooled scratch buffer
// (msg.GetBuf) must be freed exactly once on every path, must not be
// used after it is freed, and neither it nor a sub-slice of it may
// escape the owning function — no stores to fields, globals, channels
// or composite literals, no returns. Variables aliasing a WAL record
// payload obey the same no-escape rule: the bytes are valid only until
// the scan callback returns (DESIGN.md §14). The check is lexical and
// per-function; ownership handoffs (a producer returning the pooled
// buffer to its caller) are documented as allowlist entries.
func NewPoolLife(cfg PoolLifeConfig, allow *Allowlist) *Analyzer {
	pkgs := toSet(cfg.Packages, defaultPoolLifePackages)
	get := toSet(cfg.Get, defaultPoolLifeGet)
	free := toSet(cfg.Free, defaultPoolLifeFree)
	payloads := toSet(cfg.Payloads, defaultPoolLifePayloads)
	return &Analyzer{
		Name: "poollife",
		Doc:  "pooled buffers are freed exactly once and never escape; scan payloads never outlive their window",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				if allow.Allowed("poollife", fname) || decl.Body == nil {
					return
				}
				checkPoolLife(pass, decl, fname, get, free, payloads)
			})
			return nil
		},
	}
}

func toSet(vals, defaults []string) map[string]bool {
	if len(vals) == 0 {
		vals = defaults
	}
	set := make(map[string]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	return set
}

type poolCheck struct {
	pass     *Pass
	fname    string
	get      map[string]bool
	free     map[string]bool
	payloads map[string]bool
	tracked  map[*types.Var]trackKind
	origin   map[*types.Var]token.Pos
}

func checkPoolLife(pass *Pass, decl *ast.FuncDecl, fname string, get, free, payloads map[string]bool) {
	c := &poolCheck{
		pass: pass, fname: fname,
		get: get, free: free, payloads: payloads,
		tracked: map[*types.Var]trackKind{},
		origin:  map[*types.Var]token.Pos{},
	}
	// Pass 1: propagate tracking through assignments to a fixpoint
	// (alias chains like p := b[4:] need a second look).
	var assigns []*ast.AssignStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			assigns = append(assigns, as)
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, as := range assigns {
			if c.trackAssign(as) {
				changed = true
			}
		}
	}
	c.checkEscapes(decl.Body)
	c.checkFrees(decl.Body)
}

// localVar resolves an identifier to the local variable it names.
func (c *poolCheck) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := c.pass.Info.Defs[id].(*types.Var)
	if v == nil {
		v, _ = c.pass.Info.Uses[id].(*types.Var)
	}
	if v == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // package-level vars are escape targets, not trackees
	}
	return v
}

// classify reports what expr aliases: a tracked variable, a sub-slice
// of one, a pooled-producer call, or a payload-window field read.
func (c *poolCheck) classify(e ast.Expr) (trackKind, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := c.localVar(e); v != nil {
			if k, ok := c.tracked[v]; ok {
				return k, true
			}
		}
	case *ast.SliceExpr:
		if k, ok := c.classify(e.X); ok {
			if k == trackPooled {
				return trackAlias, true
			}
			return k, true
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if c.payloads[fieldClassOf(c.pass.Info, e)] {
				return trackPayload, true
			}
		}
	case *ast.CallExpr:
		callee := CalleeString(c.pass.Info, e)
		if c.get[callee] {
			return trackPooled, true
		}
		// append(tracked, ...) may alias the tracked backing array.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if k, ok := c.classify(e.Args[0]); ok {
				if k == trackPayload {
					return trackPayload, true
				}
				return trackPooled, true // append chain keeps ownership (EncodeCall pattern)
			}
		}
	}
	return 0, false
}

// trackAssign records tracking for `lhs := rhs` pairs; returns whether
// anything new was learned.
func (c *poolCheck) trackAssign(as *ast.AssignStmt) bool {
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value: data, err := msg.EncodeCall(...) — the buffer
		// is the first result.
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && c.get[CalleeString(c.pass.Info, call)] {
				return c.mark(as.Lhs[0], trackPooled, as.Pos())
			}
		}
		return false
	}
	changed := false
	for i, rhs := range as.Rhs {
		k, ok := c.classify(rhs)
		if !ok {
			continue
		}
		if c.mark(as.Lhs[i], k, as.Pos()) {
			changed = true
		}
	}
	return changed
}

func (c *poolCheck) mark(lhs ast.Expr, k trackKind, pos token.Pos) bool {
	v := c.localVar(lhs)
	if v == nil {
		return false
	}
	if old, ok := c.tracked[v]; ok && old <= k {
		return false
	}
	if _, ok := c.tracked[v]; !ok {
		c.tracked[v] = k
		c.origin[v] = pos
		return true
	}
	return false
}

func (c *poolCheck) describe(k trackKind) string {
	if k == trackPayload {
		return "WAL record payload (valid only inside the scan window)"
	}
	return "pooled buffer"
}

// checkEscapes flags stores and returns that let a tracked buffer
// outlive its validity window.
func (c *poolCheck) checkEscapes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				k, ok := c.classify(rhs)
				if !ok {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					if c.localVar(lhs) == nil && lhs.Name != "_" {
						c.escape(n.Pos(), k, "stored to package-level variable "+lhs.Name)
					}
				case *ast.SelectorExpr:
					c.escape(n.Pos(), k, "stored to field "+lhs.Sel.Name)
				case *ast.IndexExpr:
					c.escape(n.Pos(), k, "stored into a container")
				}
			}
		case *ast.SendStmt:
			if k, ok := c.classify(n.Value); ok {
				c.escape(n.Pos(), k, "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if k, ok := c.classify(res); ok {
					what := "returned"
					if _, isSlice := ast.Unparen(res).(*ast.SliceExpr); isSlice {
						what = "returned as a sub-slice"
					}
					c.escape(n.Pos(), k, what)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if k, ok := c.classify(e); ok {
					c.escape(elt.Pos(), k, "captured in a composite literal")
				}
			}
		}
		return true
	})
}

func (c *poolCheck) escape(pos token.Pos, k trackKind, how string) {
	c.pass.ReportfFn(pos, c.fname,
		"%s %s in %s; it escapes its validity window — copy the bytes or allowlist %s in phoenix-lint.allow",
		c.describe(k), how, c.fname, c.fname)
}

// checkFrees enforces free-exactly-once for owned pooled buffers.
func (c *poolCheck) checkFrees(body *ast.BlockStmt) {
	type freeSite struct {
		pos, end token.Pos
		deferred bool
		terminal bool // lexically followed by a return in its block
	}
	// terminal marks free calls whose enclosing block returns after
	// them: an early-exit error path, after which later lexical uses
	// of the buffer are a different (live) path.
	terminal := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			for _, later := range block.List[i+1:] {
				if _, ok := later.(*ast.ReturnStmt); ok {
					terminal[call] = true
				}
			}
		}
		return true
	})

	frees := map[*types.Var][]freeSite{}
	returned := map[*types.Var]bool{}
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			if c.free[CalleeString(c.pass.Info, n)] && len(n.Args) > 0 {
				if v := c.localVar(n.Args[0]); v != nil {
					frees[v] = append(frees[v], freeSite{
						pos:      n.Pos(),
						end:      n.End(),
						deferred: deferredCalls[n],
						terminal: terminal[n],
					})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if v := c.localVar(res); v != nil {
					returned[v] = true
				}
			}
		}
		return true
	})

	for v, kind := range c.tracked {
		if kind != trackPooled {
			continue
		}
		sites := frees[v]
		if len(sites) == 0 {
			if !returned[v] { // a return escape is already reported
				c.pass.ReportfFn(c.origin[v], c.fname,
					"pooled buffer %s acquired in %s is never freed; call msg.FreeBuf on every path or allowlist %s in phoenix-lint.allow",
					v.Name(), c.fname, c.fname)
			}
			continue
		}
		// Double free: a deferred free plus any lexical one, or two
		// frees where the first is not a terminal error-path free.
		deferredCount, lexical := 0, []freeSite{}
		for _, s := range sites {
			if s.deferred {
				deferredCount++
			} else {
				lexical = append(lexical, s)
			}
		}
		switch {
		case deferredCount > 0 && len(lexical) > 0:
			c.pass.ReportfFn(lexical[0].pos, c.fname,
				"pooled buffer %s freed here and again by a deferred FreeBuf in %s; free exactly once",
				v.Name(), c.fname)
		case deferredCount > 1:
			c.pass.ReportfFn(c.origin[v], c.fname,
				"pooled buffer %s has %d deferred frees in %s; free exactly once",
				v.Name(), deferredCount, c.fname)
		case len(lexical) > 1 && !lexical[0].terminal:
			c.pass.ReportfFn(lexical[1].pos, c.fname,
				"pooled buffer %s freed twice in %s; free exactly once",
				v.Name(), c.fname)
		}
		// Use after a non-terminal lexical free.
		for _, s := range lexical {
			if s.terminal {
				continue
			}
			c.flagUsesAfter(body, v, s.end)
			break
		}
	}
}

func (c *poolCheck) flagUsesAfter(body *ast.BlockStmt, v *types.Var, freePos token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= freePos {
			return true
		}
		if u, _ := c.pass.Info.Uses[id].(*types.Var); u == v {
			c.pass.ReportfFn(id.Pos(), c.fname,
				"pooled buffer %s used after FreeBuf in %s; the pool may have handed it to another goroutine",
				v.Name(), c.fname)
			return false
		}
		return true
	})
}
