package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErrConfig scopes the droppederr analyzer.
type DroppedErrConfig struct {
	// Packages are the import paths checked. Empty means core + wal.
	Packages []string
	// Guarded are the call targets (FuncString spelling) whose error
	// result must not be discarded: device I/O and codec operations on
	// the durability path. Empty means the runtime defaults.
	Guarded []string
}

var (
	defaultDroppedErrPackages = []string{"repro/internal/core", "repro/internal/wal"}
	// The guarded set is the durability surface: file syncs and
	// truncations, segment removal, the wal writer life-cycle calls,
	// the record codec and the lazy replay engine. (*os.File).Close is
	// deliberately absent — conventional error-path cleanup closes are
	// not durability events; Sync is.
	defaultDroppedErrGuarded = []string{
		"(*os.File).Sync",
		"(*os.File).Truncate",
		"os.Remove",
		"os.Rename",
		"(*repro/internal/wal.Log).Close",
		"(*repro/internal/wal.Log).Discard",
		"(*repro/internal/wal.Log).Flush",
		"(*repro/internal/wal.Set).Close",
		"(*repro/internal/wal.Set).Discard",
		"(*repro/internal/wal.Set).Flush",
		"(repro/internal/wal.Writer).Close",
		"(repro/internal/wal.Writer).Discard",
		"(repro/internal/wal.Writer).Flush",
		"repro/internal/core.decodeRec",
		"(*repro/internal/core.lazyRecovery).replayOne",
		"repro/internal/obs/trace.WriteDump",
	}
)

// NewDroppedErr returns the droppederr analyzer: in the checked
// packages, errors from the guarded device-I/O and codec calls may not
// be discarded — neither by calling them as a bare statement (or under
// go/defer) nor by assigning the error result to the blank identifier.
// A deliberate drop (a fail-stop path that cannot act on the error)
// must carry a '# why' allowlist entry instead.
func NewDroppedErr(cfg DroppedErrConfig, allow *Allowlist) *Analyzer {
	pkgs := toSet(cfg.Packages, defaultDroppedErrPackages)
	guarded := toSet(cfg.Guarded, defaultDroppedErrGuarded)
	return &Analyzer{
		Name: "droppederr",
		Doc:  "device I/O and codec errors on the durability path are handled, not discarded",
		Run: func(pass *Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				if allow.Allowed("droppederr", fname) || decl.Body == nil {
					return
				}
				checkDroppedErr(pass, decl, fname, guarded)
			})
			return nil
		},
	}
}

func checkDroppedErr(pass *Pass, decl *ast.FuncDecl, fname string, guarded map[string]bool) {
	// guardedCall reports whether call targets a guarded function that
	// returns an error.
	guardedCall := func(call *ast.CallExpr) (string, bool) {
		callee := CalleeString(pass.Info, call)
		if !guarded[callee] {
			return "", false
		}
		return callee, true
	}
	reportDrop := func(call *ast.CallExpr, callee, how string) {
		pass.ReportfFn(call.Pos(), fname,
			"%s error %s in %s; handle it or allowlist %s in phoenix-lint.allow with the invariant that makes dropping it safe",
			callee, how, fname, fname)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if callee, ok := guardedCall(call); ok {
					reportDrop(call, callee, "discarded (result ignored)")
				}
			}
		case *ast.DeferStmt:
			if callee, ok := guardedCall(n.Call); ok {
				reportDrop(n.Call, callee, "discarded (deferred, result ignored)")
			}
		case *ast.GoStmt:
			if callee, ok := guardedCall(n.Call); ok {
				reportDrop(n.Call, callee, "discarded (spawned, result ignored)")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := guardedCall(call)
			if !ok {
				return true
			}
			// The error is the last result; dropping it means the last
			// LHS (or a lone LHS for single-result calls) is blank.
			last := ast.Unparen(n.Lhs[len(n.Lhs)-1])
			if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
				if resultIsError(pass.Info, call) {
					reportDrop(call, callee, "assigned to _")
				}
			}
		}
		return true
	})
}

// resultIsError reports whether the call's last result is an error.
func resultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
