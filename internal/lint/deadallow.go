package lint

import "fmt"

// UnusedAllowlist reports the allowlist entries that suppress (or, for
// forcesite, bless) nothing: the whole suite is re-run over pkgs with
// an *empty* allowlist, and an entry is live only when some raw
// diagnostic matches its (analyzer, function) pair. A dead entry means
// the exception it documents no longer exists in the code — it should
// be deleted so the allowlist stays an honest inventory of the
// deliberate violations. `make ci` fails on dead entries.
func UnusedAllowlist(pkgs []*Package, allow *Allowlist) ([]string, error) {
	if allow == nil {
		allow = DefaultAllowlist()
	}
	empty, err := ParseAllowlist("empty", nil)
	if err != nil {
		return nil, err
	}
	r := &Runner{Analyzers: Analyzers(empty)}
	raw, err := r.Run(pkgs)
	if err != nil {
		return nil, err
	}
	live := map[[2]string]bool{}
	for _, d := range raw {
		if d.Fn != "" {
			live[[2]string{d.Analyzer, d.Fn}] = true
		}
	}
	var dead []string
	for _, e := range allow.Entries() {
		if !live[e] {
			dead = append(dead, fmt.Sprintf("%s %s", e[0], e[1]))
		}
	}
	return dead, nil
}
