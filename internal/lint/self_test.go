package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the meta-test: the full phoenix-lint suite with
// the embedded allowlist must produce zero diagnostics over the real
// tree. Any new violation — a stray time.Now in a simulated package, a
// force call outside the blessed chokepoints, a switch that forgets a
// new record type — fails this test before it fails CI.
func TestRepoIsClean(t *testing.T) {
	diags, err := lint.Check("../..", nil, "./...")
	if err != nil {
		t.Fatalf("phoenix-lint over the repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the violation or record a '# why'-commented exception in internal/lint/phoenix-lint.allow")
	}
}

// TestNoDeadAllowlistEntries re-runs the suite with an empty allowlist
// and verifies every embedded entry still matches a raw diagnostic: an
// entry whose exception no longer exists documents nothing and must be
// deleted (`make ci` enforces the same via phoenix-lint -deadallow).
func TestNoDeadAllowlistEntries(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	dead, err := lint.UnusedAllowlist(pkgs, nil)
	if err != nil {
		t.Fatalf("unused-allowlist pass: %v", err)
	}
	for _, e := range dead {
		t.Errorf("dead allowlist entry %q matches no current diagnostic; delete it from phoenix-lint.allow", e)
	}
}

// TestDefaultAllowlist pins the embedded allowlist to the analyzers it
// configures: every entry must name a known analyzer, so a typo'd
// entry cannot silently allow nothing.
func TestDefaultAllowlist(t *testing.T) {
	allow := lint.DefaultAllowlist()
	known := map[string]bool{}
	for _, a := range lint.Analyzers(nil) {
		known[a.Name] = true
	}
	for name := range known {
		for _, fn := range allow.Functions(name) {
			if fn == "" {
				t.Errorf("empty function entry for analyzer %s", name)
			}
		}
	}
	if len(allow.Functions("forcesite")) == 0 {
		t.Error("embedded allowlist blesses no forcesite chokepoints; the analyzer would flag every append")
	}
}
