package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the meta-test: the full phoenix-lint suite with
// the embedded allowlist must produce zero diagnostics over the real
// tree. Any new violation — a stray time.Now in a simulated package, a
// force call outside the blessed chokepoints, a switch that forgets a
// new record type — fails this test before it fails CI.
func TestRepoIsClean(t *testing.T) {
	diags, err := lint.Check("../..", nil, "./...")
	if err != nil {
		t.Fatalf("phoenix-lint over the repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the violation or record a '# why'-commented exception in internal/lint/phoenix-lint.allow")
	}
}

// TestDefaultAllowlist pins the embedded allowlist to the analyzers it
// configures: every entry must name a known analyzer, so a typo'd
// entry cannot silently allow nothing.
func TestDefaultAllowlist(t *testing.T) {
	allow := lint.DefaultAllowlist()
	known := map[string]bool{}
	for _, a := range lint.Analyzers(nil) {
		known[a.Name] = true
	}
	for name := range known {
		for _, fn := range allow.Functions(name) {
			if fn == "" {
				t.Errorf("empty function entry for analyzer %s", name)
			}
		}
	}
	if len(allow.Functions("forcesite")) == 0 {
		t.Error("embedded allowlist blesses no forcesite chokepoints; the analyzer would flag every append")
	}
}
