// Package linttest is an analysistest-style harness for the
// phoenix-lint analyzers: fixture packages live under testdata (where
// the go tool ignores them), carry deliberately seeded violations,
// and annotate the lines where diagnostics are expected with
//
//	// want "regexp" "another regexp"
//
// comments. Run loads the fixture, applies the analyzers, and fails
// the test on any unmatched expectation or unexpected diagnostic.
//
// With PHOENIX_LINT_PRINT=1 in the environment, Run additionally
// prints every diagnostic the analyzers produced for the fixture —
// `make lint-fix-fixtures` uses this to regenerate want comments
// after an analyzer's message format changes.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir, type-checked under
// importPath, runs the analyzers, and diffs the diagnostics against
// the fixture's want comments.
func Run(t *testing.T, dir, importPath string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	runner := &lint.Runner{Analyzers: analyzers}
	diags, err := runner.Run([]*lint.Package{pkg})
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", dir, err)
	}
	if os.Getenv("PHOENIX_LINT_PRINT") != "" {
		for _, d := range diags {
			t.Logf("GOT %s", d)
		}
	}

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("parse want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if w := match(wants, d); w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.re)
		}
	}
}

// match consumes (at most once) a want on the diagnostic's line whose
// regexp matches the message.
func match(wants []*want, d lint.Diagnostic) *want {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return w
		}
	}
	return nil
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts the want expectations from every comment of the
// fixture. Each expectation is a Go-quoted regexp; several may share a
// line.
func parseWants(pkg *lint.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if !strings.HasPrefix(rest, `"`) && !strings.HasPrefix(rest, "`") {
						return nil, fmt.Errorf("%s: want expectations must be quoted regexps, got %q", pos, rest)
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: bad quoted regexp %q: %v", pos, rest, err)
					}
					expr, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: unquote %q: %v", pos, q, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("%s: compile %q: %v", pos, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}
