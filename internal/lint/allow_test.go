package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestParseAllowlist(t *testing.T) {
	src := `
# full-line comment
wallclock (*repro/internal/wal.Log).syncLocked # wall-time force_micros histogram
forcesite repro/internal/core.appendRec        # accounting chokepoint
`
	a, err := lint.ParseAllowlist("test", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !a.Allowed("wallclock", "(*repro/internal/wal.Log).syncLocked") {
		t.Error("wallclock entry not found")
	}
	if !a.Allowed("forcesite", "repro/internal/core.appendRec") {
		t.Error("forcesite entry not found")
	}
	if a.Allowed("wallclock", "repro/internal/core.appendRec") {
		t.Error("entry leaked across analyzers")
	}
	if a.Allowed("locksync", "nope") {
		t.Error("unknown entry reported as allowed")
	}
	if got := a.Functions("forcesite"); len(got) != 1 || got[0] != "repro/internal/core.appendRec" {
		t.Errorf("Functions(forcesite) = %v", got)
	}
}

func TestParseAllowlistRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing why", "wallclock repro/internal/core.f\n", "lacks a '# why'"},
		{"missing function", "wallclock # just because\n", "want \"<analyzer> <function> # why\""},
		{"extra field", "wallclock a.f b.g # two functions\n", "want \"<analyzer> <function> # why\""},
		{"duplicate", "wallclock a.f # one\nwallclock a.f # two\n", "duplicate entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lint.ParseAllowlist("test", []byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// A nil allowlist allows nothing — the analyzers rely on this.
func TestNilAllowlist(t *testing.T) {
	var a *lint.Allowlist
	if a.Allowed("wallclock", "anything") {
		t.Error("nil allowlist allowed an entry")
	}
	if fns := a.Functions("wallclock"); fns != nil {
		t.Errorf("nil allowlist Functions = %v", fns)
	}
}
