package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

const fixturePrefix = "repro/internal/lint/testdata/"

// mustAllow builds a fixture-scoped allowlist.
func mustAllow(t *testing.T, src string) *lint.Allowlist {
	t.Helper()
	a, err := lint.ParseAllowlist("fixture.allow", []byte(src))
	if err != nil {
		t.Fatalf("parse fixture allowlist: %v", err)
	}
	return a
}

func TestForcesiteFixture(t *testing.T) {
	allow := mustAllow(t,
		"forcesite "+fixturePrefix+"forcesite.blessedAppend # fixture chokepoint\n")
	linttest.Run(t, "testdata/forcesite", fixturePrefix+"forcesite",
		[]*lint.Analyzer{lint.NewForcesite(lint.ForcesiteConfig{}, allow)})
}

func TestWallclockFixture(t *testing.T) {
	allow := mustAllow(t,
		"wallclock "+fixturePrefix+"wallclock.instrumented # deliberate wall-time instrumentation\n")
	linttest.Run(t, "testdata/wallclock", fixturePrefix+"wallclock",
		[]*lint.Analyzer{lint.NewWallclock(lint.WallclockConfig{
			Packages: []string{fixturePrefix + "wallclock"},
		}, allow)})
}

func TestLocksyncFixture(t *testing.T) {
	linttest.Run(t, "testdata/locksync", fixturePrefix+"locksync",
		[]*lint.Analyzer{lint.NewLocksync(lint.LocksyncConfig{
			Packages: []string{fixturePrefix + "locksync"},
		}, nil)})
}

func TestExhaustiveFixture(t *testing.T) {
	linttest.Run(t, "testdata/exhaustive", fixturePrefix+"exhaustive",
		[]*lint.Analyzer{lint.NewExhaustive(lint.ExhaustiveConfig{}, nil)})
}

func TestLockOrderFixture(t *testing.T) {
	p := fixturePrefix + "lockorder"
	linttest.Run(t, "testdata/lockorder", p,
		[]*lint.Analyzer{lint.NewLockOrder(lint.LockOrderConfig{
			Packages: []string{p},
			Order: []string{
				p + ".slots",
				p + ".A.mu",
				p + ".B.mu",
				p + ".C.mu",
				p + ".E.mu",
				p + ".F.mu",
				p + ".G.ready",
			},
			Semaphores: []string{p + ".slots"},
			Latches:    []string{p + ".G.ready"},
		}, nil)})
}

func TestPoolLifeFixture(t *testing.T) {
	p := fixturePrefix + "poollife"
	linttest.Run(t, "testdata/poollife", p,
		[]*lint.Analyzer{lint.NewPoolLife(lint.PoolLifeConfig{
			Packages: []string{p},
			Get:      []string{p + ".getBuf"},
			Free:     []string{p + ".freeBuf"},
			Payloads: []string{p + ".Record.Payload"},
		}, nil)})
}

func TestShutdownPathFixture(t *testing.T) {
	p := fixturePrefix + "shutdownpath"
	linttest.Run(t, "testdata/shutdownpath", p,
		[]*lint.Analyzer{lint.NewShutdownPath(lint.ShutdownPathConfig{
			Packages: []string{p},
			Latches:  []string{p + ".Gate.ready"},
		}, nil)})
}

func TestDroppedErrFixture(t *testing.T) {
	p := fixturePrefix + "droppederr"
	linttest.Run(t, "testdata/droppederr", p,
		[]*lint.Analyzer{lint.NewDroppedErr(lint.DroppedErrConfig{
			Packages: []string{p},
			Guarded: []string{
				p + ".syncDevice",
				p + ".readDevice",
				"(*" + p + ".Dev).Close",
			},
		}, nil)})
}

func TestMetricNamesFixture(t *testing.T) {
	linttest.Run(t, "testdata/metricnames", fixturePrefix+"metricnames",
		[]*lint.Analyzer{lint.NewMetricNames(lint.MetricNamesConfig{
			ObsPath: fixturePrefix + "metricnames",
		}, nil)})
}
