package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// ForcesiteConfig scopes the forcesite analyzer.
type ForcesiteConfig struct {
	// Guarded are the call targets (FuncString spelling) that append
	// to or force the write-ahead log. Empty means the wal.Log entry
	// points.
	Guarded []string
	// ExemptPackages may call the guarded targets freely — the log
	// manager's own package, where the entry points live.
	ExemptPackages []string
}

var defaultForcesiteGuarded = []string{
	"(*repro/internal/wal.Log).Append",
	"(*repro/internal/wal.Log).AppendInto",
	"(*repro/internal/wal.Log).Force",
	"(*repro/internal/wal.Log).ForceTo",
	"(*repro/internal/wal.Log).SyncTo",
	"(*repro/internal/wal.Log).SyncAll",
	// The sharded set and the Writer interface expose the same entry
	// points; core calls through the interface, so without these the
	// analyzer would lose its coverage the moment a call site is typed
	// wal.Writer instead of *wal.Log.
	"(*repro/internal/wal.Set).AppendInto",
	"(*repro/internal/wal.Set).ForceTo",
	"(*repro/internal/wal.Set).SyncTo",
	"(*repro/internal/wal.Set).SyncAll",
	"(repro/internal/wal.Writer).AppendInto",
	"(repro/internal/wal.Writer).ForceTo",
	"(repro/internal/wal.Writer).SyncTo",
	"(repro/internal/wal.Writer).SyncAll",
}

// deprecatedForce is the bare whole-log force. It keeps working for
// compatibility, but production code must name its watermark
// (ForceTo/SyncTo) or sync every shard deliberately (SyncAll): on a
// sharded log "force everything" hides which stream the caller
// actually needed durable. Calls outside _test.go files are reported
// even from blessed functions.
const deprecatedForce = "(*repro/internal/wal.Log).Force"

// NewForcesite returns the forcesite analyzer: the wal append/force
// entry points may only be called from the blessed functions listed
// for "forcesite" in the allowlist — the Algorithm 2/3/5 intercept
// chokepoints, checkpointing and recovery all route through them. A
// call from anywhere else is an unaccounted force path: it would leak
// device syncs past the paper's per-site force accounting (Tables
// 4-5) and past the per-kind record counters.
func NewForcesite(cfg ForcesiteConfig, allow *Allowlist) *Analyzer {
	guarded := map[string]bool{}
	names := cfg.Guarded
	if len(names) == 0 {
		names = defaultForcesiteGuarded
	}
	for _, n := range names {
		guarded[n] = true
	}
	exempt := map[string]bool{}
	pkgs := cfg.ExemptPackages
	if len(pkgs) == 0 {
		pkgs = []string{"repro/internal/wal"}
	}
	for _, p := range pkgs {
		exempt[p] = true
	}
	blessed := allow.Functions("forcesite")
	sort.Strings(blessed)
	route := "bless the caller in phoenix-lint.allow"
	if len(blessed) > 0 {
		route = "route through " + strings.Join(blessed, ", ") + " or " + route
	}
	return &Analyzer{
		Name: "forcesite",
		Doc:  "wal append/force entry points may only be called from the blessed accounting chokepoints",
		Run: func(pass *Pass) error {
			if exempt[pass.Pkg.Path()] {
				return nil
			}
			WalkFuncs(pass, func(decl *ast.FuncDecl, fname string) {
				inTest := strings.HasSuffix(pass.Fset.Position(decl.Pos()).Filename, "_test.go")
				isBlessed := allow.Allowed("forcesite", fname)
				if isBlessed && inTest {
					return
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := CalleeString(pass.Info, call)
					if callee == deprecatedForce && !inTest {
						pass.ReportfFn(call.Pos(), fname,
							"%s is deprecated outside tests: name the watermark with ForceTo/SyncTo or sync every shard with SyncAll",
							callee)
						return true
					}
					if !isBlessed && guarded[callee] {
						pass.ReportfFn(call.Pos(), fname,
							"%s called from %s, which is not a blessed force/append site; %s",
							callee, fname, route)
					}
					return true
				})
			})
			return nil
		},
	}
}
