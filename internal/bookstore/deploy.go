package bookstore

import (
	"fmt"

	phoenix "repro"
)

// Level is one of the paper's Table 8 optimization levels.
type Level int

const (
	// LevelBaseline: every component persistent, every message forced
	// (the first prototype).
	LevelBaseline Level = iota
	// LevelOptimizedLogging: optimized logging for persistent
	// components, topology unchanged.
	LevelOptimizedLogging
	// LevelSpecialized: specialized component types and read-only
	// methods on top of optimized logging.
	LevelSpecialized
)

// String names the level as Table 8 does.
func (l Level) String() string {
	switch l {
	case LevelBaseline:
		return "Baseline"
	case LevelOptimizedLogging:
		return "Optimized logging for persistent components"
	case LevelSpecialized:
		return "Specialized components and read-only methods"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Deployment is a wired bookstore instance.
type Deployment struct {
	Level Level

	GrabberURI phoenix.URI
	SellerURI  phoenix.URI
	TaxURI     phoenix.URI
	StoreURIs  []phoenix.URI

	// ServerProcs are the processes hosting server components, in a
	// fixed order, for stats collection.
	ServerProcs []*phoenix.Process
}

// Config returns the runtime switches for a level.
func (l Level) Config() phoenix.Config {
	cfg := phoenix.Config{}
	switch l {
	case LevelBaseline:
		cfg.LogMode = phoenix.LogBaseline
	case LevelOptimizedLogging:
		cfg.LogMode = phoenix.LogOptimized
	case LevelSpecialized:
		cfg.LogMode = phoenix.LogOptimized
		cfg.SpecializedTypes = true
	}
	return cfg
}

// Inventories returns the demo stock for the two stores.
func Inventories() ([]Book, []Book) {
	store1 := []Book{
		{Title: "Recovery Guarantees for General Multi-Tier Applications", Author: "Barga", Price: 42.00, Stock: 10},
		{Title: "Transaction Processing: Concepts and Techniques", Author: "Gray and Reuter", Price: 89.95, Stock: 5},
		{Title: "Efficient Transparent Application Recovery", Author: "Lomet and Weikum", Price: 35.50, Stock: 8},
	}
	store2 := []Book{
		{Title: "Recovery Guarantees for General Multi-Tier Applications", Author: "Barga", Price: 39.99, Stock: 3},
		{Title: "A Survey of Rollback-Recovery Protocols", Author: "Elnozahy", Price: 27.25, Stock: 12},
		{Title: "ARIES: A Transaction Recovery Method", Author: "Mohan", Price: 55.00, Stock: 7},
	}
	return store1, store2
}

// Deploy builds the Figure 10 application on serverMachine at the given
// optimization level, with baskets pre-provisioned for the named
// buyers (needed by the non-subordinated levels, where each basket
// manager is its own persistent component).
func Deploy(u *phoenix.Universe, serverMachine string, level Level, buyers []string) (*Deployment, error) {
	m, err := u.AddMachine(serverMachine)
	if err != nil {
		return nil, err
	}
	cfg := level.Config()

	// One process per top-level component, as in the paper's
	// component-per-context deployment; basket managers live in the
	// seller's process (as subordinates or as their own components).
	procNames := []string{"store1", "store2", "grabber", "seller", "tax"}
	procs := make(map[string]*phoenix.Process, len(procNames))
	for _, n := range procNames {
		p, err := m.StartProcess(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("bookstore: start %s: %w", n, err)
		}
		procs[n] = p
	}

	d := &Deployment{Level: level}
	inv1, inv2 := Inventories()

	roStore := []phoenix.CreateOption(nil)
	if level == LevelSpecialized {
		roStore = append(roStore, phoenix.WithReadOnlyMethods("Search", "Price"))
	}
	h1, err := procs["store1"].Create("Store1", &BookStore{Inventory: inv1}, roStore...)
	if err != nil {
		return nil, err
	}
	h2, err := procs["store2"].Create("Store2", &BookStore{Inventory: inv2}, roStore...)
	if err != nil {
		return nil, err
	}
	d.StoreURIs = []phoenix.URI{h1.URI(), h2.URI()}

	taxOpts := []phoenix.CreateOption(nil)
	if level == LevelSpecialized {
		taxOpts = append(taxOpts, phoenix.WithType(phoenix.Functional))
	}
	ht, err := procs["tax"].Create("TaxCalculator", &TaxCalculator{
		Rates: map[string]float64{"WA": 0.095, "CA": 0.0875, "PA": 0.06},
	}, taxOpts...)
	if err != nil {
		return nil, err
	}
	d.TaxURI = ht.URI()

	grabOpts := []phoenix.CreateOption(nil)
	if level == LevelSpecialized {
		grabOpts = append(grabOpts, phoenix.WithType(phoenix.ReadOnly))
	}
	hg, err := procs["grabber"].Create("PriceGrabber", &PriceGrabber{
		Stores: []string{string(h1.URI()), string(h2.URI())},
	}, grabOpts...)
	if err != nil {
		return nil, err
	}
	d.GrabberURI = hg.URI()

	seller := &BookSeller{
		TaxURI:        string(ht.URI()),
		Subordinated:  level == LevelSpecialized,
		BasketMachine: serverMachine,
		BasketProc:    "seller",
	}
	sellerOpts := []phoenix.CreateOption(nil)
	if level == LevelSpecialized {
		sellerOpts = append(sellerOpts, phoenix.WithReadOnlyMethods("ShowBasket", "Total"))
	}
	hs, err := procs["seller"].Create("BookSeller", seller, sellerOpts...)
	if err != nil {
		return nil, err
	}
	d.SellerURI = hs.URI()

	// At the non-subordinated levels each buyer's basket manager is a
	// separate persistent component in the seller's process.
	if level != LevelSpecialized {
		for _, b := range buyers {
			if _, err := procs["seller"].Create("Basket-"+b, &BasketManager{}); err != nil {
				return nil, err
			}
		}
	}

	for _, n := range procNames {
		d.ServerProcs = append(d.ServerProcs, procs[n])
	}
	return d, nil
}

// ResetStats zeroes all server processes' log statistics.
func (d *Deployment) ResetStats() {
	for _, p := range d.ServerProcs {
		p.ResetLogStats()
	}
}

// Forces sums the log forces across the server processes.
func (d *Deployment) Forces() int64 {
	var total int64
	for _, p := range d.ServerProcs {
		total += p.LogStats().Forces
	}
	return total
}

// Close stops all server processes.
func (d *Deployment) Close() {
	for _, p := range d.ServerProcs {
		p.Close()
	}
}

// Buyer drives the system as the paper's BookBuyer: an external
// component on the client machine running the Section 5.5 script.
type Buyer struct {
	Name  string
	State string // tax jurisdiction

	grabber *phoenix.Ref
	seller  *phoenix.Ref
}

// NewBuyer wires an external buyer against a deployment.
func NewBuyer(u *phoenix.Universe, d *Deployment, name, state string) *Buyer {
	return &Buyer{
		Name:    name,
		State:   state,
		grabber: u.ExternalRef(d.GrabberURI),
		seller:  u.ExternalRef(d.SellerURI),
	}
}

// SessionResult reports one scripted session.
type SessionResult struct {
	Offers  int
	Added   int
	Shown   int
	Total   float64
	Removed int
}

// RunSession performs the paper's measured operation set: (i) search
// books with the keyword "recovery"; (ii) add a book from each
// bookstore to the shopping basket; (iii) show the shopping basket and
// compute total price including tax; (iv) remove all the books from
// the shopping basket.
func (b *Buyer) RunSession() (SessionResult, error) {
	var r SessionResult

	// (i) keyword search via the PriceGrabber.
	res, err := b.grabber.Call("Grab", "recovery")
	if err != nil {
		return r, fmt.Errorf("search: %w", err)
	}
	offers := res[0].([]Offer)
	r.Offers = len(offers)

	// (ii) add one book from each store.
	seen := make(map[string]bool)
	for _, o := range offers {
		if seen[o.Store] {
			continue
		}
		seen[o.Store] = true
		item := BasketItem{Title: o.Book.Title, Store: o.Store, Price: o.Book.Price}
		if _, err := b.seller.Call("AddToBasket", b.Name, item); err != nil {
			return r, fmt.Errorf("add to basket: %w", err)
		}
		r.Added++
	}

	// (iii) show the basket and compute the total including tax.
	res, err = b.seller.Call("ShowBasket", b.Name)
	if err != nil {
		return r, fmt.Errorf("show basket: %w", err)
	}
	r.Shown = len(res[0].([]BasketItem))
	res, err = b.seller.Call("Total", b.Name, b.State)
	if err != nil {
		return r, fmt.Errorf("total: %w", err)
	}
	r.Total = res[0].(float64)

	// (iv) remove all the books.
	res, err = b.seller.Call("ClearBasket", b.Name)
	if err != nil {
		return r, fmt.Errorf("clear: %w", err)
	}
	r.Removed = res[0].(int)
	return r, nil
}
