package bookstore

import (
	"net"
	"sync"
	"testing"
	"time"

	phoenix "repro"
)

func newUniverse(t *testing.T) *phoenix.Universe {
	t.Helper()
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func deploy(t *testing.T, u *phoenix.Universe, level Level) *Deployment {
	t.Helper()
	d, err := Deploy(u, "evo2", level, []string{"alice", "bob"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.ServerProcs {
		cfg := p.Config()
		cfg.RetryInterval = 2 * time.Millisecond
		_ = cfg // config is fixed at start; fine for tests
	}
	return d
}

func TestSessionAtEveryLevel(t *testing.T) {
	for _, level := range []Level{LevelBaseline, LevelOptimizedLogging, LevelSpecialized} {
		t.Run(level.String(), func(t *testing.T) {
			u := newUniverse(t)
			d := deploy(t, u, level)
			defer d.Close()
			buyer := NewBuyer(u, d, "alice", "WA")
			r, err := buyer.RunSession()
			if err != nil {
				t.Fatal(err)
			}
			// "recovery" matches 2 titles in store1 and 3 in store2.
			if r.Offers != 5 {
				t.Errorf("offers = %d, want 5", r.Offers)
			}
			if r.Added != 2 || r.Shown != 2 || r.Removed != 2 {
				t.Errorf("basket flow = %+v", r)
			}
			// One book per store, first in title order: store2's
			// "A Survey..." (27.25) and store1's "Efficient
			// Transparent..." (35.50); tax on top.
			sub := 27.25 + 35.50
			if r.Total <= sub {
				t.Errorf("total %v does not include tax on %v", r.Total, sub)
			}
			if want := sub * 1.095; r.Total < want-0.01 || r.Total > want+0.01 {
				t.Errorf("total = %v, want %v (WA tax)", r.Total, want)
			}
		})
	}
}

func TestForceCountsDropAcrossLevels(t *testing.T) {
	// Table 8's headline: each optimization level strictly reduces
	// the number of log forces for the same session.
	var forces [3]int64
	for i, level := range []Level{LevelBaseline, LevelOptimizedLogging, LevelSpecialized} {
		u := newUniverse(t)
		d := deploy(t, u, level)
		buyer := NewBuyer(u, d, "alice", "WA")
		if _, err := buyer.RunSession(); err != nil {
			t.Fatal(err)
		}
		// Measure the steady-state session (types learned, baskets
		// created).
		d.ResetStats()
		if _, err := buyer.RunSession(); err != nil {
			t.Fatal(err)
		}
		forces[i] = d.Forces()
		d.Close()
	}
	t.Logf("forces per session: baseline=%d optimized=%d specialized=%d",
		forces[0], forces[1], forces[2])
	if !(forces[0] > forces[1] && forces[1] > forces[2]) {
		t.Errorf("forces not strictly decreasing: %v", forces)
	}
}

func TestTwoBuyersIndependentBaskets(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	alice := NewBuyer(u, d, "alice", "WA")
	bob := NewBuyer(u, d, "bob", "CA")

	seller := u.ExternalRef(d.SellerURI)
	if _, err := seller.Call("AddToBasket", "alice", BasketItem{Title: "X", Price: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := seller.Call("AddToBasket", "bob", BasketItem{Title: "Y", Price: 20}); err != nil {
		t.Fatal(err)
	}
	res, err := seller.Call("ShowBasket", "alice")
	if err != nil {
		t.Fatal(err)
	}
	items := res[0].([]BasketItem)
	if len(items) != 1 || items[0].Title != "X" {
		t.Errorf("alice basket = %+v", items)
	}
	_ = alice
	_ = bob
}

func TestSellerRecoveryKeepsBaskets(t *testing.T) {
	// Crash the seller process mid-shopping at every level; baskets
	// must survive (subordinate state recovered with the parent at
	// the specialized level, separate components otherwise).
	for _, level := range []Level{LevelBaseline, LevelOptimizedLogging, LevelSpecialized} {
		t.Run(level.String(), func(t *testing.T) {
			u := newUniverse(t)
			d := deploy(t, u, level)
			defer d.Close()
			seller := u.ExternalRef(d.SellerURI)
			if _, err := seller.Call("AddToBasket", "alice", BasketItem{Title: "K1", Price: 10}); err != nil {
				t.Fatal(err)
			}
			if _, err := seller.Call("AddToBasket", "alice", BasketItem{Title: "K2", Price: 15}); err != nil {
				t.Fatal(err)
			}
			// Crash and restart the seller process.
			m, _ := u.Machine("evo2")
			p, _ := m.Process("seller")
			p.Crash()
			if _, err := m.StartProcess("seller", level.Config()); err != nil {
				t.Fatal(err)
			}
			res, err := seller.Call("ShowBasket", "alice")
			if err != nil {
				t.Fatal(err)
			}
			items := res[0].([]BasketItem)
			if len(items) != 2 {
				t.Errorf("basket after seller recovery = %+v, want 2 items", items)
			}
		})
	}
}

func TestStoreRecoveryKeepsInventory(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	store := u.ExternalRef(d.StoreURIs[0])
	if _, err := store.Call("Buy", "Transaction Processing: Concepts and Techniques"); err != nil {
		t.Fatal(err)
	}
	m, _ := u.Machine("evo2")
	p, _ := m.Process("store1")
	p.Crash()
	if _, err := m.StartProcess("store1", LevelSpecialized.Config()); err != nil {
		t.Fatal(err)
	}
	res, err := store.Call("Search", "Transaction Processing")
	if err != nil {
		t.Fatal(err)
	}
	books := res[0].([]Book)
	if len(books) != 1 || books[0].Stock != 4 {
		t.Errorf("after recovery: %+v, want stock 4", books)
	}
}

func TestPriceAndRestock(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	store := u.ExternalRef(d.StoreURIs[0])
	res, err := store.Call("Price", "Efficient Transparent Application Recovery")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(float64); got != 35.50 {
		t.Errorf("Price = %v", got)
	}
	if _, err := store.Call("Price", "No Such Book"); err == nil {
		t.Error("price of unknown title succeeded")
	}
	// Restock an existing title and a new one.
	res, err = store.Call("Restock", Book{Title: "Efficient Transparent Application Recovery", Stock: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int); got != 10 {
		t.Errorf("restocked count = %v, want 10", got)
	}
	res, err = store.Call("Restock", Book{Title: "Brand New", Price: 5, Stock: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int); got != 3 {
		t.Errorf("new title count = %v, want 3", got)
	}
	r2, err := store.Call("Search", "Brand New")
	if err != nil {
		t.Fatal(err)
	}
	if books := r2[0].([]Book); len(books) != 1 {
		t.Errorf("new title not searchable: %v", books)
	}
}

func TestBuyOutOfStock(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	store := u.ExternalRef(d.StoreURIs[1])
	title := "Recovery Guarantees for General Multi-Tier Applications"
	for i := 0; i < 3; i++ {
		if _, err := store.Call("Buy", title); err != nil {
			t.Fatalf("buy %d: %v", i, err)
		}
	}
	if _, err := store.Call("Buy", title); err == nil {
		t.Error("bought more than the stock")
	}
}

func TestTaxCalculatorIsPure(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	tax := u.ExternalRef(d.TaxURI)
	res1, err := tax.Call("Tax", 100.0, "WA")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tax.Call("Tax", 100.0, "WA")
	if err != nil {
		t.Fatal(err)
	}
	if res1[0] != res2[0] {
		t.Errorf("functional component returned different results: %v %v", res1, res2)
	}
	if got := res1[0].(float64); got != 9.5 {
		t.Errorf("Tax(100, WA) = %v, want 9.5", got)
	}
	// Unknown state falls back to the default rate.
	res3, err := tax.Call("Tax", 100.0, "ZZ")
	if err != nil {
		t.Fatal(err)
	}
	if got := res3[0].(float64); got != 8.0 {
		t.Errorf("Tax(100, ZZ) = %v, want 8.0", got)
	}
}

func TestCheckoutBuysFromEachStore(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	seller := u.ExternalRef(d.SellerURI)
	for i, title := range []string{
		"Efficient Transparent Application Recovery",              // store1
		"Recovery Guarantees for General Multi-Tier Applications", // store2
	} {
		store := d.StoreURIs[i]
		price := []float64{35.50, 39.99}[i]
		if _, err := seller.Call("AddToBasket", "alice",
			BasketItem{Title: title, Store: string(store), Price: price}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := seller.Call("Checkout", "alice", "PA")
	if err != nil {
		t.Fatal(err)
	}
	want := (35.50 + 39.99) * 1.06
	if got := res[0].(float64); got < want-0.01 || got > want+0.01 {
		t.Errorf("checkout total = %v, want %v", got, want)
	}
	// Stock decremented at both stores.
	s1 := u.ExternalRef(d.StoreURIs[0])
	r, err := s1.Call("Search", "Efficient Transparent")
	if err != nil {
		t.Fatal(err)
	}
	if books := r[0].([]Book); books[0].Stock != 7 {
		t.Errorf("store1 stock = %d, want 7", books[0].Stock)
	}
	// Basket emptied.
	r, err = seller.Call("ShowBasket", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if items := r[0].([]BasketItem); len(items) != 0 {
		t.Errorf("basket after checkout = %v", items)
	}
	// Checkout of an empty basket is an application error.
	if _, err := seller.Call("Checkout", "alice", "PA"); err == nil {
		t.Error("empty-basket checkout succeeded")
	}
}

func TestBookstoreOverTCP(t *testing.T) {
	// The whole application over real sockets: six processes, each on
	// its own loopback port, gob frames on the wire.
	tcp := phoenix.NewTCPNetwork()
	defer tcp.Close()
	var mu sync.Mutex
	ports := map[string]string{}
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{
		Dir: t.TempDir(),
		Net: tcp,
		AddrFor: func(machine, process string) string {
			mu.Lock()
			defer mu.Unlock()
			key := machine + "/" + process
			if a, ok := ports[key]; ok {
				return a
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			a := ln.Addr().String()
			ln.Close()
			ports[key] = a
			return a
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(u, "server", LevelSpecialized, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buyer := NewBuyer(u, d, "alice", "WA")
	r, err := buyer.RunSession()
	if err != nil {
		t.Fatal(err)
	}
	if r.Offers != 5 || r.Added != 2 {
		t.Errorf("TCP session = %+v", r)
	}
}

func TestGrabberMergesStores(t *testing.T) {
	u := newUniverse(t)
	d := deploy(t, u, LevelSpecialized)
	defer d.Close()
	g := u.ExternalRef(d.GrabberURI)
	res, err := g.Call("Grab", "ARIES")
	if err != nil {
		t.Fatal(err)
	}
	offers := res[0].([]Offer)
	if len(offers) != 1 || offers[0].Book.Author != "Mohan" {
		t.Errorf("Grab(ARIES) = %+v", offers)
	}
	// Title present in both stores yields two offers, sorted.
	res, err = g.Call("Grab", "Multi-Tier")
	if err != nil {
		t.Fatal(err)
	}
	offers = res[0].([]Offer)
	if len(offers) != 2 {
		t.Errorf("Grab(Multi-Tier) = %+v, want offers from both stores", offers)
	}
}
