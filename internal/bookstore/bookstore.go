// Package bookstore implements the online bookstore application of
// paper Section 5.5 (Figure 10): two BookStore components hold
// inventories; a PriceGrabber supports keyword searches across all
// stores; a TaxCalculator computes sales tax; a BookSeller manages a
// set of BasketManager subordinates, one shopping basket per buyer; and
// a BookBuyer drives the system as an external client.
//
// The application deploys at the paper's three optimization levels
// (Table 8): the baseline system with every component persistent and
// every message forced; optimized logging for persistent components;
// and specialized component types plus read-only methods, where the
// PriceGrabber is read-only, the TaxCalculator is functional, and the
// BasketManagers are subordinates of the BookSeller.
package bookstore

import (
	"fmt"
	"sort"
	"strings"

	phoenix "repro"
)

// Book is one inventory entry.
type Book struct {
	Title  string
	Author string
	Price  float64
	Stock  int
}

// Offer is a search hit: a book at a store.
type Offer struct {
	Store string // component URI of the store
	Book  Book
}

// BasketItem is one line of a shopping basket.
type BasketItem struct {
	Title string
	Store string
	Price float64
}

func init() {
	phoenix.RegisterType(Book{})
	phoenix.RegisterType([]Book(nil))
	phoenix.RegisterType(Offer{})
	phoenix.RegisterType([]Offer(nil))
	phoenix.RegisterType(BasketItem{})
	phoenix.RegisterType([]BasketItem(nil))
}

// BookStore maintains the inventory of a store (persistent).
type BookStore struct {
	Inventory []Book
}

// Search returns the books whose title or author contains the keyword
// (case-insensitive). It is a read-only method at the specialized
// optimization level.
func (s *BookStore) Search(keyword string) ([]Book, error) {
	kw := strings.ToLower(keyword)
	var out []Book
	for _, b := range s.Inventory {
		if strings.Contains(strings.ToLower(b.Title), kw) ||
			strings.Contains(strings.ToLower(b.Author), kw) {
			out = append(out, b)
		}
	}
	return out, nil
}

// Price quotes a single title (read-only method).
func (s *BookStore) Price(title string) (float64, error) {
	for _, b := range s.Inventory {
		if b.Title == title {
			return b.Price, nil
		}
	}
	return 0, fmt.Errorf("bookstore: no such title %q", title)
}

// Buy decrements stock — a state change, never read-only.
func (s *BookStore) Buy(title string) (Book, error) {
	for i := range s.Inventory {
		if s.Inventory[i].Title == title {
			if s.Inventory[i].Stock <= 0 {
				return Book{}, fmt.Errorf("bookstore: %q out of stock", title)
			}
			s.Inventory[i].Stock--
			return s.Inventory[i], nil
		}
	}
	return Book{}, fmt.Errorf("bookstore: no such title %q", title)
}

// Restock adds stock for a title, creating it if absent.
func (s *BookStore) Restock(b Book) (int, error) {
	for i := range s.Inventory {
		if s.Inventory[i].Title == b.Title {
			s.Inventory[i].Stock += b.Stock
			return s.Inventory[i].Stock, nil
		}
	}
	s.Inventory = append(s.Inventory, b)
	return b.Stock, nil
}

// PriceGrabber supports keyword searches on all the bookstores. It is
// stateless apart from static wiring, and at the specialized level it
// is a read-only component: its calls read store state that can change
// between calls, so its replies are unrepeatable (Section 3.2.3's
// meta-search engine example).
type PriceGrabber struct {
	Stores []string // store component URIs

	ctx *phoenix.Ctx
}

// AttachContext receives the context handle (transient).
func (g *PriceGrabber) AttachContext(cx *phoenix.Ctx) { g.ctx = cx }

// Grab searches every store and rolls up the offers.
func (g *PriceGrabber) Grab(keyword string) ([]Offer, error) {
	var offers []Offer
	for _, store := range g.Stores {
		res, err := g.ctx.NewRef(phoenix.URI(store)).Call("Search", keyword)
		if err != nil {
			return nil, fmt.Errorf("grab from %s: %w", store, err)
		}
		for _, b := range res[0].([]Book) {
			offers = append(offers, Offer{Store: store, Book: b})
		}
	}
	sort.Slice(offers, func(i, j int) bool {
		if offers[i].Book.Title != offers[j].Book.Title {
			return offers[i].Book.Title < offers[j].Book.Title
		}
		return offers[i].Store < offers[j].Store
	})
	return offers, nil
}

// TaxCalculator computes sales tax from total price and user
// information; it is purely functional.
type TaxCalculator struct {
	// Rates maps a buyer's state code to its sales tax rate. Static
	// configuration, set at creation.
	Rates map[string]float64
}

// Tax returns the tax owed on total for a buyer in the given state.
// Same arguments, same result — the functional contract.
func (t *TaxCalculator) Tax(total float64, state string) (float64, error) {
	rate, ok := t.Rates[state]
	if !ok {
		rate = 0.08
	}
	return total * rate, nil
}

// BasketManager maintains one buyer's shopping basket. At the
// specialized level it is a subordinate of the BookSeller; at the
// baseline levels each basket manager is its own persistent component.
type BasketManager struct {
	Items []BasketItem
}

// Add puts an item in the basket.
func (b *BasketManager) Add(item BasketItem) (int, error) {
	b.Items = append(b.Items, item)
	return len(b.Items), nil
}

// List returns the basket contents.
func (b *BasketManager) List() ([]BasketItem, error) {
	out := make([]BasketItem, len(b.Items))
	copy(out, b.Items)
	return out, nil
}

// Clear empties the basket and reports how many items were removed.
func (b *BasketManager) Clear() (int, error) {
	n := len(b.Items)
	b.Items = nil
	return n, nil
}

// Subtotal sums the basket.
func (b *BasketManager) Subtotal() (float64, error) {
	var t float64
	for _, it := range b.Items {
		t += it.Price
	}
	return t, nil
}

// BookSeller manages a set of basket managers, each maintaining a
// shopping basket for a book buyer.
type BookSeller struct {
	// TaxURI locates the tax calculator.
	TaxURI string
	// Subordinated selects the deployment: true places basket
	// managers inside the seller's context (Section 3.2.1), false
	// places each in its own persistent component, with BasketProc
	// naming the process that hosts them.
	Subordinated bool
	// BasketMachine/BasketProc locate externally hosted baskets when
	// Subordinated is false.
	BasketMachine string
	BasketProc    string
	// Known tracks which buyers have baskets (deterministic order).
	Known []string

	ctx *phoenix.Ctx
}

// AttachContext receives the context handle (transient).
func (s *BookSeller) AttachContext(cx *phoenix.Ctx) { s.ctx = cx }

func (s *BookSeller) basketName(buyer string) string { return "Basket-" + buyer }

// ensureBasket returns a closure that calls the buyer's basket
// manager, creating it on first use.
func (s *BookSeller) basketCall(buyer, method string, args ...any) ([]any, error) {
	name := s.basketName(buyer)
	if s.Subordinated {
		sub, ok := s.ctx.Subordinate(name)
		if !ok {
			var err error
			sub, err = s.ctx.CreateSubordinate(name, &BasketManager{})
			if err != nil {
				return nil, err
			}
			s.Known = append(s.Known, buyer)
		}
		return sub.Call(method, args...)
	}
	uri := phoenix.MakeURI(s.BasketMachine, s.BasketProc, name)
	return s.ctx.NewRef(uri).Call(method, args...)
}

// AddToBasket records an offer in the buyer's basket.
func (s *BookSeller) AddToBasket(buyer string, item BasketItem) (int, error) {
	res, err := s.basketCall(buyer, "Add", item)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// ShowBasket lists the buyer's basket (read-only method at the
// specialized level).
func (s *BookSeller) ShowBasket(buyer string) ([]BasketItem, error) {
	res, err := s.basketCall(buyer, "List")
	if err != nil {
		return nil, err
	}
	return res[0].([]BasketItem), nil
}

// Total computes the basket total including tax (read-only method: it
// reads basket state and calls only the functional tax calculator).
func (s *BookSeller) Total(buyer, state string) (float64, error) {
	res, err := s.basketCall(buyer, "Subtotal")
	if err != nil {
		return 0, err
	}
	subtotal := res[0].(float64)
	tres, err := s.ctx.NewRef(phoenix.URI(s.TaxURI)).Call("Tax", subtotal, state)
	if err != nil {
		return 0, err
	}
	return subtotal + tres[0].(float64), nil
}

// ClearBasket empties the buyer's basket.
func (s *BookSeller) ClearBasket(buyer string) (int, error) {
	res, err := s.basketCall(buyer, "Clear")
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// Checkout purchases every basket item from its store, computes the
// taxed total, and empties the basket. One execution makes an outgoing
// call to each distinct store — exactly the fan-out the Section 3.5
// multi-call optimization targets.
func (s *BookSeller) Checkout(buyer, state string) (float64, error) {
	res, err := s.basketCall(buyer, "List")
	if err != nil {
		return 0, err
	}
	items := res[0].([]BasketItem)
	if len(items) == 0 {
		return 0, fmt.Errorf("bookstore: basket of %q is empty", buyer)
	}
	var subtotal float64
	for _, it := range items {
		if _, err := s.ctx.NewRef(phoenix.URI(it.Store)).Call("Buy", it.Title); err != nil {
			return 0, fmt.Errorf("buy %q from %s: %w", it.Title, it.Store, err)
		}
		subtotal += it.Price
	}
	tres, err := s.ctx.NewRef(phoenix.URI(s.TaxURI)).Call("Tax", subtotal, state)
	if err != nil {
		return 0, err
	}
	if _, err := s.basketCall(buyer, "Clear"); err != nil {
		return 0, err
	}
	return subtotal + tres[0].(float64), nil
}
