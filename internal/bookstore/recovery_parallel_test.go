package bookstore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	phoenix "repro"
)

// TestSellerParallelRecoveryEquivalence pins the Config.Recovery
// contract against the paper's own application: a bookstore seller
// process hosting one BookSeller plus a basket-manager context per
// buyer, crashed mid-shopping and recovered from the same log at
// Parallelism 0, 1, 4 and 8. Every level must reproduce identical
// baskets and identical replay accounting, and the EventRecoveryDone
// event must carry the same RecoveryStats that Process.LastRecovery
// returns.
func TestSellerParallelRecoveryEquivalence(t *testing.T) {
	buyers := []string{"alice", "bob", "carol", "dave"}
	dir := t.TempDir()
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// LevelOptimizedLogging keeps each buyer's basket manager a
	// separate persistent component, so the seller process hosts
	// several contexts with replayable records.
	d, err := Deploy(u, "server", LevelOptimizedLogging, buyers)
	if err != nil {
		t.Fatal(err)
	}
	seller := u.ExternalRef(d.SellerURI)
	for round := 0; round < 3; round++ {
		for i, b := range buyers {
			item := BasketItem{Title: fmt.Sprintf("Book-%s-%d", b, round), Price: float64(10 + i)}
			if _, err := seller.Call("AddToBasket", b, item); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, _ := u.Machine("server")
	p, _ := m.Process("seller")
	p.Crash()
	u.Shutdown()

	type outcome struct {
		baskets map[string][]BasketItem
		stats   phoenix.RecoveryStats
	}
	recoverAt := func(par int) outcome {
		t.Helper()
		dst := t.TempDir()
		cloneDir(t, dir, dst)
		u2, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dst})
		if err != nil {
			t.Fatal(err)
		}
		defer u2.Shutdown()
		m2, err := u2.AddMachine("server")
		if err != nil {
			t.Fatal(err)
		}
		cfg := LevelOptimizedLogging.Config()
		cfg.Recovery = phoenix.Recovery{Parallelism: par, QueueDepth: 4}
		var (
			mu   sync.Mutex
			done *phoenix.Event
		)
		cfg.OnEvent = func(e phoenix.Event) {
			if e.Kind == phoenix.EventRecoveryDone {
				mu.Lock()
				ev := e
				done = &ev
				mu.Unlock()
			}
		}
		p2, err := m2.StartProcess("seller", cfg)
		if err != nil {
			t.Fatalf("parallelism %d: restart seller: %v", par, err)
		}
		stats, ok := p2.LastRecovery()
		if !ok {
			t.Fatalf("parallelism %d: LastRecovery reported no run", par)
		}
		mu.Lock()
		if done == nil || done.Recovery == nil {
			t.Fatalf("parallelism %d: EventRecoveryDone missing Recovery stats", par)
		}
		if *done.Recovery != stats {
			t.Errorf("parallelism %d: event stats %+v != LastRecovery %+v",
				par, *done.Recovery, stats)
		}
		mu.Unlock()

		out := outcome{baskets: make(map[string][]BasketItem), stats: stats}
		ref := u2.ExternalRef(d.SellerURI)
		for _, b := range buyers {
			res, err := ref.Call("ShowBasket", b)
			if err != nil {
				t.Fatalf("parallelism %d: ShowBasket %s: %v", par, b, err)
			}
			out.baskets[b] = res[0].([]BasketItem)
		}
		return out
	}

	base := recoverAt(0)
	if base.stats.CallsReplayed == 0 {
		t.Error("seller recovery replayed no calls; workload too small")
	}
	for _, b := range buyers {
		if len(base.baskets[b]) != 3 {
			t.Errorf("serial recovery: %s basket has %d items, want 3", b, len(base.baskets[b]))
		}
	}
	for _, par := range []int{1, 4, 8} {
		got := recoverAt(par)
		for _, b := range buyers {
			if fmt.Sprint(got.baskets[b]) != fmt.Sprint(base.baskets[b]) {
				t.Errorf("parallelism %d: %s basket %v, serial recovered %v",
					par, b, got.baskets[b], base.baskets[b])
			}
		}
		if got.stats.CallsReplayed != base.stats.CallsReplayed ||
			got.stats.CallsSuppressed != base.stats.CallsSuppressed ||
			got.stats.RecordsScanned != base.stats.RecordsScanned ||
			got.stats.ContextsRestored != base.stats.ContextsRestored {
			t.Errorf("parallelism %d: stats %+v diverge from serial %+v",
				par, got.stats, base.stats)
		}
		if got.stats.WorkersUsed < 1 || got.stats.WorkersUsed > par {
			t.Errorf("parallelism %d: WorkersUsed = %d, want 1..%d",
				par, got.stats.WorkersUsed, par)
		}
	}
}

// cloneDir copies a universe directory so each recovery attempt starts
// from the same crashed on-disk state.
func cloneDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if de.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
