package core

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/obs"
)

// These tests pin the paper's per-algorithm logging invariants using
// the obs counters alone — no wal.Stats, no trace events. Each process
// gets its own registry via Config.Metrics, so client- and server-side
// accounting are cleanly separated.

// diffDuring snapshots reg, runs fn, and returns the counter deltas.
func diffDuring(reg *obs.Registry, fn func()) obs.Snapshot {
	before := reg.Snapshot()
	fn()
	return reg.Snapshot().Diff(before)
}

// TestAlgorithm2InvariantByCounters: optimized persistent→persistent
// (Algorithm 2). Per the paper: the send message (3) is forced but not
// written; the receive message (1) is written but not forced; message 2
// is neither written nor forced (only a force of prior records);
// message 4 is written unforced.
func TestAlgorithm2InvariantByCounters(t *testing.T) {
	u := newTestUniverse(t)
	cliReg, srvReg := obs.NewRegistry(), obs.NewRegistry()
	cliCfg := testConfig()
	cliCfg.Metrics = cliReg
	srvCfg := testConfig()
	srvCfg.Metrics = srvReg
	_, pc := startProc(t, u, "evo1", "cli", cliCfg)
	_, ps := startProc(t, u, "evo2", "srv", srvCfg)
	defer pc.Close()
	defer ps.Close()
	hs, err := ps.Create("Server", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pc.Create("Batcher", &Batcher{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hb.URI())
	callInt(t, ref, "RunBatch", "Add", 1, 1) // warm up: learning + creation forces

	const n = 8
	var srvD obs.Snapshot
	cliD := diffDuring(cliReg, func() {
		srvD = diffDuring(srvReg, func() {
			callInt(t, ref, "RunBatch", "Add", n, 1)
		})
	})

	// Server side: every inner call intercepted under Algorithm 2.
	if got := srvD.Counter(obs.InterceptAlgo2); got != n {
		t.Errorf("server intercept.algo2 = %d, want %d", got, n)
	}
	// Receive messages are written... (one incoming record per call)
	if got := srvD.Counter(obs.RecIncoming); got != n {
		t.Errorf("server rec.incoming = %d, want %d", got, n)
	}
	// ...but never forced at arrival.
	if got := srvD.Counter(obs.ForceAtIncoming); got != 0 {
		t.Errorf("server force.at_incoming = %d, want 0 (receives are unforced)", got)
	}
	// Message 2 produces no record of any shape — the reply send is a
	// pure force of what came before.
	if got := srvD.Counter(obs.RecReplyContent) + srvD.Counter(obs.RecReplySent); got != 0 {
		t.Errorf("server logged %d reply records, want 0 under Algorithm 2", got)
	}
	if got := srvD.Counter(obs.ForceAtReply); got != n {
		t.Errorf("server force.at_reply = %d, want %d", got, n)
	}

	// Client side: no send-message log writes, ever.
	if got := cliD.Counter(obs.RecOutgoing); got != 0 {
		t.Errorf("client rec.outgoing = %d, want 0 (sends are not written)", got)
	}
	// Message 4 (outgoing reply) is written once per call, unforced.
	if got := cliD.Counter(obs.RecOutgoingReply); got != n {
		t.Errorf("client rec.outgoing_reply = %d, want %d", got, n)
	}
	if got := cliD.Counter(obs.ForceAtOutgoingReply); got != 0 {
		t.Errorf("client force.at_outgoing_reply = %d, want 0", got)
	}
	// The send-site forces that did reach the device: all inner calls
	// except the first, whose log was already clean from the incoming
	// envelope's Algorithm 3 force.
	if got := cliD.Counter(obs.ForceAtSend); got != n-1 {
		t.Errorf("client force.at_send = %d, want %d", got, n-1)
	}
}

// TestAlgorithm5InvariantByCounters: optimized persistent→read-only
// (Algorithm 5). The read-only server does nothing; the persistent
// caller skips the force when calling but still logs the unrepeatable
// reply (message 4) — without forcing it.
func TestAlgorithm5InvariantByCounters(t *testing.T) {
	u := newTestUniverse(t)
	cliReg, srvReg := obs.NewRegistry(), obs.NewRegistry()
	cliCfg := testConfig()
	cliCfg.Metrics = cliReg
	srvCfg := testConfig()
	srvCfg.Metrics = srvReg
	_, pc := startProc(t, u, "evo1", "cli", cliCfg)
	_, ps := startProc(t, u, "evo2", "srv", srvCfg)
	defer pc.Close()
	defer ps.Close()
	hs, err := ps.Create("Server", &Counter{}, WithType(msg.ReadOnly))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pc.Create("Batcher", &Batcher{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hb.URI())
	callInt(t, ref, "RunBatchNoArg", "Get", 1) // warm up: learn the server type

	const n = 8
	var srvD obs.Snapshot
	cliD := diffDuring(cliReg, func() {
		srvD = diffDuring(srvReg, func() {
			callInt(t, ref, "RunBatchNoArg", "Get", n)
		})
	})

	// Server side: interception classified read-only; nothing logged,
	// nothing forced, no last-call bookkeeping.
	if got := srvD.Counter(obs.InterceptReadOnly); got != n {
		t.Errorf("server intercept.read_only = %d, want %d", got, n)
	}
	if got := srvD.Counter(obs.WALAppends); got != 0 {
		t.Errorf("server wal.appends = %d, want 0 (read-only server logs nothing)", got)
	}
	if got := srvD.Counter(obs.WALForces); got != 0 {
		t.Errorf("server wal.forces = %d, want 0", got)
	}

	// Client side: the send force is elided (Algorithm 5)...
	if got := cliD.Counter(obs.ElideReadOnly); got != n {
		t.Errorf("client elide.read_only = %d, want %d", got, n)
	}
	if got := cliD.Counter(obs.ForceAtSend); got != 0 {
		t.Errorf("client force.at_send = %d, want 0", got)
	}
	// ...but the reply is logged (unrepeatable) without a force.
	if got := cliD.Counter(obs.RecOutgoingReply); got != n {
		t.Errorf("client rec.outgoing_reply = %d, want %d", got, n)
	}
	if got := cliD.Counter(obs.ForceAtOutgoingReply); got != 0 {
		t.Errorf("client force.at_outgoing_reply = %d, want 0", got)
	}
	if got := cliD.Counter(obs.RecOutgoing); got != 0 {
		t.Errorf("client rec.outgoing = %d, want 0", got)
	}
}
