package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpLogRendersAllRecordTypes(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.LogMode = LogBaseline // baseline writes every record type
	_, pa := startProc(t, u, "evo1", "cli", cfg)
	_, pb := startProc(t, u, "evo2", "srv", cfg)
	hc, err := pb.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hr.URI())
	callInt(t, ref, "Forward", 1)
	if err := hr.SaveState(); err != nil {
		t.Fatal(err)
	}
	if err := pa.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	callInt(t, ref, "Forward", 1) // force covers the checkpoint
	pa.Close()
	pb.Close()

	var buf bytes.Buffer
	if err := DumpLog(&buf, pa.LogDir()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"creation", "incoming", "outgoing", "outgoing-reply",
		"reply-content", "ctx-state", "begin-ckpt", "ckpt-ctx-table",
		"ckpt-last-call", "end-ckpt",
		"Relay", "Forward", "context table",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q\n%s", want, out)
		}
	}
}

func TestDumpLogOptimizedShowsShortRecords(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Add", 1)
	p.Close()

	var buf bytes.Buffer
	if err := DumpLog(&buf, p.LogDir()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "short record") {
		t.Errorf("optimized external reply should dump as a short record:\n%s", buf.String())
	}
}

func TestDumpLogMissingDir(t *testing.T) {
	var buf bytes.Buffer
	// A fresh (empty) directory dumps cleanly with no records.
	if err := DumpLog(&buf, t.TempDir()+"/fresh.log"); err != nil {
		t.Fatalf("empty log dump: %v", err)
	}
	if !strings.Contains(buf.String(), "LSNs") {
		t.Errorf("header missing: %s", buf.String())
	}
}
