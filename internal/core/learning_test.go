package core

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
)

// TestConservativeUntilLearned: "Initially, the types of server
// components are unknown, and the most conservative logging algorithms
// are used. From reply messages, we gradually learn server component
// types" (Section 3.4). The first call to a functional server pays the
// persistent-discipline force; later calls pay nothing.
func TestConservativeUntilLearned(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	_, pc := startProc(t, u, "evo1", "cli", cfg)
	_, ps := startProc(t, u, "evo2", "srv", cfg)
	defer pc.Close()
	defer ps.Close()
	hs, err := ps.Create("Pure", &Pure{}, WithType(msg.Functional))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pc.Create("Batcher", &Batcher{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hb.URI())

	// Before any call the server is unknown: the conservative
	// (persistent) treatment governs the pre-send force.
	if _, _, known := pc.remoteTypes.lookup(hs.URI(), "Double"); known {
		t.Fatal("server known before any call")
	}

	// The first call sends with the conservative discipline, but the
	// reply carries the type attachment, so even the first message 4
	// is already handled with full knowledge (a strict improvement on
	// per-call conservatism: only the pre-send force is conservative).
	st := statsDelta(pc, func() { callInt(t, ref, "RunBatch", "Double", 1, 3) })
	if st.Appends != 2 { // envelope msg1 + msg2-short only
		t.Errorf("first call appends = %d, want 2", st.Appends)
	}
	ctype, _, known := pc.remoteTypes.lookup(hs.URI(), "Double")
	if !known || ctype != msg.Functional {
		t.Errorf("after first call: known=%v type=%v, want Functional", known, ctype)
	}

	// Learned: no forces, no appends for inner calls at all.
	st = statsDelta(pc, func() { callInt(t, ref, "RunBatch", "Double", 5, 3) })
	if st.Appends != 2 || st.Forces != 2 {
		t.Errorf("learned stats = %+v, want envelope only (2 appends, 2 forces)", st)
	}
}

// TestBaselineDuplicateAnsweredFromLogAfterRecovery: the baseline logs
// full message-2 records; after a crash, the rebuilt last call table
// holds only LSNs and the duplicate's reply is read from the log.
func TestBaselineDuplicateAnsweredFromLogAfterRecovery(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.LogMode = LogBaseline
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	caller := ids.ComponentAddr{Machine: "evoX", Proc: 2, Comp: 9}
	args, n, _ := encodeArgsHelper(4)
	call := &msg.Call{
		ID:         ids.CallID{Caller: caller, Seq: 3},
		Target:     h.URI(),
		Method:     "Add",
		Args:       args,
		NumArgs:    n,
		CallerType: msg.Persistent,
	}
	r1 := p.serveCall(call)
	if r1.Fault != "" {
		t.Fatalf("call: %+v", r1)
	}
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// The entry must exist with its reply recoverable (from memory via
	// the final-call replay, or from the baseline msg2 record).
	r2 := p2.serveCall(call)
	if r2.Fault != "" {
		t.Fatalf("duplicate after recovery: %+v", r2)
	}
	if string(r2.Results) != string(r1.Results) {
		t.Error("duplicate reply differs after baseline recovery")
	}
	h2, _ := p2.Lookup("Counter")
	if got := h2.Object().(*Counter).N; got != 4 {
		t.Errorf("counter = %d, want 4 (no re-execution)", got)
	}
}

// TestLastCallTableSharedAcrossContexts: "The last call table is shared
// among all the contexts in a process so that the entry for a client is
// updated even if the client calls two different components in the same
// process" (Section 4.1).
func TestLastCallTableSharedAcrossContexts(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	hA, _ := p.Create("A", &Counter{})
	hB, _ := p.Create("B", &Counter{})
	caller := ids.ComponentAddr{Machine: "evoX", Proc: 1, Comp: 1}
	mk := func(seq uint64, target ids.URI) *msg.Call {
		args, n, _ := encodeArgsHelper(1)
		return &msg.Call{
			ID: ids.CallID{Caller: caller, Seq: seq}, Target: target,
			Method: "Add", Args: args, NumArgs: n, CallerType: msg.Persistent,
		}
	}
	if r := p.serveCall(mk(1, hA.URI())); r.Fault != "" {
		t.Fatal(r.Fault)
	}
	if r := p.serveCall(mk(2, hB.URI())); r.Fault != "" {
		t.Fatal(r.Fault)
	}
	// Seq 1 to A is now older than the caller's last call (2, to B):
	// stale, rejected — the shared table kept only the newest.
	if r := p.serveCall(mk(1, hA.URI())); r.Fault == "" {
		t.Error("stale cross-context call accepted")
	}
	// The newest duplicate is still answered.
	if r := p.serveCall(mk(2, hB.URI())); r.Fault != "" {
		t.Errorf("duplicate to B rejected: %s", r.Fault)
	}
	if got := hB.Object().(*Counter).N; got != 1 {
		t.Errorf("B executed twice: %d", got)
	}
}
