package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/obs"
)

// These tests pin the lazy admission contract (Recovery.Mode =
// RecoveryLazy): recovering the same crashed log lazily — with calls
// landing mid-drain, across shard layouts, parallelism levels, crash
// injection points, and a mixed-era upgrade log — must converge on
// component state, last-call tables, and replay/suppression counts
// identical to the eager serial baseline. Lazy mode changes *when*
// replay runs, never what it computes. Run under -race: on-demand
// replays race the background drainers here by design.
//
// One deliberate exception: RecordsScanned is not compared across
// modes. Lazy replays scan per context from that context's restart
// LSN, so overlapping log regions are visited once per context rather
// than once total — more records read, same records replayed.

// recoverLazyCopy clones the crashed universe at srcDir and recovers
// the "srv" process lazily. Contexts named in touch get a no-op call
// (Add 0) immediately after admission — first-touch on-demand replays
// racing the background drain — then the drain is awaited and the
// outcome collected exactly like the eager harness does.
func recoverLazyCopy(t *testing.T, srcDir string, counters, relays, touch []string, par int) recoveryOutcome {
	t.Helper()
	dst := t.TempDir()
	copyDir(t, srcDir, dst)
	u, err := NewUniverse(UniverseConfig{Dir: dst})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Shutdown()
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Recovery = Recovery{Mode: RecoveryLazy, Parallelism: par, QueueDepth: 2}
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatalf("lazy par %d: restart: %v", par, err)
	}
	if !p.Recovered() {
		t.Fatalf("lazy par %d: restarted process did not recover", par)
	}
	// Touch while the drain is running: Add(0) leaves counter state
	// unchanged and external calls leave no last-call entries, so the
	// equivalence comparison still holds bit for bit.
	for _, name := range touch {
		h, ok := p.Lookup(name)
		if !ok {
			t.Fatalf("lazy par %d: %s missing after Pass 1", par, name)
		}
		callInt(t, u.ExternalRef(h.URI()), "Add", 0)
	}
	if err := p.DrainRecovery(); err != nil {
		t.Fatalf("lazy par %d: drain: %v", par, err)
	}

	out := recoveryOutcome{
		counters:   make(map[string]int),
		relayCalls: make(map[string]int),
		suppressed: p.suppressedCalls.Load(),
	}
	for _, name := range counters {
		h, ok := p.Lookup(name)
		if !ok {
			t.Fatalf("lazy par %d: counter %s missing after recovery", par, name)
		}
		out.counters[name] = h.Object().(*Counter).N
	}
	for _, name := range relays {
		h, ok := p.Lookup(name)
		if !ok {
			t.Fatalf("lazy par %d: relay %s missing after recovery", par, name)
		}
		out.relayCalls[name] = h.Object().(*Relay).Calls
	}
	out.lastCalls = p.lastCalls.snapshot()
	sortLastCalls(out.lastCalls)
	stats, ok := p.LastRecovery()
	if !ok {
		t.Fatalf("lazy par %d: LastRecovery reported no run", par)
	}
	out.stats = stats
	return out
}

func sortLastCalls(s []lastCallSaved) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Caller != s[j].Caller {
			return fmt.Sprint(s[i].Caller) < fmt.Sprint(s[j].Caller)
		}
		return s[i].Seq < s[j].Seq
	})
}

// assertLazyEquivalent compares a lazy recovery's outcome against the
// eager serial baseline: everything assertEquivalent checks except
// RecordsScanned (see the file comment), plus the lazy accounting
// invariants.
func assertLazyEquivalent(t *testing.T, par int, base, got recoveryOutcome) {
	t.Helper()
	for name, want := range base.counters {
		if got.counters[name] != want {
			t.Errorf("lazy par %d: counter %s = %d, eager recovered %d",
				par, name, got.counters[name], want)
		}
	}
	for name, want := range base.relayCalls {
		if got.relayCalls[name] != want {
			t.Errorf("lazy par %d: relay %s calls = %d, eager recovered %d",
				par, name, got.relayCalls[name], want)
		}
	}
	// The no-op touches are external calls (no last-call entries), so
	// the tables must still match entry for entry.
	if len(got.lastCalls) != len(base.lastCalls) {
		t.Errorf("lazy par %d: last-call table has %d entries, eager has %d",
			par, len(got.lastCalls), len(base.lastCalls))
	} else {
		for i := range base.lastCalls {
			if got.lastCalls[i] != base.lastCalls[i] {
				t.Errorf("lazy par %d: last-call entry %d = %+v, eager %+v",
					par, i, got.lastCalls[i], base.lastCalls[i])
			}
		}
	}
	if got.suppressed != base.suppressed {
		t.Errorf("lazy par %d: suppressed %d sends, eager suppressed %d",
			par, got.suppressed, base.suppressed)
	}
	if got.stats.CallsReplayed != base.stats.CallsReplayed {
		t.Errorf("lazy par %d: replayed %d calls, eager replayed %d",
			par, got.stats.CallsReplayed, base.stats.CallsReplayed)
	}
	if got.stats.ContextsRestored != base.stats.ContextsRestored {
		t.Errorf("lazy par %d: restored %d contexts, eager restored %d",
			par, got.stats.ContextsRestored, base.stats.ContextsRestored)
	}
	if got.stats.Mode != RecoveryLazy {
		t.Errorf("lazy par %d: stats.Mode = %v", par, got.stats.Mode)
	}
	// Every restored context was replayed exactly once, by one side or
	// the other; which side won each race varies run to run.
	if sum := got.stats.ContextsOnDemand + got.stats.ContextsBackground; sum != got.stats.ContextsRestored {
		t.Errorf("lazy par %d: on-demand %d + background %d != restored %d",
			par, got.stats.ContextsOnDemand, got.stats.ContextsBackground, got.stats.ContextsRestored)
	}
	if got.stats.ContextsRestored > 0 && got.stats.CtxReplayMaxNanos <= 0 {
		t.Errorf("lazy par %d: CtxReplayMaxNanos = %d, want > 0",
			par, got.stats.CtxReplayMaxNanos)
	}
	if got.stats.CtxReplayTotalNanos < got.stats.CtxReplayMaxNanos {
		t.Errorf("lazy par %d: CtxReplayTotalNanos %d < max %d",
			par, got.stats.CtxReplayTotalNanos, got.stats.CtxReplayMaxNanos)
	}
}

// lazyParallelism are the worker-slot levels the equivalence matrix
// runs: the serial default and a contended pool.
var lazyParallelism = []int{0, 4}

// TestLazyRecoveryEquivalence is the mode × shards × parallelism
// matrix: the standard counters+relays workload crashed on 1- and
// 4-shard logs, recovered eagerly (serial baseline) and lazily at each
// worker level, with two contexts touched mid-drain.
func TestLazyRecoveryEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir, counters, relays := shardWorkload(t, shards)
			base := recoverCopy(t, dir, counters, relays, 0)
			if base.suppressed == 0 {
				t.Error("workload produced no suppressed sends")
			}
			touch := []string{"C5", "C4"} // late restart LSNs: the drain reaches them last
			for _, par := range lazyParallelism {
				assertLazyEquivalent(t, par, base,
					recoverLazyCopy(t, dir, counters, relays, touch, par))
			}
		})
	}
}

// TestLazyRecoveryEquivalenceCrashPoints repeats the check for logs
// truncated by mid-call crash injection, including the case where a
// tail replay runs off the end of the log and resumes live execution
// during a lazy on-demand replay.
func TestLazyRecoveryEquivalenceCrashPoints(t *testing.T) {
	points := []InjectionPoint{
		PointServerAfterLogIncoming,
		PointServerAfterExecute,
		PointServerBeforeSendReply,
	}
	for _, point := range points {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			u, err := NewUniverse(UniverseConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			m, err := u.AddMachine("evo1")
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Injector = NewInjector().CrashAt(point, 12)
			p, err := m.StartProcess("srv", cfg)
			if err != nil {
				t.Fatal(err)
			}
			var counters []string
			refs := make(map[string]*Ref)
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("C%d", i)
				h, err := p.Create(name, &Counter{})
				if err != nil {
					t.Fatal(err)
				}
				counters = append(counters, name)
				refs[name] = u.ExternalRef(h.URI()).WithoutRetry()
			}
			crashed := false
			for round := 1; round <= 5 && !crashed; round++ {
				for i, name := range counters {
					if _, err := refs[name].Call("Add", i+round); err != nil {
						crashed = true
						break
					}
				}
			}
			if !crashed {
				t.Fatalf("injector at %s never fired", point)
			}
			u.Shutdown()

			base := recoverCopy(t, dir, counters, nil, 0)
			touch := []string{"C3"}
			for _, par := range lazyParallelism {
				assertLazyEquivalent(t, par, base,
					recoverLazyCopy(t, dir, counters, nil, touch, par))
			}
		})
	}
}

// TestLazyMixedEraRecovery recovers the two-era legacy-upgrade log
// lazily: per-context replay must cross the era barrier in order even
// when each context replays independently on its own schedule.
func TestLazyMixedEraRecovery(t *testing.T) {
	dir, counters, relays, wantC0 := mixedEraWorkload(t)
	base := recoverCopy(t, dir, counters, relays, 0)
	if got := base.counters["C0"]; got != wantC0 {
		t.Fatalf("eager baseline C0 = %d, want %d", got, wantC0)
	}
	touch := []string{"C0", "C3"}
	for _, par := range lazyParallelism {
		assertLazyEquivalent(t, par, base,
			recoverLazyCopy(t, dir, counters, relays, touch, par))
	}
}

// TestLazyFirstTouchAndStats drives a wide backlog, restarts lazily,
// and touches the context the background drain reaches last — the
// first-touch call must be admitted with correct replayed state while
// colder contexts are still draining, and the published stats and
// recovery.lazy.* metrics must account every context.
func TestLazyFirstTouchAndStats(t *testing.T) {
	const n, rounds = 16, 12
	dir := t.TempDir()
	u, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("srv", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	refs := make(map[string]*Ref)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("C%d", i)
		h, err := p.Create(name, &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		refs[name] = u.ExternalRef(h.URI())
	}
	for round := 1; round <= rounds; round++ {
		for i, name := range names {
			callInt(t, refs[name], "Add", i+round)
		}
	}
	p.Crash()
	u.Shutdown()

	u2, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Shutdown()
	m2, err := u2.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = reg
	cfg.Recovery = Recovery{Mode: RecoveryLazy, Parallelism: 1}
	p2, err := m2.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First touch: the hottest-first drain starts from the lowest
	// restart LSN, so the last-created context goes on demand here.
	last := names[n-1]
	h, ok := p2.Lookup(last)
	if !ok {
		t.Fatalf("%s missing after Pass 1", last)
	}
	want := rounds*(n-1) + rounds*(rounds+1)/2
	if got := callInt(t, u2.ExternalRef(h.URI()), "Add", 0); got != want {
		t.Fatalf("first touch of %s returned %d, want %d (stale or unreplayed state)", last, got, want)
	}
	if err := p2.DrainRecovery(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stats, ok := p2.LastRecovery()
	if !ok {
		t.Fatal("LastRecovery reported no run")
	}
	if stats.Mode != RecoveryLazy {
		t.Errorf("stats.Mode = %v, want lazy", stats.Mode)
	}
	if stats.TimeToFirstCallNanos <= 0 {
		t.Errorf("TimeToFirstCallNanos = %d, want > 0", stats.TimeToFirstCallNanos)
	}
	if sum := stats.ContextsOnDemand + stats.ContextsBackground; sum != n {
		t.Errorf("on-demand %d + background %d = %d, want %d",
			stats.ContextsOnDemand, stats.ContextsBackground, sum, n)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.RecoveryLazyOnDemand) + snap.Counter(obs.RecoveryLazyBackground); got != int64(n) {
		t.Errorf("recovery.lazy replay counters sum to %d, want %d", got, n)
	}
	if got := snap.HistogramFor(obs.RecoveryLazyCtxReplayMicros).Count; got != int64(n) {
		t.Errorf("ctx_replay_micros count = %d, want %d", got, n)
	}
	if got := snap.HistogramFor(obs.RecoveryLazyTTFCMicros).Count; got != 1 {
		t.Errorf("ttfc_micros count = %d, want 1", got)
	}
}

// TestLazyRecoverContextAPI exercises RecoverContext as the API form of
// on-demand replay during a live lazy drain: it must replay (or await)
// the named context and leave its state correct, and remain usable in
// its classic role after the drain completes.
func TestLazyRecoverContextAPI(t *testing.T) {
	dir, counters, _ := shardWorkload(t, 1)
	dst := t.TempDir()
	copyDir(t, dir, dst)
	u, err := NewUniverse(UniverseConfig{Dir: dst})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Shutdown()
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Recovery = Recovery{Mode: RecoveryLazy}
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RecoverContext("C5"); err != nil {
		t.Fatalf("RecoverContext during drain: %v", err)
	}
	h, _ := p.Lookup("C5")
	// C5 got 8 rounds of Add(5+round): 8*5 + 36.
	if got := h.Object().(*Counter).N; got != 8*5+36 {
		t.Errorf("C5 = %d after RecoverContext, want %d", got, 8*5+36)
	}
	if err := p.DrainRecovery(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// After the drain the classic path (restore fresh + replay) must
	// still work for a live context repair.
	if err := p.RecoverContext("C2"); err != nil {
		t.Fatalf("RecoverContext after drain: %v", err)
	}
	h2, _ := p.Lookup("C2")
	if got := h2.Object().(*Counter).N; got != 8*2+36 {
		t.Errorf("C2 = %d after post-drain RecoverContext, want %d", got, 8*2+36)
	}
	_ = counters
}

// TestLazyCrashMidDrain crashes the process again while the lazy drain
// is still running: DrainRecovery must not hang, and a subsequent
// eager restart must still recover the full pre-crash state (lazy
// replay advances no restart LSNs, so an interrupted drain loses
// nothing).
func TestLazyCrashMidDrain(t *testing.T) {
	dir, counters, relays := shardWorkload(t, 4)
	base := recoverCopy(t, dir, counters, relays, 0)

	dst := t.TempDir()
	copyDir(t, dir, dst)
	u, err := NewUniverse(UniverseConfig{Dir: dst})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Recovery = Recovery{Mode: RecoveryLazy, Parallelism: 2}
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Crash() // mid-drain, with high probability
	if err := p.DrainRecovery(); err != nil {
		t.Fatalf("drain after crash: %v", err)
	}

	// Third restart, eager: the interrupted drain must not have
	// corrupted or lost anything.
	cfg2 := testConfig()
	p2, err := m.StartProcess("srv", cfg2)
	if err != nil {
		t.Fatalf("restart after mid-drain crash: %v", err)
	}
	if err := p2.DrainRecovery(); err != nil {
		t.Fatal(err)
	}
	for name, want := range base.counters {
		h, ok := p2.Lookup(name)
		if !ok {
			t.Fatalf("counter %s lost after mid-drain crash", name)
		}
		if got := h.Object().(*Counter).N; got != want {
			t.Errorf("counter %s = %d after mid-drain crash, want %d", name, got, want)
		}
	}
	u.Shutdown()
}
