package core

import (
	"fmt"

	"repro/internal/ids"
)

// EventKind classifies runtime lifecycle events surfaced through
// Config.OnEvent.
type EventKind int

const (
	// EventCrash fires when a process fail-stops.
	EventCrash EventKind = iota
	// EventRecoveryStart fires when crash recovery begins, after the
	// well-known LSN has been read; LSN carries the scan start.
	EventRecoveryStart
	// EventRecoveryDone fires when recovery completes; Restored,
	// Replayed and Suppressed carry the counts (Detail repeats them
	// human-readably).
	EventRecoveryDone
	// EventStateSave fires when a context state record is written; LSN
	// carries the record's position.
	EventStateSave
	// EventCheckpoint fires when a process checkpoint is written; LSN
	// carries the begin-checkpoint record's position.
	EventCheckpoint
	// EventTrim fires when dead log segments are reclaimed; LSN carries
	// the keep point.
	EventTrim
	// EventRetry fires when an outgoing call is redriven after a
	// server failure (condition 4). Method names the call; Detail
	// reports the attempt number.
	EventRetry
	// EventReplay fires for each incoming call re-executed during
	// recovery; Method names the replayed call and LSN its incoming
	// record. All EventReplay events of a recovery fall between its
	// EventRecoveryStart and EventRecoveryDone.
	EventReplay

	// eventKindCount bounds the enum; keep it last so the String test
	// can cover every kind.
	eventKindCount
)

// String names the event kind. Unknown values render as a stable
// "EventKind(<n>)" so new kinds never silently stringify wrong.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRecoveryStart:
		return "recovery-start"
	case EventRecoveryDone:
		return "recovery-done"
	case EventStateSave:
		return "state-save"
	case EventCheckpoint:
		return "checkpoint"
	case EventTrim:
		return "trim"
	case EventRetry:
		return "retry"
	case EventReplay:
		return "replay"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one runtime lifecycle occurrence: a structured trace record.
// Beyond the kind and process, events carry the affected component,
// method and log position where they apply, so observers can correlate
// the trace with log dumps and metrics without parsing Detail.
type Event struct {
	Kind    EventKind
	Process string
	// Context names the affected context, when there is one.
	Context ids.URI
	// Method names the method involved (replayed or retried calls).
	Method string
	// LSN is the log position the event refers to (state record,
	// checkpoint begin, trim keep-point, replayed incoming record).
	LSN ids.LSN
	// Restored, Replayed and Suppressed are recovery counts, set on
	// EventRecoveryDone: contexts restored, incoming calls re-executed,
	// and outgoing sends answered from the log instead of being sent.
	Restored   int
	Replayed   int64
	Suppressed int64
	// Recovery carries the full RecoveryStats of the run on
	// EventRecoveryDone (pass durations on the universe clock, records
	// scanned, worker count); nil on every other kind.
	Recovery *RecoveryStats
	// Detail is a short human-readable elaboration.
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("[%s] %s", e.Process, e.Kind)
	if e.Context != "" {
		s += " " + string(e.Context)
	}
	if e.Method != "" {
		s += " ." + e.Method
	}
	if !e.LSN.IsNil() {
		s += fmt.Sprintf(" @%v", e.LSN)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// emit delivers a detail-formatted event to the process's observer.
// Callbacks may run with runtime locks held and must not call back into
// the runtime; forward to a channel or logger.
func (p *Process) emit(kind EventKind, ctx ids.URI, format string, args ...any) {
	if p.cfg.OnEvent == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	p.cfg.OnEvent(Event{Kind: kind, Process: p.name, Context: ctx, Detail: detail})
}

// emitEvent delivers a pre-built structured event, filling Process.
func (p *Process) emitEvent(e Event) {
	if p.cfg.OnEvent == nil {
		return
	}
	e.Process = p.name
	p.cfg.OnEvent(e)
}
