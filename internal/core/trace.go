package core

import (
	"fmt"

	"repro/internal/ids"
)

// EventKind classifies runtime lifecycle events surfaced through
// Config.OnEvent.
type EventKind int

const (
	// EventCrash fires when a process fail-stops.
	EventCrash EventKind = iota
	// EventRecoveryStart fires when crash recovery begins, after the
	// well-known LSN has been read.
	EventRecoveryStart
	// EventRecoveryDone fires when recovery completes; Detail reports
	// restored contexts and replayed calls.
	EventRecoveryDone
	// EventStateSave fires when a context state record is written.
	EventStateSave
	// EventCheckpoint fires when a process checkpoint is written.
	EventCheckpoint
	// EventTrim fires when dead log segments are reclaimed.
	EventTrim
	// EventRetry fires when an outgoing call is redriven after a
	// server failure (condition 4). Detail reports the attempt number.
	EventRetry
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRecoveryStart:
		return "recovery-start"
	case EventRecoveryDone:
		return "recovery-done"
	case EventStateSave:
		return "state-save"
	case EventCheckpoint:
		return "checkpoint"
	case EventTrim:
		return "trim"
	case EventRetry:
		return "retry"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one runtime lifecycle occurrence.
type Event struct {
	Kind    EventKind
	Process string
	// Context names the affected context, when there is one.
	Context ids.URI
	// Detail is a short human-readable elaboration.
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("[%s] %s", e.Process, e.Kind)
	if e.Context != "" {
		s += " " + string(e.Context)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// emit delivers an event to the process's observer. Callbacks may run
// with runtime locks held and must not call back into the runtime;
// forward to a channel or logger.
func (p *Process) emit(kind EventKind, ctx ids.URI, format string, args ...any) {
	if p.cfg.OnEvent == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	p.cfg.OnEvent(Event{Kind: kind, Process: p.name, Context: ctx, Detail: detail})
}
