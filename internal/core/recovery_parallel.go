package core

// This file is the partitioned Pass-2 engine behind Config.Recovery.
// Contexts are single-threaded and independent by construction
// (Section 4.4), so their replays need no mutual ordering: readers
// walk the log once and demultiplex message records into per-context
// bounded queues, each drained by its own goroutine; a semaphore of
// Parallelism slots bounds how many replayIncoming executions run at
// once. On a sharded log one reader runs per shard, because the shards
// are independent streams; eras scan one after another (a barrier
// between them) so a context that lived through a reshard receives its
// older-era records before its newer ones. Two things stay sequential
// on purpose:
//   - Non-tail replays never resume live execution (the log-prefix
//     argument: if a later incoming record for the context survived
//     the crash, every earlier record — including the previous call's
//     outgoing replies — survived too), so concurrent drains touch
//     only per-context state plus the thread-safe last-call table,
//     whose putReplayed is monotonic per caller and converges to the
//     serial result under any interleaving.
//   - Tail calls (each context's final buffered incoming call) replay
//     after every queue drains, via the coordinator's replayTails —
//     serially in log order on a single stream, serially per stream
//     with streams concurrent on a sharded log (see replayTails).

import (
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs/trace"
	"repro/internal/wal"
)

// pass2Item is one demultiplexed Pass-2 record; exactly one of
// incoming or reply is set. enq is the universe-clock time the reader
// enqueued it (0 when tracing is off), so the drain can record how long
// the record sat in its context's queue.
type pass2Item struct {
	incoming *incomingRec
	reply    *outgoingReplyRec
	lsn      ids.LSN
	enq      int64
}

// itemTrace is the causal trace the demultiplexed record was logged
// under (zero for untraced records).
func (it pass2Item) itemTrace() trace.Ref {
	if it.incoming != nil {
		return it.incoming.Trace
	}
	return it.reply.Trace
}

// ctxQueue is one context's replay lane: a bounded channel fed by the
// demux readers and drained by a single goroutine. Within an era the
// context's records live on exactly one shard, and eras scan behind a
// barrier, so at most one reader feeds a given queue at any moment and
// the queue sees the context's records in their original order. The
// tail fields are written only by the drain goroutine and read by the
// coordinator after wg.Wait, so they need no lock.
type ctxQueue struct {
	cx         *Context
	ch         chan pass2Item
	err        error
	pending    *incomingRec
	pendingLSN ids.LSN
	replies    map[uint64]*msg.Reply
}

// replayParallel is pass 2 with Config.Recovery.Parallelism > 0. It
// visits the same records replayFrom would, replays the same incoming
// calls, and leaves the same component state and last-call table;
// only the interleaving of non-tail replays differs. Returns the
// records visited, the worker-slot count used, and the tail calls for
// the caller to replay via replayTails.
func (p *Process) replayParallel(starts map[uint32]ids.LSN, parallelism, depth int) (int64, int, []tailReplay, error) {
	var (
		queuesMu sync.Mutex
		queues   = make(map[ids.CompID]*ctxQueue) // nil value: context dropped, skip
		slots    = make(chan struct{}, parallelism)
		wg       sync.WaitGroup
		scanned  atomic.Int64
	)
	ctxOf := func(id ids.CompID) *Context {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.contexts[id]
	}
	drain := func(q *ctxQueue) {
		defer wg.Done()
		for it := range q.ch {
			if q.err != nil {
				continue // unblock the reader, drop the rest
			}
			if tref := it.itemTrace(); p.tr != nil && !tref.IsZero() {
				p.tr.Record(trace.SpanData{
					Ref:    trace.Ref{Trace: tref.Trace, Span: p.tr.NewSpan()},
					Parent: tref.Span,
					Stage:  trace.StageReplayQueueWait,
					Start:  it.enq,
					End:    p.tr.Now(),
					LSN:    uint64(it.lsn),
					Proc:   &p.name,
				})
			}
			if it.incoming == nil {
				reply := it.reply.Reply
				q.replies[it.reply.Seq] = &reply
				continue
			}
			if q.pending != nil {
				// All messages of the previous incoming call are now
				// buffered: replay it, holding a worker slot.
				slots <- struct{}{}
				err := p.replayIncoming(q.cx, q.pending, q.pendingLSN, q.replies)
				<-slots
				if err != nil {
					q.err = err
					continue
				}
			}
			q.pending = it.incoming
			q.pendingLSN = it.lsn
			q.replies = make(map[uint64]*msg.Reply)
		}
	}
	getQueue := func(id ids.CompID, lsn ids.LSN) *ctxQueue {
		queuesMu.Lock()
		q, seen := queues[id]
		if !seen {
			if cx := ctxOf(id); cx != nil {
				q = &ctxQueue{cx: cx, ch: make(chan pass2Item, depth),
					replies: make(map[uint64]*msg.Reply)}
				wg.Add(1)
				go drain(q)
			}
			queues[id] = q
		}
		queuesMu.Unlock()
		if q == nil || lsn < q.cx.restartLSN {
			return nil // dropped context, or record older than its state record
		}
		return q
	}

	readShard := func(l *wal.Log, from ids.LSN) error {
		cur, err := l.ScanFrom(from)
		if err != nil {
			return err
		}
		for {
			rec, ok, err := cur.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			scanned.Add(1)
			var (
				q  *ctxQueue
				it pass2Item
			)
			switch rec.Type {
			case recIncoming:
				var ir incomingRec
				if err := decodeRec(rec.Payload, &ir); err != nil {
					return err
				}
				q, it = getQueue(ir.Ctx, rec.LSN), pass2Item{incoming: &ir, lsn: rec.LSN}
			case recOutgoingReply:
				var or outgoingReplyRec
				if err := decodeRec(rec.Payload, &or); err != nil {
					return err
				}
				q, it = getQueue(or.Ctx, rec.LSN), pass2Item{reply: &or, lsn: rec.LSN}
			default:
				continue
			}
			if q == nil {
				continue
			}
			p.obs.RecoveryPass2Demuxed.Inc()
			p.obs.RecoveryPass2QueueDepth.Observe(int64(len(q.ch)))
			if len(q.ch) == cap(q.ch) {
				p.obs.RecoveryPass2Stalls.Inc()
			}
			it.enq = p.tr.Now()
			q.ch <- it
		}
	}

	// Group the shards by era, oldest first (Shards returns them in era
	// order). Each era's shards read concurrently; the next era starts
	// only once the whole era drained into the queues, because for any
	// single context the records of era N temporally precede those of
	// era N+1.
	shards := p.log.Shards()
	var eras [][]wal.Shard
	for _, sh := range shards {
		if n := len(eras); n == 0 || eras[n-1][0].Era != sh.Era {
			eras = append(eras, nil)
		}
		eras[len(eras)-1] = append(eras[len(eras)-1], sh)
	}
	var (
		readMu  sync.Mutex
		readErr error
	)
	for _, group := range eras {
		var rwg sync.WaitGroup
		for _, sh := range group {
			from, ok := starts[sh.Stream]
			if !ok {
				continue // no restored context has records on this stream
			}
			rwg.Add(1)
			go func(l *wal.Log, from ids.LSN) {
				defer rwg.Done()
				if err := readShard(l, from); err != nil {
					readMu.Lock()
					if readErr == nil {
						readErr = err
					}
					readMu.Unlock()
				}
			}(sh.Log, from)
		}
		rwg.Wait()
		readMu.Lock()
		stop := readErr != nil
		readMu.Unlock()
		if stop {
			break
		}
	}

	live := 0
	for _, q := range queues {
		if q != nil {
			close(q.ch)
			live++
		}
	}
	wg.Wait()
	workers := parallelism
	if live < workers {
		workers = live
	}
	p.obs.RecoveryPass2Workers.Observe(int64(workers))
	if readErr != nil {
		return scanned.Load(), workers, nil, readErr
	}
	for _, q := range queues {
		if q != nil && q.err != nil {
			return scanned.Load(), workers, nil, q.err
		}
	}

	// Hand the tail calls back to the coordinator; replayTails runs
	// them with the ordering arguments documented there.
	tails := make([]tailReplay, 0, live)
	for _, q := range queues {
		if q != nil && q.pending != nil {
			tails = append(tails, tailReplay{
				cx: q.cx, pending: q.pending,
				pendingLSN: q.pendingLSN, replies: q.replies,
			})
		}
	}
	return scanned.Load(), workers, tails, nil
}
