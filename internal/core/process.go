package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/rpc"
	"repro/internal/wal"
)

// Process is a virtual process hosting Phoenix/App contexts. It owns
// the per-process runtime structures of paper Figure 7: the context,
// component, remote component and last call tables, a log manager over
// a process-local log file, and a recovery manager (the recover method
// in recovery.go).
type Process struct {
	u      *Universe
	m      *Machine
	name   string
	procID ids.ProcID
	cfg    Config
	addr   string

	log     wal.Writer
	logPath string
	wkPath  string

	// metrics is the resolved observability registry (Config.Metrics,
	// else the universe's, else obs.Default()); obs caches its runtime
	// view for the interception hot paths.
	metrics *obs.Registry
	obs     *obs.RuntimeMetrics

	// tr is the resolved flight recorder (Config.Trace, else the
	// universe's). Nil means tracing off; every recording site is
	// nil-safe, so the disabled hot path pays one pointer check.
	tr *trace.Recorder

	mu         sync.Mutex
	contexts   map[ids.CompID]*Context
	byName     map[string]*Context // parent component name -> context
	components map[ids.CompID]*component
	nextCompID uint32

	lastCalls   *lastCallTable
	remoteTypes *remoteTypeTable

	incomingCalls   atomic.Int64 // served incoming calls (checkpoint policy)
	replayedCalls   atomic.Int64 // calls re-executed by recovery
	suppressedCalls atomic.Int64 // outgoing sends answered from the log during replay
	crashed         atomic.Bool
	recovered       bool
	listening       atomic.Bool

	// recoveryDone is closed once startup (including any recovery) has
	// finished; calls that race ahead of context restoration wait on it
	// instead of faulting with "no component".
	recoveryDone     chan struct{}
	recoveryDoneOnce sync.Once

	// lastRecovery holds the stats of the most recent crash-recovery
	// run, nil before any recovery has happened.
	recMu        sync.Mutex
	lastRecovery *RecoveryStats

	// lazy is the in-flight lazy recovery engine (Recovery.Mode =
	// RecoveryLazy), attached at admission and detached when the drain
	// completes cleanly; nil otherwise, so the serve hot path pays one
	// atomic pointer load.
	lazy atomic.Pointer[lazyRecovery]

	// adaptive is the discipline controller (Config.Adaptive.Enabled),
	// set once at construction and immutable thereafter. Nil means
	// disabled: every hot-path integration point is behind one nil
	// check, so the static configuration's behavior is bit-for-bit
	// unchanged.
	adaptive *adaptiveController

	// Time-to-first-call accounting: restore() arms the stamp at
	// recovery start (ttfcBase = universe-clock nanos), and the serve
	// path's first call past a ready gate disarms it and records the
	// latency — with lazy admission that is the headline "perceived
	// downtime" number.
	ttfcArmed atomic.Bool
	ttfcBase  atomic.Int64
	ttfcNanos atomic.Int64

	// pendingCkpt is the begin-LSN of a checkpoint written but not yet
	// covered by a force; the first force whose stable watermark moves
	// past pendingCkptEnd (the end-checkpoint record) writes the
	// well-known file (Section 4.3). On a sharded log pendingCkptEnds
	// snapshots each stream's append position when the checkpoint
	// began: records past those positions postdate the checkpoint and
	// are always rescanned, so the per-stream watermark can default to
	// them. lastMarks is the vector last recorded in the well-known
	// file — recovery scans from it, so log trimming must keep it
	// ({0: lsn} on a single-stream log, exactly the legacy protocol).
	ckptMu          sync.Mutex
	pendingCkpt     ids.LSN
	pendingCkptEnd  ids.LSN
	pendingCkptEnds map[uint32]ids.LSN
	lastMarks       map[uint32]ids.LSN
}

// component is one row of the component table (paper Table 1).
type component struct {
	id        ids.CompID
	name      string
	obj       any
	disp      *rpc.Dispatcher
	ctype     msg.ComponentType
	roMethods map[string]bool
	ctx       *Context
}

func newProcess(m *Machine, name string, procID ids.ProcID, cfg Config) (*Process, error) {
	model := disk.Model(disk.HostModel{})
	if m.u.cfg.DiskModel != nil {
		model = m.u.cfg.DiskModel(m.name, name)
	}
	logPath := filepath.Join(m.dir, name+".log")
	// Config.WAL.Shards > 1 asks for a sharded log; an already-sharded
	// directory stays sharded regardless of config (a restart with the
	// zero config must keep reading every stream). Everything else is a
	// plain single-stream Log, bit-for-bit the legacy format.
	var log wal.Writer
	var err error
	if cfg.WAL.Shards > 1 || wal.IsSharded(logPath) {
		log, err = wal.OpenSet(logPath, model, cfg.WAL.Shards)
	} else {
		log, err = wal.Open(logPath, model)
	}
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = m.u.metrics
	}
	log.SetMetrics(reg)
	tr := cfg.Trace
	if tr == nil {
		tr = m.u.cfg.Trace
	}
	// The flusher's commit window sleeps on the universe clock, so a
	// virtual clock drives group commit deterministically in tests.
	log.StartGroupCommit(cfg.effectiveGroupCommit(), m.u.cfg.Clock)
	p := &Process{
		u:            m.u,
		m:            m,
		name:         name,
		procID:       procID,
		cfg:          cfg,
		addr:         m.u.addrFor(m.name, name),
		log:          log,
		logPath:      logPath,
		wkPath:       filepath.Join(m.dir, name+".wk"),
		metrics:      reg,
		obs:          obs.RuntimeView(reg),
		tr:           tr,
		contexts:     make(map[ids.CompID]*Context),
		byName:       make(map[string]*Context),
		components:   make(map[ids.CompID]*component),
		nextCompID:   1,
		lastCalls:    newLastCallTable(),
		remoteTypes:  newRemoteTypeTable(),
		recoveryDone: make(chan struct{}),
	}
	if cfg.Adaptive.Enabled {
		p.adaptive = newAdaptiveController(p)
	}
	if cfg.Injector != nil {
		cfg.Injector.bind(p)
	}
	return p, nil
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// ProcID returns the stable logical process ID.
func (p *Process) ProcID() ids.ProcID { return p.procID }

// Machine returns the hosting machine.
func (p *Process) Machine() *Machine { return p.m }

// Config returns the process's runtime switches.
func (p *Process) Config() Config { return p.cfg }

// Recovered reports whether this process instance performed recovery
// at start (i.e. it is a restart of a crashed process).
func (p *Process) Recovered() bool { return p.recovered }

// LastRecovery returns the stats of this process's most recent crash
// recovery, or ok=false if it has never recovered. The same stats ride
// on the EventRecoveryDone event.
func (p *Process) LastRecovery() (RecoveryStats, bool) {
	p.recMu.Lock()
	defer p.recMu.Unlock()
	if p.lastRecovery == nil {
		return RecoveryStats{}, false
	}
	s := *p.lastRecovery
	// The first post-recovery call may land after the stats were
	// published (always, for eager mode); merge the stamp in here so
	// callers see it as soon as it exists.
	if n := p.ttfcNanos.Load(); n > 0 {
		s.TimeToFirstCallNanos = n
	}
	return s, true
}

// armFirstCall starts the time-to-first-call clock at recovery begin.
func (p *Process) armFirstCall(start time.Time) {
	p.ttfcBase.Store(start.UnixNano())
	p.ttfcNanos.Store(0)
	p.ttfcArmed.Store(true)
}

// noteFirstCall stamps time-to-first-call once per recovery: the first
// incoming call admitted past its context's ready gate. The steady
// state (disarmed) costs one atomic load on the serve path.
func (p *Process) noteFirstCall() {
	if !p.ttfcArmed.Load() || !p.ttfcArmed.CompareAndSwap(true, false) {
		return
	}
	d := p.u.cfg.Clock.Now().UnixNano() - p.ttfcBase.Load()
	if d <= 0 {
		d = 1 // clock granularity; "armed and called" must read as >0
	}
	p.ttfcNanos.Store(d)
	if p.cfg.Recovery.Mode == RecoveryLazy {
		p.obs.RecoveryLazyTTFCMicros.Observe(d / 1000)
	}
}

// DrainRecovery blocks until a lazy recovery's background drain has
// replayed every context (or the process crashes mid-drain), returning
// the first replay failure if any. Eager mode — where recovery
// completed before the process came up — and a process that never
// recovered return immediately.
func (p *Process) DrainRecovery() error {
	lr := p.lazy.Load()
	if lr == nil {
		return nil
	}
	<-lr.done
	lr.drainers.Wait()
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.firstErr
}

func (p *Process) setLastRecovery(s RecoveryStats) {
	p.recMu.Lock()
	p.lastRecovery = &s
	p.recMu.Unlock()
}

// LogStats exposes the log activity counters (forces per experiment,
// Table 8's "Number of Forces").
func (p *Process) LogStats() wal.Stats { return p.log.Stats() }

// ShardLogStat pairs one log shard's stream ID with its counters.
type ShardLogStat struct {
	Stream uint32
	Stats  wal.Stats
}

// ShardLogStats exposes the per-shard log counters in era order. A
// single-stream log reports one entry; the bench harness uses the
// per-shard BusyNanos split to bound partitioned-log throughput.
func (p *Process) ShardLogStats() []ShardLogStat {
	shards := p.log.Shards()
	out := make([]ShardLogStat, 0, len(shards))
	for _, sh := range shards {
		out = append(out, ShardLogStat{Stream: sh.Stream, Stats: sh.Log.Stats()})
	}
	return out
}

// LogDir returns the process's recovery-log directory (for
// phoenix-logdump and operational tooling).
func (p *Process) LogDir() string { return p.logPath }

// ResetLogStats zeroes the log counters between experiment phases.
func (p *Process) ResetLogStats() { p.log.ResetStats() }

// SetLogSegmentBytes overrides the log's segment roll-over threshold
// (small values let tests and space-bounded deployments trim eagerly).
func (p *Process) SetLogSegmentBytes(n int64) { p.log.SetSegmentBytes(n) }

func (p *Process) listen() error {
	if err := p.u.cfg.Net.Listen(p.addr, p.handleRequest); err != nil {
		return err
	}
	p.listening.Store(true)
	return nil
}

// CreateOption configures component creation.
type CreateOption func(*createOpts)

type createOpts struct {
	ctype     msg.ComponentType
	roMethods []string
	subs      []subSpec
}

type subSpec struct {
	name string
	obj  any
}

// WithType sets the component type (default Persistent).
func WithType(t msg.ComponentType) CreateOption {
	return func(o *createOpts) { o.ctype = t }
}

// WithReadOnlyMethods declares the Section 3.3 read-only attribute on
// the named methods: they neither change component fields nor make
// non-read-only outgoing calls, and are logged per Algorithm 5.
func WithReadOnlyMethods(names ...string) CreateOption {
	return func(o *createOpts) { o.roMethods = append(o.roMethods, names...) }
}

// WithSubordinate co-locates a subordinate component in the new
// context (Section 3.2.1). Subordinates only serve calls from their
// parent and sibling subordinates; those calls cross no context
// boundary and are neither intercepted nor logged.
func WithSubordinate(name string, obj any) CreateOption {
	return func(o *createOpts) { o.subs = append(o.subs, subSpec{name: name, obj: obj}) }
}

// Create hosts a component in a new context of this process and logs
// its creation record (with post-construction field state, so recovery
// re-instantiates without replaying construction). The component object
// must be a pointer to a struct; its exported fields are its
// recoverable state.
func (p *Process) Create(name string, obj any, opts ...CreateOption) (*Handle, error) {
	if p.crashed.Load() {
		return nil, fmt.Errorf("core: process %s has crashed", p.name)
	}
	if err := validateName("component", name); err != nil {
		return nil, err
	}
	o := createOpts{ctype: msg.Persistent}
	for _, opt := range opts {
		opt(&o)
	}
	if o.ctype == msg.Subordinate {
		return nil, fmt.Errorf("core: subordinates are created via WithSubordinate or Ctx.CreateSubordinate, not Create")
	}
	p.mu.Lock()
	if _, ok := p.byName[name]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: component %q already exists in process %s", name, p.name)
	}
	p.mu.Unlock()

	parent, err := p.newComponent(name, obj, o.ctype, o.roMethods)
	if err != nil {
		return nil, err
	}
	cx := &Context{
		p:        p,
		parent:   parent,
		uri:      ids.MakeURI(p.m.name, p.name, name),
		subs:     make(map[string]*component),
		subsByID: make(map[ids.CompID]*component),
	}
	parent.ctx = cx
	cx.ready = make(chan struct{})
	cx.markReady()
	bindRefs(cx, obj)
	for _, ss := range o.subs {
		if _, err := cx.addSubordinate(ss.name, ss.obj); err != nil {
			return nil, err
		}
	}

	// Log and force the creation record: the context's replay starting
	// point when no state record exists, and what recovery uses to
	// re-instantiate the components ("recovers the process tables,
	// contexts and components", Section 4.1). Stateless components get
	// one too — no messages are ever logged at them, but recovery
	// still reconstructs the component itself.
	rec, err := cx.creationRecord()
	if err != nil {
		return nil, err
	}
	lsn, err := p.appendRec(recCreation, parent.id, rec)
	if err != nil {
		return nil, err
	}
	if err := p.force(nil); err != nil {
		return nil, err
	}
	cx.creationLSN = lsn
	cx.restartLSN = lsn
	cx.lastLSN = lsn

	p.mu.Lock()
	if _, ok := p.byName[name]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: component %q already exists in process %s", name, p.name)
	}
	p.contexts[parent.id] = cx
	p.byName[name] = cx
	p.mu.Unlock()

	if aware, ok := parent.obj.(ContextAware); ok {
		aware.AttachContext(&Ctx{cx: cx})
	}
	return &Handle{cx: cx}, nil
}

// newComponent allocates a component table entry.
func (p *Process) newComponent(name string, obj any, ctype msg.ComponentType, roMethods []string) (*component, error) {
	disp, err := rpc.NewDispatcher(obj)
	if err != nil {
		return nil, err
	}
	ro := make(map[string]bool, len(roMethods))
	for _, m := range roMethods {
		if _, ok := disp.Method(m); !ok {
			return nil, fmt.Errorf("core: read-only method %q not found on %T", m, obj)
		}
		ro[m] = true
	}
	RegisterComponentType(obj)
	p.mu.Lock()
	c := &component{
		id:        ids.CompID(p.nextCompID),
		name:      name,
		obj:       obj,
		disp:      disp,
		ctype:     ctype,
		roMethods: ro,
	}
	p.nextCompID++
	p.components[c.id] = c
	p.mu.Unlock()
	return c, nil
}

// Lookup returns the handle of a hosted component (after recovery, the
// way an application reattaches to its components).
func (p *Process) Lookup(name string) (*Handle, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cx, ok := p.byName[name]
	if !ok {
		return nil, false
	}
	return &Handle{cx: cx}, true
}

// Components lists hosted parent component names, sorted.
func (p *Process) Components() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.byName))
	for n := range p.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// forceTo makes the log stable up to lsn: the caller waits only until
// its own records are durable, not until the global tail is. It then
// finishes any process checkpoint the sync covered.
//
// site, when non-nil, is the per-site force counter of the paper's
// Tables 4-5 accounting (force.at_send, force.at_reply, ...). It is
// incremented only when this request issued the device sync: clean
// forces are free, and requests satisfied by someone else's sync (a
// piggyback or a group-commit batch) count under wal.group.syncs_saved
// instead — so the per-site sum stays equal to wal.forces.
func (p *Process) forceTo(site *obs.Counter, lsn ids.LSN) error {
	out, err := p.log.SyncTo(lsn)
	return p.finishForce(site, out, err)
}

// force forces the whole log tail (creation and checkpoint paths; the
// message disciplines use forceTo with the context's last LSN).
func (p *Process) force(site *obs.Counter) error {
	out, err := p.log.SyncAll()
	return p.finishForce(site, out, err)
}

func (p *Process) finishForce(site *obs.Counter, out wal.SyncOutcome, err error) error {
	if err != nil {
		return err
	}
	if site != nil && out == wal.SyncIssued {
		site.Inc()
	}
	return p.completeCheckpoint()
}

// completeCheckpoint publishes a pending process checkpoint once its
// records are covered by the stable watermark (Section 4.3: "Once a
// process checkpoint has been flushed to the log (possibly by a later
// send message), the log manager writes and forces the LSN of the
// begin checkpoint record into a well-known file"). With the LSN-aware
// force API a sync need not cover the whole tail, so the check is
// against the end-checkpoint record's LSN, not "any force happened".
func (p *Process) completeCheckpoint() error {
	p.ckptMu.Lock()
	begin, end := p.pendingCkpt, p.pendingCkptEnd
	p.ckptMu.Unlock()
	if begin.IsNil() || p.log.SyncedLSN() <= end {
		return nil
	}
	p.ckptMu.Lock()
	if p.pendingCkpt != begin {
		// A newer checkpoint superseded the one we saw; its own force
		// will publish it.
		p.ckptMu.Unlock()
		return nil
	}
	ends := p.pendingCkptEnds
	p.pendingCkpt, p.pendingCkptEnd, p.pendingCkptEnds = ids.NilLSN, ids.NilLSN, nil
	p.ckptMu.Unlock()
	marks := p.wellKnownMarks(begin, ends)
	if err := wal.SaveWellKnownMarks(p.wkPath, marks); err != nil {
		return err
	}
	p.ckptMu.Lock()
	p.lastMarks = marks
	p.ckptMu.Unlock()
	if p.cfg.AutoTrimLog {
		return p.TrimLog()
	}
	return nil
}

// wellKnownMarks computes the checkpoint watermark vector the
// well-known file records: for each stream, a position recovery's
// pass-1 scan of that stream may start from. A single-stream log gets
// exactly the legacy protocol — the begin-checkpoint LSN. A sharded
// log starts each stream at its append position when the checkpoint
// began (everything later postdates the checkpoint and is rescanned)
// and lowers it to any restart LSN, reply-content LSN or cross-era
// floor that recovery still needs (constrainMarks).
func (p *Process) wellKnownMarks(begin ids.LSN, ends map[uint32]ids.LSN) map[uint32]ids.LSN {
	shards := p.log.Shards()
	if len(shards) == 1 && shards[0].Stream == 0 {
		return map[uint32]ids.LSN{0: begin}
	}
	marks := make(map[uint32]ids.LSN, len(shards))
	starts := make(map[uint32]ids.LSN, len(shards))
	for _, sh := range shards {
		starts[sh.Stream] = sh.Log.Start()
		if e, ok := ends[sh.Stream]; ok {
			marks[sh.Stream] = e
		} else {
			// Stream unknown when the checkpoint began (resharded
			// since): recovery must see all of it.
			marks[sh.Stream] = starts[sh.Stream]
		}
	}
	lowerMark(marks, begin.Stream(), begin)
	p.constrainMarks(marks, starts)
	return marks
}

// lowerMark moves a present stream's mark down to l; absent streams
// stay absent (trim callers must not invent streams they cannot keep).
func lowerMark(marks map[uint32]ids.LSN, stream uint32, l ids.LSN) {
	if cur, ok := marks[stream]; ok && l < cur {
		marks[stream] = l
	}
}

// constrainMarks lowers marks to the recovery-needs floor: every live
// context's restart LSN (in the restart's own stream), the start of
// any later-era stream that may hold a context's records while its
// restart points at an older stream (recovery must scan such streams
// from the beginning — the context's records there cannot be bounded
// by its restart LSN), and every last-call entry's reply-content LSN
// (duplicate replies are served from the log). Streams absent from
// marks are left absent.
func (p *Process) constrainMarks(marks, starts map[uint32]ids.LSN) {
	p.mu.Lock()
	for _, cx := range p.contexts {
		r := cx.restartLSN
		if r.IsNil() {
			continue
		}
		lowerMark(marks, r.Stream(), r)
		for _, s := range p.log.StreamsFor(uint64(cx.parent.id)) {
			if s > r.Stream() {
				lowerMark(marks, s, starts[s])
			}
		}
	}
	p.mu.Unlock()
	for s, l := range p.lastCalls.minReplyLSNByStream() {
		lowerMark(marks, s, l)
	}
}

// TrimLog reclaims the dead log prefix: everything before the oldest
// position recovery could still need — the minimum over every
// context's restart LSN, every last-call entry's reply LSN, and the
// well-known checkpoint LSN. Whole dead segments are deleted. With
// Config.AutoTrimLog it runs automatically whenever a process
// checkpoint becomes durable.
func (p *Process) TrimLog() error {
	keeps := p.reclaimPoints()
	if len(keeps) == 0 {
		return nil
	}
	before := p.log.Stats().TrimmedBytes
	streams := make([]uint32, 0, len(keeps))
	for s := range keeps {
		streams = append(streams, s)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i] < streams[j] })
	low := ids.NilLSN
	for _, s := range streams {
		keep := keeps[s]
		if keep.IsNil() {
			continue
		}
		if low.IsNil() || keep < low {
			low = keep
		}
		if err := p.log.TrimHead(keep); err != nil {
			return err
		}
	}
	if got := p.log.Stats().TrimmedBytes - before; got > 0 {
		p.obs.Trims.Inc()
		p.emitEvent(Event{Kind: EventTrim, LSN: low,
			Detail: fmt.Sprintf("reclaimed %d bytes up to %v", got, low)})
	}
	return nil
}

// reclaimPoints returns the per-stream trim floors: each stream's
// saved well-known mark, lowered to anything recovery could still
// need now (current restart LSNs, reply-content LSNs, cross-era
// floors). Streams with no saved mark are absent — they were unknown
// at the last durable checkpoint, so recovery scans them from the
// start and nothing in them may be trimmed.
func (p *Process) reclaimPoints() map[uint32]ids.LSN {
	p.ckptMu.Lock()
	last := p.lastMarks
	p.ckptMu.Unlock()
	if len(last) == 0 {
		// No durable checkpoint yet: recovery scans from the start.
		return nil
	}
	keeps := make(map[uint32]ids.LSN, len(last))
	for s, l := range last {
		keeps[s] = l
	}
	starts := make(map[uint32]ids.LSN)
	for _, sh := range p.log.Shards() {
		starts[sh.Stream] = sh.Log.Start()
	}
	p.constrainMarks(keeps, starts)
	return keeps
}

// appendRec encodes and appends a typed record, accounting it to the
// per-kind record counters (the paper's message kinds 1-4 plus the
// creation/state/checkpoint records). key routes the record on a
// sharded log: the owning context's CompID for per-context records,
// 0 (the meta stream) for process-wide checkpoint records. Hot
// records implement wal.PayloadEncoder themselves and encode straight
// into the log's scratch buffer, so the per-call append allocates
// nothing (the assertion reads the existing interface value); cold
// record types fall back to a one-off closure. A traced record also
// drops a StageWALAppend span.
func (p *Process) appendRec(t wal.RecordType, key ids.CompID, v any) (ids.LSN, error) {
	var tref trace.Ref
	var tstart int64
	if p.tr != nil {
		if tv, ok := v.(traceable); ok {
			if tref = tv.traceRef(); !tref.IsZero() {
				tstart = p.tr.Now()
			}
		}
	}
	enc, ok := v.(wal.PayloadEncoder)
	if !ok {
		enc = wal.EncodeFunc(func(dst []byte) ([]byte, error) {
			return appendRecInto(dst, t, v)
		})
	}
	lsn, err := p.log.AppendInto(uint64(key), t, enc)
	if err == nil {
		p.recCounter(t).Inc()
		if !tref.IsZero() {
			p.tr.Record(trace.SpanData{
				Ref:    trace.Ref{Trace: tref.Trace, Span: p.tr.NewSpan()},
				Parent: tref.Span,
				Stage:  trace.StageWALAppend,
				Start:  tstart,
				End:    p.tr.Now(),
				LSN:    uint64(lsn),
				Proc:   &p.name,
			})
		}
	}
	return lsn, err
}

// forceTraced wraps forceTo with a StageSyncWait span — the time a
// commit point spent waiting for durability (group-commit window plus
// device sync, or the inline sync). It delegates to forceTo, the
// blessed force chokepoint, so phoenix-lint's forcesite check needs no
// new allowlist entry for it.
func (p *Process) forceTraced(site *obs.Counter, lsn ids.LSN, tref trace.Ref, method *string) error {
	if p.tr == nil || tref.IsZero() {
		return p.forceTo(site, lsn)
	}
	tstart := p.tr.Now()
	err := p.forceTo(site, lsn)
	p.tr.Record(trace.SpanData{
		Ref:    trace.Ref{Trace: tref.Trace, Span: p.tr.NewSpan()},
		Parent: tref.Span,
		Stage:  trace.StageSyncWait,
		Start:  tstart,
		End:    p.tr.Now(),
		LSN:    uint64(lsn),
		Proc:   &p.name,
		Method: method,
	})
	return err
}

// recCounter maps a record type to its obs counter.
func (p *Process) recCounter(t wal.RecordType) *obs.Counter {
	switch t {
	case recCreation:
		return p.obs.RecCreation
	case recIncoming:
		return p.obs.RecIncoming
	case recReplySent:
		return p.obs.RecReplySent
	case recReplyContent:
		return p.obs.RecReplyContent
	case recOutgoing:
		return p.obs.RecOutgoing
	case recOutgoingReply:
		return p.obs.RecOutgoingReply
	case recCtxState:
		return p.obs.RecCtxState
	case recBeginCkpt:
		return p.obs.RecBeginCkpt
	case recCkptCtxTable:
		return p.obs.RecCkptCtxTable
	case recCkptLastCall:
		return p.obs.RecCkptLastCall
	case recEndCkpt:
		return p.obs.RecEndCkpt
	case recDisciplineChange:
		return p.obs.RecDisciplineChange
	default:
		return nil
	}
}

// Metrics returns the registry this process accounts to.
func (p *Process) Metrics() *obs.Registry { return p.metrics }

// markStarted opens the process for component lookups (startup,
// including any recovery, is complete — or the process is going away
// and waiters must not hang).
func (p *Process) markStarted() {
	p.recoveryDoneOnce.Do(func() { close(p.recoveryDone) })
}

// Crash fail-stops the process: the transport address goes silent, the
// log buffer (everything not yet forced) is lost, and all in-memory
// runtime state is abandoned — except the flight recorder, which is
// dumped next to the log first (a real deployment's crash handler
// writes the ring from a signal handler; the virtual process does the
// moral equivalent). The machine's recovery service is notified, which
// restarts the process if auto-restart is enabled.
func (p *Process) Crash() {
	if !p.crashed.CompareAndSwap(false, true) {
		return
	}
	p.u.cfg.Net.Unlisten(p.addr)
	p.listening.Store(false)
	detail := ""
	if err := p.log.Discard(); err != nil {
		detail = fmt.Sprintf("log discard: %v", err)
	}
	p.dumpFlightRecorder()
	p.markStarted() // release any waiters; they will see the crash
	if lr := p.lazy.Load(); lr != nil {
		lr.stop()
	}
	p.emit(EventCrash, "", "%s", detail)
	p.m.svc.NotifyCrash(p.name)
}

// FlightRecorder returns the process's resolved flight recorder (nil
// when tracing is off).
func (p *Process) FlightRecorder() *trace.Recorder { return p.tr }

// DumpFlightRecorder writes the current ring contents to path in the
// trace dump format (phoenix-trace reads it back). Unlike the crash
// path's automatic dump this can run any time, e.g. from an operational
// endpoint.
func (p *Process) DumpFlightRecorder(path string) error {
	return trace.WriteDump(path, p.tr.Snapshot())
}

// dumpFlightRecorder persists the ring next to the log on a crash as
// <proc>.ftr.N — N counts restarts, so a trace that crosses several
// crashes keeps every generation's spans. Best-effort by design: the
// process is going down and a dump failure must not perturb the crash
// path.
func (p *Process) dumpFlightRecorder() {
	if p.tr == nil || p.tr.Len() == 0 {
		return
	}
	base := strings.TrimSuffix(p.logPath, ".log")
	for n := 0; ; n++ {
		path := fmt.Sprintf("%s.ftr.%d", base, n)
		if _, err := os.Stat(path); err == nil {
			continue // this generation already dumped; keep it
		}
		_ = trace.WriteDump(path, p.tr.Snapshot())
		return
	}
}

// shutdown releases resources without simulating a crash (clean exit
// for error paths; unforced data is written out). The log-close error
// is returned so the error path that triggered the shutdown can fold
// it into what it reports.
func (p *Process) shutdown() error {
	p.u.cfg.Net.Unlisten(p.addr)
	p.listening.Store(false)
	p.markStarted()
	return p.log.Close()
}

// Close cleanly stops the process (tests and examples; a clean close is
// indistinguishable from a crash to the recovery protocol, except that
// no buffered log data is lost). The error is the log's close error:
// a failed final flush means buffered records did not reach the device.
func (p *Process) Close() error {
	if !p.crashed.CompareAndSwap(false, true) {
		return nil
	}
	p.u.cfg.Net.Unlisten(p.addr)
	p.listening.Store(false)
	p.markStarted()
	if lr := p.lazy.Load(); lr != nil {
		lr.stop()
	}
	return p.log.Close()
}

// Crashed reports whether the process has failed or been closed.
func (p *Process) Crashed() bool { return p.crashed.Load() }

// validateName rejects names that would corrupt component URIs
// (phoenix://machine/process/component) or on-disk paths.
func validateName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("core: %s name must not be empty", kind)
	}
	if strings.ContainsAny(name, "/\\ \t\n") {
		return fmt.Errorf("core: %s name %q must not contain separators or whitespace", kind, name)
	}
	if name == "." || name == ".." {
		return fmt.Errorf("core: %s name %q is reserved", kind, name)
	}
	return nil
}

// crashSignal is panicked through the stack when failure injection (or
// a mid-call Crash) tears the process down; interception boundaries
// recover it and turn it into an unavailability error.
type crashSignal struct{ proc string }

// checkAlive panics with crashSignal if the process has crashed, so
// in-flight executions unwind instead of externalizing results.
func (p *Process) checkAlive() {
	if p.crashed.Load() {
		panic(crashSignal{proc: p.name})
	}
}
