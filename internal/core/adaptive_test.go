package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
)

// These tests pin the Config.Adaptive contract: the controller promotes
// disciplines only after sustained qualifying epochs (no flapping under
// oscillating workloads), every transition is durable before it takes
// effect, the read-only guard demotes mid-call before a mutated reply
// externalizes, and recovery of a log whose discipline changed mid-run
// is equivalent across eager/lazy modes and parallelism levels. Run
// under -race via `make adaptive-stress`: promotions race with serving
// calls from multiple client goroutines elsewhere in the suite.

// adaptiveUniverse builds a virtual-clock universe (epochs advance via
// clk.Sleep) with a per-process registry so adaptive counters can be
// asserted in isolation.
func adaptiveUniverse(t *testing.T, dir string) (*Universe, *disk.VirtualClock) {
	t.Helper()
	clk := disk.NewVirtualClock()
	u, err := NewUniverse(UniverseConfig{Dir: dir, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	return u, clk
}

func adaptiveConfig(mode LogMode) Config {
	return Config{
		LogMode:       mode,
		Adaptive:      AdaptiveConfig{Enabled: true, Window: 50 * time.Millisecond, PromoteAfter: 3, DemoteAfter: 2},
		RetryInterval: 2 * time.Millisecond,
		RetryLimit:    50,
		Metrics:       obs.NewRegistry(),
	}
}

// epoch drives the controller across one epoch boundary: advance the
// virtual clock past the window, then issue calls (the first call after
// the boundary finalizes the previous epoch).
func epoch(t *testing.T, clk *disk.VirtualClock, w time.Duration, calls func()) {
	t.Helper()
	clk.Sleep(w + time.Millisecond)
	calls()
}

func adaptiveSnap(p *Process) obs.Snapshot { return p.Metrics().Snapshot() }

// assignmentFor returns the discipline string assigned to method (any
// context), or "" when untracked.
func assignmentFor(p *Process, method string) (string, bool) {
	for _, a := range p.AdaptiveAssignments() {
		if a.Method == method {
			return a.Discipline, a.MultiCall
		}
	}
	return "", false
}

// TestAdaptiveDisabledIsInert pins the zero-value contract: with
// Config.Adaptive disabled no controller is attached and no adaptive
// metric ever moves, whatever the workload does.
func TestAdaptiveDisabledIsInert(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.Metrics = obs.NewRegistry()
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()
	if p.adaptive != nil {
		t.Fatal("controller attached with Adaptive disabled")
	}
	if got := p.AdaptiveAssignments(); got != nil {
		t.Fatalf("AdaptiveAssignments = %v with Adaptive disabled", got)
	}
	h, err := p.Create("C", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 20; i++ {
		callInt(t, ref, "Add", 1)
		callInt(t, ref, "Get")
	}
	snap := adaptiveSnap(p)
	for _, name := range []string{
		obs.AdaptivePromotions, obs.AdaptiveDemotions, obs.AdaptiveEpochs,
		obs.AdaptiveElideAlgo2, obs.AdaptiveElideReadOnly, obs.AdaptiveElideMulti,
		obs.AdaptiveROViolations, obs.RecDisciplineChange,
	} {
		if v := snap.Counter(name); v != 0 {
			t.Errorf("%s = %d with Adaptive disabled, want 0", name, v)
		}
	}
}

// TestAdaptiveAlgo2Promotion drives a persistent relay -> counter chain
// in a baseline universe until both methods promote to Algorithm 2, and
// checks the promotion is visible everywhere it must be: assignments,
// gauge, forced change records, and a reduced force count per call.
func TestAdaptiveAlgo2Promotion(t *testing.T) {
	u, clk := adaptiveUniverse(t, t.TempDir())
	cfg := adaptiveConfig(LogBaseline)
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()

	hc, err := p.Create("C", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := p.Create("R", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	relay := u.ExternalRef(hr.URI())

	burst := func() {
		for i := 0; i < 4; i++ {
			callInt(t, relay, "Forward", 1)
		}
	}
	burst()
	for i := 0; i < 5; i++ {
		epoch(t, clk, cfg.Adaptive.Window, burst)
	}

	for _, method := range []string{"Forward", "Add"} {
		if disc, _ := assignmentFor(p, method); disc != "algo2" {
			t.Errorf("%s assigned %q, want algo2", method, disc)
		}
	}
	snap := adaptiveSnap(p)
	if v := snap.Counter(obs.AdaptivePromotions); v < 2 {
		t.Errorf("adaptive.promotions = %d, want >= 2", v)
	}
	if v := snap.Gauge(obs.AdaptiveDiscAlgo2); v != 2 {
		t.Errorf("adaptive.disc.algo2 gauge = %d, want 2", v)
	}
	if v := snap.Counter(obs.RecDisciplineChange); v < 2 {
		t.Errorf("rec.discipline_change = %d, want >= 2", v)
	}
	if v := snap.Counter(obs.AdaptiveForceAtChange); v < 1 {
		t.Errorf("adaptive.force.at_change = %d, want >= 1 (changes must be forced)", v)
	}

	// Steady state: the promoted chain must elide the baseline's
	// message-1 forces at the counter and message-4 forces at the relay.
	p.ResetLogStats()
	before := adaptiveSnap(p)
	const steady = 10
	for i := 0; i < steady; i++ {
		callInt(t, relay, "Forward", 1)
	}
	delta := adaptiveSnap(p).Diff(before)
	if v := delta.Counter(obs.AdaptiveElideAlgo2); v < steady {
		t.Errorf("adaptive.elided.algo2 = %d over %d steady calls, want >= %d", v, steady, steady)
	}
	forces := p.LogStats().Forces
	// Baseline would force 6 times per Forward (relay msg-1, send,
	// counter msg-1, counter msg-2, msg-4, relay msg-2); the promoted
	// chain forces 4 (Algorithm 3 at the external edge, one send force,
	// one commit force at the counter reply).
	if perCall := float64(forces) / steady; perCall > 4.5 {
		t.Errorf("promoted chain forces %.1f/call, want <= 4.5 (baseline is 6)", perCall)
	}
}

// TestAdaptiveReadOnlyPromotionAndGuard promotes a read-only method to
// Algorithm 5, then arms a mutation and checks the guard demotes the
// method before the mutated reply externalizes — durably, so a crash
// immediately after still recovers the mutation.
func TestAdaptiveReadOnlyPromotionAndGuard(t *testing.T) {
	dir := t.TempDir()
	u, clk := adaptiveUniverse(t, dir)
	cfg := adaptiveConfig(LogBaseline)
	_, p := startProc(t, u, "evo1", "srv", cfg)

	h, err := p.Create("F", &Flaky{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())

	burst := func() {
		for i := 0; i < 4; i++ {
			callInt(t, ref, "Peek")
		}
	}
	burst()
	for i := 0; i < 4; i++ {
		epoch(t, clk, cfg.Adaptive.Window, burst)
	}
	if disc, _ := assignmentFor(p, "Peek"); disc != "readonly" {
		t.Fatalf("Peek assigned %q, want readonly", disc)
	}

	// Promoted: calls log nothing.
	before := adaptiveSnap(p)
	burst()
	delta := adaptiveSnap(p).Diff(before)
	if v := delta.Counter(obs.RecIncoming); v != 0 {
		t.Errorf("promoted read-only method logged %d incoming records, want 0", v)
	}
	if v := delta.Counter(obs.AdaptiveElideReadOnly); v < 4 {
		t.Errorf("adaptive.elided.readonly = %d, want >= 4", v)
	}

	// Arm the mutation: the next Peek increments N under the promoted
	// (unlogged) treatment, trips the guard, and must demote + persist.
	callInt(t, ref, "Arm")
	if got := callInt(t, ref, "Peek"); got != 1 {
		t.Fatalf("armed Peek = %d, want 1", got)
	}
	snap := adaptiveSnap(p)
	if v := snap.Counter(obs.AdaptiveROViolations); v != 1 {
		t.Errorf("adaptive.ro_violations = %d, want 1", v)
	}
	if disc, _ := assignmentFor(p, "Peek"); disc != "baseline" {
		t.Errorf("Peek assigned %q after violation, want baseline", disc)
	}
	if v := snap.Gauge(obs.AdaptiveDiscReadOnly); v != 0 {
		t.Errorf("adaptive.disc.readonly gauge = %d after demotion, want 0", v)
	}

	// The violation's state record was forced before the reply: a crash
	// right now must recover N = 1.
	p.Crash()
	m, ok := u.Machine("evo1")
	if !ok {
		t.Fatal("machine evo1 missing")
	}
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	h2, ok := p2.Lookup("F")
	if !ok {
		t.Fatal("F missing after recovery")
	}
	if n := h2.Object().(*Flaky).N; n != 1 {
		t.Errorf("recovered N = %d, want 1 (guard mutation lost)", n)
	}
	// The demotion is sticky across the restart (mined from the log):
	// Peek must never re-promote to read-only.
	if disc, _ := assignmentFor(p2, "Peek"); disc == "readonly" {
		t.Error("Peek re-promoted to readonly after a recorded violation")
	}
}

// Flaky is a read-only-looking component whose mutation can be armed,
// driving the adaptive guard's demotion path.
type Flaky struct {
	N      int
	Mutate bool
}

func (f *Flaky) Peek() (int, error) {
	if f.Mutate {
		f.N++
	}
	return f.N, nil
}
func (f *Flaky) Arm() (int, error) { f.Mutate = true; return f.N, nil }

// TestAdaptiveHysteresisNoFlapping alternates qualifying and
// disqualifying epochs faster than the promote/demote streaks and
// checks the controller never transitions; then sustains each phase and
// checks exactly one transition per direction.
func TestAdaptiveHysteresisNoFlapping(t *testing.T) {
	u, clk := adaptiveUniverse(t, t.TempDir())
	cfg := adaptiveConfig(LogBaseline)
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()

	hc, err := p.Create("C", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := p.Create("R", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	relay := u.ExternalRef(hr.URI())
	direct := u.ExternalRef(hc.URI())

	// "Add" qualifies for Algorithm 2 in epochs where the relay calls
	// it (internal caller) and disqualifies in epochs where only the
	// external client does. Alternating 1:1 must never reach
	// PromoteAfter=3 or DemoteAfter=2 in a row — zero transitions.
	qualify := func() { callInt(t, relay, "Forward", 1) }
	disqualify := func() { callInt(t, direct, "Add", 1) }
	qualify()
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			epoch(t, clk, cfg.Adaptive.Window, disqualify)
		} else {
			epoch(t, clk, cfg.Adaptive.Window, qualify)
		}
	}
	snap := adaptiveSnap(p)
	if disc, _ := assignmentFor(p, "Add"); disc != "baseline" {
		t.Errorf("oscillating Add assigned %q, want baseline (no flapping)", disc)
	}

	// Sustained qualification: exactly one promotion for Add. (Forward
	// also promotes — it qualifies in every epoch that calls it.)
	for i := 0; i < 5; i++ {
		epoch(t, clk, cfg.Adaptive.Window, qualify)
	}
	if disc, _ := assignmentFor(p, "Add"); disc != "algo2" {
		t.Errorf("sustained Add assigned %q, want algo2", disc)
	}

	// Sustained disqualification: exactly one demotion back.
	for i := 0; i < 5; i++ {
		epoch(t, clk, cfg.Adaptive.Window, disqualify)
	}
	if disc, _ := assignmentFor(p, "Add"); disc != "baseline" {
		t.Errorf("demoted Add assigned %q, want baseline", disc)
	}
	final := adaptiveSnap(p)
	// Between the oscillation snapshot and now: one Add promotion, one
	// Forward promotion (idle during oscillation epochs is neutral, its
	// streak completes during the sustained phase), one Add demotion.
	d := final.Diff(snap)
	if v := d.Counter(obs.AdaptivePromotions); v > 2 {
		t.Errorf("sustained phases produced %d promotions, want <= 2 (flapping?)", v)
	}
	if v := d.Counter(obs.AdaptiveDemotions); v > 2 {
		t.Errorf("sustained phases produced %d demotions, want <= 2 (flapping?)", v)
	}
	if v := final.Counter(obs.AdaptiveDemotions); v < 1 {
		t.Errorf("adaptive.demotions = %d, want >= 1", v)
	}
}

// TestAdaptiveMultiCallElision drives a fan-out method (three distinct
// persistent servers per execution) in the optimized mode without the
// static MultiCall switch and checks the per-method promotion elides
// the send forces.
func TestAdaptiveMultiCallElision(t *testing.T) {
	u, clk := adaptiveUniverse(t, t.TempDir())
	cfg := adaptiveConfig(LogOptimized)
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()

	var refs [3]*Ref
	for i := range refs {
		h, err := p.Create(fmt.Sprintf("C%d", i), &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = NewRef(h.URI())
	}
	hf, err := p.Create("Fan", &Fan{A: refs[0], B: refs[1], C: refs[2]})
	if err != nil {
		t.Fatal(err)
	}
	fan := u.ExternalRef(hf.URI())

	burst := func() {
		for i := 0; i < 3; i++ {
			callInt(t, fan, "Spread", 1)
		}
	}
	burst()
	for i := 0; i < 4; i++ {
		epoch(t, clk, cfg.Adaptive.Window, burst)
	}
	if _, mc := assignmentFor(p, "Spread"); !mc {
		t.Fatal("Spread not multi-call promoted")
	}

	before := adaptiveSnap(p)
	p.ResetLogStats()
	const steady = 10
	for i := 0; i < steady; i++ {
		callInt(t, fan, "Spread", 1)
	}
	delta := adaptiveSnap(p).Diff(before)
	// Every outgoing call is a first call to a distinct server: all
	// three send forces per execution are elided.
	if v := delta.Counter(obs.AdaptiveElideMulti); v != 3*steady {
		t.Errorf("adaptive.elided.multicall = %d over %d calls, want %d", v, steady, 3*steady)
	}
	if v := delta.Counter(obs.ForceAtSend); v != 0 {
		t.Errorf("force.at_send = %d after multi-call promotion, want 0", v)
	}
}

// Fan calls three distinct servers per execution (Section 3.5's
// distinct-server pattern).
type Fan struct {
	A, B, C *Ref
	Total   int
}

func (f *Fan) Spread(d int) (int, error) {
	for _, r := range []*Ref{f.A, f.B, f.C} {
		res, err := r.Call("Add", d)
		if err != nil {
			return 0, err
		}
		f.Total = res[0].(int)
	}
	return f.Total, nil
}

// adaptivePromoted filters an assignment list to its non-default
// entries — the part a recovery must have mined durably from
// discipline-change records (post-restart traffic may add fresh
// baseline-state entries, which carry no durable information).
func adaptivePromoted(assigns []AdaptiveAssignment) []AdaptiveAssignment {
	var out []AdaptiveAssignment
	for _, a := range assigns {
		if a.Discipline != DiscBaseline.String() || a.MultiCall {
			out = append(out, a)
		}
	}
	return out
}

// adaptiveChain creates the relay -> counter pair on a fresh adaptive
// baseline process rooted at dir and returns the universe, clock,
// process, and the relay's external URI.
func adaptiveChain(t *testing.T, dir string, cfg Config) (*Universe, *disk.VirtualClock, *Process, *Ref) {
	t.Helper()
	u, clk := adaptiveUniverse(t, dir)
	_, p := startProc(t, u, "evo1", "srv", cfg)
	hc, err := p.Create("C", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := p.Create("R", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	return u, clk, p, u.ExternalRef(hr.URI())
}

// TestAdaptivePromotionBoundaryEquivalence crashes the promoting
// relay -> counter chain at the three spots that straddle a promotion:
// before any discipline-change record exists, immediately after the
// first change record is forced but before the controller's in-memory
// commit (PointAdaptiveAfterChangeLogged), and well after the
// promotion took effect. Each crashed log is recovered under eager and
// lazy modes on 1- and 4-shard layouts; every variant must agree on
// component state, the last-call table, and the promoted assignment
// set — and that set must be exactly what the durable log said at the
// crash point.
func TestAdaptivePromotionBoundaryEquivalence(t *testing.T) {
	type outcome struct {
		counter, relayCalls int
		lastCalls           []lastCallSaved
		promoted            []AdaptiveAssignment
	}

	recoverVariant := func(t *testing.T, srcDir string, mode RecoveryMode, shards int) outcome {
		t.Helper()
		dst := t.TempDir()
		copyDir(t, srcDir, dst)
		u, err := NewUniverse(UniverseConfig{Dir: dst})
		if err != nil {
			t.Fatal(err)
		}
		defer u.Shutdown()
		m, err := u.AddMachine("evo1")
		if err != nil {
			t.Fatal(err)
		}
		cfg := adaptiveConfig(LogBaseline)
		// A huge window freezes the epoch machine across recovery and
		// collection: the assignments we read are exactly what the log
		// mined, never what post-restart traffic re-decided.
		cfg.Adaptive.Window = time.Hour
		cfg.Recovery = Recovery{Mode: mode, Parallelism: 2, QueueDepth: 2}
		cfg.WAL.Shards = shards
		p, err := m.StartProcess("srv", cfg)
		if err != nil {
			t.Fatalf("%v/%d shards: restart: %v", mode, shards, err)
		}
		if !p.Recovered() {
			t.Fatalf("%v/%d shards: restarted process did not recover", mode, shards)
		}
		if mode == RecoveryLazy {
			// First-touch the counter mid-drain (Add 0 leaves its state
			// unchanged; external calls leave no last-call entries), then
			// await the background drain.
			h, ok := p.Lookup("C")
			if !ok {
				t.Fatalf("lazy/%d shards: C missing after Pass 1", shards)
			}
			callInt(t, u.ExternalRef(h.URI()), "Add", 0)
			if err := p.DrainRecovery(); err != nil {
				t.Fatalf("lazy/%d shards: drain: %v", shards, err)
			}
		}
		var out outcome
		hc, ok := p.Lookup("C")
		if !ok {
			t.Fatalf("%v/%d shards: C missing after recovery", mode, shards)
		}
		out.counter = hc.Object().(*Counter).N
		hr, ok := p.Lookup("R")
		if !ok {
			t.Fatalf("%v/%d shards: R missing after recovery", mode, shards)
		}
		out.relayCalls = hr.Object().(*Relay).Calls
		out.lastCalls = p.lastCalls.snapshot()
		sortLastCalls(out.lastCalls)
		out.promoted = adaptivePromoted(p.AdaptiveAssignments())
		return out
	}

	cases := []struct {
		name string
		// build drives the chain at dir to the named crash point and
		// leaves the crashed universe on disk.
		build func(t *testing.T, dir string)
		// wantPromoted lists the methods the durable log must say were
		// promoted at crash time (assignment order: counter before relay).
		wantPromoted []string
	}{
		{
			name: "before-change",
			build: func(t *testing.T, dir string) {
				cfg := adaptiveConfig(LogBaseline)
				u, clk, p, relay := adaptiveChain(t, dir, cfg)
				burst := func() {
					for i := 0; i < 4; i++ {
						callInt(t, relay, "Forward", 1)
					}
				}
				// Two finalized qualifying epochs: streaks at 2, one short
				// of PromoteAfter — no change record exists yet.
				burst()
				for i := 0; i < 2; i++ {
					epoch(t, clk, cfg.Adaptive.Window, burst)
				}
				p.Crash()
				u.Shutdown()
			},
			wantPromoted: nil,
		},
		{
			name: "on-change",
			build: func(t *testing.T, dir string) {
				cfg := adaptiveConfig(LogBaseline)
				inj := NewInjector().CrashAt(PointAdaptiveAfterChangeLogged, 1)
				cfg.Injector = inj
				u, clk, _, relay := adaptiveChain(t, dir, cfg)
				relay = relay.WithoutRetry()
				// The first call of the fourth epoch finalizes the third
				// qualifying one, reaching PromoteAfter: the injector
				// crashes the process right after the first change record
				// (the counter's — lower context ID) is appended and
				// forced, before the in-memory commit and before the
				// relay's change is logged at all.
				crashed := false
				for e := 0; e < 8 && !crashed; e++ {
					for i := 0; i < 4; i++ {
						if _, err := relay.Call("Forward", 1); err != nil {
							crashed = true
							break
						}
					}
					if !crashed {
						clk.Sleep(cfg.Adaptive.Window + time.Millisecond)
					}
				}
				if !crashed {
					t.Fatal("promotion-boundary injection never fired")
				}
				if n := inj.Fired(PointAdaptiveAfterChangeLogged); n != 1 {
					t.Fatalf("injection fired %d times, want 1", n)
				}
				u.Shutdown()
			},
			wantPromoted: []string{"Add"},
		},
		{
			name: "after-change",
			build: func(t *testing.T, dir string) {
				cfg := adaptiveConfig(LogBaseline)
				u, clk, p, relay := adaptiveChain(t, dir, cfg)
				burst := func() {
					for i := 0; i < 4; i++ {
						callInt(t, relay, "Forward", 1)
					}
				}
				burst()
				for i := 0; i < 5; i++ {
					epoch(t, clk, cfg.Adaptive.Window, burst)
				}
				// A few calls land under the promoted discipline (elided
				// internal message-1s) before the crash.
				burst()
				p.Crash()
				u.Shutdown()
			},
			wantPromoted: []string{"Add", "Forward"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.build(t, dir)

			base := recoverVariant(t, dir, RecoveryEager, 1)
			var methods []string
			for _, a := range base.promoted {
				methods = append(methods, a.Method)
				if a.Discipline != "algo2" {
					t.Errorf("recovered %s assigned %q, want algo2", a.Method, a.Discipline)
				}
			}
			if !reflect.DeepEqual(methods, tc.wantPromoted) {
				t.Fatalf("eager baseline recovered promotions %v, want %v", methods, tc.wantPromoted)
			}

			for _, v := range []struct {
				mode   RecoveryMode
				shards int
			}{
				{RecoveryEager, 4},
				{RecoveryLazy, 1},
				{RecoveryLazy, 4},
			} {
				got := recoverVariant(t, dir, v.mode, v.shards)
				if got.counter != base.counter {
					t.Errorf("%v/%d shards: counter = %d, eager/1 recovered %d",
						v.mode, v.shards, got.counter, base.counter)
				}
				if got.relayCalls != base.relayCalls {
					t.Errorf("%v/%d shards: relay calls = %d, eager/1 recovered %d",
						v.mode, v.shards, got.relayCalls, base.relayCalls)
				}
				if !reflect.DeepEqual(got.lastCalls, base.lastCalls) {
					t.Errorf("%v/%d shards: last-call table diverged from eager/1",
						v.mode, v.shards)
				}
				if !reflect.DeepEqual(got.promoted, base.promoted) {
					t.Errorf("%v/%d shards: promoted assignments %v, eager/1 recovered %v",
						v.mode, v.shards, got.promoted, base.promoted)
				}
			}
		})
	}
}
