package core

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/rpc"
)

// Allocation-regression gates for the paper's Figure-1 hot path: the
// point of this PR's codec work is that the per-call software overhead
// (envelope encode/decode, record construction, WAL framing) stays
// gone. The baselines below were measured at the pre-binary-codec
// commit (gob envelopes, allocating WAL framing) on go1.x/linux; the
// gates assert the ≥50% reduction the optimization claims, with
// headroom so toolchain drift does not flake.

// AllocBatcher drives n persistent↔persistent calls per envelope call,
// so the inner-call allocation cost can be isolated from the external
// envelope (the same subtraction the bench harness uses for Table 4).
type AllocBatcher struct {
	Server *Ref
	Sum    int
}

func (b *AllocBatcher) RunBatch(n int) (int, error) {
	for i := 0; i < n; i++ {
		res, err := b.Server.Call("Add", 1)
		if err != nil {
			return 0, err
		}
		b.Sum += res[0].(int)
	}
	return b.Sum, nil
}

// measureCallPathAllocs returns the average heap allocations of one
// persistent↔persistent call (Table 4 optimized row: client and server
// both persistent, optimized logging), envelope cost subtracted.
func measureCallPathAllocs(t *testing.T) float64 {
	return measureCallPathAllocsIn(t, newTestUniverse(t))
}

// measureCallPathAllocsIn is measureCallPathAllocs against a universe
// under the caller's control — the traced gate passes one with a
// flight recorder wired in.
func measureCallPathAllocsIn(t *testing.T, u *Universe) float64 {
	t.Helper()
	_, ps := startProc(t, u, "evo2", "srv", testConfig())
	defer ps.Close()
	_, pc := startProc(t, u, "evo1", "cli", testConfig())
	defer pc.Close()
	hs, err := ps.Create("Server", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pc.Create("Batcher", &AllocBatcher{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hb.URI())
	drive := func(n int) {
		if _, err := ref.Call("RunBatch", n); err != nil {
			t.Fatal(err)
		}
	}
	drive(1) // warm up: learn server types, prime pools

	const batch = 100
	envelope := testing.AllocsPerRun(3, func() { drive(0) })
	withCalls := testing.AllocsPerRun(3, func() { drive(batch) })
	per := (withCalls - envelope) / batch
	if per < 0 {
		per = 0
	}
	return per
}

// measureWALPathAllocs returns the allocations of one appendRec on the
// incoming-call record path (encode + WAL framing), the log half of
// the per-call cost.
func measureWALPathAllocs(t *testing.T) float64 {
	t.Helper()
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	args, n, err := rpc.EncodeArgs(7)
	if err != nil {
		t.Fatal(err)
	}
	rec := &incomingRec{
		Ctx: 1,
		Call: msg.Call{
			ID:         ids.CallID{Caller: ids.ComponentAddr{Machine: "evo1", Proc: 1, Comp: 2}, Seq: 9},
			Target:     ids.MakeURI("evo1", "srv", "Server"),
			Method:     "Add",
			Args:       args,
			NumArgs:    n,
			CallerType: msg.Persistent,
			CallerURI:  ids.MakeURI("evo1", "cli", "Batcher"),
		},
	}
	if _, err := p.appendRec(recIncoming, rec.Ctx, rec); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(200, func() {
		if _, err := p.appendRec(recIncoming, rec.Ctx, rec); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocsCallPath(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow under -short")
	}
	// Pre-PR baseline (gob envelope + allocating WAL framing):
	// ~947 allocs per persistent↔persistent optimized call.
	const prePR = 947.0
	got := measureCallPathAllocs(t)
	t.Logf("persistent↔persistent call path: %.1f allocs/call (pre-PR %.1f)", got, prePR)
	if got > prePR/2 {
		t.Errorf("call path allocates %.1f/call; gate is ≤ %.1f (50%% of pre-PR %.1f)",
			got, prePR/2, prePR)
	}
}

// TestAllocsTracedCallPath gates the tracing tentpole's allocation
// budget: with a flight recorder wired into the universe, the same
// persistent↔persistent call path must stay within +2 allocs/call of
// the untraced baseline. Span recording itself is wait-free and
// alloc-free (trace's TestRecordZeroAllocs); the +2 headroom covers
// envelope-level trace minting and toolchain drift.
func TestAllocsTracedCallPath(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow under -short")
	}
	base := measureCallPathAllocs(t)
	u, _ := newTracedUniverse(t)
	traced := measureCallPathAllocsIn(t, u)
	t.Logf("call path: %.1f allocs/call untraced, %.1f traced", base, traced)
	if traced > base+2 {
		t.Errorf("tracing costs %.1f allocs/call (untraced %.1f, traced %.1f); gate is ≤ +2",
			traced-base, base, traced)
	}
}

func TestAllocsAppendRec(t *testing.T) {
	// Pre-PR baseline: ~27 allocs per incoming-record append (gob
	// encoder + buffer + WAL frame + crc copy).
	const prePR = 27.0
	got := measureWALPathAllocs(t)
	t.Logf("appendRec(incoming): %.1f allocs/record (pre-PR %.1f)", got, prePR)
	if got > prePR/2 {
		t.Errorf("appendRec allocates %.1f/record; gate is ≤ %.1f (50%% of pre-PR %.1f)",
			got, prePR/2, prePR)
	}
}
