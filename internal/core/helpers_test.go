package core

import "repro/internal/rpc"

// encodeArgsHelper lets white-box tests build wire calls.
func encodeArgsHelper(args ...any) ([]byte, int, error) {
	return rpc.EncodeArgs(args...)
}
