package core

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
)

// Test components.

// Counter is a persistent server: its whole state is one exported int.
type Counter struct {
	N int
}

func (c *Counter) Add(d int) (int, error) { c.N += d; return c.N, nil }
func (c *Counter) Get() (int, error)      { return c.N, nil }

// Relay is a persistent middle component: it forwards to a server and
// counts its own calls, exercising the persistent→persistent path.
type Relay struct {
	Server *Ref
	Calls  int
}

func (r *Relay) Forward(d int) (int, error) {
	r.Calls++
	res, err := r.Server.Call("Add", d)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// Pure is a functional component: stateless, no outgoing calls.
type Pure struct{}

func (Pure) Double(x int) (int, error) { return 2 * x, nil }

// Prober is a read-only component: stateless but reads a persistent
// server.
type Prober struct {
	Server *Ref
}

func (p *Prober) Probe() (int, error) {
	res, err := p.Server.Call("Get")
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

func testConfig() Config {
	return Config{
		LogMode:          LogOptimized,
		SpecializedTypes: true,
		RetryInterval:    2 * time.Millisecond,
		RetryLimit:       50,
	}
}

func newTestUniverse(t *testing.T) *Universe {
	t.Helper()
	u, err := NewUniverse(UniverseConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func startProc(t *testing.T, u *Universe, machine, proc string, cfg Config) (*Machine, *Process) {
	t.Helper()
	m, err := u.AddMachine(machine)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess(proc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func callInt(t *testing.T, ref *Ref, method string, args ...any) int {
	t.Helper()
	res, err := ref.Call(method, args...)
	if err != nil {
		t.Fatalf("%s failed: %v", method, err)
	}
	if len(res) != 1 {
		t.Fatalf("%s: want 1 result, got %v", method, res)
	}
	n, ok := res[0].(int)
	if !ok {
		t.Fatalf("%s: result is %T, want int", method, res[0])
	}
	return n
}

func TestExternalCallRoundTrip(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for want := 1; want <= 3; want++ {
		if got := callInt(t, ref, "Add", 1); got != want {
			t.Errorf("Add -> %d, want %d", got, want)
		}
	}
	if got := callInt(t, ref, "Get"); got != 3 {
		t.Errorf("Get -> %d, want 3", got)
	}
}

func TestExternalToPersistentForcesTwicePerCall(t *testing.T) {
	// Algorithm 3: message 1 long record + force, message 2 short
	// record + force → 2 forces per call, in both modes (Table 4:
	// External→Persistent identical for baseline and optimized).
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		u := newTestUniverse(t)
		cfg := testConfig()
		cfg.LogMode = mode
		_, p := startProc(t, u, "evo1", "srv", cfg)
		h, err := p.Create("Counter", &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		ref := u.ExternalRef(h.URI())
		p.ResetLogStats()
		const calls = 5
		for i := 0; i < calls; i++ {
			callInt(t, ref, "Add", 1)
		}
		if got := p.LogStats().Forces; got != 2*calls {
			t.Errorf("%v: forces = %d, want %d", mode, got, 2*calls)
		}
		p.Close()
	}
}

func TestPersistentToPersistentForceCounts(t *testing.T) {
	// The heart of Table 4: baseline logs and forces four messages at
	// the client-side persistent component and two at the server;
	// optimized halves the client (the two receive messages are not
	// forced and the two sends are not even written) and leaves one
	// force at the server.
	cases := []struct {
		mode                      LogMode
		relayForces, serverForces int64
	}{
		// Relay (persistent, serving an external client): msg1-in
		// force + msg3 force + msg4 force + msg2-out force = 4.
		// Counter: msg1 force + msg2 force = 2.
		{LogBaseline, 4, 2},
		// Relay: msg1-in logged+forced (external client); the msg3
		// force is then free — nothing new is buffered (this is the
		// force-combining Section 3.1.1 highlights); msg4 logged
		// unforced; msg2-out short record + force = 2 physical forces.
		// Counter: msg1 unforced, force at msg2 = 1.
		{LogOptimized, 2, 1},
	}
	for _, tc := range cases {
		u := newTestUniverse(t)
		cfg := testConfig()
		cfg.LogMode = tc.mode
		_, pa := startProc(t, u, "evo1", "cli", cfg)
		_, pb := startProc(t, u, "evo2", "srv", cfg)
		hc, err := pb.Create("Counter", &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		hr, err := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
		if err != nil {
			t.Fatal(err)
		}
		ref := u.ExternalRef(hr.URI())
		pa.ResetLogStats()
		pb.ResetLogStats()
		const calls = 4
		for i := 1; i <= calls; i++ {
			if got := callInt(t, ref, "Forward", 1); got != i {
				t.Errorf("%v: Forward -> %d, want %d", tc.mode, got, i)
			}
		}
		if got := pa.LogStats().Forces; got != tc.relayForces*calls {
			t.Errorf("%v: relay forces = %d, want %d", tc.mode, got, tc.relayForces*calls)
		}
		if got := pb.LogStats().Forces; got != tc.serverForces*calls {
			t.Errorf("%v: server forces = %d, want %d", tc.mode, got, tc.serverForces*calls)
		}
		pa.Close()
		pb.Close()
	}
}

func TestCrashRecoveryRestoresState(t *testing.T) {
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		u := newTestUniverse(t)
		cfg := testConfig()
		cfg.LogMode = mode
		m, p := startProc(t, u, "evo1", "srv", cfg)
		h, err := p.Create("Counter", &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		uri := h.URI()
		ref := u.ExternalRef(uri)
		for i := 0; i < 7; i++ {
			callInt(t, ref, "Add", 2)
		}
		p.Crash()

		p2, err := m.StartProcess("srv", cfg)
		if err != nil {
			t.Fatalf("%v: restart: %v", mode, err)
		}
		if !p2.Recovered() {
			t.Errorf("%v: restarted process did not recover", mode)
		}
		if got := callInt(t, ref, "Get"); got != 14 {
			t.Errorf("%v: recovered counter = %d, want 14", mode, got)
		}
		// The recovered component keeps working and its identity is
		// intact.
		if got := callInt(t, ref, "Add", 1); got != 15 {
			t.Errorf("%v: post-recovery Add -> %d, want 15", mode, got)
		}
		p2.Close()
	}
}

func TestRecoveryRestoresRefFields(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	ma, pa := startProc(t, u, "evo1", "cli", cfg)
	_, pb := startProc(t, u, "evo2", "srv", cfg)
	defer pb.Close()
	hc, err := pb.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hr.URI())
	callInt(t, ref, "Forward", 5)
	pa.Crash()

	pa2, err := ma.StartProcess("cli", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pa2.Close()
	// The relay's Server ref was restored from the creation record and
	// must be live again.
	if got := callInt(t, ref, "Forward", 5); got != 10 {
		t.Errorf("Forward after relay recovery -> %d, want 10", got)
	}
	h2, ok := pa2.Lookup("Relay")
	if !ok {
		t.Fatal("Relay not found after recovery")
	}
	relay := h2.Object().(*Relay)
	if relay.Calls != 2 {
		t.Errorf("relay.Calls = %d, want 2 (one replayed + one live)", relay.Calls)
	}
}

func TestDuplicateCallAnsweredFromLastCallTable(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	counter := h.Object().(*Counter)

	caller := ids.ComponentAddr{Machine: "evo9", Proc: 1, Comp: 1}
	mkCall := func(seq uint64) *msg.Call {
		args, n, _ := encodeTestArgs(t, 3)
		return &msg.Call{
			ID:         ids.CallID{Caller: caller, Seq: seq},
			Target:     h.URI(),
			Method:     "Add",
			Args:       args,
			NumArgs:    n,
			CallerType: msg.Persistent,
		}
	}
	r1 := p.serveCall(mkCall(1))
	if r1.Fault != "" || r1.AppErr != "" {
		t.Fatalf("first call failed: %+v", r1)
	}
	if counter.N != 3 {
		t.Fatalf("counter = %d after first call", counter.N)
	}
	// Duplicate (client retry after losing the reply): same ID.
	r2 := p.serveCall(mkCall(1))
	if r2.Fault != "" {
		t.Fatalf("duplicate call faulted: %+v", r2)
	}
	if counter.N != 3 {
		t.Errorf("duplicate re-executed: counter = %d, want 3", counter.N)
	}
	if string(r2.Results) != string(r1.Results) {
		t.Error("duplicate reply differs from original")
	}
	// A stale (older) call is rejected.
	r3 := p.serveCall(mkCall(0))
	if r3.Fault == "" {
		t.Error("stale call was accepted")
	}
	// A new call proceeds.
	r4 := p.serveCall(mkCall(2))
	if r4.Fault != "" || counter.N != 6 {
		t.Errorf("next call: fault=%q counter=%d", r4.Fault, counter.N)
	}
}

func encodeTestArgs(t *testing.T, args ...any) ([]byte, int, error) {
	t.Helper()
	data, n, err := encodeArgsHelper(args...)
	if err != nil {
		t.Fatal(err)
	}
	return data, n, nil
}
