package core

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/wal"
)

// Binary payload codec for the per-call log records. The five record
// kinds written on the Figure-1 hot paths — incoming, reply-sent,
// reply-content, outgoing, outgoing-reply — are appended once per
// message, so their payloads use the hand-rolled binary format of
// internal/msg instead of gob (a fresh gob stream per record re-emits
// type descriptors every time). Cold records — creation, context
// state, checkpoint dumps — stay gob: they are rare, nested, and not
// worth a hand-maintained schema.
//
// Format (DESIGN.md Section 10): 0xC3, kind byte (the wal.RecordType,
// doubling as a schema check against the frame's type), then the
// per-kind fields in the order of the struct definitions in
// records.go, encoded with the msg codec primitives (uvarints,
// length-prefixed bytes). Embedded Call/Reply bodies use the bare
// envelope bodies (msg.AppendCall / msg.AppendReply — no 0xC1/0xC2).
//
// Traced records (PR 6) are framed 0xC4, kind byte, uvarint TraceID,
// uvarint SpanID, then the identical 0xC3 tail. The encoder emits 0xC4
// only for a nonzero record trace, so untraced logs stay bit-for-bit
// in the PR-5 format; since the bare Call/Reply bodies never carry the
// trace, the record header is the only durable home of a record's
// causal identity, and the decoder restores it into both the record's
// Trace field and its embedded message.
//
// 0xC3 and 0xC4 live in the 0x80..0xF7 range no gob stream can start
// with, so decodeRec falls back to gob on any other first byte and
// logs written before this codec replay unchanged (the mixed-format
// recovery test proves it).

// recBinVer is the version byte opening a binary record payload;
// recBinVerTraced opens one carrying a causal-trace header.
const (
	recBinVer       = 0xC3
	recBinVerTraced = 0xC4
)

// legacyRecEncoding is a test hook: when true, appendRecInto writes
// every record payload in the legacy gob format, so tests can produce
// old-format logs with the current runtime and prove mixed-format
// recovery.
var legacyRecEncoding = false

// recCodecMetrics counts record-payload codec activity on the default
// registry (the per-process registries track record kinds; the codec
// split is global).
var recCodecMetrics = obs.CodecView(obs.Default())

// appendRecInto appends the encoded payload of v (a record struct
// pointer, as passed to appendRec) for record type t onto dst. Hot
// record kinds get the binary format; anything else falls back to gob.
func appendRecInto(dst []byte, t wal.RecordType, v any) ([]byte, error) {
	if !legacyRecEncoding {
		switch r := v.(type) {
		case *incomingRec:
			dst = appendRecHeader(dst, t, r.Trace)
			dst = msg.AppendUvarint(dst, uint64(r.Ctx))
			return msg.AppendCall(dst, &r.Call), nil
		case *replySentRec:
			dst = appendRecHeader(dst, t, r.Trace)
			dst = msg.AppendUvarint(dst, uint64(r.Ctx))
			return appendCallID(dst, r.CallID), nil
		case *replyContentRec:
			dst = appendRecHeader(dst, t, r.Trace)
			dst = msg.AppendUvarint(dst, uint64(r.Ctx))
			dst = appendCallID(dst, r.CallID)
			return msg.AppendReply(dst, &r.Reply), nil
		case *outgoingRec:
			dst = appendRecHeader(dst, t, r.Trace)
			dst = msg.AppendUvarint(dst, uint64(r.Ctx))
			return msg.AppendCall(dst, &r.Call), nil
		case *outgoingReplyRec:
			dst = appendRecHeader(dst, t, r.Trace)
			dst = msg.AppendUvarint(dst, uint64(r.Ctx))
			dst = msg.AppendUvarint(dst, r.Seq)
			return msg.AppendReply(dst, &r.Reply), nil
		}
	}
	b, err := encodeRec(v)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// appendRecHeader opens a binary record payload: the untraced 0xC3
// header for a zero trace (keeping untraced logs bit-for-bit PR-5),
// the 0xC4 header with the trace identity otherwise.
func appendRecHeader(dst []byte, t wal.RecordType, tr trace.Ref) []byte {
	if tr.IsZero() {
		return append(dst, recBinVer, byte(t))
	}
	dst = append(dst, recBinVerTraced, byte(t))
	dst = msg.AppendUvarint(dst, tr.Trace)
	return msg.AppendUvarint(dst, tr.Span)
}

func appendCallID(dst []byte, id ids.CallID) []byte {
	dst = msg.AppendString(dst, id.Caller.Machine)
	dst = msg.AppendUvarint(dst, uint64(id.Caller.Proc))
	dst = msg.AppendUvarint(dst, uint64(id.Caller.Comp))
	return msg.AppendUvarint(dst, id.Seq)
}

func consumeCallID(data []byte, id *ids.CallID) ([]byte, error) {
	var err error
	var u uint64
	if id.Caller.Machine, data, err = msg.ConsumeString(data); err != nil {
		return nil, err
	}
	if u, data, err = msg.ConsumeUvarint(data); err != nil {
		return nil, err
	}
	id.Caller.Proc = ids.ProcID(u)
	if u, data, err = msg.ConsumeUvarint(data); err != nil {
		return nil, err
	}
	id.Caller.Comp = ids.CompID(u)
	id.Seq, data, err = msg.ConsumeUvarint(data)
	return data, err
}

// decodeRecBinary decodes a 0xC3 or 0xC4 payload into v, verifying the
// kind byte matches the record struct the caller expects (the frame
// type routed the caller here, so a mismatch means a corrupt or
// mislabeled record, not a version issue). A 0xC4 header's trace is
// restored into both the record's Trace field and its embedded
// Call/Reply, whose bare bodies never carry it.
func decodeRecBinary(data []byte, v any) error {
	kind := wal.RecordType(data[1])
	body := data[2:]
	var tr trace.Ref
	var u uint64
	var err error
	if data[0] == recBinVerTraced {
		if tr.Trace, body, err = msg.ConsumeUvarint(body); err != nil {
			return fmt.Errorf("core: decode %T trace: %w", v, err)
		}
		if tr.Span, body, err = msg.ConsumeUvarint(body); err != nil {
			return fmt.Errorf("core: decode %T trace: %w", v, err)
		}
	}
	if u, body, err = msg.ConsumeUvarint(body); err != nil {
		return fmt.Errorf("core: decode %T: %w", v, err)
	}
	ctx := ids.CompID(u)
	want := wal.RecordType(0)
	switch r := v.(type) {
	case *incomingRec:
		want = recIncoming
		r.Ctx = ctx
		r.Trace = tr
		body, err = msg.ConsumeCall(body, &r.Call)
		r.Call.Trace = tr
	case *replySentRec:
		want = recReplySent
		r.Ctx = ctx
		r.Trace = tr
		body, err = consumeCallID(body, &r.CallID)
	case *replyContentRec:
		want = recReplyContent
		r.Ctx = ctx
		r.Trace = tr
		if body, err = consumeCallID(body, &r.CallID); err == nil {
			body, err = msg.ConsumeReply(body, &r.Reply)
		}
		r.Reply.Trace = tr
	case *outgoingRec:
		want = recOutgoing
		r.Ctx = ctx
		r.Trace = tr
		body, err = msg.ConsumeCall(body, &r.Call)
		r.Call.Trace = tr
	case *outgoingReplyRec:
		want = recOutgoingReply
		r.Ctx = ctx
		r.Trace = tr
		if r.Seq, body, err = msg.ConsumeUvarint(body); err == nil {
			body, err = msg.ConsumeReply(body, &r.Reply)
		}
		r.Reply.Trace = tr
	default:
		return fmt.Errorf("core: decode %T: binary payload for a gob-only record", v)
	}
	if err != nil {
		return fmt.Errorf("core: decode %T: %w", v, err)
	}
	if kind != want {
		return fmt.Errorf("core: decode %T: payload kind %s, want %s", v, recName(kind), recName(want))
	}
	if len(body) != 0 {
		return fmt.Errorf("core: decode %T: %d trailing bytes", v, len(body))
	}
	return nil
}

// hotRecord reports whether v is one of the record kinds the binary
// codec covers (used to classify gob payloads as legacy).
func hotRecord(v any) bool {
	switch v.(type) {
	case *incomingRec, *replySentRec, *replyContentRec, *outgoingRec, *outgoingReplyRec:
		return true
	}
	return false
}

// The hot record types implement wal.PayloadEncoder directly, so
// appendRec hands the log an interface value that already exists (the
// record pointer) instead of wrapping a fresh closure per append —
// the assertion is what keeps the per-call append path at zero
// allocations. Each delegates to appendRecInto, so the legacy-format
// test hook and the gob fallback apply unchanged.

// AppendPayload implements wal.PayloadEncoder.
func (r *incomingRec) AppendPayload(dst []byte) ([]byte, error) {
	return appendRecInto(dst, recIncoming, r)
}

// AppendPayload implements wal.PayloadEncoder.
func (r *replySentRec) AppendPayload(dst []byte) ([]byte, error) {
	return appendRecInto(dst, recReplySent, r)
}

// AppendPayload implements wal.PayloadEncoder.
func (r *replyContentRec) AppendPayload(dst []byte) ([]byte, error) {
	return appendRecInto(dst, recReplyContent, r)
}

// AppendPayload implements wal.PayloadEncoder.
func (r *outgoingRec) AppendPayload(dst []byte) ([]byte, error) {
	return appendRecInto(dst, recOutgoing, r)
}

// AppendPayload implements wal.PayloadEncoder.
func (r *outgoingReplyRec) AppendPayload(dst []byte) ([]byte, error) {
	return appendRecInto(dst, recOutgoingReply, r)
}
