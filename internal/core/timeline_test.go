package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// newTracedUniverse is newTestUniverse with a flight recorder wired
// into the universe config: every process inherits it, and its clock is
// the universe clock so span timestamps are in universe time.
func newTracedUniverse(t *testing.T) (*Universe, *trace.Recorder) {
	t.Helper()
	clk := disk.NewRealClock(1)
	rec := trace.NewRecorder(trace.Options{
		Name:    t.Name(),
		Metrics: obs.NewRegistry(),
		Now:     func() int64 { return clk.Now().UnixNano() },
	})
	u, err := NewUniverse(UniverseConfig{Dir: t.TempDir(), Clock: clk, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	return u, rec
}

// TestCrashCrossingTimeline is the tentpole's acceptance test: one
// external call crosses a server crash, and the merged timeline shows
// the call's pre-crash stages (from the flight-recorder dump the crash
// wrote) and the post-restart Pass-2 replay (same TraceID, same LSN)
// as one trace.
func TestCrashCrossingTimeline(t *testing.T) {
	u, rec := newTracedUniverse(t)
	cfg := testConfig()

	inj := NewInjector().CrashAt(PointServerBeforeSendReply, 1)
	crashCfg := cfg
	crashCfg.Injector = inj

	_, pCli := startProc(t, u, "evo1", "cli", cfg)
	mSrv, _ := startProc(t, u, "evo2", "srv", crashCfg)
	mSrv.EnableAutoRestart(cfg, 3*time.Millisecond)
	pSrv, _ := mSrv.Process("srv")

	hs, err := pSrv.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pCli.Create("Relay", &Relay{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}

	// The server logs and forces both messages of the Add call, then
	// crashes before the reply leaves; the relay's condition-4 retry
	// redrives it into the recovered process, which answers from the
	// last-call table. Exactly-once end to end.
	ref := u.ExternalRef(hr.URI())
	if got := callInt(t, ref, "Forward", 1); got != 1 {
		t.Fatalf("Forward -> %d, want 1", got)
	}
	if n := inj.Fired(PointServerBeforeSendReply); n != 1 {
		t.Fatalf("injection fired %d times, want 1", n)
	}
	if got := callInt(t, u.ExternalRef(hs.URI()), "Get"); got != 1 {
		t.Fatalf("counter = %d, want exactly 1", got)
	}

	// The crash must have dumped the ring next to the server's log.
	crashDump := filepath.Join(u.cfg.Dir, "evo2", "srv.ftr.0")
	preSpans, err := trace.LoadDump(crashDump)
	if err != nil {
		t.Fatalf("crash dump %s: %v", crashDump, err)
	}
	if len(preSpans) == 0 {
		t.Fatal("crash dump holds no spans")
	}

	// Live processes don't auto-dump; snapshot the recorder (which now
	// also holds the recovery and replay spans) the way an operator
	// would before running phoenix-trace.
	postDump := filepath.Join(u.cfg.Dir, "post.ftr.0")
	if err := trace.WriteDump(postDump, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// Release the logs before scanning them offline.
	pCli.Close()
	if p, ok := mSrv.Process("srv"); ok {
		p.Close()
	}

	logs, dumps, err := DiscoverTraceFiles(u.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) < 2 {
		t.Fatalf("discovered logs %v, want the cli and srv logs", logs)
	}
	if len(dumps) < 2 {
		t.Fatalf("discovered dumps %v, want the crash dump and the live snapshot", dumps)
	}
	tls, err := TraceTimelines(logs, dumps)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one trace crossed the crash: it holds a replay span.
	var crossing *Timeline
	for i := range tls {
		for _, e := range tls[i].Events {
			if e.Stage == "replay" {
				if crossing != nil && crossing.Trace != tls[i].Trace {
					t.Fatalf("replay spans in two traces: %x and %x", crossing.Trace, tls[i].Trace)
				}
				crossing = &tls[i]
			}
		}
	}
	if crossing == nil {
		t.Fatal("no timeline holds a replay span; recovery did not stitch to the original trace")
	}

	// The crossing trace must hold the pre-crash server stages sourced
	// from the crash dump, the incoming record from the log scan, and a
	// replay span at that record's LSN.
	var (
		preStages  = map[string]bool{}
		replayLSN  uint64
		appendLSNs = map[uint64]bool{}
		incLSNs    = map[uint64]bool{}
	)
	for _, e := range crossing.Events {
		if e.Kind == "span" && strings.HasPrefix(e.Source, "srv.ftr.") {
			preStages[e.Stage] = true
			if e.Stage == "wal_append" {
				appendLSNs[e.LSN] = true
			}
		}
		if e.Kind == "span" && e.Stage == "replay" {
			replayLSN = e.LSN
		}
		if e.Kind == "record" && e.Rec == "incoming" && e.Proc == "srv" {
			incLSNs[e.LSN] = true
		}
	}
	for _, want := range []string{"server_intercept", "wal_append", "sync_wait", "execute"} {
		if !preStages[want] {
			t.Errorf("crash dump is missing pre-crash stage %q (have %v)", want, preStages)
		}
	}
	if replayLSN == 0 {
		t.Fatal("replay span has no LSN")
	}
	if !appendLSNs[replayLSN] {
		t.Errorf("replay LSN %d not among pre-crash wal_append LSNs %v", replayLSN, appendLSNs)
	}
	if !incLSNs[replayLSN] {
		t.Errorf("replay LSN %d not among srv incoming-record LSNs %v", replayLSN, incLSNs)
	}

	// The same trace spans the client side too — one causal timeline
	// from interception to resume.
	stages := map[string]bool{}
	for _, e := range crossing.Events {
		if e.Kind == "span" {
			stages[e.Stage] = true
		}
	}
	for _, want := range []string{"client_intercept", "transport", "client_resume"} {
		if !stages[want] {
			t.Errorf("crossing trace is missing client stage %q (have %v)", want, stages)
		}
	}

	// And the text renderer shows the stitched story.
	var buf bytes.Buffer
	WriteTimelines(&buf, []Timeline{*crossing})
	out := buf.String()
	for _, want := range []string{"trace ", "replay", "server_intercept", "rec  incoming"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline is missing %q:\n%s", want, out)
		}
	}
}

// TestParallelRecoveryQueueWaitSpans: with the partitioned Pass-2
// engine, a traced record's time in its context queue is recorded as a
// replay_queue_wait span on the record's own trace.
func TestParallelRecoveryQueueWaitSpans(t *testing.T) {
	u, rec := newTracedUniverse(t)
	cfg := testConfig()
	cfg.Recovery = Recovery{Parallelism: 2}

	_, pCli := startProc(t, u, "evo1", "cli", cfg)
	mSrv, pSrv := startProc(t, u, "evo2", "srv", cfg)

	hs, err := pSrv.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pCli.Create("Relay", &Relay{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hr.URI())
	for i := 0; i < 3; i++ {
		callInt(t, ref, "Forward", 1)
	}

	pSrv.Crash()
	if _, err := mSrv.StartProcess("srv", cfg); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, u.ExternalRef(hs.URI()), "Get"); got != 3 {
		t.Fatalf("counter = %d after recovery, want 3", got)
	}

	waits := 0
	for _, sp := range rec.Snapshot() {
		if sp.Stage == trace.StageReplayQueueWait {
			waits++
			if sp.LSN == 0 {
				t.Error("replay_queue_wait span has no LSN")
			}
		}
	}
	if waits == 0 {
		t.Error("parallel recovery recorded no replay_queue_wait spans")
	}
}
