package core

import (
	"fmt"
	"testing"
	"time"
)

// Driver is the persistent top tier: the external world calls it once,
// it calls the (crashing) relay with condition-4 retries and duplicate
// protection, so end-to-end exactly-once is observable.
type Driver struct {
	Relay *Ref
}

func (d *Driver) Go(n int) (int, error) {
	res, err := d.Relay.Call("Forward", n)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// exactlyOnceHarness: external → Driver(p1) → Relay(p2) → Counter(p3).
// The injector crashes p2 (or p3) at a chosen point; auto-restart
// brings it back; the drive must complete with the counter incremented
// exactly once.
func runExactlyOnce(t *testing.T, mode LogMode, point InjectionPoint, crashCounter bool) {
	t.Helper()
	runExactlyOnceCfg(t, Config{
		LogMode:          mode,
		SpecializedTypes: true,
		RetryInterval:    2 * time.Millisecond,
		RetryLimit:       2000,
	}, point, crashCounter)
}

// runExactlyOnceCfg is the harness with the base process Config under
// the caller's control (group-commit tests reuse it with batching on).
func runExactlyOnceCfg(t *testing.T, base Config, point InjectionPoint, crashCounter bool) {
	t.Helper()
	u := newTestUniverse(t)
	mode := base.LogMode

	inj := NewInjector().CrashAt(point, 1)
	crashCfg := base
	crashCfg.Injector = inj

	relayCfg, counterCfg := base, base
	if crashCounter {
		counterCfg = crashCfg
	} else {
		relayCfg = crashCfg
	}

	mDrv, pDrv := startProc(t, u, "evo1", "drv", base)
	mRel, pRel := startProc(t, u, "evo2", "rel", relayCfg)
	mCnt, pCnt := startProc(t, u, "evo3", "cnt", counterCfg)
	_ = mDrv
	mRel.EnableAutoRestart(relayCfg, 3*time.Millisecond)
	mCnt.EnableAutoRestart(counterCfg, 3*time.Millisecond)

	hc, err := pCnt.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pRel.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := pDrv.Create("Driver", &Driver{Relay: NewRef(hr.URI())})
	if err != nil {
		t.Fatal(err)
	}

	ref := u.ExternalRef(hd.URI())
	got := callInt(t, ref, "Go", 1)
	if got != 1 {
		t.Errorf("%v/%v: Go -> %d, want 1", mode, point, got)
	}
	if n := inj.Fired(point); n != 1 {
		t.Fatalf("%v/%v: injection fired %d times, want 1", mode, point, n)
	}

	// Read the counter through the recovered process.
	mach, _ := u.Machine("evo3")
	pc, ok := mach.Process("cnt")
	if !ok {
		t.Fatal("counter process missing")
	}
	h2, ok := pc.Lookup("Counter")
	if !ok {
		t.Fatal("Counter missing after recovery")
	}
	final := u.ExternalRef(h2.URI())
	if n := callInt(t, final, "Get"); n != 1 {
		t.Errorf("%v/%v: counter = %d, want exactly 1", mode, point, n)
	}
	pDrv.Close()
	if p, ok := mRel.Process("rel"); ok {
		p.Close()
	}
	if p, ok := mCnt.Process("cnt"); ok {
		p.Close()
	}
}

func TestExactlyOnceThroughRelayCrashes(t *testing.T) {
	// Figure 2's failure points at the middle component, both modes.
	points := []InjectionPoint{
		PointServerBeforeLogIncoming, // before message 1 is logged
		PointServerAfterLogIncoming,  // after message 1, before execution
		PointClientBeforeForceSend,   // before message 3's force
		PointClientAfterForceSend,    // forced, but message 3 unsent
		PointClientAfterReply,        // message 4 received
		PointServerAfterExecute,      // before message 2 logging
		PointServerBeforeSendReply,   // message 2 logged, unsent
	}
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		for _, pt := range points {
			t.Run(fmt.Sprintf("%v/%v", mode, pt), func(t *testing.T) {
				runExactlyOnce(t, mode, pt, false)
			})
		}
	}
}

func TestExactlyOnceThroughServerCrashes(t *testing.T) {
	points := []InjectionPoint{
		PointServerBeforeLogIncoming,
		PointServerAfterLogIncoming,
		PointServerAfterExecute,
		PointServerBeforeSendReply,
	}
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		for _, pt := range points {
			t.Run(fmt.Sprintf("%v/%v", mode, pt), func(t *testing.T) {
				runExactlyOnce(t, mode, pt, true)
			})
		}
	}
}

func TestBaselineClientForceReplyPoint(t *testing.T) {
	// PointClientBeforeForceReply only exists on the baseline path
	// (optimized logging does not force message 4).
	runExactlyOnce(t, LogBaseline, PointClientBeforeForceReply, false)
}

func TestRetryUntilServerComesBack(t *testing.T) {
	// Condition 4 without injection: the server is crashed manually,
	// the client's in-flight call retries until a manual restart.
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.RetryLimit = 2000
	_, pc := startProc(t, u, "evo1", "cli", cfg)
	ms, ps := startProc(t, u, "evo2", "srv", cfg)
	defer pc.Close()
	hc, err := ps.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pc.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ps.Crash()

	done := make(chan int, 1)
	go func() {
		ref := u.ExternalRef(hr.URI())
		res, err := ref.Call("Forward", 5)
		if err != nil {
			done <- -1
			return
		}
		done <- res[0].(int)
	}()
	time.Sleep(20 * time.Millisecond) // let retries accumulate
	p2, err := ms.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	select {
	case got := <-done:
		if got != 5 {
			t.Errorf("Forward -> %d, want 5", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed after server restart")
	}
}

func TestInjectorDisarm(t *testing.T) {
	u := newTestUniverse(t)
	inj := NewInjector().CrashAt(PointServerAfterExecute, 1)
	inj.Disarm(PointServerAfterExecute)
	cfg := testConfig()
	cfg.Injector = inj
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	if got := callInt(t, ref, "Add", 1); got != 1 {
		t.Errorf("Add -> %d", got)
	}
	if inj.Fired(PointServerAfterExecute) != 0 {
		t.Error("disarmed point fired")
	}
}

func TestInjectorNthFiring(t *testing.T) {
	u := newTestUniverse(t)
	inj := NewInjector().CrashAt(PointServerAfterExecute, 3)
	cfg := testConfig()
	cfg.Injector = inj
	m, p := startProc(t, u, "evo1", "srv", cfg)
	m.EnableAutoRestart(cfg, 2*time.Millisecond)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Add", 1)
	callInt(t, ref, "Add", 1)
	// The third call crashes after execution, inside the paper's
	// "window of vulnerability" for EXTERNAL clients (Section 3.1.2):
	// message 1 was force-logged, so recovery replays the call to
	// completion (counter = 3) — but the external retry carries no
	// call ID, cannot be recognized as a duplicate, and executes again
	// (counter = 4). Failures of external interactions after the
	// message-1 force but before message 2 is delivered are exactly
	// the ones the paper says "may not be masked". Persistent callers
	// are immune (see TestExactlyOnceThroughServerCrashes).
	got := callInt(t, ref, "Add", 1)
	if got != 4 {
		t.Errorf("third Add -> %d, want 4 (documented external-client duplication window)", got)
	}
	if inj.Fired(PointServerAfterExecute) != 1 {
		t.Errorf("fired = %d", inj.Fired(PointServerAfterExecute))
	}
}
