package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs/trace"
	"repro/internal/rpc"
	"repro/internal/serial"
	"repro/internal/wal"
)

// This file is the recovery manager of paper Section 4.4.
//
// Process crash recovery runs in two passes over the log. Pass 1 scans
// from the well-known checkpoint LSN (or the log start) to the end,
// finding every context that existed at the crash and the LSN of its
// latest state record (or creation record); contexts are then restored
// from those records. Pass 2 scans from the minimum restart LSN,
// buffering the message records of each context until the next incoming
// call record arrives, at which point the previous incoming call is
// replayed with its outgoing calls answered from the buffer; the final
// buffered calls are replayed at the end of the scan, where a missing
// outgoing reply switches the context back to live execution. The last
// call table is rebuilt along the way — LSNs only; reply bodies are
// fetched from the log when a duplicate call actually needs them.

// RecoveryStats summarizes one crash-recovery run: what each pass
// cost, how much log it covered, and how much replay work it did.
// Durations are measured on the universe clock, so simulated runs
// (NewVirtualClock, scaled bench clocks) report model time consistent
// with every other model-time measurement; the recovery.* obs
// histograms keep a wall-time copy. Retrieve the latest run's stats
// with Process.LastRecovery, or from the EventRecoveryDone event that
// carries them.
type RecoveryStats struct {
	// Pass1Duration covers the context-discovery scan plus context
	// restoration; Pass2Duration covers message replay; TotalDuration
	// is the whole recovery including event bookkeeping.
	Pass1Duration time.Duration
	Pass2Duration time.Duration
	TotalDuration time.Duration
	// ContextsRestored counts contexts rebuilt from creation or state
	// records.
	ContextsRestored int
	// RecordsScanned counts log records visited across both passes.
	RecordsScanned int64
	// CallsReplayed counts incoming calls re-executed; CallsSuppressed
	// counts outgoing sends answered from the log during those replays.
	CallsReplayed   int64
	CallsSuppressed int64
	// WorkersUsed is the number of Pass-2 replay worker slots
	// (min(Config.Recovery.Parallelism, contexts with records));
	// 0 means the serial path ran.
	WorkersUsed int
	// Mode is the recovery mode this run executed under.
	Mode RecoveryMode
	// TimeToFirstCallNanos is the universe-clock time from recovery
	// start to the first incoming call admitted past the ready gate
	// after the restart (0 until such a call arrives). In eager mode
	// that is at least the full replay time; in lazy mode it is
	// typically Pass 1 plus one context's backlog.
	TimeToFirstCallNanos int64
	// ContextsOnDemand counts lazy-mode contexts whose backlog was
	// replayed because a call touched them; ContextsBackground counts
	// contexts drained by the background replayer. Both are 0 in eager
	// mode.
	ContextsOnDemand   int
	ContextsBackground int
	// CtxReplayMaxNanos and CtxReplayTotalNanos summarize lazy-mode
	// per-context backlog replay latency on the universe clock (the
	// full distribution is the recovery.lazy.ctx_replay_micros
	// histogram). Both are 0 in eager mode.
	CtxReplayMaxNanos   int64
	CtxReplayTotalNanos int64
}

// restorePlan carries Pass-1 results across the restore/admit
// lifecycle boundary: the contexts that were rebuilt, their restart
// LSNs, and the in-progress stats and trace of the recovery run.
// A nil plan means admission has nothing to replay.
type restorePlan struct {
	stats    RecoveryStats
	recRun   trace.Ref
	recStart time.Time // universe clock, recovery begin
	recWall  time.Time // wall clock, for the recovery.* obs histograms
	restart  map[ids.CompID]ids.LSN
	restored []*Context
}

// restore is the explicit first lifecycle phase of a restart: Pass 1
// of recovery. It scans the log from the well-known marks, rebuilds
// the context tables and restart-LSN map, re-materializes every
// context's components and seeds the last-call table — everything the
// process needs to *route* traffic, but not yet the replayed state to
// *serve* it (contexts stay unready). The returned plan feeds admit;
// it is nil when there is nothing to replay. It runs before any
// concurrent calls arrive at restored contexts (they block on the
// per-context ready latches).
func (p *Process) restore() (*restorePlan, error) {
	if p.log.Empty() {
		return nil, nil // registered before, but nothing was ever logged
	}

	// The well-known file is a per-stream watermark vector (a single
	// LSN on legacy logs, loaded as the stream-0 mark); each shard scans
	// from its mark, or from its own start when the vector predates the
	// shard's era.
	marks, err := wal.LoadWellKnownMarks(p.wkPath)
	if err != nil && !errors.Is(err, wal.ErrNoWellKnown) {
		return nil, err
	}
	shards := p.log.Shards()
	scanStart := func(sh wal.Shard) ids.LSN {
		if m, ok := marks[sh.Stream]; ok {
			return m
		}
		return sh.Log.Start()
	}
	start := scanStart(shards[0])
	p.obs.RecoveryRuns.Inc()
	clock := p.u.cfg.Clock
	var stats RecoveryStats
	stats.Mode = p.cfg.Recovery.Mode
	recStart, recWall := clock.Now(), time.Now()
	// Arm the time-to-first-call measurement: the first call admitted
	// past a ready gate after this point stamps RecoveryStats.
	p.armFirstCall(recStart)
	// The recovery run gets a trace of its own for its scan spans;
	// replayed calls stitch to their original traces instead (see
	// replayIncoming), so a timeline shows both the call's replay and
	// which recovery run performed it.
	recRun := p.tr.NewTrace()
	detail := fmt.Sprintf("scanning from %v", start)
	if len(shards) > 1 {
		detail = fmt.Sprintf("scanning %d shards from %v", len(shards), start)
	}
	p.emitEvent(Event{Kind: EventRecoveryStart, LSN: start, Detail: detail})

	// ---- Pass 1: find contexts and their restart LSNs. ----
	pass1Start, pass1Wall := clock.Now(), time.Now()
	pass1TS := p.tr.Now()
	restart := make(map[ids.CompID]ids.LSN)
	pass1 := func(rec wal.Record) error {
		stats.RecordsScanned++
		switch rec.Type {
		case recCreation:
			// Process checkpoints re-emit creation records for
			// stateless contexts so log trimming can advance past the
			// original; like state records, the newest wins.
			var cr creationRec
			if err := decodeRec(rec.Payload, &cr); err != nil {
				return err
			}
			if rec.LSN > restart[cr.Ctx] {
				restart[cr.Ctx] = rec.LSN
			}
		case recCtxState:
			var sr ctxStateRec
			if err := decodeRec(rec.Payload, &sr); err != nil {
				return err
			}
			if rec.LSN > restart[sr.Ctx] {
				restart[sr.Ctx] = rec.LSN
			}
		case recCkptCtxTable:
			var ct ckptCtxTableRec
			if err := decodeRec(rec.Payload, &ct); err != nil {
				return err
			}
			for _, e := range ct.Entries {
				if e.RestartLSN > restart[e.Ctx] {
					restart[e.Ctx] = e.RestartLSN
				}
			}
		case recCkptLastCall:
			var lc ckptLastCallRec
			if err := decodeRec(rec.Payload, &lc); err != nil {
				return err
			}
			for _, e := range lc.Entries {
				p.lastCalls.seed(e)
			}
		case recIncoming:
			var ir incomingRec
			if err := decodeRec(rec.Payload, &ir); err != nil {
				return err
			}
			if !ir.Call.ID.IsZero() {
				p.lastCalls.seed(lastCallSaved{
					Caller: ir.Call.ID.Caller, Seq: ir.Call.ID.Seq, Ctx: ir.Ctx,
				})
			}
		case recReplyContent:
			var rc replyContentRec
			if err := decodeRec(rec.Payload, &rc); err != nil {
				return err
			}
			if !rc.CallID.IsZero() {
				p.lastCalls.seed(lastCallSaved{
					Caller: rc.CallID.Caller, Seq: rc.CallID.Seq,
					ReplyLSN: rec.LSN, Ctx: rc.Ctx,
				})
			}
		case recDisciplineChange:
			// Rebuild the adaptive controller's committed state in scan
			// order (a method's records share its context's stream, so
			// scan order is temporal order — newest wins). A log written
			// with the controller on but restarted with it off replays
			// fine without this: every record needed for replay exists
			// under any discipline history.
			if p.adaptive != nil {
				var dc disciplineChangeRec
				if err := decodeRec(rec.Payload, &dc); err != nil {
					return err
				}
				p.adaptive.restoreChange(&dc)
			}
		default:
			// Pass 1 only mines restart points and last-call state; the
			// remaining record types (replies, outgoing sends, checkpoint
			// brackets) are replay detail that pass 2 consumes.
		}
		return nil
	}
	// Shards scan in era order (oldest first). Restart maxima are
	// per-context, and a context's records occupy one stream per era
	// with monotonically growing stream tags, so the raw-LSN "newest
	// wins" comparisons above stay temporally correct across shards.
	for _, sh := range shards {
		if err := sh.Log.Scan(scanStart(sh), pass1); err != nil {
			return nil, fmt.Errorf("recovery pass 1: %w", err)
		}
	}
	p.recoverySpan(recRun, pass1TS)
	if len(restart) == 0 {
		p.obs.RecoveryPass1Micros.Observe(time.Since(pass1Wall).Microseconds())
		p.obs.RecoveryMicros.Observe(time.Since(recWall).Microseconds())
		stats.Pass1Duration = clock.Now().Sub(pass1Start)
		stats.TotalDuration = clock.Now().Sub(recStart)
		p.setLastRecovery(stats)
		p.recovered = true
		p.emitEvent(Event{Kind: EventRecoveryDone, Recovery: &stats,
			Detail: "no contexts to restore"})
		return nil, nil
	}

	// Restore every context from its restart record.
	restored := make([]*Context, 0, len(restart))
	for id, lsn := range restart {
		cx, err := p.restoreContext(lsn)
		if err != nil {
			return nil, fmt.Errorf("restore context %d: %w", id, err)
		}
		restored = append(restored, cx)
	}
	p.obs.ContextsRestored.Add(int64(len(restored)))
	p.obs.RecoveryPass1Micros.Observe(time.Since(pass1Wall).Microseconds())
	stats.ContextsRestored = len(restored)
	stats.Pass1Duration = clock.Now().Sub(pass1Start)
	return &restorePlan{
		stats:    stats,
		recRun:   recRun,
		recStart: recStart,
		recWall:  recWall,
		restart:  restart,
		restored: restored,
	}, nil
}

// admit is the explicit second lifecycle phase of a restart: it takes
// the restore plan and makes the process serve traffic. In eager mode
// (the default) it replays every restored context's backlog first and
// returns when the process is fully caught up — the classic blocking
// Pass 2. In lazy mode it opens the floodgates immediately: contexts
// stay unready until a call demands their replay or the background
// drain reaches them, and admit returns as soon as the lazy engine is
// armed. A nil plan (nothing restored) is a no-op.
func (p *Process) admit(plan *restorePlan) error {
	if plan == nil {
		return nil
	}
	if p.cfg.Recovery.Mode == RecoveryLazy {
		return p.admitLazy(plan)
	}
	return p.admitEager(plan)
}

// admitEager runs the blocking Pass 2 over the whole restore plan and
// publishes the finished recovery stats. This is bit-for-bit the
// pre-lazy recovery tail: serial or parallel replay per
// Config.Recovery.Parallelism, tail-less contexts readied before the
// tail calls run, every context ready on return.
func (p *Process) admitEager(plan *restorePlan) error {
	clock := p.u.cfg.Clock
	stats := plan.stats
	recRun, recStart, recWall := plan.recRun, plan.recStart, plan.recWall
	restart, restored := plan.restart, plan.restored

	// ---- Pass 2: replay incoming calls per context. ----
	// Each stream scans from the lowest restart LSN it holds. A context
	// restored from an older era also opens every later-era stream its
	// key maps to, from that stream's start: its post-reshard records
	// live there.
	starts := p.pass2Starts(restart)
	pass2Start, pass2Wall := clock.Now(), time.Now()
	pass2TS := p.tr.Now()
	var tails []tailReplay
	if par := p.cfg.Recovery.Parallelism; par > 0 {
		scanned, workers, parTails, err := p.replayParallel(starts, par, p.cfg.Recovery.queueDepth())
		if err != nil {
			return fmt.Errorf("recovery pass 2: %w", err)
		}
		stats.RecordsScanned += scanned
		stats.WorkersUsed = workers
		tails = parTails
	} else {
		scanned, serTails, err := p.replayFrom(starts, nil)
		if err != nil {
			return fmt.Errorf("recovery pass 2: %w", err)
		}
		stats.RecordsScanned += scanned
		tails = serTails
	}
	// Contexts with no tail call to replay become available before the
	// tails run: a resumed tail on one shard may call a tail-less
	// context whose records live on another shard, and must not block
	// on its ready latch.
	hasTail := make(map[*Context]bool, len(tails))
	for _, t := range tails {
		hasTail[t.cx] = true
	}
	for _, cx := range restored {
		if !hasTail[cx] {
			cx.markReady()
		}
	}
	if err := p.replayTails(tails); err != nil {
		return fmt.Errorf("recovery pass 2: %w", err)
	}
	p.obs.RecoveryPass2Micros.Observe(time.Since(pass2Wall).Microseconds())
	p.recoverySpan(recRun, pass2TS)
	stats.Pass2Duration = clock.Now().Sub(pass2Start)
	// Catch-all: every restored context is available now.
	for _, cx := range restored {
		cx.markReady()
	}
	p.recovered = true
	p.obs.RecoveryMicros.Observe(time.Since(recWall).Microseconds())
	replayed := p.replayedCalls.Load()
	suppressed := p.suppressedCalls.Load()
	stats.CallsReplayed = replayed
	stats.CallsSuppressed = suppressed
	stats.TotalDuration = clock.Now().Sub(recStart)
	p.setLastRecovery(stats)
	p.emitEvent(Event{
		Kind:       EventRecoveryDone,
		Restored:   len(restored),
		Replayed:   replayed,
		Suppressed: suppressed,
		Recovery:   &stats,
		Detail: fmt.Sprintf("%d contexts restored, %d calls replayed, %d sends suppressed",
			len(restored), replayed, suppressed),
	})
	return nil
}

// restoreContext reads the creation or state record at lsn and rebuilds
// the context: fresh component instances via the type registry, field
// state via the serial package, component references re-resolved.
func (p *Process) restoreContext(lsn ids.LSN) (*Context, error) {
	rec, err := p.log.Read(lsn)
	if err != nil {
		return nil, err
	}
	var (
		ctxID      ids.CompID
		uri        ids.URI
		comps      []compRecord
		lastOutSeq uint64
		subCounter uint32
		lastCalls  []lastCallSaved
	)
	switch rec.Type {
	case recCreation:
		var cr creationRec
		if err := decodeRec(rec.Payload, &cr); err != nil {
			return nil, err
		}
		ctxID, uri, comps = cr.Ctx, cr.URI, cr.Comps
		subCounter = uint32(len(cr.Comps) - 1)
	case recCtxState:
		var sr ctxStateRec
		if err := decodeRec(rec.Payload, &sr); err != nil {
			return nil, err
		}
		ctxID, uri, comps = sr.Ctx, sr.URI, sr.Comps
		lastOutSeq, subCounter, lastCalls = sr.LastOutSeq, sr.SubCounter, sr.LastCalls
	default:
		return nil, fmt.Errorf("core: restart LSN %v holds a %s record", lsn, recName(rec.Type))
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("core: record at %v has no components", lsn)
	}

	cx := &Context{
		p:          p,
		uri:        uri,
		subs:       make(map[string]*component),
		subsByID:   make(map[ids.CompID]*component),
		lastOutSeq: lastOutSeq,
		subCounter: subCounter,
		restartLSN: lsn,
		ready:      make(chan struct{}),
	}
	// First materialize instances so local references resolve.
	built := make([]*component, len(comps))
	for i, cr := range comps {
		obj, err := newComponentInstance(cr.GoType)
		if err != nil {
			return nil, err
		}
		disp, err := rpc.NewDispatcher(obj)
		if err != nil {
			return nil, err
		}
		ro := make(map[string]bool, len(cr.ROMethods))
		for _, m := range cr.ROMethods {
			ro[m] = true
		}
		c := &component{
			id: cr.ID, name: cr.Name, obj: obj, disp: disp,
			ctype: cr.Type, roMethods: ro, ctx: cx,
		}
		built[i] = c
		if i == 0 {
			cx.parent = c
		} else {
			cx.subs[c.name] = c
			cx.subsByID[c.id] = c
		}
	}
	// Then restore field states, resolving component references.
	res := &ctxResolver{cx: cx}
	for i, cr := range comps {
		st, err := serial.DecodeState(cr.State)
		if err != nil {
			return nil, err
		}
		if err := serial.Restore(built[i].obj, st, res); err != nil {
			return nil, fmt.Errorf("restore %s: %w", cr.Name, err)
		}
	}
	for _, e := range lastCalls {
		p.lastCalls.seed(e)
	}

	_, _, compName, err := uri.Split()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.contexts[ctxID] = cx
	p.byName[compName] = cx
	for _, c := range built {
		p.components[c.id] = c
	}
	if uint32(ctxID) >= p.nextCompID {
		p.nextCompID = uint32(ctxID) + 1
	}
	p.mu.Unlock()
	cx.attachAware()
	// Stateless contexts have no message records to replay; they are
	// available as soon as their components are rebuilt.
	if cx.parent.ctype.Stateless() {
		cx.markReady()
	}
	return cx, nil
}

// ctxResolver re-obtains component references for restored fields:
// remote references from their URIs (as live Refs owned by the
// restored context), local references from subordinate component IDs.
type ctxResolver struct {
	cx *Context
}

func (r *ctxResolver) ResolveRemote(u ids.URI, fieldType reflect.Type) (any, error) {
	ref := &Ref{u: r.cx.p.u, p: r.cx.p, owner: r.cx, target: u}
	if !reflect.TypeOf(ref).AssignableTo(fieldType) {
		return nil, fmt.Errorf("core: cannot restore remote ref into field of type %s", fieldType)
	}
	return ref, nil
}

func (r *ctxResolver) ResolveLocal(id ids.CompID, fieldType reflect.Type) (any, error) {
	comp, ok := r.cx.subsByID[id]
	if !ok {
		return nil, fmt.Errorf("core: no subordinate with ID %d in context %s", id, r.cx.uri)
	}
	l := &Local{comp: comp}
	if !reflect.TypeOf(l).AssignableTo(fieldType) {
		return nil, fmt.Errorf("core: cannot restore local ref into field of type %s", fieldType)
	}
	return l, nil
}

// pass2Starts builds the per-stream Pass-2 scan starts from the
// restart map: each restart LSN lowers its own stream's start, and
// every later-era stream the context's key maps to is opened from its
// start (the restart record predates those streams entirely, so any of
// the context's records there postdate it).
func (p *Process) pass2Starts(restart map[ids.CompID]ids.LSN) map[uint32]ids.LSN {
	shardStart := make(map[uint32]ids.LSN)
	for _, sh := range p.log.Shards() {
		shardStart[sh.Stream] = sh.Log.Start()
	}
	starts := make(map[uint32]ids.LSN)
	lower := func(stream uint32, l ids.LSN) {
		if cur, ok := starts[stream]; !ok || l < cur {
			starts[stream] = l
		}
	}
	for id, r := range restart {
		lower(r.Stream(), r)
		for _, s := range p.log.StreamsFor(uint64(id)) {
			if s > r.Stream() {
				lower(s, shardStart[s])
			}
		}
	}
	return starts
}

// tailReplay is one context's final buffered incoming call, carried
// out of the Pass-2 scan for the coordinator to replay (see
// replayTails).
type tailReplay struct {
	cx         *Context
	pending    *incomingRec
	pendingLSN ids.LSN
	replies    map[uint64]*msg.Reply
	// replied marks a complete tail: the pending call's own reply
	// record is on the log, so its replay is fully answered from
	// buffered replies and never leaves the context. Tails without it
	// are the calls the log ends inside — their replay resumes live.
	replied bool
}

// replayTails runs the tail calls — each context's last buffered
// incoming call, which may resume live execution and call into other
// contexts of this process. On a single-stream log they replay
// serially in log order, exactly the serial path's cross-context
// resumption argument. On a sharded log there is no total cross-shard
// order to honor: tails replay serially per stream (preserving the
// within-stream prefix argument) with the streams running
// concurrently, so a resumed tail that calls a context whose tail
// lives on another shard finds that shard's replayer making progress
// rather than a latch that nothing will close.
func (p *Process) replayTails(tails []tailReplay) error {
	sort.Slice(tails, func(i, j int) bool { return tails[i].pendingLSN < tails[j].pendingLSN })
	runGroup := func(group []tailReplay) error {
		// Complete tails (their reply is on the log) replay first, in
		// log order: every outgoing call they make is answered from the
		// buffered replies, so they never leave their context.
		// Incomplete tails — the log ends inside these calls — then
		// resume innermost-first (reverse log order): in a nested
		// same-process chain the callee's incoming is logged after its
		// caller's, so reverse order re-executes and readies the callee
		// before the caller's resumed live send re-arrives, which is
		// then answered from the last-call table instead of parking
		// forever on a ready latch this serial loop would never close.
		ordered := make([]tailReplay, 0, len(group))
		for _, t := range group {
			if t.replied {
				ordered = append(ordered, t)
			}
		}
		for i := len(group) - 1; i >= 0; i-- {
			if !group[i].replied {
				ordered = append(ordered, group[i])
			}
		}
		for _, t := range ordered {
			if err := p.replayIncoming(t.cx, t.pending, t.pendingLSN, t.replies); err != nil {
				return err
			}
			if t.cx != nil {
				t.cx.markReady()
			}
		}
		return nil
	}
	if len(p.log.Shards()) == 1 {
		return runGroup(tails)
	}
	byStream := make(map[uint32][]tailReplay)
	order := make([]uint32, 0, 4)
	for _, t := range tails {
		s := t.pendingLSN.Stream()
		if _, ok := byStream[s]; !ok {
			order = append(order, s)
		}
		byStream[s] = append(byStream[s], t)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for _, s := range order {
		group := byStream[s]
		wg.Add(1)
		go func(group []tailReplay) {
			defer wg.Done()
			if err := runGroup(group); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(group)
	}
	wg.Wait()
	return first
}

// replayFrom is pass 2: scan each stream from its start LSN to the end
// of the log, replaying incoming calls of the selected contexts
// (nil = all). Message records older than a context's restart LSN are
// skipped ("If a message log record occurs earlier than the latest
// state record of the same context, it is ignored"). Returns the
// number of records visited and the tail calls still buffered at the
// end of the scan — the caller replays those via replayTails.
func (p *Process) replayFrom(starts map[uint32]ids.LSN, only map[ids.CompID]bool) (int64, []tailReplay, error) {
	type ctxReplay struct {
		pending    *incomingRec
		pendingLSN ids.LSN
		replies    map[uint64]*msg.Reply
		replied    bool // pending's own reply record seen on the log
	}
	states := make(map[ids.CompID]*ctxReplay)
	get := func(id ids.CompID) *ctxReplay {
		st, ok := states[id]
		if !ok {
			st = &ctxReplay{replies: make(map[uint64]*msg.Reply)}
			states[id] = st
		}
		return st
	}
	ctxOf := func(id ids.CompID) *Context {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.contexts[id]
	}
	skip := func(id ids.CompID, lsn ids.LSN) bool {
		if only != nil && !only[id] {
			return true
		}
		cx := ctxOf(id)
		if cx == nil {
			return true // context no longer exists (stateless or dropped)
		}
		return lsn < cx.restartLSN
	}

	var scanned int64
	scanRec := func(rec wal.Record) error {
		scanned++
		switch rec.Type {
		case recIncoming:
			var ir incomingRec
			if err := decodeRec(rec.Payload, &ir); err != nil {
				return err
			}
			if skip(ir.Ctx, rec.LSN) {
				return nil
			}
			st := get(ir.Ctx)
			if st.pending != nil {
				// All messages of the previous incoming call are now
				// buffered: replay it.
				if err := p.replayIncoming(ctxOf(ir.Ctx), st.pending, st.pendingLSN, st.replies); err != nil {
					return err
				}
			}
			st.pending = &ir
			st.pendingLSN = rec.LSN
			st.replies = make(map[uint64]*msg.Reply)
			st.replied = false
		case recReplySent:
			var rs replySentRec
			if err := decodeRec(rec.Payload, &rs); err != nil {
				return err
			}
			if skip(rs.Ctx, rec.LSN) {
				return nil
			}
			if st := get(rs.Ctx); st.pending != nil && rs.CallID == st.pending.Call.ID {
				st.replied = true
			}
		case recReplyContent:
			var rc replyContentRec
			if err := decodeRec(rec.Payload, &rc); err != nil {
				return err
			}
			if skip(rc.Ctx, rec.LSN) {
				return nil
			}
			// Section 4.2 also writes recReplyContent for old last-call
			// replies saved ahead of a state record; only the pending
			// call's own reply marks its tail complete.
			if st := get(rc.Ctx); st.pending != nil && rc.CallID == st.pending.Call.ID {
				st.replied = true
			}
		case recOutgoingReply:
			var or outgoingReplyRec
			if err := decodeRec(rec.Payload, &or); err != nil {
				return err
			}
			if skip(or.Ctx, rec.LSN) {
				return nil
			}
			reply := or.Reply
			get(or.Ctx).replies[or.Seq] = &reply
		default:
			// Pass 2 replays buffered incoming calls against their saved
			// replies; creation, state, and checkpoint records were
			// consumed by pass 1 and carry nothing to replay.
		}
		return nil
	}
	// Streams scan sequentially in era order; within an era a context's
	// records live on exactly one stream, so the per-context buffering
	// above sees them in their original order.
	for _, sh := range p.log.Shards() {
		from, ok := starts[sh.Stream]
		if !ok {
			continue // no restored context has records on this stream
		}
		if err := sh.Log.Scan(from, scanRec); err != nil {
			return scanned, nil, err
		}
	}

	// "After this pass, the recovery manager replays the remaining
	// buffered method calls, which are the last incoming calls." The
	// caller runs them via replayTails, after readying tail-less
	// contexts.
	tails := make([]tailReplay, 0, len(states))
	for id, st := range states {
		if st.pending != nil {
			tails = append(tails, tailReplay{
				cx: ctxOf(id), pending: st.pending,
				pendingLSN: st.pendingLSN, replies: st.replies,
				replied: st.replied,
			})
		}
	}
	return scanned, tails, nil
}

// recoverySpan records one recovery scan pass under the run's own
// trace (recRun from recover()); free when tracing is off.
func (p *Process) recoverySpan(run trace.Ref, start int64) {
	if p.tr == nil || run.IsZero() {
		return
	}
	p.tr.Record(trace.SpanData{
		Ref:    trace.Ref{Trace: run.Trace, Span: p.tr.NewSpan()},
		Parent: run.Span,
		Stage:  trace.StageRecoveryScan,
		Start:  start,
		End:    p.tr.Now(),
		Proc:   &p.name,
	})
}

// replayIncoming re-executes one logged incoming call. Outgoing calls
// are answered from replies when present; a missing reply means the
// log ends inside this call, and execution continues live with the
// same deterministically re-derived call IDs, so servers answer
// repeats from their last call tables. The reply is not sent to the
// caller (condition 5) — it lands in the last call table, where a
// duplicate call will find it.
//
// A traced record replays under its ORIGINAL trace: the StageReplay
// span carries the trace read back from the log plus the record's LSN,
// which is what lets phoenix-trace stitch the pre-crash and post-crash
// halves of a timeline together; curTrace is restored too, so records
// re-logged by a resumed execution stay on that timeline.
func (p *Process) replayIncoming(cx *Context, ir *incomingRec, lsn ids.LSN, replies map[uint64]*msg.Reply) error {
	if cx == nil {
		return nil
	}
	cx.mu.Lock()
	defer cx.mu.Unlock()
	cx.recovering = true
	cx.replayReplies = replies
	cx.curTrace = ir.Trace
	defer func() {
		cx.recovering = false
		cx.replayReplies = nil
		cx.curTrace = trace.Ref{}
	}()

	cx.beginExecution()
	p.replayedCalls.Add(1)
	p.obs.ReplayedCalls.Inc()
	p.emitEvent(Event{Kind: EventReplay, Context: cx.uri, Method: ir.Call.Method, LSN: lsn})
	call := &ir.Call
	replayStart := p.tr.Now()
	results, numResults, appErr, err := cx.parent.disp.InvokeEncoded(call.Method, call.Args, call.NumArgs)
	if p.tr != nil && !ir.Trace.IsZero() {
		p.tr.Record(trace.SpanData{
			Ref:    trace.Ref{Trace: ir.Trace.Trace, Span: p.tr.NewSpan()},
			Parent: ir.Trace.Span,
			Stage:  trace.StageReplay,
			Start:  replayStart,
			End:    p.tr.Now(),
			LSN:    uint64(lsn),
			Proc:   &p.name,
			Method: &call.Method,
		})
	}
	if err != nil {
		return fmt.Errorf("replay %s.%s: %w", cx.uri, call.Method, err)
	}
	if !call.ID.IsZero() {
		reply := &msg.Reply{ID: call.ID, Results: results, NumResults: numResults, AppErr: appErr}
		p.lastCalls.putReplayed(call.ID.Caller, call.ID.Seq, reply, cx.parent.id)
	}
	return nil
}

// replayContextBacklog is the per-context unit of Pass 2: a filtered
// scan of the context's streams from its restart LSN, replaying only
// its own incoming calls. It returns the records visited and the
// context's tail call (if any) still buffered at the end — the caller
// runs replayTails and marks the context ready. The log's cursors are
// safe for concurrent use, so several contexts may replay their
// backlogs at once (the lazy engine's worker slots bound how many).
func (p *Process) replayContextBacklog(cx *Context, restart ids.LSN) (int64, []tailReplay, error) {
	starts := p.pass2Starts(map[ids.CompID]ids.LSN{cx.parent.id: restart})
	return p.replayFrom(starts, map[ids.CompID]bool{cx.parent.id: true})
}

// RecoverContext recovers a single failed context inside a live
// process — the easier case at the end of Section 4.4: "The state
// record LSN can be found in the context table and the state record
// (or creation record) can be read from the log and the context
// restored... Then the log after the state record is read and incoming
// method calls for the context are replayed." The context must be
// quiescent (its component "failed"; no calls in flight).
//
// During a lazy recovery it doubles as the API form of on-demand
// replay: a context still waiting in the pending set has its backlog
// replayed in place (Pass 1 already rebuilt its components), exactly
// as if a call had touched it.
func (p *Process) RecoverContext(name string) error {
	p.mu.Lock()
	old, ok := p.byName[name]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no component %q in process %s", name, p.name)
	}
	if lr := p.lazy.Load(); lr != nil {
		if done, err := lr.recoverNow(old); done {
			return err
		}
	}
	restart := func() ids.LSN {
		p.mu.Lock()
		defer p.mu.Unlock()
		return old.restartLSN
	}()
	if restart.IsNil() {
		return fmt.Errorf("core: context %s has no restart record (stateless?)", old.uri)
	}
	cx, err := p.restoreContext(restart) // re-registers under the same name/ID
	if err != nil {
		return err
	}
	starts := p.pass2Starts(map[ids.CompID]ids.LSN{cx.parent.id: restart})
	_, tails, err := p.replayFrom(starts, map[ids.CompID]bool{cx.parent.id: true})
	if err == nil {
		err = p.replayTails(tails)
	}
	cx.markReady()
	return err
}
