package core

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs/trace"
	"repro/internal/transport"
)

// handleRequest is the process's transport handler: it unmarshals a
// call, routes it to the target context, and runs the server-side
// interceptor. Infrastructure problems travel back as Reply.Fault (the
// component is alive — no retry); a crash mid-call surfaces as a
// transport error so the client's condition-4 loop redrives it.
func (p *Process) handleRequest(req []byte) (resp []byte, err error) {
	if p.crashed.Load() {
		return nil, fmt.Errorf("%w: %s (crashed)", transport.ErrUnavailable, p.addr)
	}
	call, err := msg.DecodeCall(req)
	if err != nil {
		return nil, err
	}

	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				resp, err = nil, fmt.Errorf("%w: %s (crashed mid-call)", transport.ErrUnavailable, p.addr)
				return
			}
			panic(r)
		}
	}()

	reply := p.serveCall(call)
	// EncodeReply deliberately allocates fresh bytes rather than drawing
	// on the scratch pool (contrast Universe.send, which frees its
	// encoded call once the retry loop is done): the encoded reply
	// outlives this handler — transports may deliver it asynchronously
	// and callers retain response buffers — so no site here could prove
	// release. msg's TestEncodeReplyBypassesPool and
	// TestPooledReplyWouldCorrupt pin that contract.
	return msg.EncodeReply(reply)
}

func fault(id ids.CallID, format string, args ...any) *msg.Reply {
	return &msg.Reply{ID: id, Fault: fmt.Sprintf(format, args...)}
}

// traceSpan records one leg of call's trace ending now: a fresh span
// under the call's span, tagged with this process and the method.
// Free when tracing is off or the call is untraced.
func (p *Process) traceSpan(call *msg.Call, st trace.Stage, start int64) {
	if p.tr == nil || call.Trace.IsZero() {
		return
	}
	p.tr.Record(trace.SpanData{
		Ref:    trace.Ref{Trace: call.Trace.Trace, Span: p.tr.NewSpan()},
		Parent: call.Trace.Span,
		Stage:  st,
		Start:  start,
		End:    p.tr.Now(),
		Proc:   &p.name,
		Method: &call.Method,
	})
}

// serveCall is the server-side message interceptor: duplicate
// elimination (condition 3), message-1/2 logging per the active
// discipline, single-threaded execution, last-call-table maintenance,
// and checkpoint policy.
func (p *Process) serveCall(call *msg.Call) *msg.Reply {
	srvStart := p.tr.Now()
	// An arrival with no causal identity — an untraced peer, or an
	// external client whose side has no recorder — gets a trace minted
	// here, so every logged interaction at a tracing process is
	// timeline-complete from its first record.
	if p.tr != nil && call.Trace.IsZero() {
		call.Trace = p.tr.NewTrace()
	}
	_, _, compName, err := call.Target.Split()
	if err != nil {
		return fault(call.ID, "bad target %q: %v", call.Target, err)
	}
	p.mu.Lock()
	cx := p.byName[compName]
	p.mu.Unlock()
	if cx == nil {
		// The component may still be on its way back: recovery
		// restores contexts after the process starts listening. Wait
		// for startup to finish before deciding the component does
		// not exist.
		<-p.recoveryDone
		p.checkAlive()
		p.mu.Lock()
		cx = p.byName[compName]
		p.mu.Unlock()
		if cx == nil {
			return fault(call.ID, "no component %q in process %s", compName, p.name)
		}
	}

	external := call.ID.IsZero()
	method, ok := cx.parent.disp.Method(call.Method)
	if !ok {
		return fault(call.ID, "component %q has no method %q", compName, call.Method)
	}
	_ = method

	// Classify the interaction (Sections 3.2-3.3). Stateless servers
	// (functional, read-only) log nothing and keep no last-call
	// entries. Read-only methods on persistent components and calls
	// from read-only clients are treated the same way when the
	// specialized-types switch is on.
	roMethodAttr := cx.parent.roMethods[call.Method]
	// Hosted external-type components (plain .NET objects in the
	// paper's Table 4 "native" rows) get interception but no logging
	// and no guarantees, like stateless components.
	serverStateless := cx.parent.ctype.Stateless() || cx.parent.ctype == msg.External
	roTreatment := serverStateless ||
		(p.cfg.SpecializedTypes && (roMethodAttr || call.CallerType == msg.ReadOnly))

	// Adaptive treatment snapshot: one per execution, taken before any
	// logging decision, so an execution never straddles a discipline
	// flip. Statically stateless or read-only-treated calls already log
	// nothing — there is nothing left to promote.
	var ad adaptiveServe
	if p.adaptive != nil && !serverStateless && !roTreatment {
		ad = p.adaptive.serveState(cx.parent.id, call.Method)
	}

	// Account the interception by logging discipline (the split the
	// paper's Tables 4-5 argue about).
	switch {
	case cx.parent.ctype == msg.Functional:
		p.obs.InterceptFunctional.Inc() // Algorithm 4
	case roTreatment || ad.readOnly:
		p.obs.InterceptReadOnly.Inc() // Algorithm 5 treatment
	case p.cfg.LogMode == LogBaseline && !ad.algo2:
		p.obs.InterceptAlgo1.Inc()
	case external:
		p.obs.InterceptAlgo3.Inc()
	default:
		p.obs.InterceptAlgo2.Inc()
	}

	// A context being recovered holds arrivals until replay completes.
	// Under lazy admission an arrival does better than wait: it claims
	// the context and replays its backlog right here (first toucher
	// pays; concurrent arrivals wait on the same latch). Steady state
	// — no engine attached, first call already noted — costs two
	// atomic loads.
	if lr := p.lazy.Load(); lr != nil {
		lr.demand(cx, call)
		<-cx.ready
		if err := lr.replayFailure(cx.parent.id); err != nil {
			return fault(call.ID, "context %s unavailable: lazy replay failed: %v", cx.uri, err)
		}
	} else {
		<-cx.ready
	}
	p.noteFirstCall()

	// Single-threaded context: one incoming call at a time
	// (Section 2.2). Everything — duplicate detection, logging,
	// execution, reply bookkeeping — happens in execution order.
	cx.mu.Lock()
	defer cx.mu.Unlock()
	p.checkAlive()

	// Condition 3: a persistent client's repeated call is answered
	// with the stored reply, not re-executed. Read-only interactions
	// skip the table ("it is not necessary to detect duplicate calls
	// to or from a read-only component").
	if !external && !roTreatment {
		if e := p.lastCalls.get(call.ID.Caller); e != nil {
			if call.ID.Seq < e.seq {
				return fault(call.ID, "stale call %v (last is %d)", call.ID, e.seq)
			}
			if call.ID.Seq == e.seq {
				if rep := p.replyFromEntry(e); rep != nil {
					return rep
				}
				return fault(call.ID, "duplicate call %v but reply is unrecoverable", call.ID)
			}
		}
	}

	// Read-only guard: hash the pre-execution state while the method is
	// a candidate (observing mutation behavior) or promoted (the safety
	// net). After duplicate elimination — a served-from-table duplicate
	// never executes, so it needs no guard.
	if ad.guard {
		if h, err := cx.stateHash(); err != nil {
			ad.hashErr = true
		} else {
			ad.preHash = h
		}
	}

	// Message 1 logging. A read-only-promoted method logs nothing
	// (Algorithm 5); the runtime guard below backstops the bet.
	if !roTreatment && !ad.readOnly {
		p.inject(PointServerBeforeLogIncoming)
		lsn, err := p.appendRec(recIncoming, cx.parent.id, &incomingRec{Ctx: cx.parent.id, Call: *call, Trace: call.Trace})
		if err != nil {
			return fault(call.ID, "log incoming: %v", err)
		}
		cx.lastLSN = lsn
		if external || (p.cfg.LogMode == LogBaseline && !ad.algo2) {
			// Algorithm 1 forces every message; Algorithm 3 force-logs
			// external calls promptly so the failure window is small.
			if err := p.forceTraced(p.obs.ForceAtIncoming, cx.lastLSN, call.Trace, &call.Method); err != nil {
				return fault(call.ID, "force incoming: %v", err)
			}
		} else if ad.algo2 && p.cfg.LogMode == LogBaseline {
			// Promoted to Algorithm 2: message 1 stays unforced.
			p.obs.AdaptiveElideAlgo2.Inc()
		}
		p.inject(PointServerAfterLogIncoming)
	} else if ad.readOnly {
		p.obs.AdaptiveElideReadOnly.Inc()
	}
	p.traceSpan(call, trace.StageServerIntercept, srvStart)

	// Execute.
	cx.beginExecution()
	cx.curTrace = call.Trace
	if p.adaptive != nil {
		cx.curMethod = call.Method
	}
	defer func() { cx.curTrace = trace.Ref{}; cx.curMethod = "" }()
	execStart := time.Now()
	execTraceStart := p.tr.Now()
	results, numResults, appErr, err := cx.parent.disp.InvokeEncoded(call.Method, call.Args, call.NumArgs)
	p.obs.ServeExecs.Inc()
	p.obs.ServeExecMicros.Observe(time.Since(execStart).Microseconds())
	p.traceSpan(call, trace.StageExecute, execTraceStart)
	if err != nil {
		return fault(call.ID, "%v", err)
	}
	replyStart := p.tr.Now()
	reply := &msg.Reply{ID: call.ID, Results: results, NumResults: numResults, AppErr: appErr, Trace: call.Trace}
	p.inject(PointServerAfterExecute)

	// Message 2 logging, before the reply is sent. Nothing for a
	// read-only-promoted method: no message-1 record exists, so there
	// is nothing to commit.
	if !roTreatment && !ad.readOnly {
		switch {
		case p.cfg.LogMode == LogBaseline && !ad.algo2:
			// Algorithm 1: log the full reply and force.
			lsn, err := p.appendRec(recReplyContent, cx.parent.id, &replyContentRec{Ctx: cx.parent.id, CallID: call.ID, Reply: *reply, Trace: call.Trace})
			if err != nil {
				return fault(call.ID, "log reply: %v", err)
			}
			cx.lastLSN = lsn
			if err := p.forceTraced(p.obs.ForceAtReply, cx.lastLSN, call.Trace, &call.Method); err != nil {
				return fault(call.ID, "force reply: %v", err)
			}
		case external:
			// Algorithm 3: a short record — only the fact that the
			// reply was (attempted to be) sent — then force.
			lsn, err := p.appendRec(recReplySent, cx.parent.id, &replySentRec{Ctx: cx.parent.id, CallID: call.ID, Trace: call.Trace})
			if err != nil {
				return fault(call.ID, "log reply-sent: %v", err)
			}
			cx.lastLSN = lsn
			if err := p.forceTraced(p.obs.ForceAtReply, cx.lastLSN, call.Trace, &call.Method); err != nil {
				return fault(call.ID, "force reply-sent: %v", err)
			}
		default:
			// Algorithm 2: the send is not written (replay recreates
			// it) but it commits state — force all of this context's
			// previous records (other contexts' dirty tails are their
			// own commits' business).
			if err := p.forceTraced(p.obs.ForceAtReply, cx.lastLSN, call.Trace, &call.Method); err != nil {
				return fault(call.ID, "force at reply: %v", err)
			}
		}
	}

	// Last call table (condition 3's memory). Kept for persistent
	// clients only; the reply body stays in memory and reaches the log
	// lazily when a context state save needs it (Section 4.2).
	if !external && !roTreatment {
		p.lastCalls.put(call.ID.Caller, call.ID.Seq, reply, cx.parent.id)
	}

	// Adaptive epilogue: resolve the read-only guard (a violation
	// demotes the method and captures the unlogged execution's damage
	// as a forced state record before the reply externalizes), then
	// feed the observation to the controller and apply any epoch
	// decisions it returns.
	if ad.active {
		if err := p.adaptiveAfterExec(cx, call, ad); err != nil {
			return fault(call.ID, "adaptive demote %q: %v", call.Method, err)
		}
	}

	// Checkpoint policies (Section 4: state records are saved when the
	// context is quiescent — right here, after the call finished and
	// before the next is admitted).
	if !serverStateless {
		cx.callsSinceSave++
		if p.cfg.SaveStateEvery > 0 && cx.callsSinceSave >= p.cfg.SaveStateEvery {
			if err := cx.saveStateLocked(); err != nil {
				return fault(call.ID, "save state: %v", err)
			}
		}
	}
	total := p.incomingCalls.Add(1)
	if p.cfg.CheckpointEvery > 0 && total%int64(p.cfg.CheckpointEvery) == 0 {
		if err := p.runCheckpoint(); err != nil {
			return fault(call.ID, "checkpoint: %v", err)
		}
	}

	p.inject(PointServerBeforeSendReply)

	// Reply attachment (Section 3.4), omitted when the client already
	// knows us (Section 5.2.3) or cannot use it (external caller).
	if !external && !call.KnowsServer {
		reply.HasAttachment = true
		reply.ServerType = cx.parent.ctype
		// An adaptive read-only promotion travels in the attachment like
		// a declared read-only method: clients may elide their message-3
		// force for future calls (Algorithm 5's client side). Safe even
		// if the method is later demoted — the attachment only relaxes
		// the client while the server still guards itself.
		reply.MethodReadOnly = roMethodAttr || ad.readOnly
	}
	p.traceSpan(call, trace.StageReply, replyStart)
	return reply
}

// replyFromEntry materializes a last-call reply from memory or from
// its log record ("actual reply messages are only read when they are
// required to reply to a duplicate call", Section 4.4).
func (p *Process) replyFromEntry(e *lastCallEntry) *msg.Reply {
	if e.reply != nil {
		return e.reply
	}
	if e.replyLSN.IsNil() {
		return nil
	}
	rec, err := p.log.Read(e.replyLSN)
	if err != nil || rec.Type != recReplyContent {
		return nil
	}
	var rc replyContentRec
	if err := decodeRec(rec.Payload, &rc); err != nil {
		return nil
	}
	e.reply = &rc.Reply
	return e.reply
}
