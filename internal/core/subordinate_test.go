package core

import (
	"testing"
)

// Cycler drops and recreates its subordinate — the hardest dynamic
// case for replay determinism.
type Cycler struct {
	Generation int

	ctx *Ctx
}

// AttachContext receives the context handle.
func (c *Cycler) AttachContext(cx *Ctx) { c.ctx = cx }

// Put stores into the current vault, creating it on demand.
func (c *Cycler) Put(n int) (int, error) {
	sub, ok := c.ctx.Subordinate("vault")
	if !ok {
		var err error
		sub, err = c.ctx.CreateSubordinate("vault", &Vault{})
		if err != nil {
			return 0, err
		}
	}
	res, err := sub.Call("Put", n)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// Cycle drops the vault and starts a new generation.
func (c *Cycler) Cycle() (int, error) {
	c.ctx.DropSubordinate("vault")
	c.Generation++
	return c.Generation, nil
}

func TestSubordinateDropAndRecreateReplays(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Cycler", &Cycler{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Put", 5) // gen-0 vault: 5
	callInt(t, ref, "Put", 5) // gen-0 vault: 10
	callInt(t, ref, "Cycle")  // drop
	callInt(t, ref, "Put", 3) // gen-1 vault (fresh): 3
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// Replay must reproduce the drop/recreate history exactly: the
	// recreated vault holds 3, not 13.
	if got := callInt(t, ref, "Put", 1); got != 4 {
		t.Errorf("post-recovery Put -> %d, want 4 (fresh generation)", got)
	}
	h2, _ := p2.Lookup("Cycler")
	if gen := h2.Object().(*Cycler).Generation; gen != 1 {
		t.Errorf("generation = %d, want 1", gen)
	}
}

func TestSubordinateDropAcrossStateRecord(t *testing.T) {
	// State saved after the drop: restore starts without the vault,
	// and subsequent replay re-creates only the new generation.
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Cycler", &Cycler{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Put", 7)
	callInt(t, ref, "Cycle")
	if err := h.SaveState(); err != nil {
		t.Fatal(err)
	}
	callInt(t, ref, "Put", 2)
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := callInt(t, ref, "Put", 1); got != 3 {
		t.Errorf("Put after recovery -> %d, want 3", got)
	}
}

func TestUniverseShutdownPreservesState(t *testing.T) {
	dir := t.TempDir()
	u, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Add", 9)
	u.Shutdown()
	if !p.Crashed() {
		t.Error("process still live after Shutdown")
	}

	// A new universe over the same directory recovers everything.
	u2, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u2.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	ref2 := u2.ExternalRef(h.URI())
	if got := callInt(t, ref2, "Get"); got != 9 {
		t.Errorf("counter after universe restart = %d, want 9", got)
	}
}
