package core

import (
	"sync"
)

// InjectionPoint names an interception step at which a failure can be
// injected. The points bracket the message events of Figure 1, so the
// three failure situations of Figure 2 (before message 3 is sent;
// after message 3 but before message 2; after message 2) are all
// drivable.
type InjectionPoint string

const (
	// PointServerBeforeLogIncoming fires when message 1 has arrived
	// but before it is logged: the call is lost with the process
	// (Figure 2, failure point 1 at its earliest).
	PointServerBeforeLogIncoming InjectionPoint = "server.before-log-incoming"
	// PointServerAfterLogIncoming fires once message 1 is logged
	// (forced or not per discipline) but before execution.
	PointServerAfterLogIncoming InjectionPoint = "server.after-log-incoming"
	// PointServerAfterExecute fires after the method body ran but
	// before any message-2 logging (Figure 2, failure point 2).
	PointServerAfterExecute InjectionPoint = "server.after-execute"
	// PointServerBeforeSendReply fires after message-2 logging/forcing
	// but before the reply leaves the process (still failure point 2:
	// message 2 unsent).
	PointServerBeforeSendReply InjectionPoint = "server.before-send-reply"
	// PointClientBeforeForceSend fires on the client just before the
	// pre-send log force of message 3.
	PointClientBeforeForceSend InjectionPoint = "client.before-force-send"
	// PointClientAfterForceSend fires after the pre-send force, before
	// the call goes out (Figure 2, failure point 1 at its latest).
	PointClientAfterForceSend InjectionPoint = "client.after-force-send"
	// PointClientBeforeForceReply fires after message 4 arrived,
	// before the baseline's reply force.
	PointClientBeforeForceReply InjectionPoint = "client.before-force-reply"
	// PointClientAfterReply fires after message-4 processing completes
	// (Figure 2, failure point 3 from the server's perspective —
	// the client has the reply, the server moved on).
	PointClientAfterReply InjectionPoint = "client.after-reply"
	// PointAdaptiveAfterChangeLogged fires after a discipline-change
	// record is appended and forced but before the controller's
	// in-memory commit: the durable log says the new discipline is in
	// effect while no call has yet been handled under it — the exact
	// promotion-boundary crash the adaptive recovery path must absorb.
	PointAdaptiveAfterChangeLogged InjectionPoint = "adaptive.after-change-logged"
)

// Injector crashes a process when execution reaches a chosen point for
// the n-th time. One injector drives one process (bind is called by
// newProcess).
type Injector struct {
	mu     sync.Mutex
	armed  map[InjectionPoint]int // point -> remaining passes before firing
	fired  map[InjectionPoint]int
	target *Process
}

// NewInjector returns an empty injector; arm points with CrashAt.
func NewInjector() *Injector {
	return &Injector{
		armed: make(map[InjectionPoint]int),
		fired: make(map[InjectionPoint]int),
	}
}

// CrashAt arms the injector: the nth time execution passes point
// (1-based), the process crashes there.
func (in *Injector) CrashAt(point InjectionPoint, nth int) *Injector {
	if nth < 1 {
		nth = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed[point] = nth
	return in
}

// Disarm removes a pending injection.
func (in *Injector) Disarm(point InjectionPoint) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.armed, point)
}

// Fired reports how many times a point has triggered a crash.
func (in *Injector) Fired(point InjectionPoint) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

func (in *Injector) bind(p *Process) {
	in.mu.Lock()
	in.target = p
	in.mu.Unlock()
}

// hit is called by the runtime at each point; it crashes the bound
// process and unwinds the calling goroutine when the armed count is
// reached.
func (in *Injector) hit(p *Process, point InjectionPoint) {
	in.mu.Lock()
	n, ok := in.armed[point]
	if !ok || in.target != p {
		in.mu.Unlock()
		return
	}
	n--
	if n > 0 {
		in.armed[point] = n
		in.mu.Unlock()
		return
	}
	delete(in.armed, point)
	in.fired[point]++
	in.mu.Unlock()

	p.Crash()
	panic(crashSignal{proc: p.name})
}

// inject is the runtime's hook; a nil injector is free.
func (p *Process) inject(point InjectionPoint) {
	if p.cfg.Injector != nil {
		p.cfg.Injector.hit(p, point)
	}
	// A concurrent Crash must also stop in-flight work at the next
	// interception step, approximating fail-stop.
	p.checkAlive()
}
