package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs/trace"
	"repro/internal/rpc"
	"repro/internal/serial"
)

// Context is the unit of interception: a parent component plus its
// subordinates (paper Figure 6). Method calls into the context are
// serialized — components are single-threaded to keep them piece-wise
// deterministic ("serving one incoming method call at a time",
// Section 2.2) — and calls among the parent and its subordinates cross
// no context boundary, so they are neither intercepted nor logged.
type Context struct {
	p      *Process
	parent *component
	uri    ids.URI

	subs     map[string]*component
	subsByID map[ids.CompID]*component

	// mu serializes incoming call execution (single-threaded context).
	mu sync.Mutex

	// ready is closed when the context may serve incoming calls; a
	// context being replayed keeps arrivals waiting until its recovery
	// finishes ("the context begins to wait for incoming calls",
	// Section 4.4).
	ready chan struct{}

	// arrivals counts calls that reached this context while it awaited
	// lazy replay — the background drain's hotness signal (hottest
	// pending context replays first).
	arrivals atomic.Int64

	// Execution state below is owned by the goroutine holding mu (or
	// by the single recovery goroutine during replay).
	lastOutSeq uint64
	subCounter uint32
	// multiCallSeen tracks the servers invoked during the current
	// method execution for the Section 3.5 multi-call optimization,
	// and doubles as the adaptive controller's distinct-target
	// observation set. The value distinguishes the two users: the
	// elision branch checks and stores true; adaptive observation
	// stores false (presence only), so observing a target never
	// changes what the static elision would have decided.
	multiCallSeen map[ids.URI]bool

	// curMethod is the method name of the incoming call currently
	// executing (set only when the adaptive controller is on): the
	// client side of an outgoing call looks up the *executing*
	// method's promoted treatment. Owned by the goroutine holding mu.
	curMethod string
	// execOut / execRepeats count the current execution's outgoing
	// calls and repeated-target calls for adaptive observation.
	execOut     int
	execRepeats int

	// recovering marks replay mode: outgoing calls are answered from
	// replayReplies when possible instead of being sent.
	recovering    bool
	replayReplies map[uint64]*msg.Reply

	// curTrace is the causal trace of the incoming call currently
	// executing in this context (zero between calls or when untraced).
	// Outgoing calls made during the execution inherit it as their
	// parent; replay restores the original call's trace here so records
	// re-logged during a resumed execution stay on the original
	// timeline. Owned by the goroutine holding mu.
	curTrace trace.Ref

	// restartLSN is the latest context state record (or the creation
	// record if none) — the context's replay starting point and its
	// context-table entry's "LSN of the latest context state record".
	restartLSN  ids.LSN
	creationLSN ids.LSN

	// lastLSN is the newest log record this context appended (any
	// kind). The context's commit points force the log only up to it
	// (ForceTo): a context never waits on other contexts' dirty
	// records. Owned by the goroutine holding cx.mu, like the rest of
	// the execution state (Create sets it before publication).
	lastLSN ids.LSN

	callsSinceSave int
}

// URI returns the context's component URI.
func (cx *Context) URI() ids.URI { return cx.uri }

// markReady opens the context for incoming calls. Idempotent; called
// only from the single recovery goroutine (and at creation).
func (cx *Context) markReady() {
	select {
	case <-cx.ready:
	default:
		close(cx.ready)
	}
}

// addr is the context's component address: the first three parts of
// every method-call ID it generates. Outgoing calls from subordinates
// carry the parent's identity — the call ID sequence is per context.
func (cx *Context) addr() ids.ComponentAddr {
	return ids.ComponentAddr{Machine: cx.p.m.name, Proc: cx.p.procID, Comp: cx.parent.id}
}

// addSubordinate creates a subordinate component in the context. It is
// called either during Create (context unpublished) or from the
// context's executing goroutine during a deterministic method
// execution — dynamic creation replays identically, so it needs no log
// record.
func (cx *Context) addSubordinate(name string, obj any) (*component, error) {
	if _, ok := cx.subs[name]; ok {
		return nil, fmt.Errorf("core: subordinate %q already exists in context %s", name, cx.uri)
	}
	disp, err := rpc.NewDispatcher(obj)
	if err != nil {
		return nil, err
	}
	RegisterComponentType(obj)
	cx.subCounter++
	// Subordinate IDs live in a per-context namespace so that dynamic
	// creation during replay reproduces them deterministically.
	id := ids.CompID(uint32(cx.parent.id)<<16 | uint32(cx.subCounter))
	c := &component{
		id:        id,
		name:      name,
		obj:       obj,
		disp:      disp,
		ctype:     msg.Subordinate,
		roMethods: map[string]bool{},
		ctx:       cx,
	}
	cx.subs[name] = c
	cx.subsByID[id] = c
	bindRefs(cx, obj)
	cx.p.mu.Lock()
	cx.p.components[id] = c
	cx.p.mu.Unlock()
	if aware, ok := obj.(ContextAware); ok {
		aware.AttachContext(&Ctx{cx: cx})
	}
	return c, nil
}

// creationRecord captures the context's components and their initial
// states for the creation log record.
func (cx *Context) creationRecord() (*creationRec, error) {
	comps, err := cx.captureComponents()
	if err != nil {
		return nil, err
	}
	return &creationRec{Ctx: cx.parent.id, URI: cx.uri, Comps: comps}, nil
}

func (cx *Context) captureComponents() ([]compRecord, error) {
	capture := func(c *component) (compRecord, error) {
		st, err := serial.Capture(c.obj)
		if err != nil {
			return compRecord{}, fmt.Errorf("core: capture %s: %w", c.name, err)
		}
		data, err := st.Encode()
		if err != nil {
			return compRecord{}, err
		}
		ro := make([]string, 0, len(c.roMethods))
		for m := range c.roMethods {
			ro = append(ro, m)
		}
		return compRecord{
			ID: c.id, Name: c.name, GoType: st.TypeName,
			Type: c.ctype, ROMethods: ro, State: data,
		}, nil
	}
	comps := make([]compRecord, 0, 1+len(cx.subs))
	pc, err := capture(cx.parent)
	if err != nil {
		return nil, err
	}
	comps = append(comps, pc)
	// Deterministic order: by component ID.
	subIDs := make([]ids.CompID, 0, len(cx.subsByID))
	for id := range cx.subsByID {
		subIDs = append(subIDs, id)
	}
	for i := 0; i < len(subIDs); i++ {
		for j := i + 1; j < len(subIDs); j++ {
			if subIDs[j] < subIDs[i] {
				subIDs[i], subIDs[j] = subIDs[j], subIDs[i]
			}
		}
	}
	for _, id := range subIDs {
		sc, err := capture(cx.subsByID[id])
		if err != nil {
			return nil, err
		}
		comps = append(comps, sc)
	}
	return comps, nil
}

// attachAware hands context handles to every component that wants one;
// used after a context is restored from the log.
func (cx *Context) attachAware() {
	if aware, ok := cx.parent.obj.(ContextAware); ok {
		aware.AttachContext(&Ctx{cx: cx})
	}
	for _, s := range cx.subs {
		if aware, ok := s.obj.(ContextAware); ok {
			aware.AttachContext(&Ctx{cx: cx})
		}
	}
}

// beginExecution resets per-execution state; called with mu held just
// before an incoming call is dispatched.
func (cx *Context) beginExecution() {
	if cx.p.cfg.MultiCall || cx.p.adaptive != nil {
		cx.multiCallSeen = make(map[ids.URI]bool)
	}
	if cx.p.adaptive != nil {
		cx.execOut, cx.execRepeats = 0, 0
	}
}

// ContextAware is implemented by components that need their context
// handle (to create subordinates dynamically, obtain refs, or save
// state explicitly). AttachContext is called at creation and again
// after recovery; the handle must be kept in an unexported or
// `phoenix:"-"` field so it is not captured as state.
type ContextAware interface {
	AttachContext(cx *Ctx)
}

// Ctx is the context API handed to ContextAware components.
type Ctx struct {
	cx *Context
}

// URI returns the context's component URI.
func (c *Ctx) URI() ids.URI { return c.cx.uri }

// NewRef returns a proxy for calling the target component from within
// this context: outgoing calls carry the context's identity and are
// logged per the active discipline.
func (c *Ctx) NewRef(target ids.URI) *Ref {
	return &Ref{u: c.cx.p.u, p: c.cx.p, owner: c.cx, target: target}
}

// CreateSubordinate creates a subordinate component dynamically. It
// must be called from inside a method execution of this context (or
// before the context starts serving), and the creation must be
// deterministic — replay re-creates it.
func (c *Ctx) CreateSubordinate(name string, obj any) (*Local, error) {
	comp, err := c.cx.addSubordinate(name, obj)
	if err != nil {
		return nil, err
	}
	return &Local{comp: comp}, nil
}

// Subordinate returns the handle of a subordinate by name.
func (c *Ctx) Subordinate(name string) (*Local, bool) {
	comp, ok := c.cx.subs[name]
	if !ok {
		return nil, false
	}
	return &Local{comp: comp}, true
}

// Subordinates lists subordinate names.
func (c *Ctx) Subordinates() []string {
	names := make([]string, 0, len(c.cx.subs))
	for n := range c.cx.subs {
		names = append(names, n)
	}
	return names
}

// DropSubordinate removes a subordinate (deterministically, from inside
// a method execution).
func (c *Ctx) DropSubordinate(name string) {
	if comp, ok := c.cx.subs[name]; ok {
		delete(c.cx.subs, name)
		delete(c.cx.subsByID, comp.id)
		c.cx.p.mu.Lock()
		delete(c.cx.p.components, comp.id)
		c.cx.p.mu.Unlock()
	}
}

// SaveState writes a context state record now (explicit checkpointing;
// the SaveStateEvery policy calls the same path automatically). It must
// not be called from inside a method execution of this context.
func (c *Ctx) SaveState() error {
	c.cx.mu.Lock()
	defer c.cx.mu.Unlock()
	return c.cx.saveStateLocked()
}

// Local is the handle a parent uses to call a subordinate: a direct,
// unintercepted, unlogged dispatch (Section 3.2.1 and the
// Persistent→Subordinate row of Table 5). It implements
// serial.LocalRef, so components may hold it in fields across
// checkpoints.
type Local struct {
	comp *component
}

// PhoenixLocalID implements serial.LocalRef.
func (l *Local) PhoenixLocalID() ids.CompID { return l.comp.id }

// Name returns the subordinate's name.
func (l *Local) Name() string { return l.comp.name }

// Call invokes a subordinate method directly. The call is not
// intercepted, not logged, and carries no call ID; determinism comes
// from the single-threaded context it runs within. Only a counter
// records that the boundary was crossed (the Persistent→Subordinate
// row of Table 5: interception with no logging work).
func (l *Local) Call(method string, args ...any) ([]any, error) {
	l.comp.ctx.p.obs.InterceptSubordinate.Inc()
	return l.comp.disp.CallValues(method, args...)
}

// Object exposes the subordinate instance (the parent may also use it
// directly; a plain Go call is exactly what subordinate calls are).
func (l *Local) Object() any { return l.comp.obj }

// Handle is an application's handle on a component it created.
type Handle struct {
	cx *Context
}

// URI returns the component's URI, used by other processes to call it.
func (h *Handle) URI() ids.URI { return h.cx.uri }

// Ctx returns the context API for the component.
func (h *Handle) Ctx() *Ctx { return &Ctx{cx: h.cx} }

// Object returns the hosted component instance. Reading it from
// outside the runtime is safe only when no calls are in flight.
func (h *Handle) Object() any { return h.cx.parent.obj }

// SaveState writes a context state record (Section 4.2).
func (h *Handle) SaveState() error { return h.Ctx().SaveState() }

// RestartLSN exposes the context's current restart point (tests and
// the experiment harness examine recovery behaviour with it).
func (h *Handle) RestartLSN() ids.LSN {
	h.cx.p.mu.Lock()
	defer h.cx.p.mu.Unlock()
	return h.cx.restartLSN
}
