package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs/trace"
)

// This file is the lazy admission engine (Config.Recovery.Mode =
// RecoveryLazy), the instant-restore/REDO-on-demand line applied to
// Phoenix/App's per-context recovery: after Pass 1 has rebuilt the
// context tables and restart LSNs, the process opens for traffic
// immediately. Each restored context keeps its ready latch shut until
// its own backlog has replayed; the first call to touch it claims the
// context and replays just that backlog (concurrent arrivals wait on
// the same latch), while background drainers work through the
// remaining contexts hottest-first, per shard stream, under the
// Parallelism worker slots. Correctness rests on what Pass 1 already
// guarantees at admission time: the last-call table is fully seeded
// (duplicate elimination works before any replay), restart LSNs are
// not advanced until a context replays (a crash mid-drain loses
// nothing), and a context's records live on one stream per era, so a
// filtered per-context scan sees them in original order across the
// era barrier exactly like the full Pass 2 would.

// lazyPending is one restored-but-unreplayed context in the engine's
// work set.
type lazyPending struct {
	cx      *Context
	restart ids.LSN
}

// lazyRecovery coordinates one lazy recovery run. It lives in
// Process.lazy from admission until the drain completes cleanly, so
// the serve path's only steady-state cost is an atomic nil check.
type lazyRecovery struct {
	p    *Process
	plan *restorePlan

	// slots is the worker semaphore bounding concurrent backlog scans
	// (on-demand and background alike). Tail replays run slot-free: a
	// resumed tail may demand another context's replay, and must find
	// a slot available rather than a starvation deadlock.
	slots chan struct{}

	admitStart time.Time // universe clock, admission point
	admitWall  time.Time // wall clock, for the recovery.* histograms

	mu          sync.Mutex
	stopped     bool
	pending     map[ids.CompID]*lazyPending // unclaimed contexts
	remaining   int                         // claimed-but-unfinished + pending
	onDemand    int
	background  int
	scanned     int64
	replayMax   time.Duration
	replayTotal time.Duration
	failed      map[ids.CompID]error
	firstErr    error

	// owned is the immutable set of contexts this run started with
	// (read-only after admitLazy publishes the engine).
	owned map[ids.CompID]bool

	// failures guards the post-ready failure lookup on the serve path:
	// zero means no mutex needs taking.
	failures atomic.Int32

	stopCh    chan struct{} // closed by stop (crash/close mid-drain)
	done      chan struct{} // closed when the drain finishes or stops
	closeOnce sync.Once

	// drainers counts the background drainStream goroutines.
	// DrainRecovery joins them after done closes; stop() must NOT — a
	// crash raised from inside a drainer would then self-deadlock.
	drainers sync.WaitGroup
}

// admitLazy arms the lazy engine and returns immediately: the process
// serves traffic from here on, replaying context backlogs on first
// touch while background drainers (one per shard stream holding
// restart points) work through the cold set hottest-first.
func (p *Process) admitLazy(plan *restorePlan) error {
	slots := p.cfg.Recovery.Parallelism
	if slots < 1 {
		slots = 1
	}
	lr := &lazyRecovery{
		p:          p,
		plan:       plan,
		slots:      make(chan struct{}, slots),
		admitStart: p.u.cfg.Clock.Now(),
		admitWall:  time.Now(),
		pending:    make(map[ids.CompID]*lazyPending),
		owned:      make(map[ids.CompID]bool),
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
	}
	streams := make(map[uint32]bool)
	for _, cx := range plan.restored {
		select {
		case <-cx.ready:
			continue // stateless: ready since restoration, no backlog
		default:
		}
		r := plan.restart[cx.parent.id]
		lr.pending[cx.parent.id] = &lazyPending{cx: cx, restart: r}
		lr.owned[cx.parent.id] = true
		streams[r.Stream()] = true
	}
	lr.remaining = len(lr.pending)
	p.recovered = true
	p.lazy.Store(lr)
	if lr.remaining == 0 {
		lr.finalize()
		return nil
	}
	for s := range streams {
		lr.drainers.Add(1)
		go lr.drainStream(s)
	}
	return nil
}

// demand is the serve path's admission hook, called before the ready
// gate: it bumps the context's traffic counter (the drain's hotness
// signal) and, if the context is still unclaimed, replays its backlog
// on this call's goroutine. Losing the claim race just means someone
// else is replaying; the caller falls through to the ready latch.
func (lr *lazyRecovery) demand(cx *Context, call *msg.Call) {
	select {
	case <-cx.ready:
		return
	default:
	}
	cx.arrivals.Add(1)
	ent := lr.claim(cx.parent.id)
	if ent == nil {
		return
	}
	_ = lr.replayOne(ent, true, call.Trace, &call.Method)
}

// recoverNow is RecoverContext's entry into a live lazy run. A context
// still pending replays in place (Pass 1 already rebuilt it); one
// being replayed right now is waited for. handled=false means the
// context is past lazy recovery (or was never part of it) and the
// caller should run the classic restore-and-replay path.
func (lr *lazyRecovery) recoverNow(cx *Context) (handled bool, err error) {
	id := cx.parent.id
	if ent := lr.claim(id); ent != nil {
		return true, lr.replayOne(ent, true, trace.Ref{}, nil)
	}
	select {
	case <-cx.ready:
		return false, nil
	default:
	}
	if lr.owned[id] {
		<-cx.ready
		return true, lr.replayFailure(id)
	}
	return false, nil
}

// claim removes id from the pending set; the caller that gets a
// non-nil entry owns that context's replay (and its markReady).
func (lr *lazyRecovery) claim(id ids.CompID) *lazyPending {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.stopped {
		return nil
	}
	ent := lr.pending[id]
	delete(lr.pending, id)
	return ent
}

// claimHottest picks the pending context on the given stream with the
// most observed arrivals (ties broken by lowest restart LSN, so the
// order is deterministic under equal traffic) and claims it.
func (lr *lazyRecovery) claimHottest(stream uint32) *lazyPending {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.stopped {
		return nil
	}
	var best *lazyPending
	var bestHot int64
	for _, ent := range lr.pending {
		if ent.restart.Stream() != stream {
			continue
		}
		hot := ent.cx.arrivals.Load()
		if best == nil || hot > bestHot || (hot == bestHot && ent.restart < best.restart) {
			best, bestHot = ent, hot
		}
	}
	if best != nil {
		delete(lr.pending, best.cx.parent.id)
	}
	return best
}

// drainStream is one background replayer: it drains the pending
// contexts whose restart points live on the given shard stream,
// re-reading the hotness counters before each pick so traffic arriving
// mid-drain reorders what is left.
func (lr *lazyRecovery) drainStream(stream uint32) {
	defer lr.drainers.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				return // crashed mid-drain; stop() releases the waiters
			}
			panic(r)
		}
	}()
	for !lr.p.crashed.Load() {
		ent := lr.claimHottest(stream)
		if ent == nil {
			return
		}
		_ = lr.replayOne(ent, false, trace.Ref{}, nil)
	}
}

// replayOne replays a claimed context's backlog: the filtered Pass-2
// scan under a worker slot, then the tail call slot-free (it may
// resume live execution and demand further contexts). It records the
// per-context latency, marks the context ready — failure or not, so
// waiters unblock and find the failure — and drops a demand-replay
// span into the flight recorder, under the triggering call's trace
// when there is one, else under the recovery run's own trace.
func (lr *lazyRecovery) replayOne(ent *lazyPending, onDemand bool, tref trace.Ref, method *string) error {
	p := lr.p
	clock := p.u.cfg.Clock
	start := clock.Now()
	var tstart int64
	if p.tr != nil {
		tstart = p.tr.Now()
	}
	var scanned int64
	var err error
	ran := false
	select {
	case lr.slots <- struct{}{}:
		ran = true
		var tails []tailReplay
		scanned, tails, err = p.replayContextBacklog(ent.cx, ent.restart)
		<-lr.slots
		if err == nil {
			err = p.replayTails(tails)
		}
	case <-lr.stopCh:
		// Stopping: fall through to markReady so waiters reach
		// checkAlive and unwind instead of hanging on the latch.
	}
	lr.finishOne(ent, onDemand, ran, scanned, clock.Now().Sub(start), err)
	ent.cx.markReady()
	if p.tr != nil && ran {
		parent := tref
		if parent.IsZero() {
			parent = lr.plan.recRun
		}
		if !parent.IsZero() {
			p.tr.Record(trace.SpanData{
				Ref:    trace.Ref{Trace: parent.Trace, Span: p.tr.NewSpan()},
				Parent: parent.Span,
				Stage:  trace.StageDemandReplay,
				Start:  tstart,
				End:    p.tr.Now(),
				LSN:    uint64(ent.restart),
				Proc:   &p.name,
				Method: method,
			})
		}
	}
	return err
}

// finishOne folds one finished replay into the run's accounting and
// triggers finalization when it was the last.
func (lr *lazyRecovery) finishOne(ent *lazyPending, onDemand, ran bool, scanned int64, d time.Duration, err error) {
	p := lr.p
	lr.mu.Lock()
	lr.remaining--
	last := lr.remaining == 0
	if ran {
		lr.scanned += scanned
		if onDemand {
			lr.onDemand++
		} else {
			lr.background++
		}
		lr.replayTotal += d
		if d > lr.replayMax {
			lr.replayMax = d
		}
	}
	if err != nil {
		if lr.failed == nil {
			lr.failed = make(map[ids.CompID]error)
		}
		lr.failed[ent.cx.parent.id] = err
		if lr.firstErr == nil {
			lr.firstErr = err
		}
		lr.failures.Add(1)
	}
	lr.mu.Unlock()
	if ran {
		if onDemand {
			p.obs.RecoveryLazyOnDemand.Inc()
		} else {
			p.obs.RecoveryLazyBackground.Inc()
		}
		p.obs.RecoveryLazyCtxReplayMicros.Observe(d.Microseconds())
	}
	if last {
		lr.finalize()
	}
}

// replayFailure reports the replay error recorded for id, if any. The
// fast path (no failures anywhere) is a single atomic load, so the
// serve path stays cheap while the engine is attached.
func (lr *lazyRecovery) replayFailure(id ids.CompID) error {
	if lr.failures.Load() == 0 {
		return nil
	}
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.failed[id]
}

// finalize publishes the completed recovery: stats merged from the
// restore plan and the drain's accounting, the recovery.* histograms,
// and the EventRecoveryDone event — the same contract the eager path
// satisfies before returning, delivered here when the last context
// finishes. A clean run then detaches the engine from the process so
// the serve path returns to a bare nil check; a run with failed
// contexts stays attached, keeping the per-context errors addressable.
func (lr *lazyRecovery) finalize() {
	p := lr.p
	if p.crashed.Load() {
		lr.close()
		return
	}
	clock := p.u.cfg.Clock
	stats := lr.plan.stats
	lr.mu.Lock()
	stats.RecordsScanned += lr.scanned
	stats.ContextsOnDemand = lr.onDemand
	stats.ContextsBackground = lr.background
	stats.CtxReplayMaxNanos = int64(lr.replayMax)
	stats.CtxReplayTotalNanos = int64(lr.replayTotal)
	failures := len(lr.failed)
	lr.mu.Unlock()
	stats.WorkersUsed = cap(lr.slots)
	stats.Pass2Duration = clock.Now().Sub(lr.admitStart)
	stats.TotalDuration = clock.Now().Sub(lr.plan.recStart)
	if n := p.ttfcNanos.Load(); n > 0 {
		stats.TimeToFirstCallNanos = n
	}
	replayed := p.replayedCalls.Load()
	suppressed := p.suppressedCalls.Load()
	stats.CallsReplayed = replayed
	stats.CallsSuppressed = suppressed
	p.obs.RecoveryPass2Micros.Observe(time.Since(lr.admitWall).Microseconds())
	p.obs.RecoveryMicros.Observe(time.Since(lr.plan.recWall).Microseconds())
	p.setLastRecovery(stats)
	p.emitEvent(Event{
		Kind:       EventRecoveryDone,
		Restored:   len(lr.plan.restored),
		Replayed:   replayed,
		Suppressed: suppressed,
		Recovery:   &stats,
		Detail: fmt.Sprintf("%d contexts restored, %d replayed on demand, %d in background, %d calls replayed",
			len(lr.plan.restored), stats.ContextsOnDemand, stats.ContextsBackground, replayed),
	})
	if failures == 0 {
		p.lazy.CompareAndSwap(lr, nil)
	}
	lr.close()
}

// stop tears the engine down when the process crashes or closes
// mid-drain: unclaimed contexts get their latches opened (waiters
// proceed into checkAlive and unwind as unavailability), in-flight
// replays see stopCh, and DrainRecovery waiters are released.
func (lr *lazyRecovery) stop() {
	lr.mu.Lock()
	if lr.stopped {
		lr.mu.Unlock()
		return
	}
	lr.stopped = true
	pend := lr.pending
	lr.pending = nil
	lr.mu.Unlock()
	close(lr.stopCh)
	for _, ent := range pend {
		ent.cx.markReady()
	}
	lr.close()
}

func (lr *lazyRecovery) close() {
	lr.closeOnce.Do(func() { close(lr.done) })
}
