package core

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wal"
)

// Batcher mirrors the paper's micro-benchmark: the measurement loop
// runs inside the client component, so one incoming call drives many
// outgoing calls (Section 5.1).
type Batcher struct {
	Server *Ref
	Sum    int
}

func (b *Batcher) RunBatch(method string, n, arg int) (int, error) {
	for i := 0; i < n; i++ {
		res, err := b.Server.Call(method, arg)
		if err != nil {
			return 0, err
		}
		if len(res) == 1 {
			if v, ok := res[0].(int); ok {
				b.Sum += v
			}
		}
	}
	return b.Sum, nil
}

// RunBatchNoArg drives a zero-argument server method n times.
func (b *Batcher) RunBatchNoArg(method string, n int) (int, error) {
	for i := 0; i < n; i++ {
		res, err := b.Server.Call(method)
		if err != nil {
			return 0, err
		}
		if len(res) == 1 {
			if v, ok := res[0].(int); ok {
				b.Sum += v
			}
		}
	}
	return b.Sum, nil
}

// statsDelta runs fn and returns the change in each process's log stats.
func statsDelta(p *Process, fn func()) wal.Stats {
	before := p.LogStats()
	fn()
	after := p.LogStats()
	return wal.Stats{
		Appends:        after.Appends - before.Appends,
		Forces:         after.Forces - before.Forces,
		PhysicalWrites: after.PhysicalWrites - before.PhysicalWrites,
		BytesWritten:   after.BytesWritten - before.BytesWritten,
	}
}

// setup builds client process (machine evo1) and server process
// (machine evo2), hosting Batcher -> target component.
func setupBatch(t *testing.T, cfg Config, serverObj any, serverOpts ...CreateOption) (u *Universe, pc, ps *Process, batch *Ref) {
	t.Helper()
	u = newTestUniverse(t)
	_, pc = startProc(t, u, "evo1", "cli", cfg)
	_, ps = startProc(t, u, "evo2", "srv", cfg)
	hs, err := ps.Create("Server", serverObj, serverOpts...)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pc.Create("Batcher", &Batcher{Server: NewRef(hs.URI())})
	if err != nil {
		t.Fatal(err)
	}
	return u, pc, ps, u.ExternalRef(hb.URI())
}

func TestPersistentToPersistentBatchForces(t *testing.T) {
	// Steady state per inner call (optimized): client forces once at
	// msg3 (the previous msg4 append made the log dirty) and appends
	// msg4; server appends msg1 and forces at msg2 — the paper's "two
	// unbuffered disk writes" per call.
	cfg := testConfig()
	_, pc, ps, ref := setupBatch(t, cfg, &Counter{})
	callInt(t, ref, "RunBatch", "Add", 1, 1) // warm up (learning, creation forces)
	const n = 10
	var cs, ss wal.Stats
	cs = statsDelta(pc, func() {
		ss = statsDelta(ps, func() {
			callInt(t, ref, "RunBatch", "Add", n, 1)
		})
	})
	// The incoming RunBatch itself costs the client 2 forces (external
	// client: msg1 force + msg2 force); each inner call costs 1,
	// except the first, whose msg3 force finds the log already clean
	// from the envelope's msg1 force.
	if want := int64(n + 1); cs.Forces != want {
		t.Errorf("client forces = %d, want %d", cs.Forces, want)
	}
	if want := int64(n); ss.Forces != want {
		t.Errorf("server forces = %d, want %d", ss.Forces, want)
	}
}

func TestPersistentToFunctionalNoLogging(t *testing.T) {
	// Algorithm 4: once the client has learned the server is
	// functional, neither side logs or forces anything for the calls.
	cfg := testConfig()
	_, pc, ps, ref := setupBatch(t, cfg, &Pure{}, WithType(msg.Functional))
	callInt(t, ref, "RunBatch", "Double", 1, 21) // learn server type
	const n = 10
	var cs, ss wal.Stats
	cs = statsDelta(pc, func() {
		ss = statsDelta(ps, func() {
			callInt(t, ref, "RunBatch", "Double", n, 21)
		})
	})
	if ss.Appends != 0 || ss.Forces != 0 {
		t.Errorf("functional server logged: %+v", ss)
	}
	// Client: only the external RunBatch envelope (1 append + 2
	// forces); the inner functional calls log nothing.
	if cs.Appends != 2 || cs.Forces != 2 {
		t.Errorf("client stats = %+v, want 2 appends (msg1+msg2 short)/2 forces", cs)
	}
}

func TestPersistentToReadOnlyLogsReplyUnforced(t *testing.T) {
	// Algorithm 5: the read-only component logs nothing; the
	// persistent caller logs (but does not force) each reply.
	cfg := testConfig()
	u := newTestUniverse(t)
	_, pc := startProc(t, u, "evo1", "cli", cfg)
	_, ps := startProc(t, u, "evo2", "srv", cfg)
	_, pr := startProc(t, u, "evo2", "ro", cfg)

	hc, err := ps.Create("Counter", &Counter{N: 42})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := pr.Create("Prober", &Prober{Server: NewRef(hc.URI())}, WithType(msg.ReadOnly))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pc.Create("Batcher", &Batcher{Server: NewRef(hp.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hb.URI())
	callInt(t, ref, "RunBatchNoArg", "Probe", 1) // learn
	const n = 10
	var cs, rs, ss wal.Stats
	cs = statsDelta(pc, func() {
		rs = statsDelta(pr, func() {
			ss = statsDelta(ps, func() {
				callInt(t, ref, "RunBatchNoArg", "Probe", n)
			})
		})
	})
	if rs.Appends != 0 || rs.Forces != 0 {
		t.Errorf("read-only component logged: %+v", rs)
	}
	// The persistent Counter does not log calls from the read-only
	// component ("at a persistent component, we do not log calls from
	// read-only components").
	if ss.Appends != 0 || ss.Forces != 0 {
		t.Errorf("persistent server logged RO-client calls: %+v", ss)
	}
	// Client: msg4 logged per inner call, no forces for them; plus the
	// external envelope (1 append + 2 forces).
	if want := int64(n + 2); cs.Appends != want {
		t.Errorf("client appends = %d, want %d", cs.Appends, want)
	}
	if cs.Forces != 2 {
		t.Errorf("client forces = %d, want 2 (external envelope only)", cs.Forces)
	}
}

func TestReadOnlyMethodsOnPersistentServer(t *testing.T) {
	// Section 3.3: read-only method calls are treated like calls to a
	// read-only component — no server logging, client logs the reply
	// without forcing.
	cfg := testConfig()
	_, pc, ps, ref := setupBatch(t, cfg, &Counter{N: 7}, WithReadOnlyMethods("Get"))
	callInt(t, ref, "RunBatchNoArg", "Get", 1) // learn the method attribute
	const n = 10
	var cs, ss wal.Stats
	cs = statsDelta(pc, func() {
		ss = statsDelta(ps, func() {
			callInt(t, ref, "RunBatchNoArg", "Get", n)
		})
	})
	if ss.Appends != 0 || ss.Forces != 0 {
		t.Errorf("server logged read-only method calls: %+v", ss)
	}
	if want := int64(n + 2); cs.Appends != want {
		t.Errorf("client appends = %d, want %d", cs.Appends, want)
	}
	if cs.Forces != 2 {
		t.Errorf("client forces = %d, want 2", cs.Forces)
	}
	// And the method still returns correct data.
	if got := callInt(t, ref, "RunBatchNoArg", "Get", 1); got == 0 {
		t.Error("RunBatch Get accumulated nothing")
	}
}

func TestReadOnlyMethodsIgnoredWithoutSpecializedTypes(t *testing.T) {
	cfg := testConfig()
	cfg.SpecializedTypes = false
	_, _, ps, ref := setupBatch(t, cfg, &Counter{N: 7}, WithReadOnlyMethods("Get"))
	callInt(t, ref, "RunBatchNoArg", "Get", 1)
	const n = 5
	ss := statsDelta(ps, func() {
		callInt(t, ref, "RunBatchNoArg", "Get", n)
	})
	// Without the switch, Get is logged like any persistent call.
	if ss.Forces != n {
		t.Errorf("server forces = %d, want %d (no read-only treatment)", ss.Forces, n)
	}
}

// Parent/Sub exercise subordinate co-location.
type Parent struct {
	Total int

	ctx *Ctx
}

func (p *Parent) AttachContext(cx *Ctx) { p.ctx = cx }

func (p *Parent) Deposit(n int) (int, error) {
	sub, ok := p.ctx.Subordinate("vault")
	if !ok {
		var err error
		sub, err = p.ctx.CreateSubordinate("vault", &Vault{})
		if err != nil {
			return 0, err
		}
	}
	res, err := sub.Call("Put", n)
	if err != nil {
		return 0, err
	}
	p.Total = res[0].(int)
	return p.Total, nil
}

type Vault struct {
	Stored int
}

func (v *Vault) Put(n int) (int, error) { v.Stored += n; return v.Stored, nil }

func TestSubordinateCallsAreNotLogged(t *testing.T) {
	cfg := testConfig()
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Parent", &Parent{}, WithSubordinate("vault", &Vault{}))
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	st := statsDelta(p, func() {
		if got := callInt(t, ref, "Deposit", 5); got != 5 {
			t.Errorf("Deposit -> %d", got)
		}
	})
	// Only the external envelope is logged: msg1 + msg2-short, two
	// forces. The parent→subordinate call leaves no trace.
	if st.Appends != 2 || st.Forces != 2 {
		t.Errorf("stats = %+v, want envelope only", st)
	}
}

func TestSubordinateStateRecoveredWithParent(t *testing.T) {
	cfg := testConfig()
	u := newTestUniverse(t)
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Parent", &Parent{}, WithSubordinate("vault", &Vault{}))
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Deposit", 5)
	callInt(t, ref, "Deposit", 7)
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := callInt(t, ref, "Deposit", 1); got != 13 {
		t.Errorf("Deposit after recovery -> %d, want 13", got)
	}
	h2, _ := p2.Lookup("Parent")
	sub, ok := h2.Ctx().Subordinate("vault")
	if !ok {
		t.Fatal("subordinate lost in recovery")
	}
	if v := sub.Object().(*Vault); v.Stored != 13 {
		t.Errorf("vault.Stored = %d, want 13", v.Stored)
	}
}

func TestDynamicSubordinateCreationReplays(t *testing.T) {
	// Parent creates the subordinate lazily inside Deposit; replay
	// must re-create it deterministically.
	cfg := testConfig()
	u := newTestUniverse(t)
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Parent", &Parent{}) // no static subordinate
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Deposit", 3)
	callInt(t, ref, "Deposit", 4)
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := callInt(t, ref, "Deposit", 3); got != 10 {
		t.Errorf("Deposit after recovery -> %d, want 10", got)
	}
}

// Grabber fans out to several servers in one execution (the
// PriceGrabber pattern of Section 5.5.2).
type Grabber struct {
	Stores []string // URIs; resolved per call via ctx
	ctx    *Ctx
}

func (g *Grabber) AttachContext(cx *Ctx) { g.ctx = cx }

func (g *Grabber) Fan(arg int) (int, error) {
	sum := 0
	for _, s := range g.Stores {
		res, err := g.ctx.NewRef(ids.URI(s)).Call("Add", arg)
		if err != nil {
			return 0, err
		}
		sum += res[0].(int)
	}
	return sum, nil
}

func (g *Grabber) FanTwice(arg int) (int, error) {
	a, err := g.Fan(arg)
	if err != nil {
		return 0, err
	}
	b, err := g.Fan(arg)
	return a + b, err
}

func TestMultiCallOptimization(t *testing.T) {
	// Section 3.5: with the optimization, calls to distinct servers
	// within one method execution do not force; a second call to the
	// same server does.
	for _, tc := range []struct {
		multiCall bool
		method    string
		// forces at the grabber per driving call, excluding the
		// external envelope's 2.
		wantInner int64
	}{
		// Without multi-call: 3 distinct servers → force before each
		// send. The first is absorbed by the envelope's msg1 force
		// (nothing new buffered); the 2nd and 3rd follow msg4 appends.
		{false, "Fan", 2},
		// With multi-call: no forces for three distinct servers.
		{true, "Fan", 0},
		// With multi-call, calling the same servers twice: the second
		// round forces per repeated server.
		{true, "FanTwice", 3},
	} {
		cfg := testConfig()
		cfg.MultiCall = tc.multiCall
		u := newTestUniverse(t)
		_, pc := startProc(t, u, "evo1", "cli", cfg)
		_, ps := startProc(t, u, "evo2", "srv", cfg)
		var stores []string
		for _, name := range []string{"S1", "S2", "S3"} {
			hs, err := ps.Create(name, &Counter{})
			if err != nil {
				t.Fatal(err)
			}
			stores = append(stores, string(hs.URI()))
		}
		hg, err := pc.Create("Grabber", &Grabber{Stores: stores})
		if err != nil {
			t.Fatal(err)
		}
		ref := u.ExternalRef(hg.URI())
		callInt(t, ref, tc.method, 1) // warm up
		cs := statsDelta(pc, func() {
			callInt(t, ref, tc.method, 1)
		})
		if got := cs.Forces - 2; got != tc.wantInner {
			t.Errorf("multiCall=%v %s: inner forces = %d, want %d",
				tc.multiCall, tc.method, got, tc.wantInner)
		}
		pc.Close()
		ps.Close()
	}
}
