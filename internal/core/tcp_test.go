package core

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/transport"
)

// TestTCPUniverse runs two processes over real sockets: the same
// runtime, a different Network, exercising gob framing end to end.
func TestTCPUniverse(t *testing.T) {
	// Allocate two loopback ports.
	addrs := make(map[string]string)
	var mu sync.Mutex
	freePort := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a := ln.Addr().String()
		ln.Close()
		return a
	}
	addrs["evo1/cli"] = freePort()
	addrs["evo2/srv"] = freePort()

	tcp := transport.NewTCP()
	defer tcp.Close()
	u, err := NewUniverse(UniverseConfig{
		Dir: t.TempDir(),
		Net: tcp,
		AddrFor: func(machine, process string) string {
			mu.Lock()
			defer mu.Unlock()
			return addrs[machine+"/"+process]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	_, pc := startProc(t, u, "evo1", "cli", cfg)
	ms, ps := startProc(t, u, "evo2", "srv", cfg)
	defer pc.Close()

	hc, err := ps.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pc.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hr.URI())
	for i := 1; i <= 3; i++ {
		if got := callInt(t, ref, "Forward", 2); got != 2*i {
			t.Errorf("Forward -> %d, want %d", got, 2*i)
		}
	}

	// Crash the server and restart it on the same port: the pooled
	// client connection must redial and recovery must hold the state.
	ps.Crash()
	p2, err := ms.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := callInt(t, ref, "Forward", 2); got != 8 {
		t.Errorf("Forward after TCP restart -> %d, want 8", got)
	}
}

func TestConcurrentClientsOneServer(t *testing.T) {
	// Multiple persistent clients hammer one server concurrently; the
	// single-threaded context serializes them and every increment is
	// applied exactly once.
	u := newTestUniverse(t)
	cfg := testConfig()
	_, ps := startProc(t, u, "evoS", "srv", cfg)
	defer ps.Close()
	hc, err := ps.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	const callsEach = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		mName := fmt.Sprintf("evoC%d", c)
		_, pc := startProc(t, u, mName, "cli", cfg)
		defer pc.Close()
		hr, err := pc.Create("Relay", &Relay{Server: NewRef(hc.URI())})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(uri string) {
			defer wg.Done()
			ref := u.ExternalRef(hr.URI())
			for i := 0; i < callsEach; i++ {
				if _, err := ref.Call("Forward", 1); err != nil {
					errs <- err
					return
				}
			}
		}(string(hr.URI()))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final := u.ExternalRef(hc.URI())
	if got := callInt(t, final, "Get"); got != clients*callsEach {
		t.Errorf("counter = %d, want %d", got, clients*callsEach)
	}
}
