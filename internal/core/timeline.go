package core

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/obs/trace"
	"repro/internal/wal"
)

// This file is the offline half of causal tracing: phoenix-trace
// merges flight-recorder dumps (the in-memory spans a crash dump
// preserved) with log scans (the trace-carrying records that survived
// by being durable) into per-trace timelines. The two sources stitch
// on TraceID — the log gives the durable skeleton with LSNs, the dumps
// give the timing — and a call that crossed a crash shows up as one
// trace holding both its pre-crash spans/records and the StageReplay
// span recovery recorded at the same LSN after restart.

// TimelineEvent is one entry of a trace's merged timeline.
type TimelineEvent struct {
	// Kind is "span" (from a flight-recorder dump) or "record" (from a
	// log scan).
	Kind string `json:"kind"`
	// Time is a span's universe-clock start in unix nanoseconds. Log
	// records carry no clock, so a record inherits the time of a span
	// at the same LSN when one survived (0 otherwise — the record still
	// orders by LSN).
	Time int64 `json:"time,omitempty"`
	// Dur is a span's duration in nanoseconds.
	Dur int64 `json:"dur,omitempty"`
	// Stage names a span's leg; Rec names a record's kind.
	Stage  string `json:"stage,omitempty"`
	Rec    string `json:"rec,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	LSN    uint64 `json:"lsn,omitempty"`
	Proc   string `json:"proc,omitempty"`
	Method string `json:"method,omitempty"`
	// Source is the file this event came from (a .ftr dump or a .log).
	Source string `json:"source,omitempty"`
}

// Timeline is every surviving event of one trace, in causal order.
type Timeline struct {
	Trace  uint64          `json:"trace"`
	Events []TimelineEvent `json:"events"`
}

// TraceTimelines builds per-trace timelines from recovery logs and
// flight-recorder dumps. Logs are scanned for trace-carrying records
// (the 0xC4-framed hot kinds); untraced records are skipped. The logs
// must not be concurrently owned by live processes.
func TraceTimelines(logs, dumps []string) ([]Timeline, error) {
	byTrace := make(map[uint64][]TimelineEvent)
	// Successive crashes of a process re-dump the whole ring, so the
	// same span usually appears in several .ftr files; keep one copy.
	type spanKey struct {
		span  uint64
		stage trace.Stage
		start int64
	}
	seen := make(map[spanKey]bool)
	for _, path := range dumps {
		spans, err := trace.LoadDump(path)
		if err != nil {
			return nil, err
		}
		src := filepath.Base(path)
		for _, sp := range spans {
			k := spanKey{sp.Span, sp.Stage, sp.Start}
			if seen[k] {
				continue
			}
			seen[k] = true
			byTrace[sp.Trace] = append(byTrace[sp.Trace], TimelineEvent{
				Kind: "span", Time: sp.Start, Dur: sp.End - sp.Start,
				Stage: sp.Stage.String(), Span: sp.Span, Parent: sp.Parent,
				LSN: sp.LSN, Proc: sp.Proc, Method: sp.Method, Source: src,
			})
		}
	}
	for _, path := range logs {
		if err := scanTraceRecords(path, byTrace); err != nil {
			return nil, err
		}
	}

	out := make([]Timeline, 0, len(byTrace))
	for id, events := range byTrace {
		// A record inherits the earliest span time at its LSN (the
		// WAL-append span, usually), so the text rendering interleaves
		// records where they actually happened.
		lsnTime := make(map[uint64]int64)
		for _, e := range events {
			if e.Kind == "span" && e.LSN != 0 && e.Time != 0 {
				if t, ok := lsnTime[e.LSN]; !ok || e.Time < t {
					lsnTime[e.LSN] = e.Time
				}
			}
		}
		for i := range events {
			if events[i].Kind == "record" {
				events[i].Time = lsnTime[events[i].LSN]
			}
		}
		sort.Slice(events, func(i, j int) bool {
			a, b := events[i], events[j]
			if a.Time != b.Time {
				return a.Time < b.Time
			}
			if a.LSN != b.LSN {
				return a.LSN < b.LSN
			}
			if a.Span != b.Span {
				return a.Span < b.Span
			}
			return a.Kind < b.Kind // "record" before "span" at full ties
		})
		out = append(out, Timeline{Trace: id, Events: events})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trace < out[j].Trace })
	return out, nil
}

// scanTraceRecords appends a record event for every trace-carrying hot
// record in the log at path.
func scanTraceRecords(path string, byTrace map[uint64][]TimelineEvent) error {
	var log wal.Writer
	var err error
	if wal.IsSharded(path) {
		log, err = wal.OpenSet(path, nil, 0)
	} else {
		log, err = wal.Open(path, nil)
	}
	if err != nil {
		return err
	}
	defer log.Close()
	src := filepath.Base(path)
	proc := strings.TrimSuffix(src, ".log")
	scan := func(rec wal.Record) error {
		var tr trace.Ref
		var method string
		switch rec.Type {
		case recIncoming:
			var v incomingRec
			if err := decodeRec(rec.Payload, &v); err != nil {
				return err
			}
			tr, method = v.Trace, v.Call.Method
		case recReplySent:
			var v replySentRec
			if err := decodeRec(rec.Payload, &v); err != nil {
				return err
			}
			tr = v.Trace
		case recReplyContent:
			var v replyContentRec
			if err := decodeRec(rec.Payload, &v); err != nil {
				return err
			}
			tr = v.Trace
		case recOutgoing:
			var v outgoingRec
			if err := decodeRec(rec.Payload, &v); err != nil {
				return err
			}
			tr, method = v.Trace, v.Call.Method
		case recOutgoingReply:
			var v outgoingReplyRec
			if err := decodeRec(rec.Payload, &v); err != nil {
				return err
			}
			tr = v.Trace
		default:
			return nil // cold kinds never carry a trace
		}
		if tr.IsZero() {
			return nil
		}
		byTrace[tr.Trace] = append(byTrace[tr.Trace], TimelineEvent{
			Kind: "record", Rec: recName(rec.Type), Span: tr.Span,
			LSN: uint64(rec.LSN), Proc: proc, Method: method, Source: src,
		})
		return nil
	}
	for _, sh := range log.Shards() {
		if err := sh.Log.Scan(ids.NilLSN, scan); err != nil {
			return err
		}
	}
	return nil
}

// DiscoverTraceFiles pairs every <proc>.log in dir with its
// flight-recorder dumps (<proc>.ftr.N) — the layout Process.Crash
// writes. It recurses one level (a universe dir holds one subdirectory
// per machine).
func DiscoverTraceFiles(dir string) (logs, dumps []string, err error) {
	for _, pattern := range []string{"*", filepath.Join("*", "*")} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return nil, nil, err
		}
		for _, m := range matches {
			switch {
			case strings.HasSuffix(m, ".log"):
				logs = append(logs, m)
			case strings.Contains(filepath.Base(m), ".ftr."):
				dumps = append(dumps, m)
			}
		}
	}
	sort.Strings(logs)
	sort.Strings(dumps)
	return logs, dumps, nil
}

// WriteTimelines renders timelines as text, one block per trace:
// events in causal order, offsets relative to the trace's first timed
// event, span durations in milliseconds of universe time.
func WriteTimelines(w io.Writer, tls []Timeline) {
	for _, tl := range tls {
		fmt.Fprintf(w, "trace %016x: %d events\n", tl.Trace, len(tl.Events))
		base := int64(0)
		for _, e := range tl.Events {
			if e.Time > 0 {
				base = e.Time
				break
			}
		}
		for _, e := range tl.Events {
			at := "-"
			if e.Time > 0 {
				at = fmt.Sprintf("%+.3fms", float64(e.Time-base)/1e6)
			}
			switch e.Kind {
			case "span":
				fmt.Fprintf(w, "  %12s  span %-17s %9.3fms", at, e.Stage, float64(e.Dur)/1e6)
			default:
				fmt.Fprintf(w, "  %12s  rec  %-17s %11s", at, e.Rec, "")
			}
			if e.LSN > 0 {
				fmt.Fprintf(w, "  lsn=%d", e.LSN)
			}
			if e.Proc != "" {
				fmt.Fprintf(w, "  proc=%s", e.Proc)
			}
			if e.Method != "" {
				fmt.Fprintf(w, "  %s", e.Method)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}
