package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestChaosExactlyOnce drives a persistent three-tier chain while
// crashing the middle and bottom tiers repeatedly at random
// interception points (not just between calls — during them), with the
// recovery service restarting everything. The end state must show
// every driver call applied exactly once.
func TestChaosExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	points := []InjectionPoint{
		PointServerBeforeLogIncoming,
		PointServerAfterLogIncoming,
		PointServerAfterExecute,
		PointServerBeforeSendReply,
		PointClientBeforeForceSend,
		PointClientAfterForceSend,
		PointClientAfterReply,
	}
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		for trial := 0; trial < 3; trial++ {
			t.Run(fmt.Sprintf("%v/trial%d", mode, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(31*trial + 7 + int(mode))))
				u := newTestUniverse(t)
				base := Config{
					LogMode:          mode,
					SpecializedTypes: true,
					RetryInterval:    time.Millisecond,
					RetryLimit:       5000,
					SaveStateEvery:   7,
					CheckpointEvery:  15,
				}
				injRelay := NewInjector()
				injCnt := NewInjector()
				relayCfg, cntCfg := base, base
				relayCfg.Injector = injRelay
				cntCfg.Injector = injCnt

				_, pDrv := startProc(t, u, "m-drv", "drv", base)
				mRel, pRel := startProc(t, u, "m-rel", "rel", relayCfg)
				mCnt, pCnt := startProc(t, u, "m-cnt", "cnt", cntCfg)
				mRel.EnableAutoRestart(relayCfg, time.Millisecond)
				mCnt.EnableAutoRestart(cntCfg, time.Millisecond)
				defer pDrv.Close()

				hc, err := pCnt.Create("Counter", &Counter{})
				if err != nil {
					t.Fatal(err)
				}
				hr, err := pRel.Create("Relay", &Relay{Server: NewRef(hc.URI())})
				if err != nil {
					t.Fatal(err)
				}
				hd, err := pDrv.Create("Driver", &Driver{Relay: NewRef(hr.URI())})
				if err != nil {
					t.Fatal(err)
				}
				ref := u.ExternalRef(hd.URI())

				const calls = 30
				crashes := 0
				for i := 0; i < calls; i++ {
					// Arm a random injection every few calls,
					// alternating victims.
					if i%4 == 1 {
						pt := points[rng.Intn(len(points))]
						if rng.Intn(2) == 0 {
							injRelay.CrashAt(pt, 1)
						} else {
							injCnt.CrashAt(pt, 1)
						}
						crashes++
					}
					if got := callInt(t, ref, "Go", 1); got != i+1 {
						t.Fatalf("call %d -> %d (lost or duplicated work)", i, got)
					}
				}

				// Verify on the final recovered instance.
				pc, ok := mCnt.Process("cnt")
				if !ok {
					t.Fatal("counter process gone")
				}
				h, ok := pc.Lookup("Counter")
				if !ok {
					t.Fatal("Counter gone")
				}
				final := u.ExternalRef(h.URI())
				if got := callInt(t, final, "Get"); got != calls {
					t.Fatalf("counter = %d, want %d after %d armed crashes", got, calls, crashes)
				}
				if p, ok := mRel.Process("rel"); ok {
					p.Close()
				}
				if p, ok := mCnt.Process("cnt"); ok {
					p.Close()
				}
			})
		}
	}
}

// TestSimultaneousCrashOfBothTiers crashes the relay and the counter at
// the same moment mid-workload; both recover (the relay's tail replay
// retries against the still-recovering counter) and exactly-once holds.
func TestSimultaneousCrashOfBothTiers(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.RetryInterval = time.Millisecond
	cfg.RetryLimit = 5000
	_, pDrv := startProc(t, u, "m-drv", "drv", cfg)
	mRel, pRel := startProc(t, u, "m-rel", "rel", cfg)
	mCnt, pCnt := startProc(t, u, "m-cnt", "cnt", cfg)
	defer pDrv.Close()

	hc, _ := pCnt.Create("Counter", &Counter{})
	hr, _ := pRel.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	hd, _ := pDrv.Create("Driver", &Driver{Relay: NewRef(hr.URI())})
	ref := u.ExternalRef(hd.URI())

	for i := 1; i <= 5; i++ {
		callInt(t, ref, "Go", 1)
	}
	// Both tiers die together.
	pRel.Crash()
	pCnt.Crash()

	// Restart in the inconvenient order: relay first, so its recovery
	// tail (if any) must retry against a dead counter until it
	// returns.
	done := make(chan int, 1)
	go func() {
		res, err := ref.Call("Go", 1)
		if err != nil {
			done <- -1
			return
		}
		done <- res[0].(int)
	}()
	if _, err := mRel.StartProcess("rel", cfg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	p2, err := mCnt.StartProcess("cnt", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if pr, ok := mRel.Process("rel"); ok {
		defer pr.Close()
	}

	select {
	case got := <-done:
		if got != 6 {
			t.Fatalf("post-crash call -> %d, want 6", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("call never completed after double restart")
	}
	h, _ := p2.Lookup("Counter")
	if got := h.Object().(*Counter).N; got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
}
