package core

import (
	"repro/internal/msg"

	"testing"
)

// TestAutoTrimReclaimsLogSpace: with checkpointing and AutoTrimLog on,
// a long workload's log stays bounded — dead segments are deleted once
// every restart point has moved past them — and recovery still works.
func TestAutoTrimReclaimsLogSpace(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.SaveStateEvery = 20
	cfg.CheckpointEvery = 40
	cfg.AutoTrimLog = true
	m, p := startProc(t, u, "evo1", "srv", cfg)
	p.SetLogSegmentBytes(4 * 1024)
	h, err := p.Create("KV", &KVStore{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	const calls = 600
	for i := 0; i < calls; i++ {
		if _, err := ref.Call("Set", "k", "some-reasonably-long-value-to-grow-the-log"); err != nil {
			t.Fatal(err)
		}
	}
	st := p.LogStats()
	if st.TrimmedBytes == 0 {
		t.Fatal("nothing was trimmed")
	}
	if st.Segments > 8 {
		t.Errorf("log kept %d segments; trimming is not keeping up", st.Segments)
	}

	// Recovery from the trimmed log.
	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatalf("recover from trimmed log: %v", err)
	}
	defer p2.Close()
	res, err := ref.Call("Snapshot")
	if err != nil {
		t.Fatal(err)
	}
	got := res[0].(map[string]string)
	if got["k"] != "some-reasonably-long-value-to-grow-the-log" {
		t.Errorf("recovered value = %q", got["k"])
	}
	h2, _ := p2.Lookup("KV")
	if ops := h2.Object().(*KVStore).Ops; ops != calls {
		t.Errorf("recovered ops = %d, want %d", ops, calls)
	}
}

// TestTrimKeepsStatelessComponents: stateless contexts get re-emitted
// creation records at checkpoints, so trimming does not lose them.
func TestTrimKeepsStatelessComponents(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.SaveStateEvery = 10
	cfg.CheckpointEvery = 20
	cfg.AutoTrimLog = true
	m, p := startProc(t, u, "evo1", "srv", cfg)
	p.SetLogSegmentBytes(2 * 1024)

	if _, err := p.Create("Pure", &Pure{}, WithType(msg.Functional)); err != nil {
		t.Fatal(err)
	}
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 200; i++ {
		callInt(t, ref, "Add", 1)
	}
	if p.LogStats().TrimmedBytes == 0 {
		t.Fatal("nothing was trimmed")
	}
	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// The functional component survived trimming via its re-emitted
	// creation record.
	pure := u.ExternalRef(MakeURIForTest("evo1", "srv", "Pure"))
	if got := callInt(t, pure, "Double", 4); got != 8 {
		t.Errorf("functional after trim+recovery: %d", got)
	}
	if got := callInt(t, ref, "Get"); got != 200 {
		t.Errorf("counter after trim+recovery = %d", got)
	}
}

// TestManualTrimBeforeCheckpointIsNoop: without a durable checkpoint,
// recovery scans from the log start, so nothing may be trimmed.
func TestManualTrimBeforeCheckpointIsNoop(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	p.SetLogSegmentBytes(1024)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 100; i++ {
		callInt(t, ref, "Add", 1)
	}
	if err := p.TrimLog(); err != nil {
		t.Fatal(err)
	}
	if got := p.LogStats().TrimmedBytes; got != 0 {
		t.Errorf("trimmed %d bytes without a checkpoint", got)
	}
}
