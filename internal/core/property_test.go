package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// KVStore is a component with richer state for equivalence testing.
type KVStore struct {
	Data map[string]string
	Ops  int
}

func (s *KVStore) Set(k, v string) (int, error) {
	if s.Data == nil {
		s.Data = make(map[string]string)
	}
	s.Data[k] = v
	s.Ops++
	return s.Ops, nil
}

func (s *KVStore) Del(k string) (int, error) {
	delete(s.Data, k)
	s.Ops++
	return s.Ops, nil
}

func (s *KVStore) Append(k, v string) (int, error) {
	if s.Data == nil {
		s.Data = make(map[string]string)
	}
	s.Data[k] += v
	s.Ops++
	return s.Ops, nil
}

func (s *KVStore) Snapshot() (map[string]string, error) {
	cp := make(map[string]string, len(s.Data))
	for k, v := range s.Data {
		cp[k] = v
	}
	return cp, nil
}

type kvOp struct {
	kind byte // 0 set, 1 del, 2 append, 3 save-state, 4 checkpoint
	k, v string
}

func applyRef(t *testing.T, ref *Ref, h *Handle, p *Process, op kvOp) {
	t.Helper()
	var err error
	switch op.kind {
	case 0:
		_, err = ref.Call("Set", op.k, op.v)
	case 1:
		_, err = ref.Call("Del", op.k)
	case 2:
		_, err = ref.Call("Append", op.k, op.v)
	case 3:
		err = h.SaveState()
	case 4:
		err = p.Checkpoint()
	}
	if err != nil {
		t.Fatalf("op %+v: %v", op, err)
	}
}

func applyModel(m map[string]string, op kvOp) {
	switch op.kind {
	case 0:
		m[op.k] = op.v
	case 1:
		delete(m, op.k)
	case 2:
		m[op.k] += op.v
	}
}

func randOps(rng *rand.Rand, n int) []kvOp {
	keys := []string{"a", "b", "c", "d"}
	ops := make([]kvOp, n)
	for i := range ops {
		op := kvOp{
			kind: byte(rng.Intn(5)),
			k:    keys[rng.Intn(len(keys))],
			v:    fmt.Sprintf("v%d", rng.Intn(100)),
		}
		// Keep mutations dominant so there is state to recover.
		if op.kind >= 3 && rng.Intn(3) != 0 {
			op.kind = byte(rng.Intn(3))
		}
		ops[i] = op
	}
	return ops
}

// TestCrashRecoveryEquivalenceProperty: for random workloads with
// random checkpoint placement and a crash at a random position, the
// recovered component state equals a model that applied exactly the
// completed operations. Every external call is acknowledged only after
// its effects are forced (Algorithm 3), so nothing acknowledged may be
// lost.
func TestCrashRecoveryEquivalenceProperty(t *testing.T) {
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		for trial := 0; trial < 10; trial++ {
			rng := rand.New(rand.NewSource(int64(101*trial + 7 + int(mode))))
			ops := randOps(rng, 5+rng.Intn(25))
			crashAt := rng.Intn(len(ops) + 1)

			u := newTestUniverse(t)
			cfg := testConfig()
			cfg.LogMode = mode
			m, p := startProc(t, u, "evo1", "srv", cfg)
			h, err := p.Create("KV", &KVStore{})
			if err != nil {
				t.Fatal(err)
			}
			ref := u.ExternalRef(h.URI())
			model := make(map[string]string)
			for i := 0; i < crashAt; i++ {
				applyRef(t, ref, h, p, ops[i])
				applyModel(model, ops[i])
			}
			p.Crash()

			p2, err := m.StartProcess("srv", cfg)
			if err != nil {
				t.Fatalf("mode=%v trial=%d: restart: %v", mode, trial, err)
			}
			res, err := ref.Call("Snapshot")
			if err != nil {
				t.Fatalf("mode=%v trial=%d: snapshot: %v", mode, trial, err)
			}
			got := res[0].(map[string]string)
			if len(got) == 0 && len(model) == 0 {
				p2.Close()
				continue
			}
			if !reflect.DeepEqual(got, model) {
				t.Errorf("mode=%v trial=%d crashAt=%d:\n got %v\nwant %v",
					mode, trial, crashAt, got, model)
			}
			// The recovered component must also keep working.
			applyRef(t, ref, h, p2, kvOp{kind: 0, k: "post", v: "crash"})
			p2.Close()
		}
	}
}
