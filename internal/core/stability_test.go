package core

import (
	"testing"

	"repro/internal/ids"
)

// TestRepeatedRecoveryDoesNotGrowLog: replay must not re-log the
// messages it replays — otherwise every crash/recover cycle would
// inflate the log and slow the next recovery. Crashing and recovering
// the same process repeatedly, with no new work in between, must leave
// the log end exactly where it was.
func TestRepeatedRecoveryDoesNotGrowLog(t *testing.T) {
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		u := newTestUniverse(t)
		cfg := testConfig()
		cfg.LogMode = mode
		m, p := startProc(t, u, "evo1", "srv", cfg)
		h, err := p.Create("KV", &KVStore{})
		if err != nil {
			t.Fatal(err)
		}
		ref := u.ExternalRef(h.URI())
		for i := 0; i < 20; i++ {
			if _, err := ref.Call("Set", "k", "v"); err != nil {
				t.Fatal(err)
			}
		}

		logEnd := func(p *Process) (end ids.LSN) {
			for _, sh := range p.log.Shards() {
				end = sh.Log.End()
			}
			return end
		}
		var end ids.LSN
		cur := p
		for cycle := 0; cycle < 4; cycle++ {
			cur.Crash()
			p2, err := m.StartProcess("srv", cfg)
			if err != nil {
				t.Fatalf("%v cycle %d: %v", mode, cycle, err)
			}
			if cycle == 0 {
				end = logEnd(p2)
			} else if logEnd(p2) != end {
				t.Fatalf("%v cycle %d: log end moved from %v to %v — replay re-logged messages",
					mode, cycle, end, logEnd(p2))
			}
			cur = p2
		}
		// The state is still correct after four recovery generations.
		res, err := ref.Call("Snapshot")
		if err != nil {
			t.Fatal(err)
		}
		if got := res[0].(map[string]string)["k"]; got != "v" {
			t.Errorf("%v: recovered value %q", mode, got)
		}
		h2, _ := cur.Lookup("KV")
		if ops := h2.Object().(*KVStore).Ops; ops != 20 {
			t.Errorf("%v: ops = %d, want 20", mode, ops)
		}
		cur.Close()
	}
}

// TestRecoveryIdempotentForDuplicates: after any number of recovery
// generations, a persistent client's duplicate of its last call is
// still answered without re-execution (conditions 1+3 composed).
func TestRecoveryIdempotentForDuplicates(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	m, pa := startProc(t, u, "evo1", "cli", cfg)
	_ = m
	mb, pb := startProc(t, u, "evo2", "srv", cfg)
	defer pa.Close()
	hc, _ := pb.Create("Counter", &Counter{})
	hr, _ := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	ref := u.ExternalRef(hr.URI())
	callInt(t, ref, "Forward", 2)
	callInt(t, ref, "Forward", 2)

	cur := pb
	for cycle := 0; cycle < 3; cycle++ {
		cur.Crash()
		p2, err := mb.StartProcess("srv", cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur = p2
	}
	// New work continues with correct sequencing after three cycles.
	if got := callInt(t, ref, "Forward", 2); got != 6 {
		t.Errorf("Forward after 3 recovery generations -> %d, want 6", got)
	}
	cur.Close()
}
