package core

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/wal"
)

// hotRecCases pairs each hot record kind with a representative value.
var hotRecCases = []struct {
	t wal.RecordType
	v any
}{
	{recIncoming, &incomingRec{Ctx: 3, Call: msg.Call{
		ID:     ids.CallID{Caller: ids.ComponentAddr{Machine: "evo1", Proc: 2, Comp: 5}, Seq: 9},
		Target: "phoenix://evo2/srv/Server", Method: "Add",
		Args: []byte{1, 2, 3}, NumArgs: 1,
		CallerType: msg.Persistent, CallerURI: "phoenix://evo1/cli/B",
		ReadOnly: false, KnowsServer: true,
	}}},
	{recReplySent, &replySentRec{Ctx: 4, CallID: ids.CallID{
		Caller: ids.ComponentAddr{Machine: "m", Proc: 1, Comp: 1}, Seq: 100}}},
	{recReplyContent, &replyContentRec{Ctx: 5,
		CallID: ids.CallID{Caller: ids.ComponentAddr{Machine: "m"}, Seq: 2},
		Reply: msg.Reply{Results: []byte{7}, NumResults: 1, AppErr: "e",
			HasAttachment: true, ServerType: msg.Persistent}}},
	{recOutgoing, &outgoingRec{Ctx: 6, Call: msg.Call{Method: "M", NumArgs: 0}}},
	{recOutgoingReply, &outgoingReplyRec{Ctx: 7, Seq: 41,
		Reply: msg.Reply{Fault: "gone", MethodReadOnly: true}}},
	// Traced variants frame as recBinVerTraced; the trace rides the
	// header, and decode restores it into the embedded message too.
	{recIncoming, &incomingRec{Ctx: 8, Trace: trace.Ref{Trace: 0xAB00000001, Span: 7},
		Call: msg.Call{Method: "Add", Args: []byte{9}, NumArgs: 1,
			Trace: trace.Ref{Trace: 0xAB00000001, Span: 7}}}},
	{recReplySent, &replySentRec{Ctx: 9, Trace: trace.Ref{Trace: 0xCD00000002, Span: 11},
		CallID: ids.CallID{Caller: ids.ComponentAddr{Machine: "m", Proc: 2, Comp: 3}, Seq: 5}}},
	{recOutgoingReply, &outgoingReplyRec{Ctx: 10, Seq: 42,
		Trace: trace.Ref{Trace: 0xEF00000003, Span: 13},
		Reply: msg.Reply{Results: []byte{4}, NumResults: 1,
			Trace: trace.Ref{Trace: 0xEF00000003, Span: 13}}}},
}

// TestRecordCodecRoundTrip: every hot record kind must round-trip
// through the binary payload codec, and the legacy gob payload of the
// same value must decode to the identical struct (format parity).
func TestRecordCodecRoundTrip(t *testing.T) {
	for _, tc := range hotRecCases {
		name := recName(tc.t)
		bin, err := appendRecInto(nil, tc.t, tc.v)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		wantVer := byte(recBinVer)
		if tv, ok := tc.v.(traceable); ok && !tv.traceRef().IsZero() {
			wantVer = recBinVerTraced
		}
		if bin[0] != wantVer || bin[1] != byte(tc.t) {
			t.Fatalf("%s: header % x, want %#x %#x", name, bin[:2], wantVer, byte(tc.t))
		}
		legacy, err := encodeRec(tc.v)
		if err != nil {
			t.Fatalf("%s: gob encode: %v", name, err)
		}

		fromBin := reflect.New(reflect.TypeOf(tc.v).Elem()).Interface()
		if err := decodeRec(bin, fromBin); err != nil {
			t.Fatalf("%s: decode binary: %v", name, err)
		}
		fromGob := reflect.New(reflect.TypeOf(tc.v).Elem()).Interface()
		if err := decodeRec(legacy, fromGob); err != nil {
			t.Fatalf("%s: decode legacy: %v", name, err)
		}
		if !recEqual(fromBin, tc.v) {
			t.Errorf("%s: binary round trip mismatch:\n  got  %+v\n  want %+v", name, fromBin, tc.v)
		}
		if !recEqual(fromBin, fromGob) {
			t.Errorf("%s: binary and legacy decodes differ:\n  bin %+v\n  gob %+v", name, fromBin, fromGob)
		}
	}
}

// recEqual is reflect.DeepEqual modulo the nil-versus-empty byte slice
// distinction, which neither codec preserves.
func recEqual(a, b any) bool {
	norm := func(v any) any {
		switch r := v.(type) {
		case *incomingRec:
			c := *r
			c.Call.Args = append([]byte{}, c.Call.Args...)
			return &c
		case *outgoingRec:
			c := *r
			c.Call.Args = append([]byte{}, c.Call.Args...)
			return &c
		case *replyContentRec:
			c := *r
			c.Reply.Results = append([]byte{}, c.Reply.Results...)
			return &c
		case *outgoingReplyRec:
			c := *r
			c.Reply.Results = append([]byte{}, c.Reply.Results...)
			return &c
		}
		return v
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

// TestRecordCodecKindMismatch: a binary payload whose kind byte does
// not match the struct the frame type selected must be rejected.
func TestRecordCodecKindMismatch(t *testing.T) {
	bin, err := appendRecInto(nil, recIncoming, &incomingRec{Ctx: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rs replySentRec
	if err := decodeRec(bin, &rs); err == nil {
		t.Fatal("incoming payload decoded into replySentRec")
	}
}

// TestMixedFormatRecovery: a log whose prefix was written by the
// legacy gob record codec, whose middle is untraced binary, and whose
// tail is traced binary must recover exactly — the upgrade scenario
// for logs that predate the codec and then predate tracing. The
// pre-trace phases are written by an untraced process, so their bytes
// are bit-for-bit what PR-5 produced.
func TestMixedFormatRecovery(t *testing.T) {
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		u := newTestUniverse(t)
		cfg := testConfig()
		cfg.LogMode = mode
		m, p := startProc(t, u, "evo1", "srv", cfg)
		h, err := p.Create("Counter", &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		ref := u.ExternalRef(h.URI())

		// Phase 1: records in the legacy gob format (the pre-codec log).
		legacyRecEncoding = true
		for i := 0; i < 5; i++ {
			callInt(t, ref, "Add", 2)
		}
		// Phase 2: the binary format, appended to the same log.
		legacyRecEncoding = false
		for i := 0; i < 3; i++ {
			callInt(t, ref, "Add", 3)
		}
		p.Crash()

		before := obs.Default().Counter(obs.CodecLegacyDecodes).Load()
		p2, err := m.StartProcess("srv", cfg)
		if err != nil {
			t.Fatalf("%v: restart: %v", mode, err)
		}
		if !p2.Recovered() {
			t.Errorf("%v: restarted process did not recover", mode)
		}
		if got := callInt(t, ref, "Get"); got != 19 {
			t.Errorf("%v: recovered counter = %d, want 19", mode, got)
		}
		if got := callInt(t, ref, "Add", 1); got != 20 {
			t.Errorf("%v: post-recovery Add -> %d, want 20", mode, got)
		}
		if after := obs.Default().Counter(obs.CodecLegacyDecodes).Load(); after <= before {
			t.Errorf("%v: recovery of a mixed log did not count any legacy decodes", mode)
		}

		// Phase 3: crash again and restart with a flight recorder — the
		// tracing upgrade on the same log. Replay of the pre-trace
		// prefix is unchanged; new traffic appends 0xC4-framed traced
		// records alongside it.
		p2.Crash()
		cfgTraced := cfg
		cfgTraced.Trace = trace.NewRecorder(trace.Options{
			Name: "mixed", Metrics: obs.NewRegistry()})
		p3, err := m.StartProcess("srv", cfgTraced)
		if err != nil {
			t.Fatalf("%v: traced restart: %v", mode, err)
		}
		if got := callInt(t, ref, "Add", 5); got != 25 {
			t.Errorf("%v: traced Add -> %d, want 25", mode, got)
		}
		if got := callInt(t, ref, "Add", 5); got != 30 {
			t.Errorf("%v: traced Add -> %d, want 30", mode, got)
		}
		p3.Crash()

		// Final restart replays all three formats from one log — gob,
		// untraced binary, traced binary — back in an untraced process.
		before = obs.Default().Counter(obs.CodecLegacyDecodes).Load()
		p4, err := m.StartProcess("srv", cfg)
		if err != nil {
			t.Fatalf("%v: final restart: %v", mode, err)
		}
		if got := callInt(t, ref, "Get"); got != 30 {
			t.Errorf("%v: counter after three-format recovery = %d, want 30", mode, got)
		}
		if after := obs.Default().Counter(obs.CodecLegacyDecodes).Load(); after <= before {
			t.Errorf("%v: three-format recovery did not count any legacy decodes", mode)
		}
		p4.Close()

		// The closed log must actually hold traced frames (the phase-3
		// tail) next to the legacy ones just replayed.
		log, err := wal.Open(p4.LogDir(), nil)
		if err != nil {
			t.Fatal(err)
		}
		traced := 0
		if err := log.Scan(ids.NilLSN, func(rec wal.Record) error {
			if len(rec.Payload) > 0 && rec.Payload[0] == recBinVerTraced {
				traced++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		log.Close()
		if traced == 0 {
			t.Errorf("%v: no traced (0x%x) records in the mixed log", mode, recBinVerTraced)
		}
	}
}

// TestMixedFormatRecoveryCrossProcess runs the upgrade scenario across
// two processes, so outgoing-call and outgoing-reply records (messages
// 3-4) cross the format boundary too, then crashes the CLIENT — replay
// must consume legacy and binary outgoing-reply records alike.
func TestMixedFormatRecoveryCrossProcess(t *testing.T) {
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		u := newTestUniverse(t)
		cfg := testConfig()
		cfg.LogMode = mode
		_, ps := startProc(t, u, "evo2", "srv", cfg)
		mc, pc := startProc(t, u, "evo1", "cli", cfg)
		hs, err := ps.Create("Server", &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		hb, err := pc.Create("Batcher", &AllocBatcher{Server: NewRef(hs.URI())})
		if err != nil {
			t.Fatal(err)
		}
		ref := u.ExternalRef(hb.URI())

		// Counter.Add returns the running total, so the batcher's sum
		// after n calls is 1+2+…+n of the server's counter values.
		legacyRecEncoding = true
		if got := callInt(t, ref, "RunBatch", 4); got != 10 {
			t.Fatalf("%v: legacy batch sum = %d, want 10", mode, got)
		}
		legacyRecEncoding = false
		if got := callInt(t, ref, "RunBatch", 3); got != 28 {
			t.Fatalf("%v: binary batch sum = %d, want 28", mode, got)
		}
		pc.Crash()

		pc2, err := mc.StartProcess("cli", cfg)
		if err != nil {
			t.Fatalf("%v: restart: %v", mode, err)
		}
		if !pc2.Recovered() {
			t.Errorf("%v: restarted client did not recover", mode)
		}
		if got := callInt(t, ref, "RunBatch", 1); got != 36 {
			t.Errorf("%v: post-recovery batch sum = %d, want 36", mode, got)
		}
		pc2.Close()
		ps.Close()
	}
}
