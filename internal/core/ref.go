package core

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs/trace"
	"repro/internal/rpc"
)

// Ref is a proxy to a component in another context — the client half of
// the message interceptor pair. A Ref owned by a context attaches the
// context's identity (condition 2), applies the client-side logging
// discipline for messages 3 and 4, repeats failed calls with the same
// call ID (condition 4), and learns server component types from reply
// attachments (Section 3.4). An external Ref (from Universe.ExternalRef)
// attaches no identity and logs nothing.
type Ref struct {
	u        *Universe
	p        *Process // nil for external refs
	owner    *Context // nil for external refs
	target   ids.URI
	external bool

	// noRetry makes an external ref fail immediately on server
	// unavailability instead of redriving (external components have no
	// retry obligation; persistent callers always retry).
	noRetry bool
}

// NewRef returns an unbound proxy for the target component. Assign it
// to an exported *Ref field of a component before Create: the runtime
// binds it to the component's context, outgoing calls then carry the
// context's identity, and checkpoints save it as the target URI. An
// unbound Ref cannot be called.
func NewRef(target ids.URI) *Ref {
	return &Ref{target: target}
}

// bindRefs walks the exported top-level fields of a component object
// and binds any non-nil *Ref to the hosting context (the field-level
// analogue of obtaining a remoting proxy inside a .NET context).
func bindRefs(cx *Context, obj any) {
	v := reflect.ValueOf(obj).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if !t.Field(i).IsExported() || t.Field(i).Type != refPtrType {
			continue
		}
		if f := v.Field(i); !f.IsNil() {
			r := f.Interface().(*Ref)
			r.u, r.p, r.owner = cx.p.u, cx.p, cx
		}
	}
}

var refPtrType = reflect.TypeOf((*Ref)(nil))

// PhoenixURI implements serial.RemoteRef: a checkpointed component
// field holding a Ref is saved as the target URI and re-resolved on
// restore.
func (r *Ref) PhoenixURI() ids.URI { return r.target }

// Target returns the URI the proxy calls.
func (r *Ref) Target() ids.URI { return r.target }

// WithoutRetry returns a copy of an external ref that surfaces server
// unavailability immediately.
func (r *Ref) WithoutRetry() *Ref {
	cp := *r
	cp.noRetry = true
	return &cp
}

// ErrUnavailable reports that the callee stayed unreachable for the
// whole retry window.
var ErrUnavailable = errors.New("core: component unavailable")

// AppError is an error returned by the remote method itself (the
// component is alive; retrying would not help).
type AppError struct{ Msg string }

func (e *AppError) Error() string { return e.Msg }

// Fault is an infrastructure error from the server runtime (no such
// component, no such method, argument mismatch) — the paper's "invalid
// argument exception indicates an error, but the remote component is
// still alive". Not retried.
type Fault struct{ Msg string }

func (e *Fault) Error() string { return "core: fault: " + e.Msg }

// Call invokes method on the target component and returns its results.
// A trailing error declared by the method surfaces as *AppError.
func (r *Ref) Call(method string, args ...any) ([]any, error) {
	if r.u == nil {
		return nil, fmt.Errorf("core: ref to %s is not bound to a context (assign it to a component field before Create, or use Ctx.NewRef / Universe.ExternalRef)", r.target)
	}
	argBytes, n, err := rpc.EncodeArgs(args...)
	if err != nil {
		return nil, err
	}
	call := &msg.Call{Target: r.target, Method: method, Args: argBytes, NumArgs: n}

	var reply *msg.Reply
	if r.owner == nil {
		reply, err = r.externalCall(call)
	} else {
		reply, err = r.owner.outgoingCall(call)
	}
	if err != nil {
		return nil, err
	}
	if reply.AppErr != "" {
		return nil, &AppError{Msg: reply.AppErr}
	}
	results, err := rpc.DecodeResults(reply.Results)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// externalCall sends with no identity and no logging. External clients
// may still redrive unavailable servers (a user hitting reload); the
// runtime gives them the same retry loop but none of the guarantees —
// without a call ID the server cannot eliminate duplicates.
func (r *Ref) externalCall(call *msg.Call) (*msg.Reply, error) {
	call.CallerType = msg.External
	cfg := Config{} // defaults
	tr := r.u.cfg.Trace
	if r.p != nil {
		cfg = r.p.cfg
		if r.p.tr != nil {
			tr = r.p.tr
		}
	}
	// Every external interaction roots a fresh trace (nil recorder →
	// zero Ref, i.e. untraced): the TraceID rides the 0xC6 envelope to
	// the server and from there into every log record the call produces.
	call.Trace = tr.NewTrace()
	retries := cfg.retryLimit()
	if r.noRetry {
		retries = 1
	}
	return r.u.send(call, retries, cfg.retryInterval(), nil, "external", tr)
}

// outgoingCall is the client interceptor for calls from inside a
// context: messages 3 and 4 of Figure 1.
func (cx *Context) outgoingCall(call *msg.Call) (*msg.Reply, error) {
	p := cx.p
	p.checkAlive()

	// Condition 2: attach the globally unique, deterministically
	// derived call ID. The sequence advances identically during replay,
	// so a replayed call re-derives the same ID.
	cx.lastOutSeq++
	seq := cx.lastOutSeq
	call.ID = ids.CallID{Caller: cx.addr(), Seq: seq}
	call.CallerType = cx.parent.ctype
	call.CallerURI = cx.uri

	// Causal tracing: the outgoing call is a child leg of the incoming
	// call this context is executing (or, during replay, of the original
	// call restored into curTrace) — its span ID is minted here and
	// becomes the parent of the server-side and transport spans.
	var outStart int64
	if p.tr != nil && !cx.curTrace.IsZero() {
		outStart = p.tr.Now()
		call.Trace = trace.Ref{Trace: cx.curTrace.Trace, Span: p.tr.NewSpan()}
	}

	// What do we know about the server (Section 3.4)? Unknown servers
	// get the most conservative treatment: persistent.
	serverType, roMethod, known := p.remoteTypes.lookup(call.Target, call.Method)
	call.KnowsServer = known
	// The adaptive controller honors learned read-only attachments even
	// when the static specialized-types switch is off: an adaptive
	// read-only promotion travels as MethodReadOnly and earns the
	// Algorithm 5 client treatment here.
	roCall := (p.cfg.SpecializedTypes || p.adaptive != nil) && (serverType == msg.ReadOnly || roMethod)
	call.ReadOnly = roCall

	// Replay: suppress the outgoing call if its reply is on the log
	// ("An outgoing call is suppressed by the message interceptor if a
	// reply to the call is found in the log", Section 2.5). A missing
	// reply means the log ends here: normal execution resumes and the
	// call really goes out — with the same ID, so a server that did
	// see it before answers from its last call table.
	if cx.recovering {
		if rep, ok := cx.replayReplies[seq]; ok {
			p.suppressedCalls.Add(1)
			p.obs.SuppressedSends.Inc()
			return rep, nil
		}
	}

	// Client-side logging for message 3 (the send "commits" component
	// state to the rest of the system, Section 3.1.1). A stateless
	// caller (functional or read-only component) never logs: it has no
	// state to recover (Algorithms 4 and 5 "at a functional/read-only
	// component: do nothing").
	stateless := cx.parent.ctype.Stateless()

	// Adaptive client treatment of the *executing* method: when it is
	// Algorithm-2 promoted, its outgoing calls take the optimized
	// message-3/4 path; its per-method multi-call flag composes with
	// the static switch. Observation rides the same map the multi-call
	// elision uses, but marks presence with false so the static elision
	// branch (which checks and stores true) decides exactly as it would
	// have without the observer.
	var aopt, amc bool
	if p.adaptive != nil && !stateless && cx.parent.ctype != msg.External {
		aopt, amc = p.adaptive.clientState(cx.parent.id, cx.curMethod)
		if cx.multiCallSeen != nil {
			cx.execOut++
			if _, seen := cx.multiCallSeen[call.Target]; seen {
				cx.execRepeats++
			} else {
				cx.multiCallSeen[call.Target] = false
			}
		}
	}

	switch {
	case cx.parent.ctype == msg.External || stateless:
		// Algorithms 4/5 at the stateless component: do nothing.
	case p.cfg.LogMode == LogBaseline && !aopt:
		lsn, err := p.appendRec(recOutgoing, cx.parent.id, &outgoingRec{Ctx: cx.parent.id, Call: *call, Trace: call.Trace})
		if err != nil {
			return nil, err
		}
		cx.lastLSN = lsn
		p.inject(PointClientBeforeForceSend)
		if err := p.forceTraced(p.obs.ForceAtSend, cx.lastLSN, call.Trace, &call.Method); err != nil {
			return nil, err
		}
	default: // optimized (statically, or by Algorithm-2 promotion)
		switch {
		case p.cfg.SpecializedTypes && serverType == msg.Functional:
			// Algorithm 4: calling a functional server needs no force.
			p.obs.ElideFunctional.Inc()
		case roCall:
			// Algorithm 5: "we do not force the log when calling a
			// read-only component".
			p.obs.ElideReadOnly.Inc()
			if !p.cfg.SpecializedTypes {
				p.obs.AdaptiveElideReadOnly.Inc()
			}
		case (p.cfg.MultiCall || amc) && cx.multiCallSeen != nil && !cx.multiCallSeen[call.Target]:
			// Section 3.5: first call to this server during this
			// method execution — its reply nondeterminism is captured
			// in the server's last call table; skip the force.
			cx.multiCallSeen[call.Target] = true
			p.obs.ElideMultiCall.Inc()
			if !p.cfg.MultiCall {
				p.obs.AdaptiveElideMulti.Inc()
			}
		default:
			// The send message itself is not written (replay recreates
			// it) but all of this context's previous records must be
			// stable.
			p.inject(PointClientBeforeForceSend)
			if err := p.forceTraced(p.obs.ForceAtSend, cx.lastLSN, call.Trace, &call.Method); err != nil {
				return nil, err
			}
		}
	}

	p.inject(PointClientAfterForceSend)
	if p.tr != nil && !call.Trace.IsZero() {
		// The minted span IS the client-intercept leg; downstream spans
		// (transport, server) hang off it.
		p.tr.Record(trace.SpanData{
			Ref:    call.Trace,
			Parent: cx.curTrace.Span,
			Stage:  trace.StageClientIntercept,
			Start:  outStart,
			End:    p.tr.Now(),
			Proc:   &p.name,
			Method: &call.Method,
		})
	}

	// Condition 4: repeat the call until some response arrives.
	reply, err := p.u.send(call, p.cfg.retryLimit(), p.cfg.retryInterval(),
		p.cfg.OnEvent, p.name, p.tr)
	if err != nil {
		return nil, err
	}
	resumeStart := p.tr.Now()

	// Learn the server's type from the reply attachment.
	if reply.HasAttachment {
		p.remoteTypes.learn(call.Target, call.Method, reply.ServerType, reply.MethodReadOnly)
		serverType = reply.ServerType
		roMethod = reply.MethodReadOnly
		roCall = (p.cfg.SpecializedTypes || p.adaptive != nil) && (serverType == msg.ReadOnly || roMethod)
	}

	// Client-side logging for message 4.
	switch {
	case cx.parent.ctype == msg.External || stateless:
		// Nothing at stateless callers.
	case cx.recovering:
		// The reply came from a live send during replay; it is the
		// current end of history for this context. Log it like normal
		// execution would (below) so a second failure replays it too.
		fallthrough
	default:
		if p.cfg.LogMode == LogBaseline && !aopt {
			lsn, err := p.appendRec(recOutgoingReply, cx.parent.id, &outgoingReplyRec{Ctx: cx.parent.id, Seq: seq, Reply: *reply, Trace: call.Trace})
			if err != nil {
				return nil, err
			}
			cx.lastLSN = lsn
			p.inject(PointClientBeforeForceReply)
			if err := p.forceTraced(p.obs.ForceAtOutgoingReply, cx.lastLSN, call.Trace, &call.Method); err != nil {
				return nil, err
			}
		} else if p.cfg.SpecializedTypes && serverType == msg.Functional {
			// Algorithm 4: "Do nothing" — a functional reply is
			// recomputable by re-invoking the pure function.
		} else {
			// Optimized: log message 4 without forcing. Read-only
			// replies are unrepeatable and must be logged too
			// (Algorithm 5: "Log message 4").
			lsn, err := p.appendRec(recOutgoingReply, cx.parent.id, &outgoingReplyRec{Ctx: cx.parent.id, Seq: seq, Reply: *reply, Trace: call.Trace})
			if err != nil {
				return nil, err
			}
			cx.lastLSN = lsn
			if aopt && p.cfg.LogMode == LogBaseline {
				// Algorithm-2 promotion: the baseline's message-4 force
				// is elided (the reply record rides the next commit).
				p.obs.AdaptiveElideAlgo2.Inc()
			}
		}
	}
	p.inject(PointClientAfterReply)
	p.traceSpan(call, trace.StageClientResume, resumeStart)
	return reply, nil
}

// send resolves the target and drives the transport with retries.
// onEvent (optional) observes each redrive; tr (optional) records the
// round trip as a StageTransport span of the call's trace — including
// retries, which are part of what the caller waited for.
func (u *Universe) send(call *msg.Call, retries int, interval time.Duration,
	onEvent func(Event), procName string, tr *trace.Recorder) (*msg.Reply, error) {
	addr, err := u.addrForURI(call.Target)
	if err != nil {
		return nil, err
	}
	data, err := msg.EncodeCall(call)
	if err != nil {
		return nil, err
	}
	// The encoded call is pooled: every transport path hands the bytes
	// over synchronously (handlers must not retain request buffers), so
	// the buffer is free once the retry loop is done with it.
	defer msg.FreeBuf(data)
	u.rpcm.RPCCalls.Inc()
	start := time.Now()
	tstart := tr.Now()
	defer func() { u.rpcm.RPCCallMicros.Observe(time.Since(start).Microseconds()) }()
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			u.rpcm.RPCRetries.Inc()
			if onEvent != nil {
				onEvent(Event{Kind: EventRetry, Process: procName, Context: call.Target,
					Method: call.Method, Detail: fmt.Sprintf("attempt %d", attempt+1)})
			}
			u.cfg.Clock.Sleep(interval)
		}
		respData, err := u.cfg.Net.Send(addr, data)
		if err != nil {
			// A failed send or a failure exception from the server:
			// wait a while and retry with the same method call ID
			// (Section 2.5).
			lastErr = err
			continue
		}
		reply, err := msg.DecodeReply(respData)
		if err != nil {
			return nil, err
		}
		if reply.Fault != "" {
			return nil, &Fault{Msg: reply.Fault}
		}
		if tr != nil && !call.Trace.IsZero() {
			tr.Record(trace.SpanData{
				Ref:    trace.Ref{Trace: call.Trace.Trace, Span: tr.NewSpan()},
				Parent: call.Trace.Span,
				Stage:  trace.StageTransport,
				Start:  tstart,
				End:    tr.Now(),
				Method: &call.Method,
			})
		}
		return reply, nil
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrUnavailable, call.Target, retries, lastErr)
}
