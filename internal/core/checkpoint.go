package core

import (
	"fmt"

	"repro/internal/ids"
)

// saveStateLocked writes a context state record (Section 4.2). The
// caller holds cx.mu, so the context is quiescent and component state
// is exactly its field values.
//
// Order matters: the replies of the context's last-call entries must
// reach the log first, because after restoring a state record the
// replies of earlier incoming calls cannot be recreated by replay. The
// state record then carries those entries with their LSNs. Neither the
// reply records nor the state record is forced — "we can replay all
// the method calls from the creation record or the last forced states"
// — a later send's force makes them stable.
func (cx *Context) saveStateLocked() error {
	p := cx.p
	if cx.parent.ctype.Stateless() {
		return fmt.Errorf("core: %s is stateless; it has no state to save", cx.uri)
	}

	// Write the reply bodies of this context's last-call entries that
	// are not yet in the log, and remember their LSNs. "Next time we
	// save the context state, if an LSN is not empty, we know the
	// reply message is in the log and needn't save it again."
	entries := p.lastCalls.forContext(cx.parent.id)
	saved := make([]lastCallSaved, 0, len(entries))
	for _, e := range entries {
		if e.replyLSN.IsNil() && e.reply != nil {
			lsn, err := p.appendRec(recReplyContent, cx.parent.id, &replyContentRec{
				Ctx:    cx.parent.id,
				CallID: ids.CallID{Caller: e.caller, Seq: e.seq},
				Reply:  *e.reply,
			})
			if err != nil {
				return err
			}
			p.lastCalls.fillLSN(e.caller, e.seq, lsn)
			e.replyLSN = lsn
		}
		saved = append(saved, lastCallSaved{
			Caller: e.caller, Seq: e.seq, ReplyLSN: e.replyLSN, Ctx: e.ctx,
		})
	}

	comps, err := cx.captureComponents()
	if err != nil {
		return err
	}
	lsn, err := p.appendRec(recCtxState, cx.parent.id, &ctxStateRec{
		Ctx:        cx.parent.id,
		URI:        cx.uri,
		Comps:      comps,
		LastOutSeq: cx.lastOutSeq,
		SubCounter: cx.subCounter,
		LastCalls:  saved,
	})
	if err != nil {
		return err
	}
	// "After that, it updates the state record LSN in the context table
	// entry, which is saved as process states and used to retrieve the
	// context state record during recovery." The LSN is guarded by
	// p.mu because process checkpoints snapshot it concurrently.
	p.mu.Lock()
	cx.restartLSN = lsn
	p.mu.Unlock()
	cx.lastLSN = lsn
	cx.callsSinceSave = 0
	p.obs.StateSaves.Inc()
	p.emitEvent(Event{Kind: EventStateSave, Context: cx.uri, LSN: lsn,
		Detail: fmt.Sprintf("state record at %v", lsn)})
	return nil
}

// Checkpoint takes a process checkpoint now (Section 4.3). It is also
// driven automatically by Config.CheckpointEvery.
func (p *Process) Checkpoint() error {
	if p.crashed.Load() {
		return fmt.Errorf("core: process %s has crashed", p.name)
	}
	return p.runCheckpoint()
}

// runCheckpoint logs begin-checkpoint, the context table, the last
// call table, and end-checkpoint. The paper brackets the dumps with
// begin/end records precisely so the tables can be saved incrementally
// under sub-range locks while execution continues; we snapshot each
// table under its own short-lived lock, achieving the same
// concurrency, and readers "examine all the log records between the
// begin checkpoint and end checkpoint record".
func (p *Process) runCheckpoint() error {
	begin, err := p.appendRec(recBeginCkpt, 0, &struct{}{})
	if err != nil {
		return err
	}
	// On a sharded log, snapshot every stream's append position now:
	// records past these positions postdate the checkpoint, so the
	// well-known watermark vector may default each stream to its
	// snapshot (recovery rescans everything later). Records before a
	// snapshot belong to contexts whose restart LSNs constrain the
	// vector downward when it is published (see wellKnownMarks).
	var ends map[uint32]ids.LSN
	if shards := p.log.Shards(); len(shards) > 1 || shards[0].Stream != 0 {
		ends = make(map[uint32]ids.LSN, len(shards))
		for _, sh := range shards {
			ends[sh.Stream] = sh.Log.End()
		}
	}

	// Stateless contexts never write state records, so their original
	// creation record would pin the log head forever. Their fields are
	// immutable by contract, so the checkpoint re-emits an equivalent
	// creation record and advances their restart LSN, letting TrimHead
	// reclaim the prefix.
	p.mu.Lock()
	var stateless []*Context
	for _, cx := range p.contexts {
		if cx.parent.ctype.Stateless() {
			stateless = append(stateless, cx)
		}
	}
	p.mu.Unlock()
	// No context lock is taken here: a functional/read-only
	// component's fields are immutable by contract (configuration set
	// at creation), and locking another context from inside a serving
	// call could cycle through a read-only component's outgoing calls.
	for _, cx := range stateless {
		rec, err := cx.creationRecord()
		if err != nil {
			return err
		}
		lsn, err := p.appendRec(recCreation, cx.parent.id, rec)
		if err != nil {
			return err
		}
		p.mu.Lock()
		cx.restartLSN = lsn
		p.mu.Unlock()
	}

	// Re-emit the adaptive controller's non-default states: records
	// appended after the per-stream end snapshots above are always
	// rescanned by recovery, so a trim that drops a promotion's
	// original change record cannot lose the committed discipline.
	if p.adaptive != nil {
		if err := p.adaptive.reemitChanges(); err != nil {
			return err
		}
	}

	p.mu.Lock()
	entries := make([]ckptCtxEntry, 0, len(p.contexts))
	for id, cx := range p.contexts {
		if cx.parent.ctype.Stateless() {
			continue
		}
		entries = append(entries, ckptCtxEntry{Ctx: id, RestartLSN: cx.restartLSN})
	}
	p.mu.Unlock()
	if _, err := p.appendRec(recCkptCtxTable, 0, &ckptCtxTableRec{Entries: entries}); err != nil {
		return err
	}

	if _, err := p.appendRec(recCkptLastCall, 0, &ckptLastCallRec{Entries: p.lastCalls.snapshot()}); err != nil {
		return err
	}

	end, err := p.appendRec(recEndCkpt, 0, &endCkptRec{BeginLSN: begin})
	if err != nil {
		return err
	}

	// The well-known file is updated only once the checkpoint is
	// stable — the next force whose watermark passes the end record
	// (ours or a later send's) covers it.
	p.ckptMu.Lock()
	p.pendingCkpt = begin
	p.pendingCkptEnd = end
	p.pendingCkptEnds = ends
	p.ckptMu.Unlock()
	p.obs.Checkpoints.Inc()
	p.emitEvent(Event{Kind: EventCheckpoint, LSN: begin,
		Detail: fmt.Sprintf("begin at %v, %d contexts", begin, len(entries))})
	return nil
}
