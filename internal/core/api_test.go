package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
)

// Grump returns application errors and unregistered types.
type Grump struct {
	Mood string
}

func (g *Grump) Fail() (int, error) { return 0, errors.New("not today") }

type unregistered struct{ X int }

func (g *Grump) Bad() (unregistered, error) { return unregistered{X: 1}, nil }

func (g *Grump) Hello(name string) (string, error) { return "hi " + name, nil }

func TestAppErrorPropagates(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Grump", &Grump{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	_, err = ref.Call("Fail")
	var appErr *AppError
	if !errors.As(err, &appErr) || appErr.Msg != "not today" {
		t.Errorf("err = %v, want AppError(not today)", err)
	}
	// The component is alive after an application error.
	res, err := ref.Call("Hello", "phoenix")
	if err != nil || res[0].(string) != "hi phoenix" {
		t.Errorf("Hello after AppError: %v %v", res, err)
	}
}

func TestFaultsAreNotRetried(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.RetryInterval = time.Second // a retry would hang the test
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()
	h, err := p.Create("Grump", &Grump{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())

	var fault *Fault
	if _, err := ref.Call("NoSuchMethod"); !errors.As(err, &fault) {
		t.Errorf("unknown method: %v, want Fault", err)
	}
	if _, err := ref.Call("Hello", 42); !errors.As(err, &fault) {
		t.Errorf("wrong arg type: %v, want Fault", err)
	}
	bad := u.ExternalRef(MakeURIForTest("evo1", "srv", "Nobody"))
	if _, err := bad.Call("X"); !errors.As(err, &fault) {
		t.Errorf("unknown component: %v, want Fault", err)
	}
}

// MakeURIForTest builds a URI (mirrors ids.MakeURI for white-box tests).
func MakeURIForTest(machine, process, component string) ids.URI {
	return ids.MakeURI(machine, process, component)
}

func TestUnencodableResultFaults(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Grump", &Grump{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	var fault *Fault
	if _, err := ref.Call("Bad"); !errors.As(err, &fault) {
		t.Errorf("unregistered result type: %v, want Fault", err)
	}
}

func TestUnboundRefErrors(t *testing.T) {
	ref := NewRef("phoenix://a/b/c")
	if _, err := ref.Call("X"); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Errorf("unbound ref: %v", err)
	}
}

func TestExternalRefWithoutRetryFailsFast(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	p.Crash()
	ref := u.ExternalRef(h.URI()).WithoutRetry()
	start := time.Now()
	_, err = ref.Call("Get")
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	if time.Since(start) > time.Second {
		t.Error("WithoutRetry still waited through a retry window")
	}
}

func TestCreateValidation(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	if _, err := p.Create("C", &Counter{}); err != nil {
		t.Fatal(err)
	}
	// Duplicate name.
	if _, err := p.Create("C", &Counter{}); err == nil {
		t.Error("duplicate name accepted")
	}
	// Non-pointer component.
	if _, err := p.Create("V", Counter{}); err == nil {
		t.Error("non-pointer component accepted")
	}
	// Unknown read-only method.
	if _, err := p.Create("R", &Counter{}, WithReadOnlyMethods("Nope")); err == nil {
		t.Error("bogus read-only method accepted")
	}
	// Direct subordinate type.
	if _, err := p.Create("S", &Counter{}, WithType(msg.Subordinate)); err == nil {
		t.Error("Create with Subordinate type accepted")
	}
	// Names that would corrupt URIs or paths.
	for _, bad := range []string{"", "a/b", "a b", "..", "x\\y"} {
		if _, err := p.Create(bad, &Counter{}); err == nil {
			t.Errorf("component name %q accepted", bad)
		}
	}
	// Create after crash.
	p.Crash()
	if _, err := p.Create("D", &Counter{}); err == nil {
		t.Error("Create on crashed process accepted")
	}
}

func TestBadMachineAndProcessNames(t *testing.T) {
	u := newTestUniverse(t)
	if _, err := u.AddMachine("bad/name"); err == nil {
		t.Error("machine name with separator accepted")
	}
	m, err := u.AddMachine("ok")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("..", testConfig()); err == nil {
		t.Error("reserved process name accepted")
	}
}

func TestLookupAndComponents(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	if _, ok := p.Lookup("X"); ok {
		t.Error("Lookup found a ghost")
	}
	p.Create("B", &Counter{})
	p.Create("A", &Counter{})
	names := p.Components()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Components = %v", names)
	}
	h, ok := p.Lookup("A")
	if !ok || h.URI() != MakeURIForTest("evo1", "srv", "A") {
		t.Errorf("Lookup(A) = %v %v", h, ok)
	}
}

func TestStartProcessTwiceRejected(t *testing.T) {
	u := newTestUniverse(t)
	m, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	if _, err := m.StartProcess("srv", testConfig()); err == nil {
		t.Error("second live instance accepted")
	}
}

func TestUniverseValidation(t *testing.T) {
	if _, err := NewUniverse(UniverseConfig{}); err == nil {
		t.Error("empty Dir accepted")
	}
	u := newTestUniverse(t)
	if _, ok := u.Machine("nope"); ok {
		t.Error("ghost machine found")
	}
	m1, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.AddMachine("evo1") // idempotent
	if err != nil || m1 != m2 {
		t.Errorf("AddMachine not idempotent: %v %v", m1 == m2, err)
	}
	if m1.Name() != "evo1" {
		t.Errorf("Name = %q", m1.Name())
	}
}

func TestMultipleContextsRecoverTogether(t *testing.T) {
	// Several components in one process; one crash recovers them all.
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	var refs []*Ref
	for _, name := range []string{"C1", "C2", "C3"} {
		h, err := p.Create(name, &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, u.ExternalRef(h.URI()))
	}
	for i, ref := range refs {
		for k := 0; k <= i; k++ {
			callInt(t, ref, "Add", 10)
		}
	}
	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i, ref := range refs {
		if got := callInt(t, ref, "Get"); got != (i+1)*10 {
			t.Errorf("C%d = %d, want %d", i+1, got, (i+1)*10)
		}
	}
	if got := p2.Components(); len(got) != 3 {
		t.Errorf("components after recovery = %v", got)
	}
}

func TestStatelessComponentsRestoredAfterCrash(t *testing.T) {
	// Functional/read-only components have creation records so a
	// restarted process hosts them again, with their configuration
	// fields intact.
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	if _, err := p.Create("Pure", &Pure{}, WithType(msg.Functional)); err != nil {
		t.Fatal(err)
	}
	hs, err := p.Create("Counter", &Counter{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create("Prober", &Prober{Server: NewRef(hs.URI())}, WithType(msg.ReadOnly)); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	pure := u.ExternalRef(MakeURIForTest("evo1", "srv", "Pure"))
	if got := callInt(t, pure, "Double", 21); got != 42 {
		t.Errorf("functional after crash: %d", got)
	}
	prober := u.ExternalRef(MakeURIForTest("evo1", "srv", "Prober"))
	if got := callInt(t, prober, "Probe"); got != 5 {
		t.Errorf("read-only after crash: %d (its Server ref must be restored)", got)
	}
}

func TestOutgoingSeqContinuesAfterRecovery(t *testing.T) {
	// The restarted context re-derives its call IDs: old ones during
	// replay, fresh ones after — the server must never see a stale or
	// reused sequence number.
	u := newTestUniverse(t)
	cfg := testConfig()
	ma, pa := startProc(t, u, "evo1", "cli", cfg)
	_, pb := startProc(t, u, "evo2", "srv", cfg)
	defer pb.Close()
	hc, _ := pb.Create("Counter", &Counter{})
	hr, _ := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	ref := u.ExternalRef(hr.URI())
	for i := 1; i <= 3; i++ {
		callInt(t, ref, "Forward", 1)
	}
	pa.Crash()
	pa2, err := ma.StartProcess("cli", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pa2.Close()
	for i := 4; i <= 6; i++ {
		if got := callInt(t, ref, "Forward", 1); got != i {
			t.Errorf("Forward %d -> %d", i, got)
		}
	}
}

func TestAttachmentOmittedWhenServerKnown(t *testing.T) {
	// Section 5.2.3: once the client knows the server's type, the
	// server omits the reply attachment.
	u := newTestUniverse(t)
	cfg := testConfig()
	_, pa := startProc(t, u, "evo1", "cli", cfg)
	_, pb := startProc(t, u, "evo2", "srv", cfg)
	defer pa.Close()
	defer pb.Close()
	hc, _ := pb.Create("Counter", &Counter{})
	hr, _ := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	ref := u.ExternalRef(hr.URI())
	callInt(t, ref, "Forward", 1)
	// After the first call the relay's remote table knows the server.
	ctype, _, known := pa.remoteTypes.lookup(hc.URI(), "Add")
	if !known || ctype != msg.Persistent {
		t.Errorf("remote table after first call: %v %v", ctype, known)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.retryInterval() != defaultRetryInterval {
		t.Errorf("retryInterval = %v", c.retryInterval())
	}
	if c.retryLimit() != defaultRetryLimit {
		t.Errorf("retryLimit = %v", c.retryLimit())
	}
	c = Config{RetryInterval: time.Second, RetryLimit: 3}
	if c.retryInterval() != time.Second || c.retryLimit() != 3 {
		t.Error("explicit retry settings ignored")
	}
	if LogBaseline.String() != "baseline" || LogOptimized.String() != "optimized" {
		t.Error("LogMode.String broken")
	}
}

func TestRecoverContextValidation(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	if err := p.RecoverContext("Ghost"); err == nil {
		t.Error("RecoverContext of unknown component succeeded")
	}
}

func TestCheckpointOnCrashedProcessErrors(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	p.Crash()
	if err := p.Checkpoint(); err == nil {
		t.Error("Checkpoint on crashed process succeeded")
	}
}

func TestDropSubordinate(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Parent", &Parent{}, WithSubordinate("vault", &Vault{}))
	if err != nil {
		t.Fatal(err)
	}
	cx := h.Ctx()
	if subs := cx.Subordinates(); len(subs) != 1 || subs[0] != "vault" {
		t.Errorf("Subordinates = %v", subs)
	}
	sub, ok := cx.Subordinate("vault")
	if !ok || sub.Name() != "vault" {
		t.Fatalf("Subordinate lookup failed")
	}
	if sub.PhoenixLocalID() == 0 {
		t.Error("subordinate has zero ID")
	}
	cx.DropSubordinate("vault")
	if _, ok := cx.Subordinate("vault"); ok {
		t.Error("dropped subordinate still present")
	}
	cx.DropSubordinate("vault") // idempotent
}

func TestHandleAccessors(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	obj := &Counter{N: 1}
	h, err := p.Create("C", obj)
	if err != nil {
		t.Fatal(err)
	}
	if h.Object() != any(obj) {
		t.Error("Object() lost instance")
	}
	if h.Ctx().URI() != h.URI() {
		t.Error("Ctx URI mismatch")
	}
	ref := u.ExternalRef(h.URI())
	if ref.Target() != h.URI() || ref.PhoenixURI() != h.URI() {
		t.Error("ref URI accessors broken")
	}
}

func TestMixedModeProcesses(t *testing.T) {
	// A baseline-mode client against an optimized-mode server: the
	// disciplines are per-process and interoperate.
	u := newTestUniverse(t)
	cfgBase := testConfig()
	cfgBase.LogMode = LogBaseline
	cfgOpt := testConfig()
	_, pa := startProc(t, u, "evo1", "cli", cfgBase)
	_, pb := startProc(t, u, "evo2", "srv", cfgOpt)
	defer pa.Close()
	defer pb.Close()
	hc, _ := pb.Create("Counter", &Counter{})
	hr, _ := pa.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	ref := u.ExternalRef(hr.URI())
	for i := 1; i <= 3; i++ {
		if got := callInt(t, ref, "Forward", 1); got != i {
			t.Errorf("Forward -> %d, want %d", got, i)
		}
	}
}
