package core

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wal"
)

func TestSaveStateAdvancesRestartLSN(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	creation := h.RestartLSN()
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Add", 1)
	if err := h.SaveState(); err != nil {
		t.Fatal(err)
	}
	first := h.RestartLSN()
	if first <= creation {
		t.Errorf("restart LSN %v did not advance past creation %v", first, creation)
	}
	callInt(t, ref, "Add", 1)
	if err := h.SaveState(); err != nil {
		t.Fatal(err)
	}
	if h.RestartLSN() <= first {
		t.Error("second state record did not advance the restart LSN")
	}
}

func TestRecoveryFromStateRecord(t *testing.T) {
	// Crash after a state record: recovery must restore from it and
	// replay only the suffix.
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 5; i++ {
		callInt(t, ref, "Add", 10)
	}
	if err := h.SaveState(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		callInt(t, ref, "Add", 1)
	}
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := callInt(t, ref, "Get"); got != 53 {
		t.Errorf("recovered counter = %d, want 53", got)
	}
	// The restored context's restart LSN is the state record, not the
	// creation record.
	h2, _ := p2.Lookup("Counter")
	if h2.RestartLSN() <= h.RestartLSN() && h2.RestartLSN() == ids.LSN(16) {
		t.Errorf("recovered restart LSN = %v, looks like the creation record", h2.RestartLSN())
	}
}

func TestSaveStateEveryPolicy(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.SaveStateEvery = 3
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	start := h.RestartLSN()
	callInt(t, ref, "Add", 1)
	callInt(t, ref, "Add", 1)
	if h.RestartLSN() != start {
		t.Error("state saved before the policy interval")
	}
	callInt(t, ref, "Add", 1)
	if h.RestartLSN() == start {
		t.Error("state not saved at the policy interval")
	}
}

func TestProcessCheckpointWritesWellKnownLSNOnNextForce(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	_, p := startProc(t, u, "evo1", "srv", cfg)
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Add", 1)
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint is unforced: the well-known file must not point
	// at it yet.
	if _, err := wal.LoadWellKnownLSN(p.wkPath); err == nil {
		t.Error("well-known LSN written before the checkpoint was forced")
	}
	// The next send's force covers the checkpoint (Section 4.3:
	// "possibly by a later send message").
	callInt(t, ref, "Add", 1)
	lsn, err := wal.LoadWellKnownLSN(p.wkPath)
	if err != nil {
		t.Fatalf("well-known LSN missing after a later force: %v", err)
	}
	rec, err := p.log.Read(lsn)
	if err != nil || rec.Type != recBeginCkpt {
		t.Errorf("well-known LSN points at %v/%v, want begin-checkpoint", rec.Type, err)
	}
}

func TestRecoveryUsesCheckpoint(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	cfg.SaveStateEvery = 2
	cfg.CheckpointEvery = 4
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 11; i++ {
		callInt(t, ref, "Add", 1)
	}
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := callInt(t, ref, "Get"); got != 11 {
		t.Errorf("recovered counter = %d, want 11", got)
	}
	// Keep going after recovery, across another checkpoint cycle.
	for i := 0; i < 6; i++ {
		callInt(t, ref, "Add", 1)
	}
	if got := callInt(t, ref, "Get"); got != 17 {
		t.Errorf("counter after more calls = %d, want 17", got)
	}
}

func TestDuplicateAnsweredAfterStateRestore(t *testing.T) {
	// The reply of a last-call entry must survive a state save + crash:
	// the state record carries the reply's LSN and the duplicate is
	// answered from the log (Section 4.2).
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	counter := h.Object().(*Counter)
	caller := ids.ComponentAddr{Machine: "evo9", Proc: 1, Comp: 1}
	args, n, _ := encodeArgsHelper(5)
	call := &msg.Call{
		ID:         ids.CallID{Caller: caller, Seq: 8},
		Target:     h.URI(),
		Method:     "Add",
		Args:       args,
		NumArgs:    n,
		CallerType: msg.Persistent,
	}
	r1 := p.serveCall(call)
	if r1.Fault != "" {
		t.Fatalf("call failed: %+v", r1)
	}
	if err := h.SaveState(); err != nil {
		t.Fatal(err)
	}
	// Force the log so the state record and reply body are stable,
	// then crash.
	if err := p.force(nil); err != nil {
		t.Fatal(err)
	}
	_ = counter
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// The retried duplicate must be answered from the logged reply,
	// without re-executing.
	r2 := p2.serveCall(call)
	if r2.Fault != "" {
		t.Fatalf("duplicate after recovery faulted: %+v", r2)
	}
	if string(r2.Results) != string(r1.Results) {
		t.Error("duplicate reply differs after state-record recovery")
	}
	h2, _ := p2.Lookup("Counter")
	if got := h2.Object().(*Counter).N; got != 5 {
		t.Errorf("counter re-executed: %d, want 5", got)
	}
}

func TestContextRecoveryWithinLiveProcess(t *testing.T) {
	// Section 4.4's easier case: recover one failed context while the
	// process lives.
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 4; i++ {
		callInt(t, ref, "Add", 2)
	}
	// Corrupt the in-memory component ("the component failed").
	h.Object().(*Counter).N = -999

	if err := p.RecoverContext("Counter"); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, ref, "Get"); got != 8 {
		t.Errorf("recovered context counter = %d, want 8", got)
	}
	// And from a state record, replaying only the suffix.
	h2, _ := p.Lookup("Counter")
	if err := h2.SaveState(); err != nil {
		t.Fatal(err)
	}
	callInt(t, ref, "Add", 1)
	h2.Object().(*Counter).N = -999
	if err := p.RecoverContext("Counter"); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, ref, "Get"); got != 9 {
		t.Errorf("recovered-from-state counter = %d, want 9", got)
	}
}

func TestSaveStateRejectedForStateless(t *testing.T) {
	u := newTestUniverse(t)
	_, p := startProc(t, u, "evo1", "srv", testConfig())
	defer p.Close()
	h, err := p.Create("Pure", &Pure{}, WithType(msg.Functional))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SaveState(); err == nil {
		t.Error("SaveState on a functional component succeeded")
	}
}
