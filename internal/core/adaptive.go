package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// AdaptiveConfig enables the adaptive discipline controller
// (Config.Adaptive): instead of an operator assigning logging
// disciplines statically per component type, the runtime observes each
// (component, method)'s interaction pattern — who calls it, whether it
// mutates state, how its outgoing calls fan out — and promotes the
// method's effective discipline past the configured baseline once the
// pattern has held for PromoteAfter consecutive epochs: Algorithm 1 →
// Algorithm 2 for persistent↔persistent traffic, read-only detection →
// Algorithm 5, distinct-server fan-out → per-method multi-call elision.
// Every promotion/demotion is made durable as a discipline-change log
// record and forced *before* it takes effect, so recovery replays each
// call under the discipline that was active when it was logged.
//
// The zero value is disabled: the runtime behaves bit-for-bit like the
// static configuration.
type AdaptiveConfig struct {
	// Enabled turns the controller on.
	Enabled bool
	// Window is the observation epoch length, measured on the universe
	// clock (model time under a virtual bench clock). 0 means 100ms.
	Window time.Duration
	// PromoteAfter is how many consecutive qualifying epochs a method
	// must accumulate before its discipline is promoted. 0 means 3.
	PromoteAfter int
	// DemoteAfter is how many consecutive disqualifying epochs undo a
	// promotion. 0 means 2. A read-only promotion is also demoted
	// immediately (mid-call, before the reply externalizes) when the
	// runtime guard catches a mutation or an outgoing call.
	DemoteAfter int
}

func (c AdaptiveConfig) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return 100 * time.Millisecond
}

func (c AdaptiveConfig) promoteAfter() int {
	if c.PromoteAfter > 0 {
		return c.PromoteAfter
	}
	return 3
}

func (c AdaptiveConfig) demoteAfter() int {
	if c.DemoteAfter > 0 {
		return c.DemoteAfter
	}
	return 2
}

// Discipline is the adaptive controller's per-method effective logging
// discipline. DiscBaseline means "whatever the static Config says";
// the promoted values select the optimized treatments of Sections 3.1
// and 3.3 for one (component, method) pair. The Section 3.5 multi-call
// elision is an orthogonal per-method flag, not a Discipline member —
// it composes with DiscBaseline and DiscAlgo2.
type Discipline int

const (
	// DiscBaseline applies the statically configured treatment.
	DiscBaseline Discipline = iota
	// DiscAlgo2 applies Section 3.1's optimized treatment to the
	// method: message 1 logged without forcing for internal callers
	// (external callers keep Algorithm 3's forced long/short records),
	// message 2 a pure force, and the method's own outgoing calls use
	// the optimized client side (message 3 unwritten, message 4
	// unforced). Safe unconditionally: replay recreates the unlogged
	// messages, and an uncommitted reply is redriven by the client.
	DiscAlgo2
	// DiscReadOnly applies Algorithm 5: the server logs nothing for
	// the method's calls. Unlike the static read-only treatment, the
	// promoted form keeps duplicate elimination and the last-call
	// table (the promotion is a bet, not a contract), and a runtime
	// guard re-checks every promoted execution: a mutation or an
	// outgoing call demotes the method and captures the damage with a
	// forced state record before the reply externalizes.
	DiscReadOnly
)

// String names the discipline. Out-of-range values render stably.
func (d Discipline) String() string {
	switch d {
	case DiscBaseline:
		return "baseline"
	case DiscAlgo2:
		return "algo2"
	case DiscReadOnly:
		return "readonly"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// methodKey identifies a tracked method: the hosting context (parent
// component ID — the unit log records are keyed by) plus method name.
type methodKey struct {
	ctx    ids.CompID
	method string
}

// methodStat is the controller's per-method state: the committed
// discipline, the sticky read-only disqualification, the current
// epoch's observation accumulators, and the hysteresis streaks.
type methodStat struct {
	disc      Discipline
	multiCall bool
	// roBarred is sticky: once a method is seen mutating state or
	// making an outgoing call it can never be promoted to read-only
	// again (and candidate hashing stops paying for it).
	roBarred bool

	// Epoch accumulators, reset at each epoch boundary.
	calls    int64 // executions observed this epoch
	internal int64 // ... from persistent internal callers
	outCalls int64 // outgoing calls made by those executions
	fanOuts  int64 // executions fanning out to >=2 distinct servers, no repeats
	repeats  int64 // repeated-target outgoing calls (disqualify multi-call)
	roClean  int64 // guarded executions that stayed read-only

	// Hysteresis streaks: consecutive qualifying/disqualifying epochs.
	algo2Promote int
	algo2Demote  int
	roPromote    int
	mcPromote    int
	mcDemote     int
}

// disciplineChange is one controller decision: move a method from one
// effective state to another. It is decided under the controller mutex
// but applied outside it — the caller appends and forces the
// discipline-change record first, then commits the flip.
type disciplineChange struct {
	Ctx       ids.CompID
	Method    string
	From, To  Discipline
	MultiCall bool // the multi-call flag after the change
	Barred    bool
	Epoch     uint64
	promote   bool
}

// adaptiveController observes method executions, advances an
// epoch-based state machine on the universe clock, and decides
// discipline transitions with hysteresis. Its mutex is a leaf: it is
// taken under Context.mu on the serve path and never held across log
// I/O — decisions are returned to the caller, made durable, and only
// then committed.
type adaptiveController struct {
	p            *Process
	rt           *obs.RuntimeMetrics
	window       time.Duration
	promoteAfter int
	demoteAfter  int
	// baselineMode caches LogMode == LogBaseline: Algorithm-2
	// promotion only means something when the static discipline is
	// Algorithm 1 (the optimized mode already applies it globally).
	baselineMode bool

	mu        sync.Mutex
	epoch     uint64
	epochBase time.Time
	stats     map[methodKey]*methodStat
}

func newAdaptiveController(p *Process) *adaptiveController {
	return &adaptiveController{
		p:            p,
		rt:           p.obs,
		window:       p.cfg.Adaptive.window(),
		promoteAfter: p.cfg.Adaptive.promoteAfter(),
		demoteAfter:  p.cfg.Adaptive.demoteAfter(),
		baselineMode: p.cfg.LogMode == LogBaseline,
		epochBase:    p.u.cfg.Clock.Now(),
		stats:        make(map[methodKey]*methodStat),
	}
}

func (ac *adaptiveController) statLocked(k methodKey) *methodStat {
	st := ac.stats[k]
	if st == nil {
		st = &methodStat{}
		ac.stats[k] = st
	}
	return st
}

// adaptiveServe is the serve path's per-call snapshot of a method's
// effective treatment, taken once before logging decisions so one
// execution never straddles a discipline flip.
type adaptiveServe struct {
	active   bool
	algo2    bool
	readOnly bool
	// guard asks the serve path to hash component state before and
	// after the execution: while the method is a read-only candidate
	// (to observe mutation behavior) and while it is promoted (the
	// safety net).
	guard   bool
	hashErr bool
	preHash uint64
}

// serveState snapshots the method's current effective treatment.
func (ac *adaptiveController) serveState(ctx ids.CompID, method string) adaptiveServe {
	ac.mu.Lock()
	st := ac.statLocked(methodKey{ctx: ctx, method: method})
	s := adaptiveServe{
		active:   true,
		algo2:    st.disc == DiscAlgo2,
		readOnly: st.disc == DiscReadOnly,
		guard:    st.disc == DiscReadOnly || (st.disc == DiscBaseline && !st.roBarred),
	}
	ac.mu.Unlock()
	return s
}

// clientState reports the client-side treatment of the method the
// context is currently executing: optimized message-3/4 handling when
// the method is Algorithm-2 promoted, and per-method multi-call
// elision.
func (ac *adaptiveController) clientState(ctx ids.CompID, method string) (opt, multiCall bool) {
	if method == "" {
		return false, false
	}
	ac.mu.Lock()
	if st := ac.stats[methodKey{ctx: ctx, method: method}]; st != nil {
		opt = st.disc == DiscAlgo2
		multiCall = st.multiCall
	}
	ac.mu.Unlock()
	return opt, multiCall
}

// execObservation is one finished execution as seen by the serve path.
type execObservation struct {
	ctx       ids.CompID
	method    string
	external  bool
	guarded   bool
	roViolate bool // guarded and mutated (or the state hash failed)
	outCalls  int
	repeats   int
}

// observe folds one execution into the current epoch and, when the
// epoch window has elapsed on the universe clock, finalizes the epoch
// and returns the discipline changes it decided. The caller must make
// each change durable (discipline-change record, forced) and then
// commit it; a dropped change is simply re-decided next epoch.
func (ac *adaptiveController) observe(o execObservation) []disciplineChange {
	ac.mu.Lock()
	st := ac.statLocked(methodKey{ctx: o.ctx, method: o.method})
	st.calls++
	if !o.external {
		st.internal++
	}
	st.outCalls += int64(o.outCalls)
	st.repeats += int64(o.repeats)
	if o.outCalls >= 2 && o.repeats == 0 {
		st.fanOuts++
	}
	if o.outCalls > 0 || (o.guarded && o.roViolate) {
		st.roBarred = true
	} else if o.guarded {
		st.roClean++
	}
	changes := ac.maybeFinalizeLocked()
	ac.mu.Unlock()
	return changes
}

// maybeFinalizeLocked closes the epoch once its window has elapsed:
// every tracked method's streaks advance and pending transitions are
// collected. Accumulators reset; streaks survive across epochs.
func (ac *adaptiveController) maybeFinalizeLocked() []disciplineChange {
	now := ac.p.u.cfg.Clock.Now()
	if now.Sub(ac.epochBase) < ac.window {
		return nil
	}
	ac.epochBase = now
	ac.epoch++
	ac.rt.AdaptiveEpochs.Inc()
	var changes []disciplineChange
	for k, st := range ac.stats {
		if ch, ok := ac.finalizeStatLocked(k, st); ok {
			changes = append(changes, ch)
		}
		st.calls, st.internal, st.outCalls = 0, 0, 0
		st.fanOuts, st.repeats, st.roClean = 0, 0, 0
	}
	// Deterministic record order when several methods flip at once.
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Ctx != changes[j].Ctx {
			return changes[i].Ctx < changes[j].Ctx
		}
		return changes[i].Method < changes[j].Method
	})
	return changes
}

// finalizeStatLocked advances one method's streaks from this epoch's
// accumulators and decides its transition, if any. An epoch with no
// calls is neutral: streaks neither grow nor reset, so an idle method
// does not flap.
func (ac *adaptiveController) finalizeStatLocked(k methodKey, st *methodStat) (disciplineChange, bool) {
	if st.calls > 0 {
		// Read-only: every execution this epoch was guarded and clean,
		// and none made an outgoing call.
		if !st.roBarred && st.roClean == st.calls && st.outCalls == 0 {
			st.roPromote++
		} else {
			st.roPromote = 0
		}
		// Algorithm 2: the method participates in persistent↔persistent
		// traffic on either side — internal callers, or outgoing calls
		// of its own. Only meaningful past an Algorithm-1 baseline.
		if ac.baselineMode && (st.internal > 0 || st.outCalls > 0) {
			st.algo2Promote++
			st.algo2Demote = 0
		} else if ac.baselineMode {
			st.algo2Demote++
			st.algo2Promote = 0
		}
		// Multi-call: distinct-server fan-out with no repeated targets.
		// A repeat disqualifies the epoch (the elision mechanism itself
		// stays safe — repeats force — but the promotion stops paying).
		if st.repeats > 0 {
			st.mcDemote++
			st.mcPromote = 0
		} else if st.fanOuts > 0 {
			st.mcPromote++
			st.mcDemote = 0
		}
	}

	newDisc := st.disc
	switch st.disc {
	case DiscBaseline:
		// Read-only wins over Algorithm 2: it elides strictly more.
		if st.roPromote >= ac.promoteAfter {
			newDisc = DiscReadOnly
		} else if st.algo2Promote >= ac.promoteAfter {
			newDisc = DiscAlgo2
		}
	case DiscAlgo2:
		if st.algo2Demote >= ac.demoteAfter {
			newDisc = DiscBaseline
		}
	case DiscReadOnly:
		// Demotion is guard-driven (violateRO), not epoch-driven: a
		// promoted method that stays read-only has no disqualifying
		// signal an epoch could see.
	default:
	}

	newMC := st.multiCall
	if newDisc == DiscReadOnly {
		newMC = false // read-only methods make no outgoing calls
	} else if !st.multiCall && st.mcPromote >= ac.promoteAfter {
		newMC = true
	} else if st.multiCall && st.mcDemote >= ac.demoteAfter {
		newMC = false
	}

	if newDisc == st.disc && newMC == st.multiCall {
		return disciplineChange{}, false
	}
	promote := (newDisc != st.disc && st.disc == DiscBaseline) ||
		(newDisc == st.disc && newMC && !st.multiCall)
	return disciplineChange{
		Ctx: k.ctx, Method: k.method,
		From: st.disc, To: newDisc,
		MultiCall: newMC, Barred: st.roBarred,
		Epoch: ac.epoch, promote: promote,
	}, true
}

// commit flips a method's committed state to a decided change after
// the caller has made it durable. A change whose From no longer
// matches (a racing violation demoted the method first) is dropped.
func (ac *adaptiveController) commit(ch disciplineChange) {
	ac.mu.Lock()
	st := ac.statLocked(methodKey{ctx: ch.Ctx, method: ch.Method})
	if st.disc != ch.From {
		ac.mu.Unlock()
		return
	}
	ac.commitLocked(st, ch)
	ac.mu.Unlock()
}

func (ac *adaptiveController) commitLocked(st *methodStat, ch disciplineChange) {
	ac.gaugeLocked(st.disc, -1)
	ac.gaugeLocked(ch.To, +1)
	if st.multiCall != ch.MultiCall {
		if ch.MultiCall {
			ac.rt.AdaptiveDiscMulti.Add(1)
		} else {
			ac.rt.AdaptiveDiscMulti.Add(-1)
		}
	}
	st.disc = ch.To
	st.multiCall = ch.MultiCall
	st.roBarred = st.roBarred || ch.Barred
	st.algo2Promote, st.algo2Demote = 0, 0
	st.roPromote = 0
	st.mcPromote, st.mcDemote = 0, 0
	if ch.promote {
		ac.rt.AdaptivePromotions.Inc()
	} else {
		ac.rt.AdaptiveDemotions.Inc()
	}
}

// gaugeLocked moves the "methods currently under treatment d" gauge.
func (ac *adaptiveController) gaugeLocked(d Discipline, delta int64) {
	switch d {
	case DiscAlgo2:
		ac.rt.AdaptiveDiscAlgo2.Add(delta)
	case DiscReadOnly:
		ac.rt.AdaptiveDiscReadOnly.Add(delta)
	case DiscBaseline:
	default:
	}
}

// violateRO handles a guard trip on a promoted read-only method: the
// execution mutated state or made an outgoing call. The demotion is
// committed in memory immediately — applying a demotion before it is
// durable is safe, it only adds logging — and the returned change must
// still be appended by the caller, ahead of the forced state record
// that captures the unlogged execution's damage.
func (ac *adaptiveController) violateRO(ctx ids.CompID, method string) (disciplineChange, bool) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st := ac.statLocked(methodKey{ctx: ctx, method: method})
	st.roBarred = true
	if st.disc != DiscReadOnly {
		return disciplineChange{}, false
	}
	ch := disciplineChange{
		Ctx: ctx, Method: method,
		From: DiscReadOnly, To: DiscBaseline,
		MultiCall: st.multiCall, Barred: true, Epoch: ac.epoch,
	}
	ac.commitLocked(st, ch)
	ac.rt.AdaptiveROViolations.Inc()
	return ch, true
}

// restoreChange replays a mined discipline-change record during
// recovery's Pass 1, rebuilding the controller's committed state in
// scan order (newest wins per method; records of one method share its
// context's stream, so scan order is temporal order). Gauges are
// adjusted; transition counters are not — a restart restores state, it
// does not transition.
func (ac *adaptiveController) restoreChange(r *disciplineChangeRec) {
	ac.mu.Lock()
	st := ac.statLocked(methodKey{ctx: r.Ctx, method: r.Method})
	ac.gaugeLocked(st.disc, -1)
	ac.gaugeLocked(r.To, +1)
	if st.multiCall != r.MultiCall {
		if r.MultiCall {
			ac.rt.AdaptiveDiscMulti.Add(1)
		} else {
			ac.rt.AdaptiveDiscMulti.Add(-1)
		}
	}
	st.disc = r.To
	st.multiCall = r.MultiCall
	st.roBarred = st.roBarred || r.Barred
	if r.Epoch > ac.epoch {
		ac.epoch = r.Epoch
	}
	ac.mu.Unlock()
}

// reemitChanges writes the controller's current non-default states as
// discipline-change records inside a process checkpoint, so log
// trimming cannot strand a promotion's only record behind the
// well-known mark. Snapshot under the mutex, append outside it.
func (ac *adaptiveController) reemitChanges() error {
	ac.mu.Lock()
	recs := make([]*disciplineChangeRec, 0)
	for k, st := range ac.stats {
		if st.disc == DiscBaseline && !st.multiCall && !st.roBarred {
			continue
		}
		recs = append(recs, &disciplineChangeRec{
			Ctx: k.ctx, Method: k.method,
			From: st.disc, To: st.disc,
			MultiCall: st.multiCall, Barred: st.roBarred, Epoch: ac.epoch,
		})
	}
	ac.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Ctx != recs[j].Ctx {
			return recs[i].Ctx < recs[j].Ctx
		}
		return recs[i].Method < recs[j].Method
	})
	for _, r := range recs {
		if _, err := ac.p.appendRec(recDisciplineChange, r.Ctx, r); err != nil {
			return err
		}
	}
	return nil
}

// AdaptiveAssignment is one tracked method's current effective state,
// as exposed by Process.AdaptiveAssignments for benches and tests.
type AdaptiveAssignment struct {
	Ctx        ids.CompID `json:"ctx"`
	Method     string     `json:"method"`
	Discipline string     `json:"discipline"`
	MultiCall  bool       `json:"multi_call,omitempty"`
}

// AdaptiveAssignments lists the controller's per-method discipline
// assignments, sorted by context then method. Nil when the controller
// is disabled.
func (p *Process) AdaptiveAssignments() []AdaptiveAssignment {
	ac := p.adaptive
	if ac == nil {
		return nil
	}
	ac.mu.Lock()
	out := make([]AdaptiveAssignment, 0, len(ac.stats))
	for k, st := range ac.stats {
		out = append(out, AdaptiveAssignment{
			Ctx: k.ctx, Method: k.method,
			Discipline: st.disc.String(), MultiCall: st.multiCall,
		})
	}
	ac.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ctx != out[j].Ctx {
			return out[i].Ctx < out[j].Ctx
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// stateHash fingerprints the context's component state (the same
// deterministic capture state records use) for the read-only guard:
// equal hashes before and after an execution mean no observable field
// mutated. Called with cx.mu held — the context is quiescent.
func (cx *Context) stateHash() (uint64, error) {
	comps, err := cx.captureComponents()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var idb [4]byte
	for _, c := range comps {
		idb[0] = byte(c.ID >> 24)
		idb[1] = byte(c.ID >> 16)
		idb[2] = byte(c.ID >> 8)
		idb[3] = byte(c.ID)
		h.Write(idb[:])
		h.Write(c.State)
	}
	return h.Sum64(), nil
}

// adaptiveAfterExec runs after an execution finished and its reply
// bookkeeping is done, with cx.mu held: it resolves the read-only
// guard (demoting on violation before the reply externalizes), feeds
// the observation into the controller, and applies any epoch decisions
// the observation triggered.
func (p *Process) adaptiveAfterExec(cx *Context, call *msg.Call, ad adaptiveServe) error {
	o := execObservation{
		ctx:      cx.parent.id,
		method:   call.Method,
		external: call.ID.IsZero(),
		outCalls: cx.execOut,
		repeats:  cx.execRepeats,
	}
	if ad.guard {
		o.guarded = true
		switch {
		case ad.hashErr:
			o.roViolate = true
		case cx.execOut > 0:
			// An outgoing call disqualifies by itself; skip the hash.
			o.roViolate = true
		default:
			post, err := cx.stateHash()
			o.roViolate = err != nil || post != ad.preHash
		}
	}
	if ad.readOnly && o.roViolate {
		if err := cx.adaptiveROViolationLocked(call); err != nil {
			return err
		}
	}
	if changes := p.adaptive.observe(o); len(changes) > 0 {
		p.applyDisciplineChanges(changes, call.Trace)
	}
	return nil
}

// adaptiveROViolationLocked demotes a promoted read-only method whose
// execution tripped the guard; called with cx.mu held, like the rest
// of the execution path. The execution ran unlogged (no message-1
// record), so replay cannot recreate its effects: the demote record
// and a state record capturing the post-execution damage are appended
// and forced before the reply externalizes. On any error the caller
// faults the call — the client retries and re-executes under the
// demoted (fully logged) treatment.
func (cx *Context) adaptiveROViolationLocked(call *msg.Call) error {
	p := cx.p
	ch, ok := p.adaptive.violateRO(cx.parent.id, call.Method)
	if ok {
		rec := &disciplineChangeRec{
			Ctx: ch.Ctx, Method: ch.Method, From: ch.From, To: ch.To,
			MultiCall: ch.MultiCall, Barred: ch.Barred, Epoch: ch.Epoch,
		}
		if _, err := p.appendRec(recDisciplineChange, ch.Ctx, rec); err != nil {
			return err
		}
	}
	if err := cx.saveStateLocked(); err != nil {
		return err
	}
	return p.forceTo(p.obs.AdaptiveForceAtChange, cx.lastLSN)
}

// applyDisciplineChanges makes each epoch decision durable — the
// discipline-change record is appended to the method's context stream
// and forced — and only then commits the in-memory flip, so a call
// logged under the new discipline always follows the change record in
// its stream. A failed append or force drops the decision; the streaks
// that produced it persist, so the next epoch re-decides it.
func (p *Process) applyDisciplineChanges(changes []disciplineChange, tref trace.Ref) {
	for _, ch := range changes {
		traced := p.tr != nil && !tref.IsZero()
		var tstart int64
		if traced {
			tstart = p.tr.Now()
		}
		rec := &disciplineChangeRec{
			Ctx: ch.Ctx, Method: ch.Method, From: ch.From, To: ch.To,
			MultiCall: ch.MultiCall, Barred: ch.Barred, Epoch: ch.Epoch,
		}
		lsn, err := p.appendRec(recDisciplineChange, ch.Ctx, rec)
		if err != nil {
			continue
		}
		if err := p.forceTo(p.obs.AdaptiveForceAtChange, lsn); err != nil {
			continue
		}
		p.inject(PointAdaptiveAfterChangeLogged)
		if traced {
			p.tr.Record(trace.SpanData{
				Ref:    trace.Ref{Trace: tref.Trace, Span: p.tr.NewSpan()},
				Parent: tref.Span,
				Stage:  trace.StageDisciplineChange,
				Start:  tstart,
				End:    p.tr.Now(),
				LSN:    uint64(lsn),
				Proc:   &p.name,
				Method: &rec.Method,
			})
		}
		p.adaptive.commit(ch)
	}
}
