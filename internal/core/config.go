// Package core implements the Phoenix/App runtime: persistent stateful
// components whose interactions are transparently intercepted, logged
// to a process-local recovery log, and replayed after a failure to
// reconstruct component state with exactly-once semantics.
//
// It is the paper's primary contribution: the baseline force-everything
// logging of the IDEAS-2003 prototype (Algorithm 1), the optimized
// logging disciplines of Section 3 (Algorithms 2-5 and the Section 3.5
// multi-call optimization), the specialized component types
// (subordinate, functional, read-only) and read-only methods, and the
// checkpointing and two-pass recovery of Section 4.
package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/wal"
)

// GroupCommit configures the process log's group-commit flusher
// (Config.GroupCommit): a dedicated goroutine collects concurrent
// force requests, holds a MaxWait commit window so committers pile up,
// and satisfies each batch of up to MaxBatch waiters with one device
// sync. The zero value disables it; with Enabled true, zero MaxWait
// and MaxBatch mean 200µs and 64.
type GroupCommit = wal.GroupCommitConfig

// WALConfig shapes the process's write-ahead log layout
// (Config.WAL). The zero value is a single-stream log, bit-for-bit
// today's on-disk format.
type WALConfig struct {
	// Shards partitions the log into N shard streams keyed by the
	// appending context's CompID: each shard owns its own files,
	// append mutex, group-commit flusher and synced watermark, so
	// appends and forces from different contexts stop serializing on
	// one mutex and one device file. 0 or 1 keeps the single-stream
	// log. Restarting an already-sharded log with 0 or 1 keeps its
	// on-disk layout; any other mismatch reshards in place (old
	// records stay where they are — recovery reads every era).
	Shards int
	// GroupCommit configures each shard's flusher. The zero value
	// falls back to the legacy top-level Config.GroupCommit, so
	// existing callers keep working unchanged.
	GroupCommit GroupCommit
}

// RecoveryMode selects when recovery's Pass-2 replay runs relative to
// the process admitting traffic (Config.Recovery.Mode).
type RecoveryMode int

const (
	// RecoveryEager is the classic two-phase restart: the process
	// replays every context's backlog before serving any call. The
	// zero value — existing behavior, bit for bit.
	RecoveryEager RecoveryMode = iota
	// RecoveryLazy opens the process for traffic as soon as Pass 1 has
	// rebuilt the context tables and restart LSNs. A call arriving at
	// an unreplayed context triggers on-demand replay of just that
	// context's backlog (blocking only that call; concurrent arrivals
	// wait on the same replay), while a background replayer drains the
	// remaining contexts in traffic-hotness order, per shard stream,
	// under the Parallelism worker semaphore.
	RecoveryLazy
)

// String names the mode. Out-of-range values render as a stable
// "RecoveryMode(<n>)" rather than masquerading as a real mode.
func (m RecoveryMode) String() string {
	switch m {
	case RecoveryEager:
		return "eager"
	case RecoveryLazy:
		return "lazy"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", int(m))
	}
}

// Recovery configures crash recovery's replay engine (Config.Recovery).
// Pass 1 (finding contexts and restart LSNs) is always a single
// sequential scan — it is cheap and builds the maps Pass 2 needs. With
// Parallelism > 0, Pass 2 partitions by context: one log reader
// demultiplexes message records into per-context replay queues, and
// bounded worker slots drain them concurrently — contexts are
// single-threaded and independent by construction (Section 4.4), so
// their replays need no mutual ordering. The tail calls (each
// context's final buffered incoming call) still replay sequentially in
// log order, preserving the serial path's cross-context resumption
// argument. Mode selects when Pass 2 runs at all: eagerly before the
// process admits traffic, or lazily per context after it. The zero
// value keeps today's strictly serial eager two-pass replay, bit for
// bit.
type Recovery struct {
	// Mode schedules Pass 2: RecoveryEager (the zero value) replays
	// everything before the process serves calls; RecoveryLazy admits
	// traffic after Pass 1 and replays each context's backlog on first
	// touch or from the background drain.
	Mode RecoveryMode
	// Parallelism bounds how many context replays execute concurrently
	// during Pass 2. In eager mode 0 selects the serial
	// scan-and-replay path; 1 runs the partitioned engine with a
	// single worker slot (same order of work, pipelined behind the
	// reader). In lazy mode it is the worker-slot count bounding
	// concurrent per-context backlog replays — on-demand and
	// background alike — and 0 means one slot.
	Parallelism int
	// QueueDepth bounds each context's replay queue — records buffered
	// between the demux reader and that context's replayer. A full
	// queue blocks the reader (backpressure, counted under
	// recovery.pass2.queue_stalls). 0 means 64.
	QueueDepth int
}

// queueDepth resolves the QueueDepth default.
func (r Recovery) queueDepth() int {
	if r.QueueDepth > 0 {
		return r.QueueDepth
	}
	return 64
}

// LogMode selects the logging discipline for persistent components.
type LogMode int

const (
	// LogBaseline is the first prototype's Algorithm 1: every message
	// (1-4) is logged in full and the log is forced immediately.
	LogBaseline LogMode = iota
	// LogOptimized is Section 3.1: receive messages are logged without
	// forcing, send messages are not written at all (they are
	// recreated by replay) but force all previous records, and
	// external-client interactions use Algorithm 3's long/short
	// records.
	LogOptimized
)

// String names the mode as the paper does. Out-of-range values render
// as a stable "LogMode(<n>)" rather than masquerading as a real mode.
func (m LogMode) String() string {
	switch m {
	case LogBaseline:
		return "baseline"
	case LogOptimized:
		return "optimized"
	default:
		return fmt.Sprintf("LogMode(%d)", int(m))
	}
}

// Config are the per-process runtime switches. The zero value is the
// baseline system with no checkpointing — the paper's first prototype.
// "In our new prototype, log optimizations and checkpointing can all be
// turned on or off via switches" (Section 5).
type Config struct {
	// LogMode selects baseline (Algorithm 1) or optimized (Section 3.1)
	// logging for persistent components.
	LogMode LogMode
	// SpecializedTypes honors the Section 3.2/3.3 component and method
	// types: subordinate co-location is structural and always applies,
	// but the functional/read-only logging eliminations (Algorithms 4
	// and 5) and read-only method treatment take effect only when this
	// switch is on.
	SpecializedTypes bool
	// MultiCall enables the Section 3.5 multi-call optimization: an
	// outgoing call to a persistent server that has not yet been
	// invoked during the current method execution does not force the
	// log; the force happens at the component's own reply, or on a
	// second call to the same server.
	MultiCall bool
	// GroupCommit batches concurrent log forces behind a dedicated
	// flusher goroutine: one device sync per batch of committers,
	// replacing the direct path's opportunistic piggybacking with a
	// deliberate commit window. Worth turning on when many contexts
	// (or external clients) commit concurrently against one process
	// log; a lone caller only pays the window latency. WAL.GroupCommit
	// takes precedence when set.
	GroupCommit GroupCommit
	// WAL shapes the log layout: shard count and per-shard group
	// commit. The zero value is the single-stream log, bit-for-bit
	// today's format.
	WAL WALConfig
	// Recovery parallelizes crash recovery's Pass 2 by context: a
	// single reader demultiplexes the log into per-context replay
	// queues drained by a bounded worker pool. The zero value keeps
	// the serial two-pass recovery; worth turning on for processes
	// hosting many contexts with long replay windows.
	Recovery Recovery
	// Adaptive enables the runtime discipline controller: per-method
	// promotion past the static discipline (Algorithm 1 → Algorithm 2,
	// read-only detection → Algorithm 5, distinct-server fan-out →
	// multi-call elision) with hysteresis, every transition durable as
	// a forced discipline-change record before it takes effect. The
	// zero value is off — static behavior, bit for bit.
	Adaptive AdaptiveConfig

	// SaveStateEvery makes a context save a state record after every
	// N-th incoming call it finishes (0 disables; Section 4.2).
	SaveStateEvery int
	// CheckpointEvery makes the process take a process checkpoint
	// after every N-th incoming call it serves (0 disables;
	// Section 4.3).
	CheckpointEvery int
	// AutoTrimLog reclaims dead log segments whenever a process
	// checkpoint becomes durable: everything before the oldest restart
	// LSN / last-call reply record is deleted. The paper's
	// checkpointing bounds recovery time; trimming bounds log space.
	AutoTrimLog bool

	// RetryInterval is how long a client interceptor waits before
	// repeating an outgoing call whose server failed (condition 4:
	// "waits for a while and retries the call using the same method
	// call ID"). Defaults to 50ms.
	RetryInterval time.Duration
	// RetryLimit bounds the repeats before the call is abandoned with
	// an error. The paper retries forever; tests need an exit.
	// Defaults to 600.
	RetryLimit int

	// Injector, when set, crashes the process at named interception
	// points to drive the Figure 2 failure experiments.
	Injector *Injector

	// OnEvent, when set, observes runtime lifecycle events (crashes,
	// recovery, checkpoints, retries, log trims, replayed calls). The
	// callback may run with runtime locks held and must not call back
	// into the runtime.
	OnEvent func(Event)

	// Metrics is the registry this process accounts its runtime
	// counters to: log forces and writes at the device boundary,
	// interceptions per logging discipline, per-site force accounting,
	// checkpoints, recovery activity. Nil falls back to the universe's
	// registry (UniverseConfig.Metrics), then to obs.Default(). Tests
	// asserting the paper's per-algorithm invariants give each process
	// its own registry.
	Metrics *obs.Registry

	// Trace is the flight recorder this process records causal spans
	// into: interception, log-append, sync-wait and replay legs of every
	// traced interaction. Nil falls back to the universe's recorder
	// (UniverseConfig.Trace); nil there too means tracing off — the
	// disabled path costs one pointer check per site.
	Trace *trace.Recorder
}

const (
	defaultRetryInterval = 50 * time.Millisecond
	defaultRetryLimit    = 600
)

func (c Config) retryInterval() time.Duration {
	if c.RetryInterval > 0 {
		return c.RetryInterval
	}
	return defaultRetryInterval
}

func (c Config) retryLimit() int {
	if c.RetryLimit > 0 {
		return c.RetryLimit
	}
	return defaultRetryLimit
}

// effectiveGroupCommit resolves the flusher config: WAL.GroupCommit
// when enabled, else the legacy top-level GroupCommit.
func (c Config) effectiveGroupCommit() GroupCommit {
	if c.WAL.GroupCommit.Enabled {
		return c.WAL.GroupCommit
	}
	return c.GroupCommit
}
