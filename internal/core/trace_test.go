package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// eventLog collects events thread-safely (the callback runs with
// runtime locks held).
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (e *eventLog) record(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, ev)
}

func (e *eventLog) kinds() map[EventKind]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[EventKind]int)
	for _, ev := range e.events {
		out[ev.Kind]++
	}
	return out
}

func TestLifecycleEvents(t *testing.T) {
	u := newTestUniverse(t)
	trace := &eventLog{}
	cfg := testConfig()
	cfg.SaveStateEvery = 2
	cfg.CheckpointEvery = 4
	cfg.AutoTrimLog = true
	cfg.OnEvent = trace.record
	m, p := startProc(t, u, "evo1", "srv", cfg)
	p.SetLogSegmentBytes(2048)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 40; i++ {
		callInt(t, ref, "Add", 1)
	}
	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	callInt(t, ref, "Get")

	kinds := trace.kinds()
	for _, want := range []EventKind{
		EventStateSave, EventCheckpoint, EventTrim, EventCrash,
		EventRecoveryStart, EventRecoveryDone,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event observed; kinds = %v", want, kinds)
		}
	}
	// The recovery-done event reports restored/replayed counts.
	var done Event
	trace.mu.Lock()
	for _, ev := range trace.events {
		if ev.Kind == EventRecoveryDone {
			done = ev
		}
	}
	trace.mu.Unlock()
	if !strings.Contains(done.Detail, "contexts restored") ||
		!strings.Contains(done.Detail, "replayed") {
		t.Errorf("recovery-done detail = %q", done.Detail)
	}
	if done.String() == "" || !strings.Contains(done.String(), "recovery-done") {
		t.Errorf("event String() = %q", done.String())
	}
}

func TestRetryEvents(t *testing.T) {
	u := newTestUniverse(t)
	trace := &eventLog{}
	cfg := testConfig()
	cfg.OnEvent = trace.record
	cfg.RetryInterval = time.Millisecond
	cfg.RetryLimit = 2000
	_, pc := startProc(t, u, "evo1", "cli", cfg)
	ms, ps := startProc(t, u, "evo2", "srv", testConfig())
	defer pc.Close()
	hc, err := ps.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pc.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ps.Crash()
	done := make(chan error, 1)
	go func() {
		_, err := u.ExternalRef(hr.URI()).Call("Forward", 1)
		done <- err
	}()
	time.Sleep(15 * time.Millisecond)
	if _, err := ms.StartProcess("srv", testConfig()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if trace.kinds()[EventRetry] == 0 {
		t.Error("no retry events observed while the server was down")
	}
}

// TestEventKindStrings covers every declared kind (the eventKindCount
// sentinel bounds the loop, so adding a kind without a String case
// fails here) and pins the stable fallback for unknown values.
func TestEventKindStrings(t *testing.T) {
	seen := make(map[string]bool)
	for k := EventKind(0); k < eventKindCount; k++ {
		s := k.String()
		if strings.HasPrefix(s, "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("kind %d reuses name %q", k, s)
		}
		seen[s] = true
	}
	if got := EventKind(99).String(); got != "EventKind(99)" {
		t.Errorf("unknown kind String() = %q, want %q", got, "EventKind(99)")
	}
	if got := EventKind(-1).String(); got != "EventKind(-1)" {
		t.Errorf("negative kind String() = %q, want %q", got, "EventKind(-1)")
	}
}

// TestLogModeString pins the sibling stringer's names and its
// defensive fallback for out-of-range values.
func TestLogModeString(t *testing.T) {
	if got := LogBaseline.String(); got != "baseline" {
		t.Errorf("LogBaseline.String() = %q, want %q", got, "baseline")
	}
	if got := LogOptimized.String(); got != "optimized" {
		t.Errorf("LogOptimized.String() = %q, want %q", got, "optimized")
	}
	if got := LogMode(7).String(); got != "LogMode(7)" {
		t.Errorf("out-of-range LogMode String() = %q, want %q", got, "LogMode(7)")
	}
}

// TestRecoveryEventOrdering checks the structured trace around crash
// recovery: EventRecoveryStart precedes every EventReplay, which all
// precede EventRecoveryDone, and the done event's Replayed/Suppressed
// counts match the replay events observed and the suppression metric.
func TestRecoveryEventOrdering(t *testing.T) {
	u := newTestUniverse(t)
	trace := &eventLog{}
	cfg := testConfig()
	cfg.OnEvent = trace.record
	cfg.Metrics = obs.NewRegistry() // isolate the client's counters
	m, pc := startProc(t, u, "evo1", "cli", cfg)
	_, ps := startProc(t, u, "evo2", "srv", testConfig())
	defer ps.Close()
	hc, err := ps.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pc.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(hr.URI())
	const calls = 5
	for i := 0; i < calls; i++ {
		callInt(t, ref, "Forward", 1)
	}
	pc.Crash()
	p2, err := m.StartProcess("cli", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	callInt(t, ref, "Forward", 1)

	trace.mu.Lock()
	events := append([]Event(nil), trace.events...)
	trace.mu.Unlock()

	startIdx, doneIdx := -1, -1
	var replayIdx []int
	var done Event
	for i, ev := range events {
		switch ev.Kind {
		case EventRecoveryStart:
			startIdx = i
		case EventReplay:
			replayIdx = append(replayIdx, i)
		case EventRecoveryDone:
			doneIdx = i
			done = ev
		}
	}
	if startIdx < 0 || doneIdx < 0 {
		t.Fatalf("missing recovery events: start=%d done=%d", startIdx, doneIdx)
	}
	if len(replayIdx) == 0 {
		t.Fatal("no replay events observed")
	}
	for _, ri := range replayIdx {
		if ri < startIdx || ri > doneIdx {
			t.Errorf("replay event at %d outside recovery window [%d, %d]",
				ri, startIdx, doneIdx)
		}
		if events[ri].Method != "Forward" {
			t.Errorf("replay event method = %q, want Forward", events[ri].Method)
		}
		if events[ri].LSN.IsNil() {
			t.Error("replay event carries no LSN")
		}
	}
	if done.Replayed != int64(len(replayIdx)) {
		t.Errorf("done.Replayed = %d, want %d (observed replay events)",
			done.Replayed, len(replayIdx))
	}
	if done.Restored != 1 {
		t.Errorf("done.Restored = %d, want 1", done.Restored)
	}
	// Every replayed Forward found its outgoing reply on the log (the
	// external reply-sent force covered it), so each replay suppressed
	// exactly one send — and the metric agrees with the event.
	if done.Suppressed != done.Replayed {
		t.Errorf("done.Suppressed = %d, want %d", done.Suppressed, done.Replayed)
	}
	if got := p2.Metrics().Counter(obs.SuppressedSends).Load(); got != done.Suppressed {
		t.Errorf("suppressed-sends counter = %d, want %d", got, done.Suppressed)
	}
}
