package core

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// eventLog collects events thread-safely (the callback runs with
// runtime locks held).
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (e *eventLog) record(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, ev)
}

func (e *eventLog) kinds() map[EventKind]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[EventKind]int)
	for _, ev := range e.events {
		out[ev.Kind]++
	}
	return out
}

func TestLifecycleEvents(t *testing.T) {
	u := newTestUniverse(t)
	trace := &eventLog{}
	cfg := testConfig()
	cfg.SaveStateEvery = 2
	cfg.CheckpointEvery = 4
	cfg.AutoTrimLog = true
	cfg.OnEvent = trace.record
	m, p := startProc(t, u, "evo1", "srv", cfg)
	p.SetLogSegmentBytes(2048)
	h, err := p.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	for i := 0; i < 40; i++ {
		callInt(t, ref, "Add", 1)
	}
	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	callInt(t, ref, "Get")

	kinds := trace.kinds()
	for _, want := range []EventKind{
		EventStateSave, EventCheckpoint, EventTrim, EventCrash,
		EventRecoveryStart, EventRecoveryDone,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event observed; kinds = %v", want, kinds)
		}
	}
	// The recovery-done event reports restored/replayed counts.
	var done Event
	trace.mu.Lock()
	for _, ev := range trace.events {
		if ev.Kind == EventRecoveryDone {
			done = ev
		}
	}
	trace.mu.Unlock()
	if !strings.Contains(done.Detail, "contexts restored") ||
		!strings.Contains(done.Detail, "replayed") {
		t.Errorf("recovery-done detail = %q", done.Detail)
	}
	if done.String() == "" || !strings.Contains(done.String(), "recovery-done") {
		t.Errorf("event String() = %q", done.String())
	}
}

func TestRetryEvents(t *testing.T) {
	u := newTestUniverse(t)
	trace := &eventLog{}
	cfg := testConfig()
	cfg.OnEvent = trace.record
	cfg.RetryInterval = time.Millisecond
	cfg.RetryLimit = 2000
	_, pc := startProc(t, u, "evo1", "cli", cfg)
	ms, ps := startProc(t, u, "evo2", "srv", testConfig())
	defer pc.Close()
	hc, err := ps.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pc.Create("Relay", &Relay{Server: NewRef(hc.URI())})
	if err != nil {
		t.Fatal(err)
	}
	ps.Crash()
	done := make(chan error, 1)
	go func() {
		_, err := u.ExternalRef(hr.URI()).Call("Forward", 1)
		done <- err
	}()
	time.Sleep(15 * time.Millisecond)
	if _, err := ms.StartProcess("srv", testConfig()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if trace.kinds()[EventRetry] == 0 {
		t.Error("no retry events observed while the server was down")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventCrash; k <= EventRetry; k++ {
		if strings.HasPrefix(k.String(), "event(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(EventKind(99).String(), "event(") {
		t.Error("unknown kind should fall back")
	}
}
