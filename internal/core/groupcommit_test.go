package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
)

// groupCommitConfig is testConfig with the flusher switched on and a
// tight window so tests never idle on a wall clock.
func groupCommitConfig() Config {
	cfg := testConfig()
	cfg.GroupCommit = GroupCommit{Enabled: true, MaxWait: 100 * time.Microsecond}
	return cfg
}

// TestGroupCommitEndToEndCrashRecovery drives concurrent external
// clients against one process whose log runs the group-commit flusher
// on a virtual clock (the commit window is deterministic and instant),
// then crashes the process mid-life: recovery must rebuild every
// counter exactly, proving batched acknowledgements were durable.
func TestGroupCommitEndToEndCrashRecovery(t *testing.T) {
	u, err := NewUniverse(UniverseConfig{
		Dir:   t.TempDir(),
		Clock: disk.NewVirtualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := groupCommitConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)

	const clients, calls = 8, 15
	refs := make([]*Ref, clients)
	for i := range refs {
		h, err := p.Create(fmt.Sprintf("Counter%d", i), &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = u.ExternalRef(h.URI())
	}
	var wg sync.WaitGroup
	for _, ref := range refs {
		wg.Add(1)
		go func(r *Ref) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := r.Call("Add", 1); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(ref)
	}
	wg.Wait()

	p.Crash()
	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i := 0; i < clients; i++ {
		h, ok := p2.Lookup(fmt.Sprintf("Counter%d", i))
		if !ok {
			t.Fatalf("Counter%d missing after recovery", i)
		}
		if got := callInt(t, u.ExternalRef(h.URI()), "Get"); got != calls {
			t.Errorf("Counter%d = %d after recovery, want %d", i, got, calls)
		}
	}
}

// TestGroupCommitExactlyOnceUnderInjection re-runs the exactly-once
// crash-injection harness with group commit enabled in every process:
// batching forces must not widen any recovery window. The points cover
// the client-side force (now a flusher batch) and the server's logged
// reply.
func TestGroupCommitExactlyOnceUnderInjection(t *testing.T) {
	points := []InjectionPoint{
		PointClientBeforeForceSend,
		PointClientAfterForceSend,
		PointServerAfterLogIncoming,
		PointServerBeforeSendReply,
	}
	for _, mode := range []LogMode{LogBaseline, LogOptimized} {
		for _, pt := range points {
			t.Run(fmt.Sprintf("%v/%v", mode, pt), func(t *testing.T) {
				base := Config{
					LogMode:          mode,
					SpecializedTypes: true,
					RetryInterval:    2 * time.Millisecond,
					RetryLimit:       2000,
					GroupCommit:      GroupCommit{Enabled: true, MaxWait: 100 * time.Microsecond},
				}
				runExactlyOnceCfg(t, base, pt, false)
			})
		}
	}
}

// TestGroupCommitConcurrentRelayFanIn exercises the batching path the
// flusher exists for: many persistent relays in one process forcing
// the shared log concurrently (message-3 forces), all fanning into one
// counter process. Every chain must complete and the counter must see
// every increment exactly once.
func TestGroupCommitConcurrentRelayFanIn(t *testing.T) {
	u := newTestUniverse(t)
	cfg := groupCommitConfig()
	_, pRel := startProc(t, u, "evo1", "rel", cfg)
	_, pCnt := startProc(t, u, "evo2", "cnt", cfg)
	defer pRel.Close()
	defer pCnt.Close()

	hc, err := pCnt.Create("Counter", &Counter{})
	if err != nil {
		t.Fatal(err)
	}
	const relays, calls = 6, 10
	refs := make([]*Ref, relays)
	for i := range refs {
		hr, err := pRel.Create(fmt.Sprintf("Relay%d", i), &Relay{Server: NewRef(hc.URI())})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = u.ExternalRef(hr.URI())
	}
	var wg sync.WaitGroup
	for _, ref := range refs {
		wg.Add(1)
		go func(r *Ref) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := r.Call("Forward", 1); err != nil {
					t.Errorf("Forward: %v", err)
					return
				}
			}
		}(ref)
	}
	wg.Wait()
	if got := callInt(t, u.ExternalRef(hc.URI()), "Get"); got != relays*calls {
		t.Errorf("counter = %d, want %d", got, relays*calls)
	}
}
