package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// These tests pin the sharded-log recovery contract: a universe whose
// process partitioned its log across N shards must recover to the same
// component state, last-call tables, and replay/suppression counts
// whether Pass 2 runs serially or with parallel per-shard readers —
// and a log that changed shard counts mid-life (a legacy single-stream
// era followed by a sharded era) must recover across both eras.

// shardWorkload drives the standard counters+relays workload against a
// fresh process configured with the given shard count, crashes it, and
// returns the universe dir plus component names.
func shardWorkload(t *testing.T, shards int) (dir string, counters, relays []string) {
	t.Helper()
	dir = t.TempDir()
	u, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.WAL = WALConfig{Shards: shards}
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make(map[string]*Ref)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("C%d", i)
		h, err := p.Create(name, &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		counters = append(counters, name)
		refs[name] = u.ExternalRef(h.URI())
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("R%d", i)
		target, _ := p.Lookup(fmt.Sprintf("C%d", i))
		h, err := p.Create(name, &Relay{Server: NewRef(target.URI())})
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, name)
		refs[name] = u.ExternalRef(h.URI())
	}
	for round := 1; round <= 8; round++ {
		for i, name := range counters {
			callInt(t, refs[name], "Add", i+round)
		}
		for _, name := range relays {
			callInt(t, refs[name], "Forward", 10)
		}
	}
	p.Crash()
	u.Shutdown()
	return dir, counters, relays
}

// TestShardedRecoveryEquivalence runs the serial-vs-parallel
// equivalence suite over logs partitioned into 1, 4 and 8 shards.
// Restarted processes carry no WAL config: the shard layout must be
// detected from the directory alone.
func TestShardedRecoveryEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir, counters, relays := shardWorkload(t, shards)
			if sharded := wal.IsSharded(filepath.Join(dir, "evo1", "srv.log")); sharded != (shards > 1) {
				t.Fatalf("IsSharded reports %v for a %d-shard log", sharded, shards)
			}
			base := recoverCopy(t, dir, counters, relays, 0)
			if base.suppressed == 0 {
				t.Error("workload produced no suppressed sends")
			}
			if base.stats.CallsReplayed == 0 {
				t.Error("workload produced no replayed calls")
			}
			for _, par := range equivalenceLevels[1:] {
				assertEquivalent(t, par, base, recoverCopy(t, dir, counters, relays, par))
			}
		})
	}
}

// mixedEraWorkload builds a crashed log spanning two eras — a legacy
// single-stream era (including some gob-framed records) written before
// sharding existed, then a 4-shard era appended after an upgrade
// restart — and returns the universe dir, the component names, and the
// expected recovered value of C0 (spanning both eras). Shared by the
// sharded and lazy equivalence suites.
func mixedEraWorkload(t *testing.T) (dir string, counters, relays []string, wantC0 int) {
	t.Helper()
	dir = t.TempDir()
	u, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("srv", testConfig()) // era 0: single stream
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("C%d", i)
		h, err := p.Create(name, &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		counters = append(counters, name)
		ref := u.ExternalRef(h.URI())
		callInt(t, ref, "Add", i+1)
	}
	// A stretch of legacy gob-framed records inside the legacy era:
	// the upgrade must not care how old frames were encoded.
	legacyRecEncoding = true
	for i, name := range counters {
		h, _ := p.Lookup(name)
		callInt(t, u.ExternalRef(h.URI()), "Add", 10+i)
	}
	legacyRecEncoding = false
	p.Crash()
	u.Shutdown()

	// Upgrade restart: same directory, now asking for 4 shards. This
	// recovers the legacy era and appends a sharded era for new work.
	u2, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u2.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.WAL = WALConfig{Shards: 4}
	p2, err := m2.StartProcess("srv", cfg)
	if err != nil {
		t.Fatalf("upgrade restart: %v", err)
	}
	if !p2.Recovered() {
		t.Fatal("upgrade restart did not recover the legacy era")
	}
	if !wal.IsSharded(filepath.Join(dir, "evo1", "srv.log")) {
		t.Fatal("upgrade restart left the log unsharded")
	}
	refs := make(map[string]*Ref)
	for _, name := range counters {
		h, ok := p2.Lookup(name)
		if !ok {
			t.Fatalf("counter %s lost across the upgrade", name)
		}
		refs[name] = u2.ExternalRef(h.URI())
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("R%d", i)
		target, _ := p2.Lookup(fmt.Sprintf("C%d", i))
		h, err := p2.Create(name, &Relay{Server: NewRef(target.URI())})
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, name)
		refs[name] = u2.ExternalRef(h.URI())
	}
	for round := 1; round <= 6; round++ {
		for i, name := range counters {
			callInt(t, refs[name], "Add", 100*round+i)
		}
		for _, name := range relays {
			callInt(t, refs[name], "Forward", 7)
		}
	}
	p2.Crash()
	u2.Shutdown()

	// C0's expected value spans both eras: its two legacy-era Adds, six
	// sharded-era Adds, and six relayed Forwards.
	wantC0 = (1 + 10) + (100 + 200 + 300 + 400 + 500 + 600) + 6*7
	return dir, counters, relays, wantC0
}

// TestMixedEraRecovery recovers the two-era log at every parallelism
// level: recovery must replay both eras in order with identical
// outcomes.
func TestMixedEraRecovery(t *testing.T) {
	dir, counters, relays, wantC0 := mixedEraWorkload(t)
	base := recoverCopy(t, dir, counters, relays, 0)
	if base.suppressed == 0 {
		t.Error("sharded era produced no suppressed sends")
	}
	if base.stats.CallsReplayed == 0 {
		t.Error("mixed-era workload produced no replayed calls")
	}
	if got := base.counters["C0"]; got != wantC0 {
		t.Errorf("C0 recovered as %d, want %d", got, wantC0)
	}
	for _, par := range equivalenceLevels[1:] {
		assertEquivalent(t, par, base, recoverCopy(t, dir, counters, relays, par))
	}
}
