package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/recsvc"
	"repro/internal/transport"
)

// Universe is the simulated distributed system: a set of machines
// connected by a network, sharing a clock. A crash of a virtual process
// discards exactly the volatile state a real process would lose (its
// objects, tables and log buffer) and keeps what survives (the log
// file, the well-known file, the recovery service's table), so the
// recovery protocol runs unmodified against it. For two real OS
// processes, use a transport.TCP network and one Universe per process.
type Universe struct {
	cfg UniverseConfig

	// metrics is the universe-level registry (default for processes
	// that set no Config.Metrics); rpcm caches its rpc.* view for the
	// send hot path.
	metrics *obs.Registry
	rpcm    *obs.RuntimeMetrics

	mu       sync.Mutex
	machines map[string]*Machine
}

// UniverseConfig configures the simulated world.
type UniverseConfig struct {
	// Dir is the root directory for logs and service tables; one
	// subdirectory is created per machine. Required.
	Dir string
	// Clock drives simulated latencies (disk rotation, network,
	// retries). Nil means a wall clock at full speed.
	Clock disk.Clock
	// Net carries messages between processes. Nil means an in-memory
	// network with NetworkRTT of injected latency.
	Net transport.Network
	// NetworkRTT is the Mem network's injected round trip; the paper
	// measures ~0.2 ms per remote call. Ignored when Net is set.
	// Zero means no injected latency.
	NetworkRTT time.Duration
	// DiskModel builds the log device model for each new process. Nil
	// means disk.HostModel (no simulated latency), which the test
	// suite uses; the experiment harness passes 7200-RPM SimDisks.
	DiskModel func(machine, process string) disk.Model
	// AddrFor overrides transport addressing. By default a process's
	// address is "machine/process", which the Mem network routes; a
	// TCP deployment maps process names to host:port here.
	AddrFor func(machine, process string) string
	// Metrics is the universe's observability registry: transport and
	// rpc activity is accounted here, and processes whose Config sets
	// no registry of their own inherit it. Nil means obs.Default().
	Metrics *obs.Registry
	// Trace is the causal-tracing flight recorder: external interactions
	// get TraceIDs minted from it, transport round trips record spans
	// into it, and processes whose Config sets no recorder of their own
	// inherit it. Nil means tracing off (the zero-cost default).
	Trace *trace.Recorder
}

// NewUniverse creates a world rooted at cfg.Dir.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("core: UniverseConfig.Dir is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = disk.NewRealClock(1)
	}
	if cfg.Net == nil {
		cfg.Net = transport.NewMem(cfg.Clock, cfg.NetworkRTT)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	// Every message between processes crosses the instrumented
	// transport, giving transport.* counts and latencies for free.
	cfg.Net = transport.Instrument(cfg.Net, cfg.Metrics)
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: mkdir %s: %w", cfg.Dir, err)
	}
	return &Universe{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		rpcm:     obs.RuntimeView(cfg.Metrics),
		machines: make(map[string]*Machine),
	}, nil
}

// Metrics returns the universe-level observability registry.
func (u *Universe) Metrics() *obs.Registry { return u.metrics }

// FlightRecorder returns the universe-level flight recorder (nil when
// tracing is off).
func (u *Universe) FlightRecorder() *trace.Recorder { return u.cfg.Trace }

// Clock returns the universe's clock.
func (u *Universe) Clock() disk.Clock { return u.cfg.Clock }

// AddMachine creates (or returns) the named machine and its recovery
// service.
func (u *Universe) AddMachine(name string) (*Machine, error) {
	if err := validateName("machine", name); err != nil {
		return nil, err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if m, ok := u.machines[name]; ok {
		return m, nil
	}
	dir := filepath.Join(u.cfg.Dir, name)
	svc, err := recsvc.Open(dir)
	if err != nil {
		return nil, err
	}
	m := &Machine{u: u, name: name, dir: dir, svc: svc, procs: make(map[string]*Process)}
	u.machines[name] = m
	return m, nil
}

// Machine returns an existing machine by name.
func (u *Universe) Machine(name string) (*Machine, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	m, ok := u.machines[name]
	return m, ok
}

// Shutdown cleanly closes every live process on every machine and
// disables auto-restart. State on disk is preserved; a new Universe
// over the same directory recovers everything.
func (u *Universe) Shutdown() {
	u.mu.Lock()
	machines := make([]*Machine, 0, len(u.machines))
	for _, m := range u.machines {
		machines = append(machines, m)
	}
	u.mu.Unlock()
	for _, m := range machines {
		m.svc.DisableAutoRestart()
		m.mu.Lock()
		procs := make([]*Process, 0, len(m.procs))
		for _, p := range m.procs {
			procs = append(procs, p)
		}
		m.mu.Unlock()
		for _, p := range procs {
			p.Close()
		}
	}
}

// addrFor resolves a machine/process pair to a transport address.
func (u *Universe) addrFor(machine, process string) string {
	if u.cfg.AddrFor != nil {
		return u.cfg.AddrFor(machine, process)
	}
	return machine + "/" + process
}

// addrForURI resolves a component URI to its process's address.
func (u *Universe) addrForURI(uri ids.URI) (string, error) {
	machine, process, _, err := uri.Split()
	if err != nil {
		return "", err
	}
	return u.addrFor(machine, process), nil
}

// ExternalRef returns a proxy for calling a component as an external
// client: no Phoenix identity is attached, nothing is logged at the
// caller, and nothing is guaranteed — exactly the paper's external
// components. retryOnFailure controls whether the proxy redrives the
// call when the server is unavailable (an external client that does
// not retry simply sees the failure).
func (u *Universe) ExternalRef(uri ids.URI) *Ref {
	return &Ref{u: u, target: uri, external: true}
}

// Machine is one node: it hosts processes, owns their on-disk state
// directory, and runs the machine's recovery service.
type Machine struct {
	u    *Universe
	name string
	dir  string
	svc  *recsvc.Service

	mu    sync.Mutex
	procs map[string]*Process
}

// Name returns the machine name (the first part of method-call IDs).
func (m *Machine) Name() string { return m.name }

// Service exposes the machine's recovery service.
func (m *Machine) Service() *recsvc.Service { return m.svc }

// StartProcess boots (or reboots) a virtual process. If the process
// name is already registered with the recovery service and has a log,
// the new process instance recovers automatically before accepting
// calls — the paper's restart path. Starting a process whose previous
// instance is still alive crashes the old instance first (a process
// cannot run twice).
func (m *Machine) StartProcess(name string, cfg Config) (*Process, error) {
	if err := validateName("process", name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if old := m.procs[name]; old != nil && !old.crashed.Load() {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: process %s/%s is already running", m.name, name)
	}
	m.mu.Unlock()

	procID, existing, err := m.svc.Register(name)
	if err != nil {
		return nil, err
	}
	p, err := newProcess(m, name, procID, cfg)
	if err != nil {
		return nil, err
	}
	// Listen before recovering: replay that runs off the end of the
	// log resumes live execution, and its outgoing calls may target
	// components of this same process. Contexts being replayed hold
	// incoming calls at their ready gate until their recovery is done.
	if err := p.listen(); err != nil {
		if cerr := p.shutdown(); cerr != nil {
			err = fmt.Errorf("%w (shutdown: %v)", err, cerr)
		}
		return nil, err
	}
	if existing {
		// Explicit two-phase restart: restore rebuilds the context
		// tables and restart LSNs from Pass 1, admit schedules the
		// replay — before accepting traffic (eager) or around it
		// (lazy on-demand + background drain).
		plan, err := p.restore()
		if err == nil {
			err = p.admit(plan)
		}
		if err != nil {
			if cerr := p.shutdown(); cerr != nil {
				err = fmt.Errorf("%w (shutdown: %v)", err, cerr)
			}
			return nil, fmt.Errorf("core: recover %s/%s: %w", m.name, name, err)
		}
	}
	p.markStarted()
	m.mu.Lock()
	m.procs[name] = p
	m.mu.Unlock()
	return p, nil
}

// Process returns a running process by name.
func (m *Machine) Process(name string) (*Process, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[name]
	return p, ok
}

// EnableAutoRestart makes the recovery service restart crashed
// processes with the given config after delay — the paper's "monitors
// the abnormal exits of the registered processes and restarts those
// processes".
func (m *Machine) EnableAutoRestart(cfg Config, delay time.Duration) {
	m.svc.EnableAutoRestart(func(procName string) error {
		_, err := m.StartProcess(procName, cfg)
		return err
	}, delay)
}
