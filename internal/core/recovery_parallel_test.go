package core

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// These tests pin the Config.Recovery contract: recovering the same
// crashed log with Parallelism 0 (serial), 1, 4 and 8 must produce
// identical component state, identical last-call tables, and identical
// replay/suppression counts. Each parallelism level recovers its own
// copy of the crashed universe directory. Run under -race: the
// parallel engine's demux reader, drain goroutines and worker slots
// all execute here.

// copyDir clones a universe directory so each recovery attempt starts
// from the same crashed on-disk state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// recoveryOutcome is everything the equivalence tests compare.
type recoveryOutcome struct {
	counters   map[string]int
	relayCalls map[string]int
	lastCalls  []lastCallSaved
	suppressed int64
	stats      RecoveryStats
}

// recoverCopy clones the crashed universe at srcDir and recovers the
// "srv" process with the given Pass-2 parallelism, returning what
// recovery produced.
func recoverCopy(t *testing.T, srcDir string, counters, relays []string, par int) recoveryOutcome {
	t.Helper()
	dst := t.TempDir()
	copyDir(t, srcDir, dst)
	u, err := NewUniverse(UniverseConfig{Dir: dst})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Shutdown()
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Recovery = Recovery{Parallelism: par, QueueDepth: 2} // tiny queue: force backpressure
	p, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatalf("parallelism %d: restart: %v", par, err)
	}
	if !p.Recovered() {
		t.Fatalf("parallelism %d: restarted process did not recover", par)
	}

	out := recoveryOutcome{
		counters:   make(map[string]int),
		relayCalls: make(map[string]int),
		suppressed: p.suppressedCalls.Load(),
	}
	for _, name := range counters {
		h, ok := p.Lookup(name)
		if !ok {
			t.Fatalf("parallelism %d: counter %s missing after recovery", par, name)
		}
		out.counters[name] = h.Object().(*Counter).N
	}
	for _, name := range relays {
		h, ok := p.Lookup(name)
		if !ok {
			t.Fatalf("parallelism %d: relay %s missing after recovery", par, name)
		}
		out.relayCalls[name] = h.Object().(*Relay).Calls
	}
	out.lastCalls = p.lastCalls.snapshot()
	sort.Slice(out.lastCalls, func(i, j int) bool {
		a, b := out.lastCalls[i], out.lastCalls[j]
		if a.Caller != b.Caller {
			return fmt.Sprint(a.Caller) < fmt.Sprint(b.Caller)
		}
		return a.Seq < b.Seq
	})
	stats, ok := p.LastRecovery()
	if !ok {
		t.Fatalf("parallelism %d: LastRecovery reported no run", par)
	}
	out.stats = stats
	return out
}

// assertEquivalent compares a parallel recovery's outcome against the
// serial baseline.
func assertEquivalent(t *testing.T, par int, base, got recoveryOutcome) {
	t.Helper()
	for name, want := range base.counters {
		if got.counters[name] != want {
			t.Errorf("parallelism %d: counter %s = %d, serial recovered %d",
				par, name, got.counters[name], want)
		}
	}
	for name, want := range base.relayCalls {
		if got.relayCalls[name] != want {
			t.Errorf("parallelism %d: relay %s calls = %d, serial recovered %d",
				par, name, got.relayCalls[name], want)
		}
	}
	if len(got.lastCalls) != len(base.lastCalls) {
		t.Errorf("parallelism %d: last-call table has %d entries, serial has %d",
			par, len(got.lastCalls), len(base.lastCalls))
	} else {
		for i := range base.lastCalls {
			if got.lastCalls[i] != base.lastCalls[i] {
				t.Errorf("parallelism %d: last-call entry %d = %+v, serial %+v",
					par, i, got.lastCalls[i], base.lastCalls[i])
			}
		}
	}
	if got.suppressed != base.suppressed {
		t.Errorf("parallelism %d: suppressed %d sends, serial suppressed %d",
			par, got.suppressed, base.suppressed)
	}
	if got.stats.CallsReplayed != base.stats.CallsReplayed {
		t.Errorf("parallelism %d: replayed %d calls, serial replayed %d",
			par, got.stats.CallsReplayed, base.stats.CallsReplayed)
	}
	if got.stats.RecordsScanned != base.stats.RecordsScanned {
		t.Errorf("parallelism %d: scanned %d records, serial scanned %d",
			par, got.stats.RecordsScanned, base.stats.RecordsScanned)
	}
	if got.stats.ContextsRestored != base.stats.ContextsRestored {
		t.Errorf("parallelism %d: restored %d contexts, serial restored %d",
			par, got.stats.ContextsRestored, base.stats.ContextsRestored)
	}
	if par == 0 && got.stats.WorkersUsed != 0 {
		t.Errorf("serial recovery reports %d workers", got.stats.WorkersUsed)
	}
	if par > 0 && (got.stats.WorkersUsed < 1 || got.stats.WorkersUsed > par) {
		t.Errorf("parallelism %d: WorkersUsed = %d, want 1..%d",
			par, got.stats.WorkersUsed, par)
	}
}

var equivalenceLevels = []int{0, 1, 4, 8}

// TestParallelRecoveryEquivalenceWorkload crashes a process hosting
// many counters plus relays (whose replays suppress outgoing sends
// answered from the log) and recovers it at every parallelism level.
func TestParallelRecoveryEquivalenceWorkload(t *testing.T) {
	dir := t.TempDir()
	u, err := NewUniverse(UniverseConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("srv", testConfig())
	if err != nil {
		t.Fatal(err)
	}

	var counters, relays []string
	refs := make(map[string]*Ref)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("C%d", i)
		h, err := p.Create(name, &Counter{})
		if err != nil {
			t.Fatal(err)
		}
		counters = append(counters, name)
		refs[name] = u.ExternalRef(h.URI())
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("R%d", i)
		target, _ := p.Lookup(fmt.Sprintf("C%d", i))
		h, err := p.Create(name, &Relay{Server: NewRef(target.URI())})
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, name)
		refs[name] = u.ExternalRef(h.URI())
	}
	for round := 1; round <= 8; round++ {
		for i, name := range counters {
			callInt(t, refs[name], "Add", i+round)
		}
		for _, name := range relays {
			callInt(t, refs[name], "Forward", 10)
		}
	}
	p.Crash()
	u.Shutdown()

	base := recoverCopy(t, dir, counters, relays, 0)
	if base.suppressed == 0 {
		t.Error("workload produced no suppressed sends; relays did not exercise replay suppression")
	}
	if base.stats.CallsReplayed == 0 {
		t.Error("workload produced no replayed calls")
	}
	for _, par := range equivalenceLevels[1:] {
		assertEquivalent(t, par, base, recoverCopy(t, dir, counters, relays, par))
	}
}

// TestParallelRecoveryEquivalenceCrashPoints repeats the equivalence
// check for logs truncated by mid-call crash injection, including a
// crash between logging an incoming call and executing it — the case
// where the tail replay runs off the end of the log and resumes live.
func TestParallelRecoveryEquivalenceCrashPoints(t *testing.T) {
	points := []InjectionPoint{
		PointServerAfterLogIncoming,
		PointServerAfterExecute,
		PointServerBeforeSendReply,
	}
	for _, point := range points {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			u, err := NewUniverse(UniverseConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			m, err := u.AddMachine("evo1")
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			// Fire mid-call late in the run so earlier calls replay
			// normally and the last one exercises the crash point.
			cfg.Injector = NewInjector().CrashAt(point, 12)
			p, err := m.StartProcess("srv", cfg)
			if err != nil {
				t.Fatal(err)
			}
			var counters []string
			refs := make(map[string]*Ref)
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("C%d", i)
				h, err := p.Create(name, &Counter{})
				if err != nil {
					t.Fatal(err)
				}
				counters = append(counters, name)
				refs[name] = u.ExternalRef(h.URI()).WithoutRetry()
			}
			crashed := false
			for round := 1; round <= 5 && !crashed; round++ {
				for i, name := range counters {
					if _, err := refs[name].Call("Add", i+round); err != nil {
						crashed = true
						break
					}
				}
			}
			if !crashed {
				t.Fatalf("injector at %s never fired", point)
			}
			u.Shutdown()

			base := recoverCopy(t, dir, counters, nil, 0)
			for _, par := range equivalenceLevels[1:] {
				assertEquivalent(t, par, base, recoverCopy(t, dir, counters, nil, par))
			}
		})
	}
}
