package core

import (
	"fmt"
	"io"

	"repro/internal/ids"
	"repro/internal/serial"
	"repro/internal/wal"
)

// DumpLog renders a process recovery log human-readably, one line per
// record — the operational tool for inspecting what a process logged
// and what recovery would replay. It opens the log read-only in the
// sense that it appends nothing; the log must not be concurrently
// owned by a live process.
func DumpLog(w io.Writer, dir string) error {
	log, err := wal.Open(dir, nil)
	if err != nil {
		return err
	}
	defer log.Close()

	fmt.Fprintf(w, "log %s: LSNs %v..%v\n", dir, log.Start(), log.End())
	if wk, err := wal.LoadWellKnownLSN(dir + ".wk"); err == nil {
		fmt.Fprintf(w, "well-known checkpoint LSN: %v\n", wk)
	}

	return log.Scan(ids.NilLSN, func(rec wal.Record) error {
		fmt.Fprintf(w, "%-12v %-14s %5dB  ", rec.LSN, recName(rec.Type), len(rec.Payload))
		if err := dumpPayload(w, rec); err != nil {
			fmt.Fprintf(w, "<undecodable: %v>", err)
		}
		fmt.Fprintln(w)
		return nil
	})
}

func dumpPayload(w io.Writer, rec wal.Record) error {
	switch rec.Type {
	case recCreation:
		var v creationRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d uri=%s comps=%d", v.Ctx, v.URI, len(v.Comps))
		for _, c := range v.Comps {
			fmt.Fprintf(w, " [%d %s %s %s]", c.ID, c.Name, c.Type, c.GoType)
		}
	case recIncoming:
		var v incomingRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		caller := "external"
		if !v.Call.ID.IsZero() {
			caller = v.Call.ID.String()
		}
		fmt.Fprintf(w, "ctx=%d %s.%s from %s (%s)",
			v.Ctx, v.Call.Target, v.Call.Method, caller, v.Call.CallerType)
	case recReplySent:
		var v replySentRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d call=%v (short record: sent marker only)", v.Ctx, v.CallID)
	case recReplyContent:
		var v replyContentRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d call=%v results=%dB appErr=%q",
			v.Ctx, v.CallID, len(v.Reply.Results), v.Reply.AppErr)
	case recOutgoing:
		var v outgoingRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d -> %s.%s seq=%d", v.Ctx, v.Call.Target, v.Call.Method, v.Call.ID.Seq)
	case recOutgoingReply:
		var v outgoingReplyRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d seq=%d results=%dB appErr=%q",
			v.Ctx, v.Seq, len(v.Reply.Results), v.Reply.AppErr)
	case recCtxState:
		var v ctxStateRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d uri=%s comps=%d lastOutSeq=%d lastCalls=%d",
			v.Ctx, v.URI, len(v.Comps), v.LastOutSeq, len(v.LastCalls))
		for _, c := range v.Comps {
			st, err := serial.DecodeState(c.State)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " [%s: %d fields]", c.Name, len(st.Fields))
		}
	case recBeginCkpt:
		fmt.Fprint(w, "begin process checkpoint")
	case recCkptCtxTable:
		var v ckptCtxTableRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "context table: %d entries", len(v.Entries))
		for _, e := range v.Entries {
			fmt.Fprintf(w, " [ctx=%d restart=%v]", e.Ctx, e.RestartLSN)
		}
	case recCkptLastCall:
		var v ckptLastCallRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "last call table: %d entries", len(v.Entries))
	case recEndCkpt:
		var v endCkptRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "end process checkpoint (begin=%v)", v.BeginLSN)
	default:
		fmt.Fprintf(w, "unknown record type %d", rec.Type)
	}
	return nil
}
