package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/serial"
	"repro/internal/wal"
)

// DumpLog renders a process recovery log human-readably, one line per
// record — the operational tool for inspecting what a process logged
// and what recovery would replay. It opens the log read-only in the
// sense that it appends nothing; the log must not be concurrently
// owned by a live process.
//
// Each record line carries a status column relative to the well-known
// checkpoint LSN: "ckpt'd" records precede it (recovery's pass 1 scan
// starts past them), "replay" records are what a crash right now would
// scan. Records whose type implies a log force under every discipline
// (creation records, Algorithm 3's reply-sent markers) are tagged
// "forced"; the actual force count is runtime state the log does not
// store, so the summary reports the implied minimum.
func DumpLog(w io.Writer, dir string) error {
	var log wal.Writer
	var err error
	if wal.IsSharded(dir) {
		log, err = wal.OpenSet(dir, nil, 0)
	} else {
		log, err = wal.Open(dir, nil)
	}
	if err != nil {
		return err
	}
	defer log.Close()

	shards := log.Shards()
	if len(shards) == 1 {
		l := shards[0].Log
		fmt.Fprintf(w, "log %s: LSNs %v..%v\n", dir, l.Start(), l.End())
	} else {
		fmt.Fprintf(w, "log %s: %d shards\n", dir, len(shards))
		for _, sh := range shards {
			fmt.Fprintf(w, "  shard %d (era %d): LSNs %v..%v\n",
				sh.Stream, sh.Era, sh.Log.Start(), sh.Log.End())
		}
	}
	// The process stores the well-known watermark next to the log
	// directory: <name>.wk beside <name>.log (see Process.wkPath).
	var marks map[uint32]ids.LSN
	for _, path := range []string{strings.TrimSuffix(dir, ".log") + ".wk", dir + ".wk"} {
		if m, err := wal.LoadWellKnownMarks(path); err == nil {
			marks = m
			if k, ok := m[0]; ok && len(m) == 1 {
				fmt.Fprintf(w, "well-known checkpoint LSN: %v\n", k)
			} else {
				fmt.Fprintf(w, "well-known checkpoint marks:")
				for _, sh := range shards {
					if k, ok := m[sh.Stream]; ok {
						fmt.Fprintf(w, " %d=%v", sh.Stream, k)
					}
				}
				fmt.Fprintln(w)
			}
			break
		}
	}

	// Per-kind record counts accumulate in a private registry under the
	// same rec.* names the runtime uses, so the summary reads exactly
	// like a live metrics snapshot of this log's history. Discipline
	// attribution replays the adaptive controller's change records as
	// the scan passes them, so each message record is labeled with the
	// discipline that was in force when it was written.
	reg := obs.NewRegistry()
	records, impliedForces := 0, 0
	disc := make(map[methodKey]Discipline)
	mc := make(map[methodKey]bool)
	discCounts := make(map[string]int)
	for _, sh := range shards {
		wk := marks[sh.Stream]
		err = sh.Log.Scan(ids.NilLSN, func(rec wal.Record) error {
			records++
			reg.Counter(recMetricName(rec.Type)).Inc()
			status := "replay"
			if !wk.IsNil() && rec.LSN < wk {
				status = "ckpt'd"
			}
			if forcedKind(rec.Type) {
				impliedForces++
				status += "+forced"
			}
			algo := dumpDiscipline(rec, disc, mc)
			if algo != "-" {
				discCounts[algo]++
			}
			fmt.Fprintf(w, "%-12v %-17s %-13s %-9s %5dB  ", rec.LSN, recName(rec.Type), status, algo, len(rec.Payload))
			if err := dumpPayload(w, rec); err != nil {
				fmt.Fprintf(w, "<undecodable: %v>", err)
			}
			fmt.Fprintln(w)
			return nil
		})
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "\nsummary: %d records, >=%d forces implied by record kinds\n",
		records, impliedForces)
	if len(discCounts) > 0 {
		algos := make([]string, 0, len(discCounts))
		for a := range discCounts {
			algos = append(algos, a)
		}
		sort.Strings(algos)
		fmt.Fprintf(w, "  per-discipline:")
		for _, a := range algos {
			fmt.Fprintf(w, " %s=%d", a, discCounts[a])
		}
		fmt.Fprintln(w)
	}
	// Final adaptive assignments: the state the change records leave
	// behind — what a recovery of this log would restore.
	var keys []methodKey
	for k := range disc {
		if disc[k] != DiscBaseline || mc[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) > 0 {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].ctx != keys[j].ctx {
				return keys[i].ctx < keys[j].ctx
			}
			return keys[i].method < keys[j].method
		})
		fmt.Fprintf(w, "  adaptive assignments:")
		for _, k := range keys {
			tag := disc[k].String()
			if mc[k] {
				tag += "+mc"
			}
			fmt.Fprintf(w, " ctx=%d.%s=%s", k.ctx, k.method, tag)
		}
		fmt.Fprintln(w)
	}
	reg.Snapshot().WriteText(w, "  ")
	return nil
}

// dumpDiscipline labels a record with the logging discipline that
// produced it, replaying adaptive discipline-change records into the
// attribution maps as the scan passes them. Lifecycle records
// (creation, state, checkpoint brackets) get "-"; message records get
// the algorithm — exact where the record kind pins it (reply-sent is
// Algorithm 3, outgoing sends only exist under Algorithm 1), a
// "A1|A2"-style range where the log alone cannot distinguish the
// static mode, and a "*"-suffixed form where an adaptive promotion was
// in force.
func dumpDiscipline(rec wal.Record, disc map[methodKey]Discipline, mc map[methodKey]bool) string {
	switch rec.Type {
	case recDisciplineChange:
		var v disciplineChangeRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return "adapt"
		}
		k := methodKey{ctx: v.Ctx, method: v.Method}
		disc[k] = v.To
		mc[k] = v.MultiCall
		return "adapt"
	case recIncoming:
		var v incomingRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return "?"
		}
		if disc[methodKey{ctx: v.Ctx, method: v.Call.Method}] == DiscAlgo2 {
			return "A2*"
		}
		if v.Call.ID.IsZero() {
			return "A1|A3"
		}
		return "A1|A2"
	case recReplySent:
		return "A3"
	case recReplyContent:
		return "A1"
	case recOutgoing:
		return "A1"
	case recOutgoingReply:
		return "A1|A2|A5"
	case recCreation, recCtxState, recBeginCkpt, recCkptCtxTable, recCkptLastCall, recEndCkpt:
		return "-"
	default:
		return "-"
	}
}

// recMetricName maps a record type to the obs counter name the runtime
// accounts it under (see Process.recCounter for the live equivalent).
func recMetricName(t wal.RecordType) string {
	switch t {
	case recCreation:
		return obs.RecCreation
	case recIncoming:
		return obs.RecIncoming
	case recReplySent:
		return obs.RecReplySent
	case recReplyContent:
		return obs.RecReplyContent
	case recOutgoing:
		return obs.RecOutgoing
	case recOutgoingReply:
		return obs.RecOutgoingReply
	case recCtxState:
		return obs.RecCtxState
	case recBeginCkpt:
		return obs.RecBeginCkpt
	case recCkptCtxTable:
		return obs.RecCkptCtxTable
	case recCkptLastCall:
		return obs.RecCkptLastCall
	case recEndCkpt:
		return obs.RecEndCkpt
	case recDisciplineChange:
		return obs.RecDisciplineChange
	default:
		return fmt.Sprintf("rec.unknown_%d", t)
	}
}

// forcedKind reports whether a record of this type is forced at append
// time under every logging discipline: creation records (Create forces
// before publishing the component), Algorithm 3's reply-sent markers
// ("log the reply-sent record and force"), and adaptive
// discipline-change records (durable before the change takes effect).
// Other kinds may or may not have been forced depending on the
// discipline and on later forces covering them — the log itself does
// not say.
func forcedKind(t wal.RecordType) bool {
	return t == recCreation || t == recReplySent || t == recDisciplineChange
}

// dumpTrace appends a record's causal identity when it carries one —
// the same TraceID phoenix-trace keys timelines on, so grepping a
// logdump for a trace hex lands on the records that trace produced.
func dumpTrace(w io.Writer, tr trace.Ref) {
	if !tr.IsZero() {
		fmt.Fprintf(w, " trace=%016x/%d", tr.Trace, tr.Span)
	}
}

func dumpPayload(w io.Writer, rec wal.Record) error {
	switch rec.Type {
	case recCreation:
		var v creationRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d uri=%s comps=%d", v.Ctx, v.URI, len(v.Comps))
		for _, c := range v.Comps {
			fmt.Fprintf(w, " [%d %s %s %s]", c.ID, c.Name, c.Type, c.GoType)
		}
	case recIncoming:
		var v incomingRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		caller := "external"
		if !v.Call.ID.IsZero() {
			caller = v.Call.ID.String()
		}
		fmt.Fprintf(w, "ctx=%d %s.%s from %s (%s)",
			v.Ctx, v.Call.Target, v.Call.Method, caller, v.Call.CallerType)
		dumpTrace(w, v.Trace)
	case recReplySent:
		var v replySentRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d call=%v (short record: sent marker only)", v.Ctx, v.CallID)
		dumpTrace(w, v.Trace)
	case recReplyContent:
		var v replyContentRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d call=%v results=%dB appErr=%q",
			v.Ctx, v.CallID, len(v.Reply.Results), v.Reply.AppErr)
		dumpTrace(w, v.Trace)
	case recOutgoing:
		var v outgoingRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d -> %s.%s seq=%d", v.Ctx, v.Call.Target, v.Call.Method, v.Call.ID.Seq)
		dumpTrace(w, v.Trace)
	case recOutgoingReply:
		var v outgoingReplyRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d seq=%d results=%dB appErr=%q",
			v.Ctx, v.Seq, len(v.Reply.Results), v.Reply.AppErr)
		dumpTrace(w, v.Trace)
	case recCtxState:
		var v ctxStateRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "ctx=%d uri=%s comps=%d lastOutSeq=%d lastCalls=%d",
			v.Ctx, v.URI, len(v.Comps), v.LastOutSeq, len(v.LastCalls))
		for _, c := range v.Comps {
			st, err := serial.DecodeState(c.State)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " [%s: %d fields]", c.Name, len(st.Fields))
		}
	case recBeginCkpt:
		fmt.Fprint(w, "begin process checkpoint")
	case recCkptCtxTable:
		var v ckptCtxTableRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "context table: %d entries", len(v.Entries))
		for _, e := range v.Entries {
			fmt.Fprintf(w, " [ctx=%d restart=%v]", e.Ctx, e.RestartLSN)
		}
	case recCkptLastCall:
		var v ckptLastCallRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "last call table: %d entries", len(v.Entries))
	case recEndCkpt:
		var v endCkptRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		fmt.Fprintf(w, "end process checkpoint (begin=%v)", v.BeginLSN)
	case recDisciplineChange:
		var v disciplineChangeRec
		if err := decodeRec(rec.Payload, &v); err != nil {
			return err
		}
		kind := "promote"
		if v.From == v.To {
			kind = "reemit"
		} else if v.To == DiscBaseline {
			kind = "demote"
		}
		fmt.Fprintf(w, "ctx=%d %s %s: %s -> %s epoch=%d", v.Ctx, kind, v.Method, v.From, v.To, v.Epoch)
		if v.MultiCall {
			fmt.Fprint(w, " multicall")
		}
		if v.Barred {
			fmt.Fprint(w, " ro-barred")
		}
	default:
		fmt.Fprintf(w, "unknown record type %d", rec.Type)
	}
	return nil
}
