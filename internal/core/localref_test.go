package core

import (
	"testing"
)

// Holder keeps its subordinate handle in an exported field, so context
// state records capture it as a local component reference and restore
// must re-resolve it (paper Section 4.2: "for a local component
// reference (to a component in the same context), we store the
// component ID").
type Holder struct {
	V     *Local
	Calls int

	ctx *Ctx
}

// AttachContext receives the context handle.
func (h *Holder) AttachContext(cx *Ctx) { h.ctx = cx }

// Put ensures the subordinate exists and stores into it through the
// held handle.
func (h *Holder) Put(n int) (int, error) {
	if h.V == nil {
		var err error
		h.V, err = h.ctx.CreateSubordinate("vault", &Vault{})
		if err != nil {
			return 0, err
		}
	}
	h.Calls++
	res, err := h.V.Call("Put", n)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

func TestLocalRefFieldRestoredFromStateRecord(t *testing.T) {
	u := newTestUniverse(t)
	cfg := testConfig()
	m, p := startProc(t, u, "evo1", "srv", cfg)
	h, err := p.Create("Holder", &Holder{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	callInt(t, ref, "Put", 4)
	callInt(t, ref, "Put", 6)
	// The state record saves V as a local component reference.
	if err := h.SaveState(); err != nil {
		t.Fatal(err)
	}
	callInt(t, ref, "Put", 5)
	p.Crash()

	p2, err := m.StartProcess("srv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// Restore resolved V to the restored subordinate; the suffix
	// replayed on top. 4+6+5+1 = 16.
	if got := callInt(t, ref, "Put", 1); got != 16 {
		t.Errorf("Put after recovery -> %d, want 16", got)
	}
	h2, _ := p2.Lookup("Holder")
	holder := h2.Object().(*Holder)
	if holder.V == nil {
		t.Fatal("local ref field not restored")
	}
	if holder.V.Name() != "vault" {
		t.Errorf("restored handle names %q", holder.V.Name())
	}
	if holder.Calls != 4 {
		t.Errorf("Calls = %d, want 4", holder.Calls)
	}
}
