package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
)

func echoUpper(req []byte) ([]byte, error) {
	return bytes.ToUpper(req), nil
}

func TestMemRoundTrip(t *testing.T) {
	m := NewMem(nil, 0)
	if err := m.Listen("evo1:shop", echoUpper); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Send("evo1:shop", []byte("books"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "BOOKS" {
		t.Errorf("resp = %q", resp)
	}
}

func TestMemUnavailable(t *testing.T) {
	m := NewMem(nil, 0)
	if _, err := m.Send("nowhere", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
}

func TestMemUnlisten(t *testing.T) {
	m := NewMem(nil, 0)
	if err := m.Listen("a", echoUpper); err != nil {
		t.Fatal(err)
	}
	m.Unlisten("a")
	if _, err := m.Send("a", []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("after Unlisten: %v, want ErrUnavailable", err)
	}
	// Re-listen (restarted process) works again.
	if err := m.Listen("a", echoUpper); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send("a", []byte("x")); err != nil {
		t.Errorf("after re-listen: %v", err)
	}
}

func TestMemNilHandlerRejected(t *testing.T) {
	m := NewMem(nil, 0)
	if err := m.Listen("a", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestMemLatencyCharged(t *testing.T) {
	clk := disk.NewVirtualClock()
	m := NewMem(clk, 200*time.Microsecond)
	if err := m.Listen("a", echoUpper); err != nil {
		t.Fatal(err)
	}
	t0 := clk.Now()
	if _, err := m.Send("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if adv := clk.Now().Sub(t0); adv != 200*time.Microsecond {
		t.Errorf("latency charged = %v, want 200µs", adv)
	}
}

func TestMemJitterAddsBoundedRandomDelay(t *testing.T) {
	clk := disk.NewVirtualClock()
	m := NewMem(clk, 100*time.Microsecond)
	m.SetJitter(2*time.Millisecond, 7)
	if err := m.Listen("a", echoUpper); err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 50
	for i := 0; i < n; i++ {
		t0 := clk.Now()
		if _, err := m.Send("a", []byte("x")); err != nil {
			t.Fatal(err)
		}
		d := clk.Now().Sub(t0)
		if d < 100*time.Microsecond {
			t.Fatalf("send %d took %v, below the base RTT", i, d)
		}
		if d > 100*time.Microsecond+4*time.Millisecond {
			t.Fatalf("send %d took %v, above RTT+2*jitter", i, d)
		}
		total += d
	}
	// Mean extra delay should be near jitter (two directions × mean
	// jitter/2 each).
	mean := total / n
	if mean < 1*time.Millisecond || mean > 3500*time.Microsecond {
		t.Errorf("mean latency = %v, want ~2.1ms", mean)
	}
}

func TestMemSeverHeal(t *testing.T) {
	m := NewMem(nil, 0)
	if err := m.Listen("a", echoUpper); err != nil {
		t.Fatal(err)
	}
	m.Sever("a")
	if _, err := m.Send("a", []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("severed: %v, want ErrUnavailable", err)
	}
	m.Heal("a")
	if _, err := m.Send("a", []byte("x")); err != nil {
		t.Errorf("healed: %v", err)
	}
}

func TestMemHandlerError(t *testing.T) {
	m := NewMem(nil, 0)
	boom := errors.New("boom")
	if err := m.Listen("a", func([]byte) ([]byte, error) { return nil, boom }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Send("a", nil); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestMemConcurrentSends(t *testing.T) {
	m := NewMem(nil, 0)
	var mu sync.Mutex
	count := 0
	if err := m.Listen("a", func(req []byte) ([]byte, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := m.Send("a", []byte(fmt.Sprintf("r%d", i)))
			if err != nil || string(resp) != fmt.Sprintf("r%d", i) {
				t.Errorf("send %d: %q %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
	if count != 50 {
		t.Errorf("handled %d, want 50", count)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestTCPRoundTrip(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	if err := tr.Listen(addr, echoUpper); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // reuses the pooled connection
		resp, err := tr.Send(addr, []byte("phoenix"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "PHOENIX" {
			t.Errorf("resp = %q", resp)
		}
	}
}

func TestTCPUnavailable(t *testing.T) {
	tr := NewTCP()
	tr.DialTimeout = 200 * time.Millisecond
	defer tr.Close()
	if _, err := tr.Send(freeAddr(t), []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
}

func TestTCPServerRestartReconnects(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	if err := tr.Listen(addr, echoUpper); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Send(addr, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Crash the server, restart on the same address, send again: the
	// stale pooled connection must be redialed transparently.
	tr.Unlisten(addr)
	time.Sleep(20 * time.Millisecond)
	if err := tr.Listen(addr, echoUpper); err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Send(addr, []byte("b"))
	if err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	if string(resp) != "B" {
		t.Errorf("resp = %q", resp)
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	if err := tr.Listen(addr, func([]byte) ([]byte, error) {
		return nil, errors.New("server-side failure")
	}); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Send(addr, []byte("x"))
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want non-unavailable handler error", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	if err := tr.Listen(addr, func(req []byte) ([]byte, error) { return req, nil }); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 1<<20)
	resp, err := tr.Send(addr, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Error("large payload corrupted")
	}
}

func TestTCPNilHandlerRejected(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Listen("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}
