package transport

import (
	"time"

	"repro/internal/obs"
)

// instrumented wraps a Network and accounts every Send to a registry:
// message counts, bytes in both directions, round-trip latency and
// failures. The universe wraps its network with Instrument so the
// transport boundary is observable regardless of implementation.
type instrumented struct {
	inner    Network
	sends    *obs.Counter
	errors   *obs.Counter
	bytesOut *obs.Counter
	bytesIn  *obs.Counter
	rtMicros *obs.Histogram
}

// Instrument returns n with its Send path accounted to reg. A nil
// registry (or nil network) returns n unchanged.
func Instrument(n Network, reg *obs.Registry) Network {
	if n == nil || reg == nil {
		return n
	}
	return &instrumented{
		inner:    n,
		sends:    reg.Counter(obs.TransportSends),
		errors:   reg.Counter(obs.TransportSendErrors),
		bytesOut: reg.Counter(obs.TransportBytesOut),
		bytesIn:  reg.Counter(obs.TransportBytesIn),
		rtMicros: reg.Histogram(obs.TransportRTMicros),
	}
}

// Unwrap exposes the underlying network (tests reach Mem-specific
// controls like Sever through it).
func (i *instrumented) Unwrap() Network { return i.inner }

func (i *instrumented) Listen(addr string, h Handler) error { return i.inner.Listen(addr, h) }

func (i *instrumented) Unlisten(addr string) { i.inner.Unlisten(addr) }

func (i *instrumented) Send(addr string, req []byte) ([]byte, error) {
	i.sends.Inc()
	i.bytesOut.Add(int64(len(req)))
	start := time.Now()
	resp, err := i.inner.Send(addr, req)
	i.rtMicros.Observe(time.Since(start).Microseconds())
	if err != nil {
		i.errors.Inc()
		return nil, err
	}
	i.bytesIn.Add(int64(len(resp)))
	return resp, nil
}
