// Package transport carries marshalled call and reply messages between
// Phoenix/App processes.
//
// Two implementations are provided. Mem is an in-process network with
// injectable round-trip latency; it stands in for the paper's 100 Mb
// Ethernet between the two test machines and lets the experiment
// harness run local and remote configurations deterministically. TCP is
// a real-socket transport (length-prefixed frames over net.Conn) so two
// actual OS processes can host Phoenix components against each other.
//
// A transport endpoint is synchronous request/response, mirroring
// remote method invocation: the client blocks until the reply arrives
// or the endpoint reports failure. Failures (ErrUnavailable) are what
// the runtime's retry logic (condition 4 of Section 2.2) reacts to.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/disk"
)

// ErrUnavailable reports that the destination process is not reachable
// (crashed, not yet restarted, or never registered). The Phoenix
// runtime treats it like the .NET exceptions that "indicate a component
// failure" (Section 2.4) and retries the call.
var ErrUnavailable = errors.New("transport: destination unavailable")

// Handler processes one request and produces one response. The request
// buffer must not be retained after return.
type Handler func(req []byte) ([]byte, error)

// Network registers servers and opens client endpoints by address.
type Network interface {
	// Listen routes requests for addr to h until Unlisten. Listening
	// on an address that is already bound replaces the handler (a
	// restarted process takes over its address).
	Listen(addr string, h Handler) error
	// Unlisten stops routing addr (the process "crashed").
	Unlisten(addr string)
	// Send delivers one request to addr and returns the response. The
	// request buffer is not retained. The response bytes may live in a
	// per-connection buffer: they are only valid until the next Send
	// to the same address, so callers that retain them must copy.
	Send(addr string, req []byte) ([]byte, error)
}

// Mem is an in-process Network with configurable latency. The zero
// value is not usable; use NewMem.
type Mem struct {
	clock disk.Clock
	rtt   time.Duration

	mu       sync.RWMutex
	handlers map[string]Handler
	partLock sync.RWMutex
	severed  map[string]bool // addresses partitioned away (fault injection)

	jitterMu sync.Mutex
	jitter   time.Duration
	rng      *rand.Rand
}

// NewMem builds an in-memory network. rtt is the injected round-trip
// latency (the paper measures ~0.2 ms per remote call); it is split
// between the request and reply directions and charged to clock. A nil
// clock disables latency injection.
func NewMem(clock disk.Clock, rtt time.Duration) *Mem {
	return &Mem{
		clock:    clock,
		rtt:      rtt,
		handlers: make(map[string]Handler),
		severed:  make(map[string]bool),
	}
}

// SetJitter adds up to d of uniform random extra delay to each message
// direction. Real networks and schedulers randomize the phase at which
// log writes hit the platter — the reason the paper's remote runs see
// average rather than full rotational delays (Section 5.2.2); a
// deterministic simulation needs this to avoid rotational lockstep.
func (m *Mem) SetJitter(d time.Duration, seed int64) {
	m.jitterMu.Lock()
	defer m.jitterMu.Unlock()
	m.jitter = d
	m.rng = rand.New(rand.NewSource(seed))
}

func (m *Mem) jitterDelay() time.Duration {
	m.jitterMu.Lock()
	defer m.jitterMu.Unlock()
	if m.jitter <= 0 || m.rng == nil {
		return 0
	}
	return time.Duration(m.rng.Int63n(int64(m.jitter)))
}

// Listen implements Network.
func (m *Mem) Listen(addr string, h Handler) error {
	if h == nil {
		return fmt.Errorf("transport: nil handler for %q", addr)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
	return nil
}

// Unlisten implements Network.
func (m *Mem) Unlisten(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
}

// Sever simulates a network partition: requests to addr fail with
// ErrUnavailable until Heal, even though the handler stays registered.
func (m *Mem) Sever(addr string) {
	m.partLock.Lock()
	defer m.partLock.Unlock()
	m.severed[addr] = true
}

// Heal reverses Sever.
func (m *Mem) Heal(addr string) {
	m.partLock.Lock()
	defer m.partLock.Unlock()
	delete(m.severed, addr)
}

// Send implements Network. The handler runs on the caller's goroutine;
// concurrency across components comes from the callers themselves,
// matching "there can be multiple threads executing in multiple
// different components in a process".
func (m *Mem) Send(addr string, req []byte) ([]byte, error) {
	m.partLock.RLock()
	cut := m.severed[addr]
	m.partLock.RUnlock()
	if cut {
		return nil, fmt.Errorf("%w: %s (partitioned)", ErrUnavailable, addr)
	}
	m.mu.RLock()
	h := m.handlers[addr]
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, addr)
	}
	m.sleep(m.rtt/2 + m.jitterDelay())
	resp, err := h(req)
	if err != nil {
		return nil, err
	}
	m.sleep(m.rtt - m.rtt/2 + m.jitterDelay())
	return resp, nil
}

func (m *Mem) sleep(d time.Duration) {
	if d > 0 && m.clock != nil {
		m.clock.Sleep(d)
	}
}
