package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a Network over real sockets. Addresses are host:port strings.
// Each request/response is a length-prefixed frame; client connections
// are pooled per destination and redialed after failures, so a server
// process that crashes and restarts on the same port is transparently
// reconnected to — which is exactly the situation Phoenix recovery
// produces.
type TCP struct {
	// DialTimeout bounds connection attempts (default 2s).
	DialTimeout time.Duration

	mu        sync.Mutex
	listeners map[string]*tcpListener
	conns     map[string]*tcpConn
}

// NewTCP returns a socket-based Network.
func NewTCP() *TCP {
	return &TCP{
		DialTimeout: 2 * time.Second,
		listeners:   make(map[string]*tcpListener),
		conns:       make(map[string]*tcpConn),
	}
}

type tcpListener struct {
	ln     net.Listener
	closed chan struct{}
}

// Listen implements Network: it binds addr and serves frames to h.
func (t *TCP) Listen(addr string, h Handler) error {
	if h == nil {
		return fmt.Errorf("transport: nil handler for %q", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	l := &tcpListener{ln: ln, closed: make(chan struct{})}
	t.mu.Lock()
	if old := t.listeners[addr]; old != nil {
		old.ln.Close()
	}
	t.listeners[addr] = l
	t.mu.Unlock()
	go t.serve(l, h)
	return nil
}

func (t *TCP) serve(l *tcpListener, h Handler) {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
			default:
				close(l.closed)
			}
			return
		}
		go func() {
			defer conn.Close()
			// Request and response frames stage in per-connection
			// grow-only buffers; the Handler contract (no retention of
			// the request buffer) is what makes the reuse sound.
			var rbuf, wbuf []byte
			for {
				req, _, err := readFrameInto(conn, &rbuf)
				if err != nil {
					return
				}
				resp, err := h(req)
				if err != nil {
					// Surface the handler error as an error frame and
					// drop the connection: handler errors mean the
					// process is unavailable (crashed mid-call), and
					// closing forces the client to redial — reaching a
					// restarted process instead of this stale one.
					writeFrame(conn, 1, []byte(err.Error()))
					return
				}
				wbuf = appendFrame(wbuf[:0], 0, resp)
				if _, err := conn.Write(wbuf); err != nil {
					return
				}
				if cap(wbuf) > maxRetainedFrameBuf {
					wbuf = nil
				}
			}
		}()
	}
}

// Unlisten implements Network.
func (t *TCP) Unlisten(addr string) {
	t.mu.Lock()
	l := t.listeners[addr]
	delete(t.listeners, addr)
	t.mu.Unlock()
	if l != nil {
		l.ln.Close()
	}
}

// tcpConn is one pooled client connection. The write and read staging
// buffers are cached per connection — the per-message cost this evens
// out used to be gob re-sending its type descriptors on every message;
// with the binary envelope the remaining per-message transport cost is
// these buffers, so they live exactly where the descriptor cache would
// have. Both are reset on redial: a fresh connection starts with no
// inherited state, the same discipline a per-connection encoder cache
// would need.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	wbuf []byte // frame staging for sends (header + payload, one Write)
	rbuf []byte // frame staging for responses
}

// Send implements Network. The returned response bytes are owned by
// the connection and are only valid until the next Send to the same
// address; callers that retain them must copy (the runtime decodes the
// reply — copying every field — before the next send can happen).
func (t *TCP) Send(addr string, req []byte) ([]byte, error) {
	t.mu.Lock()
	c := t.conns[addr]
	if c == nil {
		c = &tcpConn{}
		t.conns[addr] = c
	}
	t.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, addr, err)
		}
		c.conn = conn
	}
	resp, kind, err := c.roundTrip(req)
	if err != nil {
		// The pooled connection may be stale (server restarted): redial
		// once before giving up. Redial drops the cached buffers along
		// with the socket — per-connection state does not outlive the
		// connection.
		c.conn.Close()
		c.wbuf, c.rbuf = nil, nil
		conn, derr := net.DialTimeout("tcp", addr, t.DialTimeout)
		if derr != nil {
			c.conn = nil
			return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, addr, derr)
		}
		c.conn = conn
		resp, kind, err = c.roundTrip(req)
		if err != nil {
			c.conn.Close()
			c.conn = nil
			c.wbuf, c.rbuf = nil, nil
			return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, addr, err)
		}
	}
	if kind == 1 {
		return nil, fmt.Errorf("transport: remote handler: %s", resp)
	}
	return resp, nil
}

func (c *tcpConn) roundTrip(req []byte) (resp []byte, kind byte, err error) {
	c.wbuf = appendFrame(c.wbuf[:0], 0, req)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return nil, 0, err
	}
	return readFrameInto(c.conn, &c.rbuf)
}

// Frame format: 4-byte little-endian length, 1-byte kind (0 = data,
// 1 = handler error), payload.
const (
	frameHdrSize = 5
	maxFrame     = 64 << 20
	// maxRetainedFrameBuf bounds what a connection's staging buffers
	// keep between frames; an occasional giant frame must not pin its
	// capacity on an idle connection.
	maxRetainedFrameBuf = 1 << 20
)

// appendFrame stages header and payload contiguously into buf, so a
// frame goes out in one Write with no per-frame allocation.
func appendFrame(buf []byte, kind byte, p []byte) []byte {
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	hdr[4] = kind
	buf = append(buf, hdr[:]...)
	return append(buf, p...)
}

func writeFrame(w io.Writer, kind byte, p []byte) error {
	_, err := w.Write(appendFrame(nil, kind, p))
	return err
}

// readFrameInto reads one frame, staging it in *buf (grown as needed
// and written back for reuse). The returned payload aliases *buf and
// is only valid until the next call with the same buffer.
func readFrameInto(r io.Reader, buf *[]byte) ([]byte, byte, error) {
	b := *buf
	if cap(b) < frameHdrSize {
		b = make([]byte, frameHdrSize, 4096)
	}
	hdr := b[:frameHdrSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > maxFrame {
		return nil, 0, errors.New("transport: oversized frame")
	}
	kind := hdr[4]
	if cap(b) < frameHdrSize+n {
		nb := make([]byte, frameHdrSize+n)
		copy(nb, hdr)
		b = nb
	}
	p := b[frameHdrSize : frameHdrSize+n]
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, 0, err
	}
	if cap(b) <= maxRetainedFrameBuf {
		*buf = b
	} else {
		*buf = nil
	}
	return p, kind, nil
}

func readFrame(r io.Reader) ([]byte, error) {
	var buf []byte
	p, _, err := readFrameInto(r, &buf)
	return p, err
}

// Close shuts down all listeners and pooled connections.
func (t *TCP) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, l := range t.listeners {
		l.ln.Close()
		delete(t.listeners, addr)
	}
	for addr, c := range t.conns {
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
		delete(t.conns, addr)
	}
}
