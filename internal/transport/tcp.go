package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a Network over real sockets. Addresses are host:port strings.
// Each request/response is a length-prefixed frame; client connections
// are pooled per destination and redialed after failures, so a server
// process that crashes and restarts on the same port is transparently
// reconnected to — which is exactly the situation Phoenix recovery
// produces.
type TCP struct {
	// DialTimeout bounds connection attempts (default 2s).
	DialTimeout time.Duration

	mu        sync.Mutex
	listeners map[string]*tcpListener
	conns     map[string]*tcpConn
}

// NewTCP returns a socket-based Network.
func NewTCP() *TCP {
	return &TCP{
		DialTimeout: 2 * time.Second,
		listeners:   make(map[string]*tcpListener),
		conns:       make(map[string]*tcpConn),
	}
}

type tcpListener struct {
	ln     net.Listener
	closed chan struct{}
}

// Listen implements Network: it binds addr and serves frames to h.
func (t *TCP) Listen(addr string, h Handler) error {
	if h == nil {
		return fmt.Errorf("transport: nil handler for %q", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	l := &tcpListener{ln: ln, closed: make(chan struct{})}
	t.mu.Lock()
	if old := t.listeners[addr]; old != nil {
		old.ln.Close()
	}
	t.listeners[addr] = l
	t.mu.Unlock()
	go t.serve(l, h)
	return nil
}

func (t *TCP) serve(l *tcpListener, h Handler) {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
			default:
				close(l.closed)
			}
			return
		}
		go func() {
			defer conn.Close()
			for {
				req, err := readFrame(conn)
				if err != nil {
					return
				}
				resp, err := h(req)
				if err != nil {
					// Surface the handler error as an error frame and
					// drop the connection: handler errors mean the
					// process is unavailable (crashed mid-call), and
					// closing forces the client to redial — reaching a
					// restarted process instead of this stale one.
					writeFrame(conn, 1, []byte(err.Error()))
					return
				}
				if err := writeFrame(conn, 0, resp); err != nil {
					return
				}
			}
		}()
	}
}

// Unlisten implements Network.
func (t *TCP) Unlisten(addr string) {
	t.mu.Lock()
	l := t.listeners[addr]
	delete(t.listeners, addr)
	t.mu.Unlock()
	if l != nil {
		l.ln.Close()
	}
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Send implements Network.
func (t *TCP) Send(addr string, req []byte) ([]byte, error) {
	t.mu.Lock()
	c := t.conns[addr]
	if c == nil {
		c = &tcpConn{}
		t.conns[addr] = c
	}
	t.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, addr, err)
		}
		c.conn = conn
	}
	resp, kind, err := roundTrip(c.conn, req)
	if err != nil {
		// The pooled connection may be stale (server restarted): redial
		// once before giving up.
		c.conn.Close()
		conn, derr := net.DialTimeout("tcp", addr, t.DialTimeout)
		if derr != nil {
			c.conn = nil
			return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, addr, derr)
		}
		c.conn = conn
		resp, kind, err = roundTrip(c.conn, req)
		if err != nil {
			c.conn.Close()
			c.conn = nil
			return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, addr, err)
		}
	}
	if kind == 1 {
		return nil, fmt.Errorf("transport: remote handler: %s", resp)
	}
	return resp, nil
}

func roundTrip(conn net.Conn, req []byte) (resp []byte, kind byte, err error) {
	if err := writeFrame(conn, 0, req); err != nil {
		return nil, 0, err
	}
	return readFrameKind(conn)
}

// Frame format: 4-byte little-endian length, 1-byte kind (0 = data,
// 1 = handler error), payload.
const maxFrame = 64 << 20

func writeFrame(w io.Writer, kind byte, p []byte) error {
	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, uint32(len(p)))
	hdr[4] = kind
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(p)
	return err
}

func readFrameKind(r io.Reader) ([]byte, byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFrame {
		return nil, 0, errors.New("transport: oversized frame")
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, 0, err
	}
	return p, hdr[4], nil
}

func readFrame(r io.Reader) ([]byte, error) {
	p, _, err := readFrameKind(r)
	return p, err
}

// Close shuts down all listeners and pooled connections.
func (t *TCP) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, l := range t.listeners {
		l.ln.Close()
		delete(t.listeners, addr)
	}
	for addr, c := range t.conns {
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
		delete(t.conns, addr)
	}
}
