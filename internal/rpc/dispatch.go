// Package rpc provides reflection-based method dispatch for Phoenix/App
// components, the Go analogue of .NET remoting's marshalled method
// invocation. A Dispatcher wraps a component object and invokes its
// exported methods from gob-encoded argument streams, producing
// gob-encoded result streams — the representation that travels on the
// wire and into the recovery log, so that replaying a logged call is
// bit-identical to receiving it.
//
// Method convention: any exported method whose parameters and results
// are gob-encodable can be called remotely. A trailing error result is
// separated out as the application error (it travels as a string in the
// reply and is re-raised at the caller); other results are encoded in
// order.
package rpc

import (
	"fmt"
	"reflect"
	"sort"
)

// Method describes one callable method of a component.
type Method struct {
	// Name is the exported method name.
	Name string
	// ParamTypes are the declared parameter types (receiver excluded).
	ParamTypes []reflect.Type
	// ResultTypes are the declared result types, excluding a trailing
	// error.
	ResultTypes []reflect.Type
	// ReturnsErr reports whether the method's last result is an error.
	ReturnsErr bool

	fn reflect.Value
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Dispatcher invokes methods on a single component object.
type Dispatcher struct {
	obj     any
	methods map[string]*Method
}

// NewDispatcher enumerates the exported methods of obj (a pointer to a
// component struct) and returns a dispatcher for them.
func NewDispatcher(obj any) (*Dispatcher, error) {
	v := reflect.ValueOf(obj)
	if !v.IsValid() || v.Kind() != reflect.Pointer || v.IsNil() {
		return nil, fmt.Errorf("rpc: component must be a non-nil pointer, got %T", obj)
	}
	d := &Dispatcher{obj: obj, methods: make(map[string]*Method)}
	t := v.Type()
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if !m.IsExported() {
			continue
		}
		mt := m.Func.Type()
		meth := &Method{Name: m.Name, fn: v.Method(i)}
		for p := 1; p < mt.NumIn(); p++ { // skip receiver
			meth.ParamTypes = append(meth.ParamTypes, mt.In(p))
		}
		n := mt.NumOut()
		if n > 0 && mt.Out(n-1) == errType {
			meth.ReturnsErr = true
			n--
		}
		for r := 0; r < n; r++ {
			meth.ResultTypes = append(meth.ResultTypes, mt.Out(r))
		}
		d.methods[m.Name] = meth
	}
	return d, nil
}

// Object returns the wrapped component instance.
func (d *Dispatcher) Object() any { return d.obj }

// Method looks up a method by name.
func (d *Dispatcher) Method(name string) (*Method, bool) {
	m, ok := d.methods[name]
	return m, ok
}

// MethodNames returns the callable method names, sorted.
func (d *Dispatcher) MethodNames() []string {
	names := make([]string, 0, len(d.methods))
	for n := range d.methods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Call invokes the named method with already-decoded argument values
// and returns its results and application error. It is the local
// (non-marshalled) fast path used for subordinate calls, which the
// paper leaves unintercepted (Section 3.2.1).
func (d *Dispatcher) Call(name string, args []reflect.Value) ([]reflect.Value, error) {
	m, ok := d.methods[name]
	if !ok {
		return nil, fmt.Errorf("rpc: %T has no method %q", d.obj, name)
	}
	if len(args) != len(m.ParamTypes) {
		return nil, fmt.Errorf("rpc: %T.%s wants %d args, got %d",
			d.obj, name, len(m.ParamTypes), len(args))
	}
	out := m.fn.Call(args)
	if m.ReturnsErr {
		last := out[len(out)-1]
		out = out[:len(out)-1]
		if !last.IsNil() {
			return out, last.Interface().(error)
		}
	}
	return out, nil
}

// CallValues is a convenience wrapper over Call for interface{} args
// and results (used by tests and the Local subordinate handle).
func (d *Dispatcher) CallValues(name string, args ...any) ([]any, error) {
	m, ok := d.methods[name]
	if !ok {
		return nil, fmt.Errorf("rpc: %T has no method %q", d.obj, name)
	}
	if len(args) != len(m.ParamTypes) {
		return nil, fmt.Errorf("rpc: %T.%s wants %d args, got %d",
			d.obj, name, len(m.ParamTypes), len(args))
	}
	vals := make([]reflect.Value, len(args))
	for i, a := range args {
		av := reflect.ValueOf(a)
		if !av.IsValid() {
			av = reflect.Zero(m.ParamTypes[i])
		}
		if !av.Type().AssignableTo(m.ParamTypes[i]) {
			return nil, fmt.Errorf("rpc: %T.%s arg %d: %s is not assignable to %s",
				d.obj, name, i, av.Type(), m.ParamTypes[i])
		}
		vals[i] = av
	}
	out, err := d.Call(name, vals)
	res := make([]any, len(out))
	for i, o := range out {
		res[i] = o.Interface()
	}
	return res, err
}
