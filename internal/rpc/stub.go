package rpc

import (
	"fmt"
	"reflect"
)

// CallFunc is the transport a stub dispatches through: the generic
// Call(method, args...) of a component proxy.
type CallFunc func(method string, args ...any) ([]any, error)

// BindStub fills the exported func-typed fields of *stub with typed
// wrappers around call, giving a component reference a statically
// typed client surface without code generation:
//
//	type StoreClient struct {
//		Search func(keyword string) ([]Book, error)
//		Buy    func(title string) (Book, error)
//	}
//	var c StoreClient
//	rpc.BindStub(&c, ref.Call)
//	books, err := c.Search("recovery")
//
// Each field's name is the remote method name; its signature must
// declare an error as the last result. Results decoded from the wire
// are converted to the declared types (numeric kinds convert; anything
// else must match exactly, or the call returns an error).
func BindStub(stub any, call CallFunc) error {
	v := reflect.ValueOf(stub)
	if !v.IsValid() || v.Kind() != reflect.Pointer || v.IsNil() {
		return fmt.Errorf("rpc: BindStub wants a non-nil pointer to struct, got %T", stub)
	}
	v = v.Elem()
	if v.Kind() != reflect.Struct {
		return fmt.Errorf("rpc: BindStub wants a pointer to struct, got %T", stub)
	}
	t := v.Type()
	bound := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Func {
			continue
		}
		ft := f.Type
		if ft.NumOut() == 0 || ft.Out(ft.NumOut()-1) != errType {
			return fmt.Errorf("rpc: stub field %s must return an error last", f.Name)
		}
		if ft.IsVariadic() {
			return fmt.Errorf("rpc: stub field %s: variadic signatures are not supported", f.Name)
		}
		method := f.Name
		v.Field(i).Set(reflect.MakeFunc(ft, func(in []reflect.Value) []reflect.Value {
			return invokeStub(ft, method, call, in)
		}))
		bound++
	}
	if bound == 0 {
		return fmt.Errorf("rpc: %T has no exported func fields to bind", stub)
	}
	return nil
}

func invokeStub(ft reflect.Type, method string, call CallFunc, in []reflect.Value) []reflect.Value {
	args := make([]any, len(in))
	for i, a := range in {
		args[i] = a.Interface()
	}
	nOut := ft.NumOut() - 1 // excluding the trailing error
	fail := func(err error) []reflect.Value {
		out := make([]reflect.Value, nOut+1)
		for i := 0; i < nOut; i++ {
			out[i] = reflect.Zero(ft.Out(i))
		}
		out[nOut] = reflect.ValueOf(&err).Elem()
		return out
	}

	results, err := call(method, args...)
	if err != nil {
		return fail(err)
	}
	if len(results) != nOut {
		return fail(fmt.Errorf("rpc: %s returned %d results, stub declares %d",
			method, len(results), nOut))
	}
	out := make([]reflect.Value, nOut+1)
	for i := 0; i < nOut; i++ {
		cv, cerr := coerce(results[i], ft.Out(i))
		if cerr != nil {
			return fail(fmt.Errorf("rpc: %s result %d: %w", method, i, cerr))
		}
		out[i] = cv
	}
	out[nOut] = reflect.Zero(errType)
	return out
}
