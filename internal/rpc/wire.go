package rpc

import (
	"fmt"
	"reflect"

	"repro/internal/msg"
)

// InvokeEncoded runs the named method from a gob-encoded argument
// stream and produces the gob-encoded result stream — the full
// marshalled path a cross-context call takes. The appErr return carries
// the method's own error (the component stays alive; this is the
// paper's "invalid argument exception indicates an error, but the
// remote component is still alive" case); err reports infrastructure
// failures (unknown method, undecodable or mismatched arguments).
func (d *Dispatcher) InvokeEncoded(name string, args []byte, numArgs int) (results []byte, numResults int, appErr string, err error) {
	m, ok := d.methods[name]
	if !ok {
		return nil, 0, "", fmt.Errorf("rpc: %T has no method %q", d.obj, name)
	}
	decoded, err := msg.DecodeAnySlice(args)
	if err != nil {
		return nil, 0, "", fmt.Errorf("rpc: %T.%s: %w", d.obj, name, err)
	}
	if len(decoded) != numArgs || numArgs != len(m.ParamTypes) {
		return nil, 0, "", fmt.Errorf("rpc: %T.%s wants %d args, got %d",
			d.obj, name, len(m.ParamTypes), len(decoded))
	}
	vals := make([]reflect.Value, len(decoded))
	for i, a := range decoded {
		v, err := coerce(a, m.ParamTypes[i])
		if err != nil {
			return nil, 0, "", fmt.Errorf("rpc: %T.%s arg %d: %w", d.obj, name, i, err)
		}
		vals[i] = v
	}
	out, callErr := d.Call(name, vals)
	if callErr != nil {
		appErr = callErr.Error()
		if appErr == "" {
			appErr = "application error"
		}
	}
	anyOut := make([]any, len(out))
	for i, o := range out {
		anyOut[i] = o.Interface()
	}
	results, err = msg.EncodeAnySlice(anyOut)
	if err != nil {
		return nil, 0, "", fmt.Errorf("rpc: %T.%s results: %w", d.obj, name, err)
	}
	return results, len(anyOut), appErr, nil
}

// coerce fits a decoded interface value to a declared parameter type.
// Exact assignability always works; numeric kinds convert (gob loses
// the distinction between int widths a caller may have used).
func coerce(a any, want reflect.Type) (reflect.Value, error) {
	v := reflect.ValueOf(a)
	if !v.IsValid() {
		return reflect.Zero(want), nil
	}
	if v.Type().AssignableTo(want) {
		return v, nil
	}
	if isNumeric(v.Kind()) && isNumeric(want.Kind()) && v.Type().ConvertibleTo(want) {
		return v.Convert(want), nil
	}
	return reflect.Value{}, fmt.Errorf("%s is not assignable to %s", v.Type(), want)
}

func isNumeric(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// EncodeArgs marshals call arguments for the wire (the client-side half
// of InvokeEncoded).
func EncodeArgs(args ...any) ([]byte, int, error) {
	data, err := msg.EncodeAnySlice(args)
	if err != nil {
		return nil, 0, err
	}
	return data, len(args), nil
}

// DecodeResults unmarshals a reply's result stream.
func DecodeResults(data []byte) ([]any, error) {
	return msg.DecodeAnySlice(data)
}
