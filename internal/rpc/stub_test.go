package rpc

import (
	"errors"
	"strings"
	"testing"
)

// storeStub is a typed client surface over the generic call path.
type storeStub struct {
	Search    func(keyword string) ([]Book, error)
	Add       func(b Book) (int, error)
	Fail      func() error
	NoResults func(x int) error

	hidden func() error // unexported: ignored
	Name   string       // non-func: ignored
}

// stubTransport routes stub calls straight into a dispatcher, like a
// Ref would route them over the wire.
func stubTransport(t *testing.T, obj any) CallFunc {
	t.Helper()
	d, err := NewDispatcher(obj)
	if err != nil {
		t.Fatal(err)
	}
	return func(method string, args ...any) ([]any, error) {
		data, n, err := EncodeArgs(args...)
		if err != nil {
			return nil, err
		}
		results, _, appErr, err := d.InvokeEncoded(method, data, n)
		if err != nil {
			return nil, err
		}
		out, err := DecodeResults(results)
		if err != nil {
			return nil, err
		}
		if appErr != "" {
			return out, errors.New(appErr)
		}
		return out, nil
	}
}

func TestBindStubTypedCalls(t *testing.T) {
	s := newStore()
	var c storeStub
	if err := BindStub(&c, stubTransport(t, s)); err != nil {
		t.Fatal(err)
	}
	books, err := c.Search("Recovery")
	if err != nil {
		t.Fatal(err)
	}
	if len(books) != 1 || books[0].Title != "Recovery Guarantees" {
		t.Errorf("Search = %+v", books)
	}
	n, err := c.Add(Book{Title: "New", Price: 10})
	if err != nil || n != 3 {
		t.Errorf("Add = %d, %v", n, err)
	}
	if err := c.Fail(); err == nil || err.Error() != "out of stock" {
		t.Errorf("Fail err = %v", err)
	}
	if err := c.NoResults(1); err != nil {
		t.Errorf("NoResults err = %v", err)
	}
	if c.hidden != nil {
		t.Error("unexported field was bound")
	}
}

func TestBindStubTransportErrors(t *testing.T) {
	var c storeStub
	boom := errors.New("network down")
	if err := BindStub(&c, func(string, ...any) ([]any, error) {
		return nil, boom
	}); err != nil {
		t.Fatal(err)
	}
	books, err := c.Search("x")
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if books != nil {
		t.Errorf("books = %v, want zero value", books)
	}
}

func TestBindStubResultArityMismatch(t *testing.T) {
	var c storeStub
	if err := BindStub(&c, func(string, ...any) ([]any, error) {
		return []any{1, 2, 3}, nil // Search declares one result
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search("x"); err == nil || !strings.Contains(err.Error(), "stub declares") {
		t.Errorf("err = %v", err)
	}
}

func TestBindStubResultTypeMismatch(t *testing.T) {
	var c storeStub
	if err := BindStub(&c, func(string, ...any) ([]any, error) {
		return []any{"not books"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search("x"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestBindStubNumericCoercion(t *testing.T) {
	var c storeStub
	if err := BindStub(&c, func(string, ...any) ([]any, error) {
		return []any{int64(7)}, nil // Add declares int
	}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Add(Book{})
	if err != nil || n != 7 {
		t.Errorf("Add = %d, %v", n, err)
	}
}

func TestBindStubValidation(t *testing.T) {
	if err := BindStub(nil, nil); err == nil {
		t.Error("nil stub accepted")
	}
	if err := BindStub(42, nil); err == nil {
		t.Error("non-pointer accepted")
	}
	var s struct{ X int }
	if err := BindStub(&s, nil); err == nil {
		t.Error("struct with no func fields accepted")
	}
	var bad struct {
		M func() int // no trailing error
	}
	if err := BindStub(&bad, nil); err == nil {
		t.Error("signature without error accepted")
	}
	var variadic struct {
		M func(...int) error
	}
	if err := BindStub(&variadic, nil); err == nil {
		t.Error("variadic signature accepted")
	}
}
