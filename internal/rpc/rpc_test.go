package rpc

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/msg"
)

type Book struct {
	Title string
	Price float64
}

func init() { msg.RegisterType(Book{}); msg.RegisterType([]Book(nil)) }

type store struct {
	inventory []Book
	calls     int
}

func (s *store) Search(keyword string) []Book {
	s.calls++
	var out []Book
	for _, b := range s.inventory {
		if strings.Contains(b.Title, keyword) {
			out = append(out, b)
		}
	}
	return out
}

func (s *store) Add(b Book) (int, error) {
	s.inventory = append(s.inventory, b)
	return len(s.inventory), nil
}

func (s *store) Fail() error { return errors.New("out of stock") }

func (s *store) NoResults(x int) {}

func (s *store) unexported() {}

func newStore() *store {
	return &store{inventory: []Book{
		{Title: "Transaction Processing", Price: 89.0},
		{Title: "Recovery Guarantees", Price: 45.5},
	}}
}

func TestDispatcherEnumeratesExportedMethods(t *testing.T) {
	d, err := NewDispatcher(newStore())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Add", "Fail", "NoResults", "Search"}
	if got := d.MethodNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("MethodNames = %v, want %v", got, want)
	}
	m, ok := d.Method("Add")
	if !ok {
		t.Fatal("Add not found")
	}
	if !m.ReturnsErr || len(m.ParamTypes) != 1 || len(m.ResultTypes) != 1 {
		t.Errorf("Add metadata wrong: %+v", m)
	}
	if _, ok := d.Method("unexported"); ok {
		t.Error("unexported method visible")
	}
}

func TestNewDispatcherRejectsNonPointer(t *testing.T) {
	for _, obj := range []any{nil, 42, store{}, (*store)(nil)} {
		if _, err := NewDispatcher(obj); err == nil {
			t.Errorf("NewDispatcher(%T) succeeded", obj)
		}
	}
}

func TestCallValues(t *testing.T) {
	s := newStore()
	d, _ := NewDispatcher(s)
	res, err := d.CallValues("Search", "Recovery")
	if err != nil {
		t.Fatal(err)
	}
	books := res[0].([]Book)
	if len(books) != 1 || books[0].Title != "Recovery Guarantees" {
		t.Errorf("Search = %+v", books)
	}
	if s.calls != 1 {
		t.Errorf("calls = %d", s.calls)
	}
}

func TestCallValuesAppError(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	_, err := d.CallValues("Fail")
	if err == nil || err.Error() != "out of stock" {
		t.Errorf("err = %v", err)
	}
}

func TestCallValuesArgCountMismatch(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	if _, err := d.CallValues("Search"); err == nil {
		t.Error("missing arg accepted")
	}
	if _, err := d.CallValues("Search", "a", "b"); err == nil {
		t.Error("extra arg accepted")
	}
}

func TestCallValuesUnknownMethod(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	if _, err := d.CallValues("Nope"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestCallValuesTypeMismatch(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	if _, err := d.CallValues("Search", 42); err == nil {
		t.Error("int for string accepted")
	}
}

func TestInvokeEncodedRoundTrip(t *testing.T) {
	s := newStore()
	d, _ := NewDispatcher(s)
	args, n, err := EncodeArgs("Transaction")
	if err != nil {
		t.Fatal(err)
	}
	results, nres, appErr, err := d.InvokeEncoded("Search", args, n)
	if err != nil || appErr != "" {
		t.Fatalf("invoke: %v / %q", err, appErr)
	}
	if nres != 1 {
		t.Fatalf("numResults = %d", nres)
	}
	out, err := DecodeResults(results)
	if err != nil {
		t.Fatal(err)
	}
	books := out[0].([]Book)
	if len(books) != 1 || books[0].Title != "Transaction Processing" {
		t.Errorf("decoded = %+v", books)
	}
}

func TestInvokeEncodedAppErrorTravels(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	args, n, _ := EncodeArgs()
	_, _, appErr, err := d.InvokeEncoded("Fail", args, n)
	if err != nil {
		t.Fatal(err)
	}
	if appErr != "out of stock" {
		t.Errorf("appErr = %q", appErr)
	}
}

func TestInvokeEncodedNumericCoercion(t *testing.T) {
	s := newStore()
	d, _ := NewDispatcher(s)
	// NoResults takes int; send it an int64 (gob may widen).
	args, n, _ := EncodeArgs(int64(7))
	if _, _, _, err := d.InvokeEncoded("NoResults", args, n); err != nil {
		t.Errorf("int64 -> int coercion failed: %v", err)
	}
}

func TestInvokeEncodedRejectsBadInput(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	if _, _, _, err := d.InvokeEncoded("Nope", nil, 0); err == nil {
		t.Error("unknown method accepted")
	}
	if _, _, _, err := d.InvokeEncoded("Search", []byte("garbage"), 1); err == nil {
		t.Error("garbage args accepted")
	}
	args, _, _ := EncodeArgs("a", "b")
	if _, _, _, err := d.InvokeEncoded("Search", args, 2); err == nil {
		t.Error("wrong arg count accepted")
	}
	argsStr, _, _ := EncodeArgs("x")
	if _, _, _, err := d.InvokeEncoded("NoResults", argsStr, 1); err == nil {
		t.Error("string for int accepted")
	}
}

func TestEncodeArgsRejectsUntypedNil(t *testing.T) {
	if _, _, err := EncodeArgs(nil); err == nil {
		t.Error("untyped nil accepted")
	}
}

func TestMethodWithNoResults(t *testing.T) {
	d, _ := NewDispatcher(newStore())
	args, n, _ := EncodeArgs(1)
	results, nres, appErr, err := d.InvokeEncoded("NoResults", args, n)
	if err != nil || appErr != "" || nres != 0 {
		t.Fatalf("invoke: %v %q %d", err, appErr, nres)
	}
	out, err := DecodeResults(results)
	if err != nil || len(out) != 0 {
		t.Errorf("decode empty results: %v %v", out, err)
	}
}

func TestObject(t *testing.T) {
	s := newStore()
	d, _ := NewDispatcher(s)
	if d.Object() != any(s) {
		t.Error("Object() lost the instance")
	}
}
