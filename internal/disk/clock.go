// Package disk models the stable-storage media that Phoenix/App logs to.
//
// The paper's evaluation (Section 5) is dominated by disk physics: with
// the write cache disabled, every log force is an unbuffered write that
// misses a full disk rotation (Figure 9 — 8.33 ms at 7200 RPM). SimDisk
// reproduces that behaviour so that the experiment harness regenerates
// the shape of Tables 4-8 on any hardware. HostModel imposes no
// simulated delays and lets the write-ahead log run at the speed of the
// real file system underneath (used by the functional test suite).
package disk

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time so the simulated disk can either really sleep
// (wall-clock experiments), sleep at a reduced scale (fast benchmarks),
// or advance a purely virtual clock (deterministic tests).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks (or pretends to block) for d of this clock's time.
	Sleep(d time.Duration)
}

// realClock sleeps for scale*d of wall time but reports time advancing
// at full model speed, so a benchmark run at scale 0.1 still measures
// model-time latencies. With scale 1 it is the ordinary wall clock,
// corrected for timer overshoot.
//
// Each Sleep(d) advances model time by exactly d: the clock measures
// how long the physical sleep really took (kernels overshoot sub-
// millisecond sleeps substantially) and credits the difference, so
// timer granularity does not leak into measurements. The correction
// assumes one active timeline — concurrent sleepers would each credit
// their own difference — which holds for the synchronous call chains
// the simulation measures.
type realClock struct {
	scale float64

	mu    sync.Mutex
	base  time.Time // wall time at creation
	extra time.Duration
}

// NewRealClock returns a clock that physically sleeps. scale compresses
// the sleeps: at scale 0.25 a simulated 8.33 ms rotation costs 2.08 ms
// of wall time. Now() always advances in model time, so elapsed-time
// measurements taken with this clock are in model time regardless of
// scale.
func NewRealClock(scale float64) Clock {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return &realClock{scale: scale, base: time.Now()}
}

func (c *realClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Add(c.extra)
}

func (c *realClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	time.Sleep(time.Duration(float64(d) * c.scale))
	actual := time.Since(start)
	c.mu.Lock()
	c.extra += d - actual
	c.mu.Unlock()
}

// VirtualClock never sleeps: Sleep advances the reading instantly. It
// makes simulated-latency tests deterministic and fast. All simulated
// time is additive — concurrent sleepers sum their advances — so it
// models a single-threaded timeline. Both operations are wait-free
// (one atomic on a nanosecond offset): Now sits on hot paths that read
// the clock per span, and a lock here would serialize the whole
// simulated world through one mutex.
type VirtualClock struct {
	epoch  time.Time
	offset atomic.Int64 // nanoseconds since epoch
}

// NewVirtualClock returns a virtual clock starting at an arbitrary epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{epoch: time.Date(2004, 3, 30, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	return c.epoch.Add(time.Duration(c.offset.Load()))
}

// Sleep advances virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.offset.Add(int64(d))
}
