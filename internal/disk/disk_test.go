package disk

import (
	"testing"
	"time"
)

func TestVirtualClockAdvances(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	c.Sleep(5 * time.Millisecond)
	if got := c.Now().Sub(t0); got != 5*time.Millisecond {
		t.Errorf("advance = %v, want 5ms", got)
	}
	c.Sleep(-time.Second) // negative sleeps are ignored
	if got := c.Now().Sub(t0); got != 5*time.Millisecond {
		t.Errorf("advance after negative sleep = %v, want 5ms", got)
	}
}

func TestRealClockScaledSleepKeepsModelTime(t *testing.T) {
	c := NewRealClock(0.01)
	t0 := c.Now()
	wall0 := time.Now()
	c.Sleep(100 * time.Millisecond) // should really sleep ~1ms
	wall := time.Since(wall0)
	model := c.Now().Sub(t0)
	if wall > 60*time.Millisecond {
		t.Errorf("scaled sleep took %v of wall time, want ~1ms", wall)
	}
	if model < 100*time.Millisecond {
		t.Errorf("model time advanced %v, want >= 100ms", model)
	}
}

func TestRealClockBadScaleDefaultsToOne(t *testing.T) {
	for _, s := range []float64{0, -1, 2} {
		c := NewRealClock(s)
		if rc, ok := c.(*realClock); !ok || rc.scale != 1 {
			t.Errorf("scale %v: got %+v, want scale 1", s, c)
		}
	}
}

func TestSimDiskRotation(t *testing.T) {
	d := NewSimDisk(DefaultParams(), NewVirtualClock())
	rot := d.Rotation()
	secs := 60.0 / 7200.0
	want := time.Duration(secs * float64(time.Second))
	if rot != want {
		t.Errorf("Rotation = %v, want %v", rot, want)
	}
}

// TestSimDiskBackToBackWritesMissFullRotation checks the core Figure 9
// observation: unbuffered writes in a tight loop each cost about one
// full rotation (~8.33 ms) plus service time (~8.5 ms total).
func TestSimDiskBackToBackWritesMissFullRotation(t *testing.T) {
	clk := NewVirtualClock()
	d := NewSimDisk(DefaultParams(), clk)
	const n = 100
	start := clk.Now()
	for i := 0; i < n; i++ {
		d.Write(1024)
	}
	per := clk.Now().Sub(start) / n
	if per < 8300*time.Microsecond || per > 8700*time.Microsecond {
		t.Errorf("per-write time = %v, want ~8.5ms", per)
	}
}

// TestSimDiskStaircase checks the staircase of Figure 9: with a delay d
// inserted after each write, the per-iteration elapsed time is about
// rotation*ceil((d+eps)/rotation), jumping at multiples of the rotation.
func TestSimDiskStaircase(t *testing.T) {
	rot := NewSimDisk(DefaultParams(), NewVirtualClock()).Rotation()
	cases := []struct {
		delay time.Duration
		steps int // expected missed rotations per iteration
	}{
		{0, 1},
		{4 * time.Millisecond, 1},
		{rot - time.Millisecond, 1},
		{rot + time.Millisecond, 2},
		{12 * time.Millisecond, 2},
		{2*rot + time.Millisecond, 3},
		{30 * time.Millisecond, 4},
	}
	for _, tc := range cases {
		clk := NewVirtualClock()
		d := NewSimDisk(DefaultParams(), clk)
		d.Write(1024) // prime the phase
		const n = 20
		start := clk.Now()
		for i := 0; i < n; i++ {
			clk.Sleep(tc.delay)
			d.Write(1024)
		}
		per := clk.Now().Sub(start) / n
		wantLo := time.Duration(tc.steps) * rot
		wantHi := wantLo + time.Millisecond // service+transfer slack
		if per < wantLo || per > wantHi {
			t.Errorf("delay %v: per-iteration = %v, want in [%v, %v]",
				tc.delay, per, wantLo, wantHi)
		}
	}
}

func TestSimDiskFirstWriteSeesPartialRotation(t *testing.T) {
	// With StartPhase 0.5 the first write waits only ~half a rotation.
	clk := NewVirtualClock()
	p := DefaultParams()
	p.StartPhase = 0.5
	d := NewSimDisk(p, clk)
	start := clk.Now()
	d.Write(1024)
	got := clk.Now().Sub(start)
	half := d.Rotation() / 2
	if got < half-time.Millisecond || got > half+time.Millisecond {
		t.Errorf("first write = %v, want ~%v", got, half)
	}
}

func TestSimDiskWriteCacheEnabled(t *testing.T) {
	clk := NewVirtualClock()
	p := DefaultParams()
	p.WriteCache = true
	d := NewSimDisk(p, clk)
	start := clk.Now()
	for i := 0; i < 10; i++ {
		d.Write(1024)
		d.Sync()
	}
	per := clk.Now().Sub(start) / 10
	// Cache-on write+sync should be well under a rotation.
	if per >= d.Rotation()/4 {
		t.Errorf("cache-on write+sync = %v, want well under a rotation", per)
	}
	writes, syncs, media := d.Stats()
	if writes != 10 || syncs != 10 {
		t.Errorf("stats = %d writes %d syncs, want 10/10", writes, syncs)
	}
	if media <= 0 {
		t.Error("mediaTime not accounted")
	}
}

func TestSimDiskSyncFreeWhenCacheDisabled(t *testing.T) {
	clk := NewVirtualClock()
	d := NewSimDisk(DefaultParams(), clk)
	d.Write(512)
	before := clk.Now()
	d.Sync()
	if adv := clk.Now().Sub(before); adv != 0 {
		t.Errorf("cache-off Sync advanced clock by %v, want 0", adv)
	}
}

func TestSimDiskStats(t *testing.T) {
	d := NewSimDisk(DefaultParams(), NewVirtualClock())
	d.Write(100)
	d.Write(100)
	d.Sync()
	writes, syncs, media := d.Stats()
	if writes != 2 || syncs != 1 {
		t.Errorf("stats = %d/%d, want 2/1", writes, syncs)
	}
	// First write waits ~half a rotation (StartPhase 0.5), the second a
	// full rotation: ~12.5 ms total.
	if media < 12*time.Millisecond {
		t.Errorf("mediaTime = %v, want >= ~12.5ms", media)
	}
}

func TestSimDiskDefaultsOnZeroParams(t *testing.T) {
	d := NewSimDisk(SimParams{}, NewVirtualClock())
	if d.Rotation() <= 0 {
		t.Fatal("rotation must be positive with zeroed params")
	}
	d.Write(1024) // must not divide by zero
}

func TestHostModelNoops(t *testing.T) {
	var m HostModel
	m.Write(4096)
	m.Sync()
	if m.Name() != "host" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestSimDiskPhaseNoiseRandomizesWaits(t *testing.T) {
	// With per-write phase noise of a full rotation, back-to-back
	// writes wait on average about half a rotation instead of a full
	// one (the paper's remote-case behaviour, Section 5.2.2).
	p := DefaultParams()
	p.PhaseNoise = NewSimDisk(DefaultParams(), NewVirtualClock()).Rotation()
	p.NoiseSeed = 42
	clk := NewVirtualClock()
	d := NewSimDisk(p, clk)
	d.Write(1024)
	const n = 400
	start := clk.Now()
	for i := 0; i < n; i++ {
		d.Write(1024)
	}
	per := clk.Now().Sub(start) / n
	rot := d.Rotation()
	// Mean wait should sit well below a full rotation and near half.
	if per > rot*3/4 || per < rot/4 {
		t.Errorf("noisy per-write = %v, want ~%v (half rotation)", per, rot/2)
	}
	// Determinism: the same seed reproduces the same total.
	clk2 := NewVirtualClock()
	d2 := NewSimDisk(p, clk2)
	d2.Write(1024)
	start2 := clk2.Now()
	for i := 0; i < n; i++ {
		d2.Write(1024)
	}
	if clk2.Now().Sub(start2) != clk.Now().Sub(start) {
		t.Error("phase noise not deterministic under a fixed seed")
	}
}

func TestSimDiskName(t *testing.T) {
	off := NewSimDisk(DefaultParams(), NewVirtualClock())
	if off.Name() != "sim(cache-off)" {
		t.Errorf("Name = %q", off.Name())
	}
	p := DefaultParams()
	p.WriteCache = true
	on := NewSimDisk(p, NewVirtualClock())
	if on.Name() != "sim(cache-on)" {
		t.Errorf("Name = %q", on.Name())
	}
}
