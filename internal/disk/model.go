package disk

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Model is the timing model of a log device. The write-ahead log calls
// Write once per physical transfer of its buffer to the medium and Sync
// once per log force. Implementations inject the corresponding latency.
type Model interface {
	// Write accounts for an n-byte physical write to the medium.
	Write(n int)
	// Sync accounts for making previously written data stable.
	Sync()
	// Name identifies the model in experiment output.
	Name() string
}

// HostModel imposes no simulated latency: the log runs at the speed of
// the underlying file system. Used by the functional test suite, where
// correctness rather than paper-shaped timing is under test.
type HostModel struct{}

// Write is a no-op: the real write already cost what it cost.
func (HostModel) Write(int) {}

// Sync is a no-op.
func (HostModel) Sync() {}

// Name implements Model.
func (HostModel) Name() string { return "host" }

// SimParams configures a SimDisk. The defaults (DefaultParams) mirror
// the Maxtor 6L040J2 of paper Table 3: 7200 RPM, ~0.8 ms track-to-track
// seek, tens of MB/s media rate.
type SimParams struct {
	// RPM is the spindle speed; the rotation period is 60s/RPM.
	RPM float64
	// TransferBytesPerSec is the disk-to-media transfer rate.
	TransferBytesPerSec float64
	// ServiceTime is fixed per-write command overhead (controller,
	// bus). The paper measures 8.5 ms per unbuffered 1 KB write against
	// an 8.33 ms rotation; the difference is this overhead.
	ServiceTime time.Duration
	// WriteCache enables the drive's volatile write cache. With the
	// cache on, writes complete at CacheWriteTime without waiting for
	// the platter (paper Table 6, right column).
	WriteCache bool
	// CacheWriteTime is the per-write latency with the cache enabled.
	CacheWriteTime time.Duration
	// CacheSyncTime is the per-sync latency with the cache enabled.
	CacheSyncTime time.Duration
	// StartPhase, in [0,1), sets where in a rotation the log-head
	// sector is at time zero; it only affects the very first write.
	StartPhase float64
	// PhaseNoise randomizes each write's rotational phase by up to
	// this much. Real systems see it from head seeks, reordering and
	// scheduling; it is why the paper's remote runs wait the 4.17 ms
	// average rather than a full rotation per write (Section 5.2.2).
	// Zero keeps the deterministic sequential-sector model.
	PhaseNoise time.Duration
	// NoiseSeed seeds the phase noise.
	NoiseSeed int64
}

// DefaultParams returns the Table 3 disk: 7200 RPM with write cache
// disabled, tuned so a tight loop of 1 KB unbuffered writes costs
// ~8.5 ms per write, as measured in paper Figure 9.
func DefaultParams() SimParams {
	return SimParams{
		RPM:                 7200,
		TransferBytesPerSec: 30e6,
		ServiceTime:         130 * time.Microsecond,
		WriteCache:          false,
		CacheWriteTime:      350 * time.Microsecond,
		CacheSyncTime:       150 * time.Microsecond,
		StartPhase:          0.5,
	}
}

// SimDisk simulates the rotational behaviour of a disk whose write
// cache is disabled: the log is laid out sequentially, so when a write
// is issued immediately after the previous one completes, the target
// sector has just passed under the head and the write waits a full
// rotation (Section 5.2.2 and Figure 9). A writer that thinks for d
// between writes pays rotation*ceil(d/rotation) - d of rotational wait,
// producing Figure 9's staircase.
type SimDisk struct {
	params SimParams
	clock  Clock

	mu sync.Mutex
	// sectorPass is the most recent time the current log-head target
	// sector passed under the head; it passes again every rotation.
	sectorPass time.Time

	writes    int64
	syncs     int64
	mediaTime time.Duration // accumulated simulated latency

	noise *rand.Rand // phase noise source (nil = deterministic)
}

// NewSimDisk builds a simulated disk over the given clock. A nil clock
// uses a real wall clock (scale 1).
func NewSimDisk(params SimParams, clock Clock) *SimDisk {
	if clock == nil {
		clock = NewRealClock(1)
	}
	if params.RPM <= 0 {
		params.RPM = 7200
	}
	if params.TransferBytesPerSec <= 0 {
		params.TransferBytesPerSec = 30e6
	}
	d := &SimDisk{params: params, clock: clock}
	if params.PhaseNoise > 0 {
		seed := params.NoiseSeed
		if seed == 0 {
			seed = 1
		}
		d.noise = rand.New(rand.NewSource(seed))
	}
	rot := d.Rotation()
	phase := params.StartPhase
	if phase < 0 || phase >= 1 {
		phase = 0
	}
	// The target sector last passed phase*rotation ago.
	d.sectorPass = clock.Now().Add(-time.Duration(phase * float64(rot)))
	return d
}

// Rotation returns the rotation period (8.33 ms at 7200 RPM).
func (d *SimDisk) Rotation() time.Duration {
	return time.Duration(60 / d.params.RPM * float64(time.Second))
}

// Name implements Model.
func (d *SimDisk) Name() string {
	if d.params.WriteCache {
		return "sim(cache-on)"
	}
	return "sim(cache-off)"
}

// Write simulates an n-byte write. With the cache disabled it waits for
// the log-head sector to come around, then transfers; with the cache
// enabled it costs only CacheWriteTime.
func (d *SimDisk) Write(n int) {
	transfer := time.Duration(float64(n) / d.params.TransferBytesPerSec * float64(time.Second))

	if d.params.WriteCache {
		d.mu.Lock()
		d.writes++
		d.mediaTime += d.params.CacheWriteTime + transfer
		d.mu.Unlock()
		d.sleep(d.params.CacheWriteTime + transfer)
		return
	}

	now := d.clock.Now()
	d.mu.Lock()
	rot := d.Rotation()
	if d.noise != nil {
		// Slip the sector phase by a random fraction of PhaseNoise:
		// the head had to seek, or another request reordered us.
		d.sectorPass = d.sectorPass.Add(-time.Duration(d.noise.Int63n(int64(d.params.PhaseNoise))))
	}
	// The sector passes at sectorPass + k*rot for k = 1, 2, ...; by the
	// time this command is processed the k=0 pass has been missed.
	elapsed := now.Sub(d.sectorPass)
	k := int64(1)
	if elapsed > 0 {
		k = int64(math.Floor(float64(elapsed)/float64(rot))) + 1
	}
	arrival := d.sectorPass.Add(time.Duration(k) * rot)
	wait := arrival.Sub(now)
	if wait < 0 {
		wait = 0
	}
	// After the transfer the head sits just past the new log-head
	// sector, which therefore last "passed" at completion time.
	end := arrival.Add(transfer)
	d.sectorPass = end
	d.writes++
	total := wait + transfer + d.params.ServiceTime
	d.mediaTime += total
	d.mu.Unlock()

	d.sleep(total)
}

// Sync simulates a cache flush. With the cache disabled writes are
// already on the medium, so it is free; with the cache enabled it costs
// CacheSyncTime. (A drive cache that acknowledges flushes without media
// writes — the paper's "write cache enabled" column — is modelled by a
// small constant.)
func (d *SimDisk) Sync() {
	d.mu.Lock()
	d.syncs++
	if d.params.WriteCache {
		d.mediaTime += d.params.CacheSyncTime
	}
	d.mu.Unlock()
	if d.params.WriteCache {
		d.sleep(d.params.CacheSyncTime)
	}
}

func (d *SimDisk) sleep(t time.Duration) {
	if t > 0 {
		d.clock.Sleep(t)
	}
}

// Stats reports the number of simulated writes and syncs and the total
// simulated media latency injected so far.
func (d *SimDisk) Stats() (writes, syncs int64, mediaTime time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, d.syncs, d.mediaTime
}
