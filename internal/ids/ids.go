// Package ids defines the identifier types used throughout Phoenix/App:
// globally unique method-call IDs, logical process and component IDs,
// component URIs, and log sequence numbers.
//
// Following Section 2.3 of the paper, the globally unique ID of a method
// call consists of the caller's machine name, a logical process ID on
// that machine (assigned by the Phoenix runtime and stable across
// failures), a logical component ID within the process (also stable),
// and a local method-call sequence number incremented for every outgoing
// method call of the component. The first three parts together identify
// the calling component; the last makes the call unique and is
// deterministically re-derived after a failure from the log.
package ids

import (
	"fmt"
	"strconv"
	"strings"
)

// LSN is a log sequence number: the byte offset of a record in a
// process-local log stream. LSNs are strictly increasing within a
// stream.
//
// Sharded logs (internal/wal.Set) qualify LSNs with a stream tag in
// the top byte: stream 0 is the legacy single-log stream, whose LSNs
// are plain byte offsets and encode bit-for-bit as before. Stream
// tags are assigned monotonically across reshard eras, so comparing
// two raw LSNs orders them first by era (temporal order) and then by
// offset within a stream — which is exactly the order recovery and
// the checkpoint watermark rely on.
type LSN uint64

// NilLSN marks an absent LSN (e.g. a last-call entry whose reply has not
// been written to the log).
const NilLSN LSN = 0

const (
	// lsnStreamShift puts the stream tag in the LSN's top byte,
	// leaving 56 bits of byte offset (72 PB per stream).
	lsnStreamShift = 56
	lsnOffsetMask  = LSN(1)<<lsnStreamShift - 1

	// MaxStream is the largest stream tag an LSN can carry.
	MaxStream = 255
)

// IsNil reports whether the LSN is the reserved "absent" value.
func (l LSN) IsNil() bool { return l == NilLSN }

// Stream returns the log stream the LSN belongs to. Stream 0 is the
// legacy single-log stream.
func (l LSN) Stream() uint32 { return uint32(l >> lsnStreamShift) }

// Offset returns the byte offset of the LSN within its stream.
func (l LSN) Offset() LSN { return l & lsnOffsetMask }

// StreamLSN builds a stream-qualified LSN from a stream tag and a byte
// offset. StreamLSN(0, off) == off: legacy LSNs are stream 0.
func StreamLSN(stream uint32, off LSN) LSN {
	return LSN(stream)<<lsnStreamShift | off&lsnOffsetMask
}

func (l LSN) String() string {
	if s := l.Stream(); s != 0 {
		return "lsn:" + strconv.FormatUint(uint64(s), 10) + ":" +
			strconv.FormatUint(uint64(l.Offset()), 10)
	}
	return "lsn:" + strconv.FormatUint(uint64(l), 10)
}

// ProcID is the logical process ID assigned by the machine's recovery
// service. It survives process failures: a restarted process is handed
// the same logical ID so that method-call IDs remain stable.
type ProcID uint32

// CompID is the logical component ID within a process, assigned by the
// Phoenix runtime at component creation and stable across failures.
type CompID uint32

// ComponentAddr identifies a component instance globally: the first
// three parts of a method-call ID.
type ComponentAddr struct {
	Machine string
	Proc    ProcID
	Comp    CompID
}

// String renders the address as machine/proc/comp.
func (a ComponentAddr) String() string {
	return fmt.Sprintf("%s/%d/%d", a.Machine, a.Proc, a.Comp)
}

// IsZero reports whether the address is unset (used for calls from
// external components, which carry no Phoenix identity).
func (a ComponentAddr) IsZero() bool {
	return a.Machine == "" && a.Proc == 0 && a.Comp == 0
}

// CallID is the globally unique, deterministically derived ID attached
// to every outgoing method call from a persistent component
// (condition 2 of Section 2.2).
type CallID struct {
	Caller ComponentAddr
	Seq    uint64 // local method-call sequence number of the caller
}

// IsZero reports whether the CallID is absent, which marks the caller as
// an external component (Section 2.3: "If the ID does not exist, the
// caller must be an external component").
func (c CallID) IsZero() bool { return c.Caller.IsZero() && c.Seq == 0 }

func (c CallID) String() string {
	return fmt.Sprintf("%s#%d", c.Caller, c.Seq)
}

// URI names a component for remote reference, in the form
// phoenix://machine/process-name/component-name. Paper Section 4.2 saves
// remote component references as URIs in context state records.
type URI string

// MakeURI builds a component URI from its location parts.
func MakeURI(machine, process, component string) URI {
	return URI("phoenix://" + machine + "/" + process + "/" + component)
}

// Split decomposes a URI into machine, process and component names.
// It returns an error if the URI is not of the canonical form.
func (u URI) Split() (machine, process, component string, err error) {
	s := string(u)
	const scheme = "phoenix://"
	if !strings.HasPrefix(s, scheme) {
		return "", "", "", fmt.Errorf("ids: URI %q lacks %q scheme", u, scheme)
	}
	parts := strings.Split(s[len(scheme):], "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", "", fmt.Errorf("ids: URI %q is not phoenix://machine/process/component", u)
	}
	return parts[0], parts[1], parts[2], nil
}

// Machine returns the machine part of the URI, or "" if malformed.
func (u URI) Machine() string {
	m, _, _, err := u.Split()
	if err != nil {
		return ""
	}
	return m
}

// Valid reports whether the URI parses.
func (u URI) Valid() bool {
	_, _, _, err := u.Split()
	return err == nil
}
