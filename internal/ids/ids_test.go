package ids

import (
	"testing"
	"testing/quick"
)

func TestComponentAddrString(t *testing.T) {
	a := ComponentAddr{Machine: "evo1", Proc: 3, Comp: 7}
	if got, want := a.String(), "evo1/3/7"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestComponentAddrIsZero(t *testing.T) {
	if !(ComponentAddr{}).IsZero() {
		t.Error("zero ComponentAddr should be zero")
	}
	for _, a := range []ComponentAddr{
		{Machine: "m"},
		{Proc: 1},
		{Comp: 1},
	} {
		if a.IsZero() {
			t.Errorf("%+v should not be zero", a)
		}
	}
}

func TestCallIDIsZero(t *testing.T) {
	if !(CallID{}).IsZero() {
		t.Error("zero CallID should be zero (external caller)")
	}
	c := CallID{Caller: ComponentAddr{Machine: "m", Proc: 1, Comp: 2}, Seq: 1}
	if c.IsZero() {
		t.Error("non-zero CallID reported zero")
	}
}

func TestCallIDString(t *testing.T) {
	c := CallID{Caller: ComponentAddr{Machine: "evo2", Proc: 1, Comp: 4}, Seq: 99}
	if got, want := c.String(), "evo2/1/4#99"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMakeURIAndSplit(t *testing.T) {
	u := MakeURI("evo1", "shopd", "PriceGrabber")
	if u != URI("phoenix://evo1/shopd/PriceGrabber") {
		t.Fatalf("MakeURI = %q", u)
	}
	m, p, c, err := u.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if m != "evo1" || p != "shopd" || c != "PriceGrabber" {
		t.Errorf("Split = %q %q %q", m, p, c)
	}
	if u.Machine() != "evo1" {
		t.Errorf("Machine() = %q", u.Machine())
	}
	if !u.Valid() {
		t.Error("Valid() = false for canonical URI")
	}
}

func TestURISplitErrors(t *testing.T) {
	bad := []URI{
		"",
		"http://evo1/p/c",
		"phoenix://evo1/p",
		"phoenix://evo1/p/c/d",
		"phoenix:///p/c",
		"phoenix://m//c",
		"phoenix://m/p/",
	}
	for _, u := range bad {
		if _, _, _, err := u.Split(); err == nil {
			t.Errorf("Split(%q) succeeded, want error", u)
		}
		if u.Valid() {
			t.Errorf("Valid(%q) = true, want false", u)
		}
		if u.Machine() != "" {
			t.Errorf("Machine(%q) = %q, want empty", u, u.Machine())
		}
	}
}

func TestURIRoundTripProperty(t *testing.T) {
	// For names without '/' the URI round-trips exactly.
	f := func(mRaw, pRaw, cRaw uint16) bool {
		m := "m" + string(rune('a'+mRaw%26))
		p := "p" + string(rune('a'+pRaw%26))
		c := "c" + string(rune('a'+cRaw%26))
		gm, gp, gc, err := MakeURI(m, p, c).Split()
		return err == nil && gm == m && gp == p && gc == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSN(t *testing.T) {
	if !NilLSN.IsNil() {
		t.Error("NilLSN should be nil")
	}
	if LSN(1).IsNil() {
		t.Error("LSN(1) should not be nil")
	}
	if got, want := LSN(42).String(), "lsn:42"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
