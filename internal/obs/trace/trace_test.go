package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// fixedClock is a deterministic Now source tests can step (atomic so
// the concurrency test can share it across writers).
type fixedClock struct{ t atomic.Int64 }

func (c *fixedClock) now() int64 { return c.t.Add(1000) }

func newTestRecorder(size int, reg *obs.Registry) (*Recorder, *fixedClock) {
	c := &fixedClock{}
	return NewRecorder(Options{Name: "test", Size: size, Metrics: reg, Now: c.now}), c
}

func TestRecordSnapshot(t *testing.T) {
	r, _ := newTestRecorder(16, nil)
	proc, method := "srv", "Add"
	ref := r.NewTrace()
	for i := 0; i < 3; i++ {
		start := r.Now()
		r.Record(SpanData{
			Ref:    Ref{Trace: ref.Trace, Span: r.NewSpan()},
			Parent: ref.Span,
			Stage:  Stage(i),
			Start:  start,
			End:    r.Now(),
			LSN:    uint64(100 + i),
			Proc:   &proc,
			Method: &method,
		})
	}
	spans := r.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Trace != ref.Trace {
			t.Errorf("span %d: trace %x, want %x", i, sp.Trace, ref.Trace)
		}
		if sp.Stage != Stage(i) {
			t.Errorf("span %d: stage %v, want %v (start-time order)", i, sp.Stage, Stage(i))
		}
		if sp.Proc != "srv" || sp.Method != "Add" {
			t.Errorf("span %d: proc/method %q/%q", i, sp.Proc, sp.Method)
		}
		if sp.LSN != uint64(100+i) {
			t.Errorf("span %d: lsn %d", i, sp.LSN)
		}
		if sp.End <= sp.Start {
			t.Errorf("span %d: end %d <= start %d", i, sp.End, sp.Start)
		}
	}
}

func TestZeroRefDropped(t *testing.T) {
	r, _ := newTestRecorder(16, nil)
	r.Record(SpanData{Stage: StageExecute, Start: 1, End: 2})
	if n := r.Len(); n != 0 {
		t.Fatalf("untraced span was recorded: Len=%d", n)
	}
}

func TestRingOverwrite(t *testing.T) {
	reg := obs.NewRegistry()
	r, _ := newTestRecorder(8, reg)
	proc := "p"
	ref := r.NewTrace()
	for i := 0; i < 20; i++ {
		start := r.Now()
		r.Record(SpanData{Ref: Ref{Trace: ref.Trace, Span: r.NewSpan()},
			Stage: StageExecute, Start: start, End: r.Now(), Proc: &proc})
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want ring size 8", got)
	}
	spans := r.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("snapshot has %d spans, want 8", len(spans))
	}
	// Oldest 12 were displaced; survivors are the newest 8 spans.
	for _, sp := range spans {
		if sp.Span <= 12 {
			t.Errorf("displaced span %d still present", sp.Span)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.TraceSpans); got != 20 {
		t.Errorf("trace.spans = %d, want 20", got)
	}
	if got := snap.Counter(obs.TraceRingOverwrites); got != 12 {
		t.Errorf("trace.ring_overwrites = %d, want 12", got)
	}
}

func TestStageHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	r, _ := newTestRecorder(16, reg)
	ref := r.NewTrace()
	r.Record(SpanData{Ref: ref, Stage: StageSyncWait, Start: 0, End: 8_000_000}) // 8ms
	h := reg.Snapshot().HistogramFor(obs.TraceSyncWaitMicros)
	if h.Count != 1 {
		t.Fatalf("sync_wait histogram count = %d, want 1", h.Count)
	}
	if h.Max != 8000 {
		t.Fatalf("sync_wait max = %dµs, want 8000", h.Max)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if ref := r.NewTrace(); !ref.IsZero() {
		t.Errorf("nil NewTrace = %+v, want zero", ref)
	}
	if id := r.NewSpan(); id != 0 {
		t.Errorf("nil NewSpan = %d", id)
	}
	if now := r.Now(); now != 0 {
		t.Errorf("nil Now = %d", now)
	}
	r.Record(SpanData{Ref: Ref{Trace: 1, Span: 1}}) // must not panic
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v", got)
	}
	if got := r.Len(); got != 0 {
		t.Errorf("nil Len = %d", got)
	}
}

func TestDeterministicIDs(t *testing.T) {
	a, _ := newTestRecorder(8, nil)
	b, _ := newTestRecorder(8, nil)
	ra, rb := a.NewTrace(), b.NewTrace()
	if ra != rb {
		t.Errorf("same-name recorders minted different IDs: %+v vs %+v", ra, rb)
	}
	if ra.Trace == 0 {
		t.Errorf("trace ID is zero")
	}
	other := NewRecorder(Options{Name: "other", Size: 8})
	if ro := other.NewTrace(); ro.Trace == ra.Trace {
		t.Errorf("different-name recorders collided on trace ID %x", ro.Trace)
	}
}

func TestStageString(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < stageCount; s++ {
		name := s.String()
		if name == "" || name == "unknown" {
			t.Errorf("stage %d has no name", s)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Errorf("out-of-range stage = %q", got)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r, _ := newTestRecorder(32, nil)
	proc, method := "srv", "Add"
	for i := 0; i < 5; i++ {
		ref := r.NewTrace()
		start := r.Now()
		r.Record(SpanData{Ref: ref, Stage: StageReplay, Start: start, End: r.Now(),
			LSN: uint64(i), Proc: &proc, Method: &method})
	}
	want := r.Snapshot()
	path := filepath.Join(t.TempDir(), "proc.ftr.0")
	if err := WriteDump(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d spans, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("span %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestDumpRejectsGarbage(t *testing.T) {
	if _, err := DecodeDump([]byte("not a dump")); err == nil {
		t.Error("bad magic accepted")
	}
	good := AppendDump(nil, []Span{{Trace: 1, Span: 2, Stage: StageReply, Start: 3, End: 4}})
	for cut := len(dumpMagic) + 1; cut < len(good); cut++ {
		if _, err := DecodeDump(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeDump(append(good, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestRecordZeroAllocs is the satellite gate: recording a span into
// the ring must allocate nothing in steady state.
func TestRecordZeroAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	r, clk := newTestRecorder(1024, reg)
	proc, method := "srv", "Add"
	ref := r.NewTrace()
	allocs := testing.AllocsPerRun(1000, func() {
		start := clk.now()
		r.Record(SpanData{
			Ref:    Ref{Trace: ref.Trace, Span: r.NewSpan()},
			Parent: ref.Span,
			Stage:  StageExecute,
			Start:  start,
			End:    clk.now(),
			LSN:    42,
			Proc:   &proc,
			Method: &method,
		})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per span, want 0", allocs)
	}
}

// TestConcurrentRecordSnapshot exercises writers racing a reader; run
// under -race this validates the all-atomic slot layout.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r, _ := newTestRecorder(64, nil)
	proc := "p"
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref := r.NewTrace()
			for i := 0; i < 2000; i++ {
				start := r.Now()
				r.Record(SpanData{Ref: Ref{Trace: ref.Trace, Span: r.NewSpan()},
					Stage: Stage(i % int(stageCount)), Start: start, End: r.Now(), Proc: &proc})
			}
		}()
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range r.Snapshot() {
				if sp.Trace == 0 {
					t.Error("snapshot returned an untraced span")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
}

func TestHandlerJSON(t *testing.T) {
	r, _ := newTestRecorder(16, nil)
	proc := "srv"
	ref := r.NewTrace()
	start := r.Now()
	r.Record(SpanData{Ref: ref, Stage: StageTransport, Start: start, End: r.Now(), Proc: &proc})
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", DebugPath, nil))
	var body struct {
		Spans []struct {
			Trace uint64 `json:"trace"`
			Stage string `json:"stage"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Spans) != 1 || body.Spans[0].Stage != "transport" {
		t.Fatalf("unexpected body: %s", rec.Body.String())
	}
}

func ExampleStage_String() {
	fmt.Println(StageClientIntercept, StageReplay)
	// Output: client_intercept replay
}
