package trace

import (
	"errors"
	"fmt"
	"os"

	"encoding/binary"
)

// Dump file format ("PHXFTR1"): the magic line, a span count, then
// each span as a fixed field sequence of varints —
//
//	uvarint trace, span, parent, stage, lsn
//	varint  start, end           (unix nanos; signed, pre-epoch safe)
//	uvarint len(proc)   + bytes
//	uvarint len(method) + bytes
//
// The encoding deliberately uses encoding/binary varints rather than
// the msg codec: msg imports trace (envelopes carry Refs), so trace
// cannot import msg back.
const dumpMagic = "PHXFTR1\n"

var errDumpShort = errors.New("trace: truncated dump")

// AppendDump appends the dump encoding of spans to dst.
func AppendDump(dst []byte, spans []Span) []byte {
	dst = append(dst, dumpMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(spans)))
	for _, sp := range spans {
		dst = binary.AppendUvarint(dst, sp.Trace)
		dst = binary.AppendUvarint(dst, sp.Span)
		dst = binary.AppendUvarint(dst, sp.Parent)
		dst = binary.AppendUvarint(dst, uint64(sp.Stage))
		dst = binary.AppendUvarint(dst, sp.LSN)
		dst = binary.AppendVarint(dst, sp.Start)
		dst = binary.AppendVarint(dst, sp.End)
		dst = appendDumpString(dst, sp.Proc)
		dst = appendDumpString(dst, sp.Method)
	}
	return dst
}

// DecodeDump parses a dump produced by AppendDump.
func DecodeDump(data []byte) ([]Span, error) {
	if len(data) < len(dumpMagic) || string(data[:len(dumpMagic)]) != dumpMagic {
		return nil, errors.New("trace: not a flight-recorder dump (bad magic)")
	}
	data = data[len(dumpMagic):]
	count, data, err := consumeDumpUvarint(data)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(data)) { // each span costs ≥ 9 bytes; cheap sanity cap
		return nil, fmt.Errorf("trace: dump claims %d spans in %d bytes", count, len(data))
	}
	spans := make([]Span, 0, count)
	for n := uint64(0); n < count; n++ {
		var sp Span
		var stage uint64
		if sp.Trace, data, err = consumeDumpUvarint(data); err != nil {
			return nil, err
		}
		if sp.Span, data, err = consumeDumpUvarint(data); err != nil {
			return nil, err
		}
		if sp.Parent, data, err = consumeDumpUvarint(data); err != nil {
			return nil, err
		}
		if stage, data, err = consumeDumpUvarint(data); err != nil {
			return nil, err
		}
		sp.Stage = Stage(stage)
		if sp.LSN, data, err = consumeDumpUvarint(data); err != nil {
			return nil, err
		}
		if sp.Start, data, err = consumeDumpVarint(data); err != nil {
			return nil, err
		}
		if sp.End, data, err = consumeDumpVarint(data); err != nil {
			return nil, err
		}
		if sp.Proc, data, err = consumeDumpString(data); err != nil {
			return nil, err
		}
		if sp.Method, data, err = consumeDumpString(data); err != nil {
			return nil, err
		}
		spans = append(spans, sp)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after dump", len(data))
	}
	return spans, nil
}

// WriteDump writes spans to path in dump format. Crash dumps are
// best-effort: one plain write, no fsync — the universe is going down.
func WriteDump(path string, spans []Span) error {
	return os.WriteFile(path, AppendDump(nil, spans), 0o644)
}

// LoadDump reads a dump file back.
func LoadDump(path string) ([]Span, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spans, err := DecodeDump(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spans, nil
}

func appendDumpString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func consumeDumpUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errDumpShort
	}
	return v, data[n:], nil
}

func consumeDumpVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, errDumpShort
	}
	return v, data[n:], nil
}

func consumeDumpString(data []byte) (string, []byte, error) {
	l, data, err := consumeDumpUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if l > uint64(len(data)) {
		return "", nil, errDumpShort
	}
	return string(data[:l]), data[l:], nil
}
