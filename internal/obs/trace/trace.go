// Package trace is the causal-tracing layer of the observability
// stack: it assigns every external interaction a TraceID/SpanID that
// the runtime propagates through message envelopes and into the hot
// log record kinds, and records per-stage spans into a per-process
// lock-free ring-buffer flight recorder.
//
// The recorder is built for the logging hot path: Record is wait-free
// (one atomic ticket claim plus plain atomic stores into a fixed slot),
// allocates nothing, and timestamps on the universe clock so traces
// are deterministic under a VirtualClock. Readers (the crash dump, the
// debug endpoint) are rare and best-effort: each slot carries a
// sequence number with seqlock parity, so a reader either gets a
// consistent span or skips a slot that was mid-overwrite.
//
// A nil *Recorder is the "tracing off" state: every method is nil-safe
// and free, so call sites never branch on a flag.
package trace

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Ref identifies one causal position: the trace an interaction belongs
// to and the span (one leg of work) within it. The zero Ref means
// "untraced" — codecs treat it as absent and emit the pre-trace wire
// formats bit-for-bit.
type Ref struct {
	Trace uint64
	Span  uint64
}

// IsZero reports whether the Ref carries no trace.
func (r Ref) IsZero() bool { return r.Trace == 0 && r.Span == 0 }

// Stage names one leg of an interaction's causal path. The first eight
// cover normal execution in path order (paper Figure 1's messages 1-4
// as seen from both sides); the last three cover crash recovery, where
// a replayed call's span joins the original trace stitched by LSN.
type Stage uint8

const (
	// StageClientIntercept is the client-side interception of an
	// outgoing call: logging discipline decisions, message-3 logging
	// and the pre-send force, up to handing the call to the transport.
	StageClientIntercept Stage = iota
	// StageTransport is the wire round trip: envelope encode, send,
	// reply receive and decode, including retries.
	StageTransport
	// StageServerIntercept is the server-side interception before
	// execution: duplicate elimination and message-1 logging/forcing.
	StageServerIntercept
	// StageWALAppend is one AppendInto of a trace-carrying record.
	StageWALAppend
	// StageSyncWait is the wait for durability at a force point —
	// group-commit window plus device sync, or the inline sync.
	StageSyncWait
	// StageExecute is the component method execution itself.
	StageExecute
	// StageReply is the server-side reply path after execution:
	// message-2 logging/forcing until the reply leaves the handler.
	StageReply
	// StageClientResume is the client-side resume after the reply
	// arrives: message-4 logging and result decode.
	StageClientResume
	// StageRecoveryScan is a recovery pass over the log (Pass 1 mining
	// or the Pass-2 cursor scan), one span per pass per recovery run.
	StageRecoveryScan
	// StageReplayQueueWait is the time a demultiplexed record spent in
	// a per-context replay queue before a worker picked it up.
	StageReplayQueueWait
	// StageReplay is the re-execution of a logged incoming call during
	// Pass 2. Its Ref is the *original* trace read back from the log
	// record and its LSN is the replayed record's LSN — the stitch
	// point between pre-crash and post-crash halves of a timeline.
	StageReplay
	// StageDemandReplay is one lazy-admission backlog replay: a whole
	// context's deferred Pass-2 work, run on first touch (parented
	// under the triggering call's trace — the wait that call actually
	// experienced) or by the background drain (parented under the
	// recovery run's trace). Its LSN is the context's restart LSN.
	StageDemandReplay
	// StageDisciplineChange is one adaptive discipline transition: the
	// span covers appending and forcing the discipline-change record
	// that makes the promotion/demotion durable before it takes effect.
	// Its LSN is the change record's LSN.
	StageDisciplineChange

	// stageCount is the sentinel; keep it last.
	stageCount
)

var stageNames = [stageCount]string{
	StageClientIntercept:  "client_intercept",
	StageTransport:        "transport",
	StageServerIntercept:  "server_intercept",
	StageWALAppend:        "wal_append",
	StageSyncWait:         "sync_wait",
	StageExecute:          "execute",
	StageReply:            "reply",
	StageClientResume:     "client_resume",
	StageRecoveryScan:     "recovery_scan",
	StageReplayQueueWait:  "replay_queue_wait",
	StageReplay:           "replay",
	StageDemandReplay:     "demand_replay",
	StageDisciplineChange: "discipline_change",
}

// String returns the stage's canonical snake_case name.
func (s Stage) String() string {
	if s < stageCount {
		return stageNames[s]
	}
	return "unknown"
}

// MarshalJSON renders the stage by name so dump files and the debug
// endpoint stay readable without a decoder ring.
func (s Stage) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Span is one recorded leg of a trace, the decoded (reader-side) form.
// Start and End are universe-clock unix nanoseconds; LSN is the log
// record this leg produced or replayed (0 = none).
type Span struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	Stage  Stage  `json:"stage"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	LSN    uint64 `json:"lsn,omitempty"`
	Proc   string `json:"proc,omitempty"`
	Method string `json:"method,omitempty"`
}

// SpanData is the writer-side record input. Proc and Method are
// pointers into strings that already exist (the process name tag, a
// decoded call's Method field) so that recording stays allocation-free;
// the recorder stores the pointers, not copies.
type SpanData struct {
	Ref    Ref
	Parent uint64
	Stage  Stage
	Start  int64
	End    int64
	LSN    uint64
	Proc   *string
	Method *string
}

// slot is one ring entry. Every field is individually atomic: the
// race detector runs over the core tests, and a seqlock over plain
// fields would (correctly) trip it — and a torn string header would be
// memory-unsafe. The seq field carries seqlock parity on top: odd
// while a writer is mid-store, even when stable, 0 when never written.
type slot struct {
	seq    atomic.Uint64
	trace  atomic.Uint64
	span   atomic.Uint64
	parent atomic.Uint64
	lsn    atomic.Uint64
	start  atomic.Int64
	end    atomic.Int64
	stage  atomic.Uint32
	proc   atomic.Pointer[string]
	method atomic.Pointer[string]
}

// Recorder is the per-process flight recorder: a fixed-size ring of
// span slots overwritten oldest-first, plus the trace/span ID wells.
// The zero of *Recorder (nil) is "tracing off".
type Recorder struct {
	slots  []slot
	mask   uint64
	cursor atomic.Uint64 // monotonic ticket; slot = ticket & mask

	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
	salt     uint64 // high bits of every TraceID, from Options.Name

	now func() int64

	spans       *obs.Counter
	overwrites  *obs.Counter
	stageMicros [stageCount]*obs.Histogram
}

// DefaultRingSize is the span capacity of a recorder when Options.Size
// is zero: 4096 spans ≈ 512 traced calls at ~8 spans each, a few
// hundred KiB resident.
const DefaultRingSize = 4096

// Options configures NewRecorder.
type Options struct {
	// Name salts the high bits of generated TraceIDs so traces from
	// different recorders (universes, benches) don't collide. Purely
	// deterministic: same name, same IDs.
	Name string
	// Size is the ring capacity in spans, rounded up to a power of
	// two. 0 means DefaultRingSize.
	Size int
	// Metrics receives the trace.* counters and per-stage latency
	// histograms; nil disables metric accounting (the ring still
	// records).
	Metrics *obs.Registry
	// Now supplies timestamps in unix nanoseconds. Wire it to the
	// universe clock so traces are deterministic under VirtualClock;
	// nil makes Now() return 0 (spans record with zero timestamps).
	Now func() int64
}

// NewRecorder builds a flight recorder.
func NewRecorder(o Options) *Recorder {
	size := o.Size
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	h := fnv.New64a()
	h.Write([]byte(o.Name))
	r := &Recorder{
		slots: make([]slot, n),
		mask:  uint64(n - 1),
		salt:  h.Sum64() &^ 0xFFFFFFFF, // keep the high 32 bits for IDs
		now:   o.Now,
	}
	tm := obs.TraceView(o.Metrics)
	r.spans = tm.Spans
	r.overwrites = tm.RingOverwrites
	r.stageMicros = [stageCount]*obs.Histogram{
		StageClientIntercept:  tm.ClientInterceptMicros,
		StageTransport:        tm.TransportMicros,
		StageServerIntercept:  tm.ServerInterceptMicros,
		StageWALAppend:        tm.WALAppendMicros,
		StageSyncWait:         tm.SyncWaitMicros,
		StageExecute:          tm.ExecuteMicros,
		StageReply:            tm.ReplyMicros,
		StageClientResume:     tm.ClientResumeMicros,
		StageRecoveryScan:     tm.RecoveryScanMicros,
		StageReplayQueueWait:  tm.ReplayQueueWaitMicros,
		StageReplay:           tm.ReplayMicros,
		StageDemandReplay:     tm.DemandReplayMicros,
		StageDisciplineChange: tm.DisciplineChangeMicros,
	}
	return r
}

// NewTrace mints a fresh trace: a new TraceID (recorder salt in the
// high 32 bits, a counter below — never zero) with a fresh root span.
// A nil recorder returns the zero Ref, i.e. "untraced".
func (r *Recorder) NewTrace() Ref {
	if r == nil {
		return Ref{}
	}
	return Ref{
		Trace: r.salt | (r.traceSeq.Add(1) & 0xFFFFFFFF),
		Span:  r.spanSeq.Add(1),
	}
}

// NewSpan mints a fresh span ID within an existing trace. A nil
// recorder returns 0.
func (r *Recorder) NewSpan() uint64 {
	if r == nil {
		return 0
	}
	return r.spanSeq.Add(1)
}

// Now returns the universe-clock time in unix nanoseconds. A nil
// recorder (or one with no clock) returns 0 without touching anything,
// so the disabled path costs one nil check.
func (r *Recorder) Now() int64 {
	if r == nil || r.now == nil {
		return 0
	}
	return r.now()
}

// Record stores one span into the ring, overwriting the oldest slot
// once full, and feeds the stage's latency histogram. Wait-free and
// allocation-free; a nil recorder drops the span for the cost of one
// branch. Untraced spans (zero Ref) are dropped too, so call sites can
// record unconditionally.
func (r *Recorder) Record(d SpanData) {
	if r == nil || d.Ref.IsZero() {
		return
	}
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(2*i + 1) // odd: write in progress
	s.trace.Store(d.Ref.Trace)
	s.span.Store(d.Ref.Span)
	s.parent.Store(d.Parent)
	s.stage.Store(uint32(d.Stage))
	s.start.Store(d.Start)
	s.end.Store(d.End)
	s.lsn.Store(d.LSN)
	s.proc.Store(d.Proc)
	s.method.Store(d.Method)
	s.seq.Store(2*i + 2) // even: stable
	r.spans.Inc()
	if i >= uint64(len(r.slots)) {
		r.overwrites.Inc()
	}
	if h := r.stageMicros[d.Stage%stageCount]; h != nil && d.End >= d.Start {
		h.Observe((d.End - d.Start) / 1000)
	}
}

// Len returns the number of spans currently resident (at most the ring
// size). A nil recorder holds none.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if n := r.cursor.Load(); n < uint64(len(r.slots)) {
		return int(n)
	}
	return len(r.slots)
}

// Snapshot copies the stable slots out of the ring, ordered by start
// time (span ID breaks ties, preserving record order under a virtual
// clock). Slots mid-overwrite are retried briefly and then skipped —
// a reader never blocks a writer. A nil recorder snapshots empty.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.Len())
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			seq := s.seq.Load()
			if seq == 0 { // never written
				break
			}
			if seq%2 == 1 { // mid-write; retry
				continue
			}
			sp := Span{
				Trace:  s.trace.Load(),
				Span:   s.span.Load(),
				Parent: s.parent.Load(),
				Stage:  Stage(s.stage.Load()),
				Start:  s.start.Load(),
				End:    s.end.Load(),
				LSN:    s.lsn.Load(),
			}
			if p := s.proc.Load(); p != nil {
				sp.Proc = *p
			}
			if m := s.method.Load(); m != nil {
				sp.Method = *m
			}
			if s.seq.Load() == seq { // unchanged across the read: consistent
				out = append(out, sp)
				break
			}
		}
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans for timeline display: by start time, span ID
// as the tiebreak.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Span < spans[j].Span
	})
}
