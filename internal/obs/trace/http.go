package trace

import (
	"encoding/json"
	"net/http"
)

// DebugPath is where a debug server exposes the live flight recorder,
// next to obs.DebugPath's metric snapshot.
const DebugPath = "/debug/phoenixtrace"

// Handler returns an http.Handler serving the recorder's current spans
// as JSON, newest ring contents sorted by start time. Mount it at
// DebugPath via obs.StartDebugServer's extra mounts. A nil recorder
// serves an empty span list.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Spans []Span `json:"spans"`
		}{r.Snapshot()})
	})
}
